//! `lahar` — command-line interface to the Lahar engine.
//!
//! ```text
//! lahar simulate --out DIR [--ticks N] [--people N] [--objects N]
//!                [--seed N] [--archived]     generate a deployment, save streams
//! lahar classify --manifest DIR QUERY        classify a query and show its plan
//! lahar query    --manifest DIR QUERY        evaluate μ(q@t) over saved streams
//! lahar replay   --manifest DIR QUERY        replay saved streams tick by tick
//!                [--metrics-addr IP:PORT] [--metrics-out FILE]
//!                [--trace-out FILE] [--threshold P]
//! lahar demo                                 built-in end-to-end walkthrough
//! ```
//!
//! `simulate` writes a `manifest.txt` (schema + relations) and one
//! `<stream>.lstream` binary image per stream; `classify`/`query` load
//! them back. The on-disk format is `lahar_model::encode_stream`.

use lahar::core::protocol::WireMarginal;
use lahar::core::{CompileOptions, Lahar};
use lahar::model::{decode_stream, encode_stream, tuple, Database, Stream, Value};
use lahar::query::{classify, compile_safe_plan, parse_and_validate, NormalQuery, QueryClass};
use lahar::rfid::{Deployment, DeploymentConfig};
use lahar::{
    Durability, EngineError, LaharClient, LaharServer, RealTimeSession, RetryPolicy, ServerConfig,
    SessionConfig, WireCode,
};
use std::collections::BTreeMap;
use std::fs;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("classify") => cmd_classify(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("ingest") => cmd_ingest(&args[1..]),
        Some("bench-ingest") => cmd_bench_ingest(&args[1..]),
        Some("probe") => cmd_probe(&args[1..]),
        Some("demo") => cmd_demo(),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; try --help")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "lahar — event queries on correlated probabilistic streams\n\n\
         USAGE:\n  \
         lahar simulate --out DIR [--ticks N] [--people N] [--objects N] [--seed N] [--archived]\n  \
         lahar classify --manifest DIR 'QUERY'\n  \
         lahar query    --manifest DIR 'QUERY'\n  \
         lahar replay   --manifest DIR 'QUERY' [--metrics-addr IP:PORT] [--metrics-out FILE]\n  \
         \x20               [--trace-out FILE] [--threshold P] [--epoch N]\n  \
         lahar serve    --manifest DIR --addr IP:PORT [--metrics-addr IP:PORT] [--shards N]\n  \
         \x20               [--queue-cap N] [--max-sessions N] [--checkpoint-dir DIR]\n  \
         \x20               [--durability none|batch|always] [--checkpoint-interval N]\n  \
         \x20               [--slow-request-ms N] [--slow-log FILE] [--trace] [--trace-out FILE]\n  \
         \x20               [--evict-after-ms N]\n  \
         lahar ingest   --manifest DIR --addr IP:PORT 'QUERY' [--session NAME] [--ticks N]\n  \
         \x20               [--epoch N] [--scrape URL] [--shutdown]\n  \
         lahar bench-ingest --manifest DIR [--addr IP:PORT] [--connections N] [--sessions M]\n  \
         \x20               [--ticks N] [--shards N] [--queue-cap N] [--evict-after-ms N]\n  \
         \x20               [--quick] [--out FILE]\n  \
         lahar probe    --manifest DIR --addr IP:PORT 'QUERY' [--session NAME] [--shutdown]\n  \
         lahar demo\n\n\
         QUERY SYNTAX (see README):\n  \
         At('joe','a') ; (At('joe', l))+{{| Hallway(l)}} ; At('joe','c')\n  \
         sigma[Person(p)](At(p,'a') ; At(p,'c'))"
    );
}

/// Minimal flag parser: `--key value` pairs plus positional arguments.
/// Flags that never take a value — without this list a trailing
/// positional (e.g. the query after `--shutdown`) would be swallowed
/// as the flag's value.
const BOOL_FLAGS: [&str; 4] = ["archived", "shutdown", "trace", "quick"];

fn parse_flags(args: &[String]) -> Result<(BTreeMap<String, String>, Vec<String>), String> {
    let mut flags = BTreeMap::new();
    let mut positional = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            // Boolean flags take no value; other flags take one when
            // followed by anything that isn't itself a flag.
            match it.peek() {
                Some(v) if !v.starts_with("--") && !BOOL_FLAGS.contains(&name) => {
                    flags.insert(name.to_owned(), it.next().unwrap().clone());
                }
                _ => {
                    flags.insert(name.to_owned(), "true".to_owned());
                }
            }
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((flags, positional))
}

fn get_usize(flags: &BTreeMap<String, String>, key: &str, default: usize) -> Result<usize, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} expects a number, got {v:?}")),
    }
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args)?;
    let out = PathBuf::from(
        flags
            .get("out")
            .ok_or("simulate requires --out DIR".to_owned())?,
    );
    let config = DeploymentConfig {
        ticks: get_usize(&flags, "ticks", 300)?,
        n_people: get_usize(&flags, "people", 4)?,
        n_objects: get_usize(&flags, "objects", 0)?,
        seed: get_usize(&flags, "seed", 42)? as u64,
        ..DeploymentConfig::default()
    };
    let archived = flags.contains_key("archived");
    eprintln!(
        "simulating {} ticks, {} people, {} objects ({}) ...",
        config.ticks,
        config.n_people,
        config.n_objects,
        if archived {
            "archived/smoothed"
        } else {
            "real-time/filtered"
        }
    );
    let dep = Deployment::simulate(config);
    let db = if archived {
        dep.smoothed_database()
    } else {
        dep.filtered_database()
    };
    fs::create_dir_all(&out).map_err(|e| format!("creating {}: {e}", out.display()))?;
    write_manifest(&out, &db, &dep)?;
    for (i, stream) in db.streams().iter().enumerate() {
        let bytes = encode_stream(db.interner(), stream);
        let name = stream.id().display(db.interner());
        let safe: String = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let path = out.join(format!("{i:03}_{safe}.lstream"));
        fs::write(&path, &bytes).map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    println!(
        "wrote {} streams ({} relational tuples) to {}",
        db.streams().len(),
        db.relational_tuple_count(),
        out.display()
    );
    Ok(())
}

fn write_manifest(out: &Path, db: &Database, dep: &Deployment) -> Result<(), String> {
    let mut manifest = String::new();
    let i = db.interner();
    for schema in db.catalog().streams() {
        let name = i.resolve(schema.name).unwrap_or_default();
        let attrs: Vec<String> = schema
            .attrs
            .iter()
            .map(|a| i.resolve(*a).unwrap_or_default())
            .collect();
        let (keys, vals) = attrs.split_at(schema.key_arity);
        manifest.push_str(&format!(
            "stream {name} {} | {}\n",
            keys.join(" "),
            vals.join(" ")
        ));
    }
    for schema in db.catalog().relations() {
        let name = i.resolve(schema.name).unwrap_or_default();
        if let Some(rel) = db.relation(schema.name) {
            for t in rel.iter() {
                let vals: Vec<String> = t
                    .iter()
                    .map(|v| match v {
                        lahar::model::Value::Str(s) => i.resolve(*s).unwrap_or_default(),
                        lahar::model::Value::Int(n) => n.to_string(),
                        lahar::model::Value::Bool(b) => b.to_string(),
                    })
                    .collect();
                manifest.push_str(&format!("tuple {name} {}\n", vals.join(" ")));
            }
            manifest.push_str(&format!("relation {name} {}\n", schema.arity));
        }
    }
    manifest.push_str(&format!("# people: {}\n", dep.people.len()));
    let path = out.join("manifest.txt");
    fs::write(&path, manifest).map_err(|e| format!("writing {}: {e}", path.display()))
}

fn load_database(dir: &Path) -> Result<Database, String> {
    load_database_impl(dir, true)
}

/// Loads a saved deployment. With `with_data` false the streams come
/// back *empty* (schema, keys, and domains only) — the shape
/// [`RealTimeSession`] requires, since a session is fed marginals tick
/// by tick rather than reading recorded ones.
fn load_database_impl(dir: &Path, with_data: bool) -> Result<Database, String> {
    let manifest = fs::read_to_string(dir.join("manifest.txt"))
        .map_err(|e| format!("reading manifest in {}: {e}", dir.display()))?;
    let mut db = Database::new();
    // Declarations first (relation lines may follow their tuples).
    let mut pending_tuples: Vec<(String, Vec<String>)> = Vec::new();
    for line in manifest.lines() {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("stream") => {
                let name = parts.next().ok_or("bad stream line")?;
                let rest: Vec<&str> = parts.collect();
                let split = rest
                    .iter()
                    .position(|&s| s == "|")
                    .ok_or("stream line missing '|'")?;
                let keys: Vec<&str> = rest[..split].to_vec();
                let vals: Vec<&str> = rest[split + 1..].to_vec();
                db.declare_stream(name, &keys, &vals)
                    .map_err(|e| e.to_string())?;
            }
            Some("relation") => {
                let name = parts.next().ok_or("bad relation line")?;
                let arity: usize = parts
                    .next()
                    .ok_or("relation line missing arity")?
                    .parse()
                    .map_err(|_| "bad relation arity")?;
                db.declare_relation(name, arity)
                    .map_err(|e| e.to_string())?;
            }
            Some("tuple") => {
                let name = parts.next().ok_or("bad tuple line")?.to_owned();
                pending_tuples.push((name, parts.map(str::to_owned).collect()));
            }
            _ => {}
        }
    }
    let interner = db.interner().clone();
    for (rel, vals) in pending_tuples {
        let t = tuple(vals.iter().map(|v| interner.intern(v)));
        db.insert_relation_tuple(&rel, t)
            .map_err(|e| e.to_string())?;
    }
    // Stream images.
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "lstream"))
        .collect();
    entries.sort();
    for path in entries {
        let bytes = fs::read(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let stream = decode_stream(&interner, bytes.into())
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let stream = if with_data {
            stream
        } else {
            Stream::independent(stream.id().clone(), stream.domain().clone(), Vec::new())
                .map_err(|e| e.to_string())?
        };
        db.add_stream(stream).map_err(|e| e.to_string())?;
    }
    Ok(db)
}

fn manifest_db(args: &[String]) -> Result<(Database, String), String> {
    let (flags, positional) = parse_flags(args)?;
    let dir = PathBuf::from(
        flags
            .get("manifest")
            .ok_or("requires --manifest DIR".to_owned())?,
    );
    let query = positional
        .first()
        .ok_or("requires a query argument".to_owned())?
        .clone();
    Ok((load_database(&dir)?, query))
}

fn cmd_classify(args: &[String]) -> Result<(), String> {
    let (db, src) = manifest_db(args)?;
    let q = parse_and_validate(db.catalog(), db.interner(), &src).map_err(|e| e.to_string())?;
    let nq = NormalQuery::from_query(&q);
    let class = classify(db.catalog(), &nq);
    println!("query:  {src}");
    println!("class:  {class}");
    match class {
        QueryClass::Unsafe => {
            println!("plan:   none (provably #P-hard; the engine samples)");
        }
        _ => match compile_safe_plan(db.catalog(), &nq) {
            Ok(plan) => {
                println!("plan:");
                for line in plan.display(db.interner()).lines() {
                    println!("  {line}");
                }
            }
            Err(e) => println!("plan:   {e}"),
        },
    }
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let (db, src) = manifest_db(args)?;
    let compiled =
        Lahar::compile_with(&db, src.as_str(), CompileOptions::new()).map_err(|e| e.to_string())?;
    let algorithm = compiled.algorithm();
    let series = compiled
        .prob_series(db.horizon())
        .map_err(|e| e.to_string())?;
    eprintln!("algorithm: {algorithm}");
    println!("t,probability");
    for (t, p) in series.iter().enumerate() {
        println!("{t},{p:.6}");
    }
    Ok(())
}

/// Replays a saved deployment through a [`RealTimeSession`] tick by
/// tick — the observability showcase: `--metrics-addr` serves live
/// Prometheus metrics while the replay runs, `--metrics-out` dumps the
/// final scrape to a file, and `--trace-out` records every tick's spans
/// as a Chrome Trace Event file.
fn cmd_replay(args: &[String]) -> Result<(), String> {
    let (flags, positional) = parse_flags(args)?;
    let dir = PathBuf::from(
        flags
            .get("manifest")
            .ok_or("replay requires --manifest DIR".to_owned())?,
    );
    let src = positional
        .first()
        .ok_or("replay requires a query argument".to_owned())?;
    let threshold: f64 = match flags.get("threshold") {
        None => 0.5,
        Some(v) => v
            .parse()
            .map_err(|_| format!("--threshold expects a probability, got {v:?}"))?,
    };
    let mut builder = SessionConfig::builder();
    if let Some(addr) = flags.get("metrics-addr") {
        builder = builder.metrics_addr(
            addr.parse()
                .map_err(|_| format!("--metrics-addr expects IP:PORT, got {addr:?}"))?,
        );
    }
    if flags.contains_key("trace-out") {
        builder = builder.trace(true);
    }
    // `--epoch N` feeds the session N ticks per call; the session joins
    // its worker pool once per epoch instead of once per tick.
    let epoch = get_usize(&flags, "epoch", 1)?.max(1);
    builder = builder.max_epoch_ticks(epoch);
    let config = builder.build().map_err(|e| e.to_string())?;

    let full = load_database_impl(&dir, true)?;
    let session_db = load_database_impl(&dir, false)?;
    let mut session =
        RealTimeSession::with_config(session_db, config).map_err(|e| e.to_string())?;
    if let Some(addr) = session.metrics_addr() {
        eprintln!("metrics: http://{addr}/metrics (healthz, trace)");
    }
    session.register("replay", src).map_err(|e| e.to_string())?;

    println!("t,probability");
    let mut t = 0;
    while t < full.horizon() {
        let batch_end = (t + epoch as u32).min(full.horizon());
        let mut batch = Vec::with_capacity((batch_end - t) as usize);
        for bt in t..batch_end {
            let mut staged = Vec::with_capacity(full.streams().len());
            for si in 0..full.streams().len() {
                let id = session
                    .database()
                    .stream_id_at(si)
                    .ok_or_else(|| format!("stream {si} missing from session database"))?;
                staged.push((id, full.streams()[si].marginal_at(bt)));
            }
            batch.push(staged);
        }
        t = batch_end;
        for alert in session.tick_epoch(batch).map_err(|e| e.to_string())? {
            println!("{},{:.6}", alert.t, alert.probability);
            if alert.probability >= threshold {
                eprintln!(
                    "ALERT t={} {} p={:.4}",
                    alert.t, alert.name, alert.probability
                );
            }
        }
    }

    let snap = session.stats().snapshot();
    if let Some(path) = flags.get("metrics-out") {
        lahar::core::expose::write_prometheus(path, &snap)
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote Prometheus dump to {path}");
    }
    if let Some(path) = flags.get("trace-out") {
        lahar::core::trace::write_chrome_trace(path).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote Chrome trace to {path}");
    }
    eprintln!("{}", snap.to_json());
    Ok(())
}

/// Hosts the manifest's schema as a multi-session network service:
/// clients create named sessions, stream marginals, and read series over
/// the newline-delimited JSON protocol (see PROTOCOL.md). Blocks until a
/// client sends `shutdown`; every hosted session is checkpointed into
/// `--checkpoint-dir` on the way down and restored on the next start.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args)?;
    let dir = PathBuf::from(
        flags
            .get("manifest")
            .ok_or("serve requires --manifest DIR".to_owned())?,
    );
    let template = load_database_impl(&dir, false)?;
    let mut builder = ServerConfig::builder();
    if let Some(addr) = flags.get("addr") {
        builder = builder.addr(parse_addr("addr", addr)?);
    }
    if let Some(addr) = flags.get("metrics-addr") {
        builder = builder.metrics_addr(parse_addr("metrics-addr", addr)?);
    }
    if flags.contains_key("shards") {
        builder = builder.n_shards(get_usize(&flags, "shards", 0)?);
    }
    if flags.contains_key("queue-cap") {
        builder = builder.queue_cap(get_usize(&flags, "queue-cap", 0)?);
    }
    if flags.contains_key("max-sessions") {
        builder = builder.max_sessions(get_usize(&flags, "max-sessions", 0)?);
    }
    if let Some(d) = flags.get("checkpoint-dir") {
        builder = builder.checkpoint_dir(d);
    }
    if flags.contains_key("durability") || flags.contains_key("checkpoint-interval") {
        let mut session = SessionConfig::builder();
        if let Some(level) = flags.get("durability") {
            session =
                session.durability(Durability::parse(level).ok_or_else(|| {
                    format!("--durability expects none|batch|always, got {level:?}")
                })?);
        }
        if flags.contains_key("checkpoint-interval") {
            let interval = get_usize(&flags, "checkpoint-interval", 0)?;
            if interval == 0 {
                return Err(
                    "--checkpoint-interval must be non-zero (omit it to disable)".to_owned(),
                );
            }
            session = session.checkpoint_interval(interval);
        }
        builder = builder.session_config(session.build().map_err(|e| e.to_string())?);
    }
    if flags.contains_key("slow-request-ms") {
        builder = builder.slow_request_ms(get_usize(&flags, "slow-request-ms", 0)? as u64);
    }
    if let Some(path) = flags.get("slow-log") {
        builder = builder.slow_log(path);
    }
    if flags.contains_key("evict-after-ms") {
        let ms = get_usize(&flags, "evict-after-ms", 0)?;
        builder = builder.evict_after(std::time::Duration::from_millis(ms as u64));
    }
    let config = builder.build().map_err(|e| e.to_string())?;
    // `--trace-out` implies tracing; `--trace` alone streams spans into
    // the rings for the live `/trace` endpoint on --metrics-addr.
    if flags.contains_key("trace") || flags.contains_key("trace-out") {
        lahar::core::trace::enable();
    }
    let server = LaharServer::start(config, template).map_err(|e| e.to_string())?;
    eprintln!("serving on {}", server.addr());
    if let Some(maddr) = server.metrics_addr() {
        eprintln!("metrics: http://{maddr}/metrics");
    }
    let result = server.join().map_err(|e| e.to_string());
    if let Some(path) = flags.get("trace-out") {
        lahar::core::trace::write_chrome_trace(path).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote Chrome trace to {path}");
    }
    result
}

/// One wire frame per tick: every stream's marginal at `t`, addressed by
/// stream type and key strings.
fn wire_tick(db: &Database, t: u32) -> Result<Vec<WireMarginal>, String> {
    let interner = db.interner();
    db.streams()
        .iter()
        .map(|stream| {
            let id = stream.id();
            let stream_type = interner
                .resolve(id.stream_type)
                .ok_or("unresolvable stream type symbol")?;
            let key = id
                .key
                .iter()
                .map(|v| match v {
                    Value::Str(s) => interner
                        .resolve(*s)
                        .ok_or_else(|| "unresolvable key symbol".to_owned()),
                    other => Err(format!("non-string stream key {other:?} cannot be sent")),
                })
                .collect::<Result<Vec<String>, String>>()?;
            Ok(WireMarginal {
                stream_type,
                key,
                probs: stream.marginal_at(t).probs().to_vec(),
            })
        })
        .collect()
}

/// Streams the manifest's recorded marginals into a served session tick
/// by tick, then prints the server-computed series as CSV. The client
/// carries a [`RetryPolicy`], so `overloaded` responses (and a server
/// that is still binding its port) are retried with jittered
/// exponential backoff — the client side of the server's backpressure
/// contract.
fn cmd_ingest(args: &[String]) -> Result<(), String> {
    let (flags, positional) = parse_flags(args)?;
    let dir = PathBuf::from(
        flags
            .get("manifest")
            .ok_or("ingest requires --manifest DIR".to_owned())?,
    );
    let addr = parse_addr(
        "addr",
        flags.get("addr").ok_or("ingest requires --addr IP:PORT")?,
    )?;
    let src = positional
        .first()
        .ok_or("ingest requires a query argument".to_owned())?;
    let session = flags.get("session").map_or("default", String::as_str);
    let db = load_database_impl(&dir, true)?;
    let ticks = match flags.get("ticks") {
        None => db.horizon(),
        Some(_) => get_usize(&flags, "ticks", 0)?.min(db.horizon() as usize) as u32,
    };

    // A CLI ingest would rather wait out a saturated shard (or a server
    // that is still starting) than die mid-stream: give the default
    // policy extra patience.
    let policy = RetryPolicy {
        max_retries: 24,
        ..RetryPolicy::default()
    };
    let mut client =
        LaharClient::connect_with_retry(addr, session, policy).map_err(|e| e.to_string())?;
    let (t0, restored) = client.open().map_err(|e| e.to_string())?;
    eprintln!(
        "session '{session}' at t={t0}{}",
        if restored { " (restored)" } else { "" }
    );
    let query_name = "q";
    match client.register(query_name, src) {
        Ok(_) => {}
        // Re-running against a restored session: the query is already there.
        Err(EngineError::Remote {
            code: WireCode::BadRequest,
            message,
        }) => {
            eprintln!("note: {message}");
        }
        Err(e) => return Err(e.to_string()),
    }

    // `--epoch N` ships N ticks per frame; the server closes them as
    // batched epochs (one worker-pool join per epoch).
    let epoch = get_usize(&flags, "epoch", 1)?.max(1) as u32;
    // Resume where the session already is (t0 > 0 after a restore), so
    // re-running the same ingest never double-stages a tick.
    let mut t = t0;
    while t < ticks {
        let batch_end = (t + epoch).min(ticks);
        // Backpressure (`overloaded`) is handled inside the client by
        // its retry policy; an error surfacing here is terminal.
        if epoch == 1 {
            let frame = wire_tick(&db, t)?;
            client.stage_tick(&frame).map_err(|e| e.to_string())?;
        } else {
            let frames = (t..batch_end)
                .map(|bt| wire_tick(&db, bt))
                .collect::<Result<Vec<_>, String>>()?;
            client.stage_epoch(&frames).map_err(|e| e.to_string())?;
        }
        t = batch_end;
    }

    let series = client.series(query_name).map_err(|e| e.to_string())?;
    println!("t,probability");
    for (t, p) in series.iter().enumerate() {
        println!("{t},{p:.6}");
    }

    if let Some(url) = flags.get("scrape") {
        let body = http_get(url)?;
        let interesting: Vec<&str> = body
            .lines()
            .filter(|l| l.starts_with("lahar_") && l.contains("session="))
            .take(20)
            .collect();
        eprintln!("--- scraped {url} ({} bytes) ---", body.len());
        for line in interesting {
            eprintln!("{line}");
        }
    }
    if flags.contains_key("shutdown") {
        client.shutdown_server().map_err(|e| e.to_string())?;
        eprintln!("server shutting down");
    }
    Ok(())
}

/// A latency percentile over a sorted sample, in milliseconds.
fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64 / 1e6
}

/// First sample value of a Prometheus gauge/counter in `body`, by exact
/// metric name (labels, if any, are not matched).
fn scrape_metric(body: &str, name: &str) -> Option<f64> {
    body.lines().find_map(|l| {
        let rest = l.strip_prefix(name)?;
        let rest = rest.trim_start();
        if rest.is_empty() || l.starts_with('#') {
            return None;
        }
        rest.split_whitespace().next()?.parse().ok()
    })
}

/// What one bench connection reports back: ticks acknowledged,
/// `overloaded` responses absorbed, and per-request latencies.
struct ConnReport {
    acked: u64,
    overloaded: u64,
    latencies_ns: Vec<u64>,
}

/// One bench connection: open the shared session, then drive `ticks`
/// `stage_tick` round trips, counting `overloaded` pushback explicitly
/// (no [`RetryPolicy`] — the bench *is* the backpressure accountant)
/// and retrying the same tick with bounded exponential backoff, so an
/// acknowledged tick count is exact: nothing is silently dropped.
fn bench_connection(
    addr: SocketAddr,
    session: &str,
    ticks: usize,
    frames: &[Vec<WireMarginal>],
) -> Result<ConnReport, String> {
    // A 512-way connect storm can outrun the listen backlog; retry the
    // connect itself a few times before declaring the server gone.
    let mut client = {
        let mut attempt = 0u32;
        loop {
            match LaharClient::connect(addr, session) {
                Ok(c) => break c,
                Err(_) if attempt < 8 => {
                    std::thread::sleep(std::time::Duration::from_millis(25 << attempt.min(4)));
                    attempt += 1;
                }
                Err(e) => return Err(format!("connect {addr}: {e}")),
            }
        }
    };
    let mut report = ConnReport {
        acked: 0,
        overloaded: 0,
        latencies_ns: Vec::with_capacity(ticks),
    };
    // `open` rides the same shard queues as everything else, so a
    // connect storm can see `overloaded` before the first tick.
    let mut backoff = 0u32;
    loop {
        match client.open() {
            Ok(_) => break,
            Err(EngineError::Remote {
                code: WireCode::Overloaded,
                ..
            }) => {
                report.overloaded += 1;
                std::thread::sleep(std::time::Duration::from_millis(1 << backoff.min(6)));
                backoff += 1;
            }
            Err(e) => return Err(format!("open: {e}")),
        }
    }
    for k in 0..ticks {
        let frame = &frames[k % frames.len()];
        let mut backoff = 0u32;
        loop {
            let start = std::time::Instant::now();
            match client.stage_tick(frame) {
                Ok(_) => {
                    report.latencies_ns.push(start.elapsed().as_nanos() as u64);
                    report.acked += 1;
                    break;
                }
                Err(EngineError::Remote {
                    code: WireCode::Overloaded,
                    ..
                }) => {
                    report.overloaded += 1;
                    std::thread::sleep(std::time::Duration::from_millis(1 << backoff.min(6)));
                    backoff += 1;
                }
                Err(e) => return Err(format!("stage_tick: {e}")),
            }
        }
    }
    Ok(report)
}

/// Load generator for the serve path: `--connections` concurrent
/// clients round-robin over `--sessions` hosted sessions, each driving
/// `--ticks` `stage_tick` round trips as fast as the server
/// acknowledges them. Reports overload pushback and latency
/// percentiles per arm, asserts **zero silent drops** (every session's
/// final clock equals the ticks its clients got acknowledged), and —
/// when self-hosting with `--evict-after-ms` — asserts cold-session
/// tiering converges (`resident` drains to 0 while the registry still
/// holds every session). Results land in `--out` (default
/// `BENCH_serve.json`).
///
/// Without `--addr` the bench self-hosts an in-process [`LaharServer`]
/// per arm from `--manifest`'s schema; with `--addr` it drives an
/// external server (tiering assertions are skipped — no metrics
/// endpoint is assumed).
fn cmd_bench_ingest(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args)?;
    let dir = PathBuf::from(
        flags
            .get("manifest")
            .ok_or("bench-ingest requires --manifest DIR".to_owned())?,
    );
    let quick = flags.contains_key("quick");
    let sessions = get_usize(&flags, "sessions", 8)?.max(1);
    let ticks = get_usize(&flags, "ticks", if quick { 8 } else { 16 })?.max(1);
    let out = flags
        .get("out")
        .map_or_else(|| "BENCH_serve.json".to_owned(), String::clone);
    let external = match flags.get("addr") {
        Some(addr) => Some(parse_addr("addr", addr)?),
        None => None,
    };
    let evict_after_ms = if flags.contains_key("evict-after-ms") {
        Some(get_usize(&flags, "evict-after-ms", 0)? as u64)
    } else {
        None
    };
    let arms: Vec<usize> = match flags.get("connections") {
        Some(_) => vec![get_usize(&flags, "connections", 0)?.max(1)],
        None if quick => vec![256],
        None => vec![64, 256, 512],
    };

    // Wire frames are the same for every connection: precompute a small
    // window of the manifest's recorded marginals and cycle through it.
    let full = load_database_impl(&dir, true)?;
    if full.horizon() == 0 {
        return Err("bench-ingest needs a manifest with recorded ticks".to_owned());
    }
    let window = full.horizon().min(64);
    let frames: std::sync::Arc<Vec<Vec<WireMarginal>>> = std::sync::Arc::new(
        (0..window)
            .map(|t| wire_tick(&full, t))
            .collect::<Result<_, _>>()?,
    );

    let mut arm_reports: Vec<String> = Vec::new();
    let mut tiering_report: Option<String> = None;

    for (arm_idx, &connections) in arms.iter().enumerate() {
        // Self-hosted servers are per-arm so arms never share clocks;
        // sessions are arm-scoped either way for the same reason.
        let hosted = match external {
            Some(_) => None,
            None => {
                let ckpt = std::env::temp_dir().join(format!(
                    "lahar-bench-ingest-{}-{arm_idx}",
                    std::process::id()
                ));
                let _ = fs::remove_dir_all(&ckpt);
                fs::create_dir_all(&ckpt)
                    .map_err(|e| format!("creating {}: {e}", ckpt.display()))?;
                let mut builder = ServerConfig::builder()
                    .metrics_addr(parse_addr("metrics-addr", "127.0.0.1:0")?)
                    .n_shards(get_usize(&flags, "shards", 0)?)
                    .checkpoint_dir(&ckpt);
                if flags.contains_key("queue-cap") {
                    builder = builder.queue_cap(get_usize(&flags, "queue-cap", 0)?);
                }
                if let Some(ms) = evict_after_ms {
                    builder = builder.evict_after(std::time::Duration::from_millis(ms));
                }
                let config = builder.build().map_err(|e| e.to_string())?;
                let template = load_database_impl(&dir, false)?;
                let server = LaharServer::start(config, template).map_err(|e| e.to_string())?;
                Some((server, ckpt))
            }
        };
        let addr = match (&hosted, external) {
            (Some((server, _)), _) => server.addr(),
            (None, Some(addr)) => addr,
            (None, None) => unreachable!(),
        };

        eprintln!(
            "arm {arm_idx}: {connections} connections x {sessions} sessions x {ticks} ticks \
             against {addr} ..."
        );
        let started = std::time::Instant::now();
        let handles: Vec<_> = (0..connections)
            .map(|i| {
                let frames = std::sync::Arc::clone(&frames);
                let session = format!("bench-a{arm_idx}-{}", i % sessions);
                std::thread::spawn(move || bench_connection(addr, &session, ticks, &frames))
            })
            .collect();
        let mut latencies: Vec<u64> = Vec::with_capacity(connections * ticks);
        let mut acked = 0u64;
        let mut overloaded = 0u64;
        for h in handles {
            let report = h
                .join()
                .map_err(|_| "bench connection panicked".to_owned())??;
            acked += report.acked;
            overloaded += report.overloaded;
            latencies.extend(report.latencies_ns);
        }
        let elapsed = started.elapsed().as_secs_f64();
        latencies.sort_unstable();

        // Zero-silent-drop: every acknowledged tick must be visible in
        // its session's clock. Connections sharing a session interleave,
        // but `stage_tick` is one atomic command, so the clocks add up
        // exactly — `open` (idempotent) reads them back.
        let expected_total = (connections * ticks) as u64;
        if acked != expected_total {
            return Err(format!(
                "arm {arm_idx}: acked {acked} != offered {expected_total}"
            ));
        }
        for s in 0..sessions {
            let conns_here = (connections + sessions - 1 - s) / sessions;
            if conns_here == 0 {
                continue;
            }
            let want = (conns_here * ticks) as u32;
            let mut client = LaharClient::connect(addr, &format!("bench-a{arm_idx}-{s}"))
                .map_err(|e| e.to_string())?;
            let (t, _) = client.open().map_err(|e| e.to_string())?;
            if t != want {
                return Err(format!(
                    "silent drop: session bench-a{arm_idx}-{s} clock {t} != acked {want}"
                ));
            }
        }
        eprintln!(
            "arm {arm_idx}: {acked} acks in {elapsed:.2}s ({:.0} acks/s), \
             {overloaded} overloaded retries, p99 {:.2}ms — zero silent drops",
            acked as f64 / elapsed,
            percentile_ms(&latencies, 0.99),
        );
        arm_reports.push(format!(
            "    {{\"connections\": {connections}, \"sessions\": {sessions}, \
             \"ticks_per_conn\": {ticks}, \"total_acks\": {acked}, \
             \"overloaded_retries\": {overloaded}, \"elapsed_s\": {elapsed:.3}, \
             \"acks_per_s\": {:.1}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"zero_silent_drop\": true}}",
            acked as f64 / elapsed,
            percentile_ms(&latencies, 0.50),
            percentile_ms(&latencies, 0.95),
            percentile_ms(&latencies, 0.99),
        ));

        // Tiering: with eviction armed, an idle server must drain every
        // hosted session out of memory while the registry (and thus the
        // `lahar_server_sessions` total) keeps them addressable.
        if let Some((server, _)) = &hosted {
            if let (Some(ms), Some(maddr)) = (evict_after_ms, server.metrics_addr()) {
                let url = format!("http://{maddr}/metrics");
                let deadline =
                    std::time::Instant::now() + std::time::Duration::from_millis(ms * 20 + 15_000);
                let (resident, total) = loop {
                    let body = http_get(&url)?;
                    let resident =
                        scrape_metric(&body, "lahar_server_sessions_resident").unwrap_or(f64::NAN);
                    let total = scrape_metric(&body, "lahar_server_sessions ").unwrap_or(f64::NAN);
                    if resident == 0.0 || std::time::Instant::now() >= deadline {
                        break (resident, total);
                    }
                    std::thread::sleep(std::time::Duration::from_millis(50));
                };
                let body = http_get(&url)?;
                let evicted =
                    scrape_metric(&body, "lahar_server_sessions_evicted").unwrap_or(f64::NAN);
                let evictions =
                    scrape_metric(&body, "lahar_server_evictions_total").unwrap_or(f64::NAN);
                let restores =
                    scrape_metric(&body, "lahar_server_restores_total").unwrap_or(f64::NAN);
                if resident.is_nan() || resident > sessions as f64 {
                    return Err(format!(
                        "tiering: resident {resident} exceeds active sessions {sessions}"
                    ));
                }
                if resident != 0.0 {
                    return Err(format!(
                        "tiering: {resident} sessions still resident after idling past \
                         evict_after={ms}ms"
                    ));
                }
                eprintln!(
                    "arm {arm_idx}: tiering converged — resident {resident}, evicted {evicted}, \
                     total {total}, {evictions} evictions / {restores} restores"
                );
                tiering_report = Some(format!(
                    "  \"tiering\": {{\"evict_after_ms\": {ms}, \"resident_after_idle\": {resident}, \
                     \"evicted_after_idle\": {evicted}, \"sessions_total\": {total}, \
                     \"evictions_total\": {evictions}, \"restores_total\": {restores}}},"
                ));
            }
        }

        if let Some((server, ckpt)) = hosted {
            server.shutdown().map_err(|e| e.to_string())?;
            let _ = fs::remove_dir_all(&ckpt);
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"serve_ingest\",\n  \"quick\": {quick},\n{}\n  \"arms\": [\n{}\n  ]\n}}\n",
        tiering_report.unwrap_or_default(),
        arm_reports.join(",\n"),
    );
    fs::write(&out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!("wrote {out}");
    Ok(())
}

/// Drives one of every wire command against a live server — the
/// observability smoke: after a probe, `/metrics` has a
/// `lahar_server_request_duration_seconds` histogram and a
/// `lahar_server_requests_total` counter for each command, and a
/// traced server has spans for the whole request path. Prints one
/// `probe <command>: ...` line per command.
fn cmd_probe(args: &[String]) -> Result<(), String> {
    let (flags, positional) = parse_flags(args)?;
    let dir = PathBuf::from(
        flags
            .get("manifest")
            .ok_or("probe requires --manifest DIR".to_owned())?,
    );
    let addr = parse_addr(
        "addr",
        flags.get("addr").ok_or("probe requires --addr IP:PORT")?,
    )?;
    let src = positional
        .first()
        .ok_or("probe requires a query argument".to_owned())?;
    let session = flags.get("session").map_or("probe", String::as_str);
    let db = load_database_impl(&dir, true)?;
    if db.horizon() < 3 {
        return Err("probe needs a manifest with at least 3 recorded ticks".to_owned());
    }

    let mut client = LaharClient::connect_with_retry(
        addr,
        session,
        RetryPolicy {
            max_retries: 24,
            ..RetryPolicy::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let t = client.ping().map_err(|e| e.to_string())?;
    println!("probe ping: t={t}");
    let (t0, restored) = client.open().map_err(|e| e.to_string())?;
    println!("probe open: t={t0} restored={restored}");
    match client.register("q", src) {
        Ok(n) => println!("probe register: {n} chains"),
        Err(EngineError::Remote {
            code: WireCode::BadRequest,
            message,
        }) => {
            println!("probe register: already registered ({message})");
        }
        Err(e) => return Err(e.to_string()),
    }
    let staged = client
        .stage(&wire_tick(&db, t0)?)
        .map_err(|e| e.to_string())?;
    println!("probe stage: {staged} streams");
    let alerts = client.tick().map_err(|e| e.to_string())?;
    println!("probe tick: {} alerts", alerts.len());
    let frames = vec![wire_tick(&db, t0 + 1)?, wire_tick(&db, t0 + 2)?];
    let alerts = client.stage_epoch(&frames).map_err(|e| e.to_string())?;
    println!("probe stage_ticks: {} alerts", alerts.len());
    let series = client.series("q").map_err(|e| e.to_string())?;
    println!("probe series: {} points", series.len());
    match client.checkpoint() {
        Ok(t) => println!("probe checkpoint: t={t}"),
        // Servers without --checkpoint-dir reject the command; the
        // request still lands in the per-command metrics, which is all
        // the probe needs.
        Err(EngineError::Remote { code, .. }) => println!("probe checkpoint: rejected ({code})"),
        Err(e) => return Err(e.to_string()),
    }
    if flags.contains_key("shutdown") {
        client.shutdown_server().map_err(|e| e.to_string())?;
        println!("probe shutdown: ok");
    }
    println!("probe last request id: {}", client.last_id());
    Ok(())
}

fn parse_addr(flag: &str, value: &str) -> Result<SocketAddr, String> {
    value
        .parse()
        .map_err(|_| format!("--{flag} expects IP:PORT, got {value:?}"))
}

/// Minimal HTTP/1.0 GET (no external tooling needed in CI smoke tests).
fn http_get(url: &str) -> Result<String, String> {
    use std::io::{Read as _, Write as _};
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("--scrape expects an http:// URL, got {url:?}"))?;
    let (host, path) = rest.split_once('/').unwrap_or((rest, ""));
    let mut stream = std::net::TcpStream::connect(host).map_err(|e| format!("{host}: {e}"))?;
    write!(stream, "GET /{path} HTTP/1.0\r\nHost: {host}\r\n\r\n").map_err(|e| e.to_string())?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| e.to_string())?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or(&response);
    Ok(body.to_owned())
}

fn cmd_demo() -> Result<(), String> {
    let dir = std::env::temp_dir().join("lahar-demo");
    let _ = fs::remove_dir_all(&dir);
    cmd_simulate(&[
        "--out".to_owned(),
        dir.display().to_string(),
        "--ticks".to_owned(),
        "120".to_owned(),
        "--people".to_owned(),
        "2".to_owned(),
    ])?;
    println!("\n--- classify ---");
    cmd_classify(&[
        "--manifest".to_owned(),
        dir.display().to_string(),
        "At('person0', l1)[NotRoom(l1)] ; At('person0', l2)[CoffeeRoom(l2)]".to_owned(),
    ])?;
    println!("\n--- query (first 10 rows) ---");
    let (db, src) = manifest_db(&[
        "--manifest".to_owned(),
        dir.display().to_string(),
        "At(p, l1)[NotRoom(l1)] ; At(p, l2)[CoffeeRoom(l2)]".to_owned(),
    ])?;
    let series = Lahar::prob_series(&db, &src).map_err(|e| e.to_string())?;
    for (t, p) in series.iter().take(10).enumerate() {
        println!("t={t}: {p:.4}");
    }
    println!("...\ndemo data left in {}", dir.display());
    Ok(())
}
