//! # Lahar — event queries on correlated probabilistic streams
//!
//! A faithful, from-scratch Rust implementation of the Lahar system from
//! *Event Queries on Correlated Probabilistic Streams* (Ré, Letchner,
//! Balazinska, Suciu — SIGMOD 2008): a complex-event-processing engine
//! whose inputs are **probabilistic** event streams (per-timestep
//! distributions over event values, optionally with Markovian correlations
//! encoded as conditional probability tables) and whose answers are
//! probabilities `μ(q@t)` over possible worlds.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`model`] — the probabilistic event data model and possible-world
//!   semantics;
//! * [`query`] — the Cayuga-subset query language, denotational semantics,
//!   static analysis (Regular / Extended Regular / Safe / Unsafe), and the
//!   Algorithm-1 safe-plan compiler;
//! * [`automata`] — symbolic regexes and NFAs over set-predicate alphabets;
//! * [`core`] — the evaluators: streaming Markov chains, per-key chains,
//!   the safe-plan interval algebra, and the bitvector Monte Carlo sampler;
//! * [`hmm`] — HMM inference: filtering, smoothing (with CPT extraction),
//!   Viterbi, and particle filtering;
//! * [`rfid`] — the synthetic building-wide RFID deployment that stands in
//!   for the paper's UW RFID Ecosystem traces;
//! * [`baselines`] — the MLE and MAP (Viterbi) deterministic competitors;
//! * [`metrics`] — skew-tolerant precision/recall/F1.
//!
//! Start with [`core::Lahar`] and the `examples/` directory.

pub use lahar_automata as automata;
pub use lahar_baselines as baselines;
pub use lahar_core as core;
pub use lahar_hmm as hmm;
pub use lahar_metrics as metrics;
pub use lahar_model as model;
pub use lahar_query as query;
pub use lahar_rfid as rfid;

pub use lahar_core::{
    Alert, Algorithm, Checkpoint, CompileOptions, CompiledQuery, Durability, EngineError,
    EngineStats, Lahar, LaharClient, LaharServer, LatencySnapshot, MetricsServer, QueryId,
    QuerySnapshot, QuerySource, RealTimeSession, RetryPolicy, ServerConfig, ServerConfigBuilder,
    SessionConfig, SessionConfigBuilder, StatsSnapshot, TickMode, WireCode, CHECKPOINT_VERSION,
};
pub use lahar_model::{Database, StreamBuilder, StreamId, StreamKey};
pub use lahar_query::QueryClass;
