//! Quickstart: hand-built probabilistic streams and the four query classes.
//!
//! Builds the scenario from the paper's Fig 1/Fig 3 — Joe walking past
//! hallway antennas with uncertain readings — directly as probabilistic
//! streams, then runs one query from each class and prints the probability
//! series.
//!
//! Run with: `cargo run --release --example quickstart`

use lahar::core::{CompileOptions, Lahar};
use lahar::model::{Database, StreamBuilder};

fn main() {
    let mut db = Database::new();
    db.declare_stream("At", &["person"], &["loc"]).unwrap();
    db.declare_relation("Hallway", 1).unwrap();
    db.declare_relation("CoffeeRoom", 1).unwrap();
    let interner = db.interner().clone();
    for h in ["H1", "H2", "H3"] {
        db.insert_relation_tuple("Hallway", lahar::model::tuple([interner.intern(h)]))
            .unwrap();
    }
    db.insert_relation_tuple(
        "CoffeeRoom",
        lahar::model::tuple([interner.intern("Coffee")]),
    )
    .unwrap();

    let locations = ["O2", "H1", "H2", "H3", "Coffee"];

    // Joe: a Markovian (smoothed/archived) stream. At t = 0 he is read in
    // H1; afterwards the antennas miss him and the smoother spreads mass
    // between "went into his office O2" and "continued down the hall".
    let b = StreamBuilder::new(&interner, "At", &["Joe"], &locations);
    let initial = b.marginal(&[("H1", 1.0)]).unwrap();
    let step = b
        .cpt(&[
            ("H1", "H1", 0.2),
            ("H1", "O2", 0.4),
            ("H1", "H2", 0.4),
            ("O2", "O2", 0.8),
            ("O2", "H2", 0.2),
            ("H2", "H2", 0.2),
            ("H2", "H3", 0.6),
            ("H2", "O2", 0.2),
            ("H3", "H3", 0.3),
            ("H3", "Coffee", 0.7),
            ("Coffee", "Coffee", 0.9),
            ("Coffee", "H3", 0.1),
        ])
        .unwrap();
    let joe = b.markov(initial, vec![step.clone(); 7]).unwrap();
    db.add_stream(joe).unwrap();

    // Sue: an independent (real-time/filtered) stream.
    let b = StreamBuilder::new(&interner, "At", &["Sue"], &locations);
    let sue = b
        .clone()
        .independent(vec![
            b.marginal(&[("H3", 0.7), ("H2", 0.2)]).unwrap(),
            b.marginal(&[("H3", 0.4), ("Coffee", 0.5)]).unwrap(),
            b.marginal(&[("Coffee", 0.8)]).unwrap(),
            b.marginal(&[("Coffee", 0.6), ("H3", 0.3)]).unwrap(),
            b.marginal(&[("H3", 0.5), ("H2", 0.3)]).unwrap(),
            b.marginal(&[("H2", 0.6)]).unwrap(),
            b.marginal(&[("H1", 0.5), ("H2", 0.3)]).unwrap(),
            b.marginal(&[("H1", 0.7)]).unwrap(),
        ])
        .unwrap();
    db.add_stream(sue).unwrap();

    let queries = [
        // Regular: constants only.
        ("Did Joe reach the coffee room?", "At('Joe', 'Coffee')"),
        // Regular with Kleene plus: hallways all the way.
        (
            "Joe walked H1 -> hallways -> coffee",
            "At('Joe','H1') ; (At('Joe', l))+{| Hallway(l)} ; At('Joe','Coffee')",
        ),
        // Extended regular: anyone, per-person join.
        (
            "Anyone went from a hallway to the coffee room",
            "sigma[CoffeeRoom(c)](At(p, 'H3') ; At(p, c))",
        ),
        // Unsafe: a non-local predicate — handled by the sampler.
        (
            "Two *different* people in H2 then Coffee",
            "sigma[NOT x = y](At(x, 'H2') ; At(y, 'Coffee'))",
        ),
    ];

    for (label, src) in queries {
        let class = Lahar::classify(&db, src).unwrap();
        let compiled = Lahar::compile_with(&db, src, CompileOptions::new()).unwrap();
        let algo = compiled.algorithm();
        let series = compiled.prob_series(db.horizon()).unwrap();
        println!("{label}\n  query: {src}\n  class: {class}   algorithm: {algo}");
        print!("  μ(q@t):");
        for p in &series {
            print!(" {p:.3}");
        }
        println!("\n");
    }
}
