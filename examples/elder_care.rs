//! Elder-care activity monitoring — the paper's second motivating domain
//! (§1.1): infer an elder's activities from noisy ambient sensors, then
//! let caregivers ask event queries over the probabilistic activity
//! stream: *did she take her medicine today? did she brush her teeth
//! before going to bed?*
//!
//! Run with: `cargo run --release --example elder_care`

use lahar::core::Lahar;
use lahar::hmm::Hmm;
use lahar::model::{Database, StreamBuilder};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const ACTIVITIES: [&str; 6] = ["sleeping", "cooking", "eating", "medicine", "teeth", "tv"];

/// Sensor alphabet: bed pressure, kitchen motion, bathroom motion,
/// living-room motion, and silence.
const SENSORS: usize = 5;

fn activity_hmm() -> Hmm {
    let n = ACTIVITIES.len();
    // Hand-written daily-routine transition structure.
    let mut trans = vec![0.0; n * n];
    let set = |t: &mut Vec<f64>, from: usize, pairs: &[(usize, f64)]| {
        for &(to, p) in pairs {
            t[from * n + to] = p;
        }
    };
    // sleeping -> sleeping / cooking
    set(&mut trans, 0, &[(0, 0.85), (1, 0.15)]);
    // cooking -> cooking / eating
    set(&mut trans, 1, &[(1, 0.6), (2, 0.4)]);
    // eating -> eating / medicine / tv
    set(&mut trans, 2, &[(2, 0.55), (3, 0.25), (5, 0.2)]);
    // medicine -> tv / teeth
    set(&mut trans, 3, &[(3, 0.3), (5, 0.45), (4, 0.25)]);
    // teeth -> sleeping / tv
    set(&mut trans, 4, &[(4, 0.3), (0, 0.55), (5, 0.15)]);
    // tv -> tv / teeth / cooking
    set(&mut trans, 5, &[(5, 0.7), (4, 0.15), (1, 0.15)]);

    // Emissions: sensors are noisy and overlap (medicine and teeth both
    // fire the bathroom sensor — the ambiguity queries must cope with).
    #[rustfmt::skip]
    let emit = vec![
        // bed   kitchen bath  living silence
        0.70, 0.02, 0.03, 0.05, 0.20, // sleeping
        0.02, 0.60, 0.03, 0.10, 0.25, // cooking
        0.02, 0.45, 0.03, 0.25, 0.25, // eating
        0.02, 0.05, 0.55, 0.08, 0.30, // medicine
        0.02, 0.03, 0.60, 0.05, 0.30, // teeth
        0.03, 0.04, 0.04, 0.59, 0.30, // tv
    ];
    let initial = vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0]; // day starts asleep
    Hmm::new(initial, trans, emit, SENSORS).expect("valid model")
}

fn main() {
    let hmm = activity_hmm();
    let mut rng = SmallRng::seed_from_u64(2024);
    let (truth, obs) = hmm.sample(120, &mut rng);

    // Archived scenario: smooth the whole day and keep the correlations.
    let smoothed = hmm.smooth(&obs).unwrap();

    let mut db = Database::new();
    db.declare_stream("Doing", &["person"], &["activity"])
        .unwrap();
    let i = db.interner().clone();
    let b = StreamBuilder::new(&i, "Doing", &["grandma"], &ACTIVITIES);
    let to_marginal = |probs: &Vec<f64>| {
        let pairs: Vec<(&str, f64)> = ACTIVITIES
            .iter()
            .copied()
            .zip(probs.iter().copied())
            .collect();
        b.marginal(&pairs).unwrap()
    };
    let initial = to_marginal(&smoothed.marginals[0]);
    let n = ACTIVITIES.len();
    let cpts = smoothed
        .cpts
        .iter()
        .map(|c| {
            let mut triples = Vec::new();
            for from in 0..n {
                for to in 0..n {
                    let p = c[from * n + to];
                    if p > 0.0 {
                        triples.push((ACTIVITIES[from], ACTIVITIES[to], p));
                    }
                }
            }
            b.cpt(&triples).unwrap()
        })
        .collect();
    db.add_stream(b.clone().markov(initial, cpts).unwrap())
        .unwrap();

    let queries = [
        (
            "Did she take her medicine after eating?",
            "Doing('grandma','eating') ; Doing('grandma','medicine')",
        ),
        (
            "Did she brush her teeth and then go to bed?",
            "Doing('grandma','teeth') ; Doing('grandma','sleeping')",
        ),
        (
            "Full evening routine: eat, medicine, teeth, sleep",
            "Doing('grandma','eating') ; Doing('grandma','medicine') ; \
             Doing('grandma','teeth') ; Doing('grandma','sleeping')",
        ),
    ];

    println!("ground-truth day (sampled): first 40 steps");
    for chunk in truth.chunks(20).take(2) {
        let row: Vec<&str> = chunk.iter().map(|&s| ACTIVITIES[s]).collect();
        println!("  {}", row.join(" "));
    }
    println!();

    for (label, src) in queries {
        let series = Lahar::prob_series(&db, src).unwrap();
        let (t_max, p_max) = series
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(t, p)| (t, *p))
            .unwrap();
        let p_end = series.last().copied().unwrap_or(0.0);
        println!("{label}");
        println!("  query: {src}");
        println!("  peak μ(q@t) = {p_max:.3} at t = {t_max};  μ(q@end) = {p_end:.3}");
        // Caregiver-style verdict.
        let verdict = if p_max > 0.5 {
            "almost certainly happened"
        } else if p_max > 0.2 {
            "probably happened"
        } else {
            "no evidence it happened"
        };
        println!("  verdict: {verdict}\n");
    }
}
