//! The paper's central quality scenario end-to-end (§4.2): a simulated
//! RFID deployment, the coffee-room query, and a quality comparison of
//! Lahar against the deterministic MLE and Viterbi-MAP baselines.
//!
//! Pipeline: simulate movement → noisy antenna readings → particle-filter
//! / smoothing inference → probabilistic streams → Lahar; the competitors
//! determinize first and run ordinary CEP.
//!
//! Run with: `cargo run --release --example coffee_break`

use lahar::baselines::{detect_series, mle_world};
use lahar::core::Lahar;
use lahar::metrics::{episodes, score_per_key, threshold, Episode};
use lahar::rfid::{Deployment, DeploymentConfig};

/// "person went to the coffee room": outside the coffee room for two
/// consecutive steps, then inside (the paper's representative query,
/// grounded per person as in the paper's per-tag processes).
fn coffee_query(person: &str) -> String {
    format!(
        "At('{person}', l1)[NotRoom(l1)] ; At('{person}', l2)[NotRoom(l2)] ; \
         At('{person}', l3)[CoffeeRoom(l3)]"
    )
}

fn main() {
    let config = DeploymentConfig {
        ticks: 400,
        n_people: 4,
        n_objects: 0,
        ..DeploymentConfig::default()
    };
    println!(
        "simulating deployment ({} ticks, {} people)...",
        config.ticks, config.n_people
    );
    let dep = Deployment::simulate(config);

    let base = dep.base_database();
    let truth_world = dep.truth_world(&base);
    let filtered = dep.filtered_database();
    let smoothed = dep.smoothed_database();
    let mle = mle_world(&filtered);
    let viterbi = dep.viterbi_world(&base);

    let d = 15; // skew tolerance in ticks
    let rho = 0.15; // probability threshold

    let mut pairs_lahar_rt = Vec::new();
    let mut pairs_lahar_ar = Vec::new();
    let mut pairs_mle = Vec::new();
    let mut pairs_map = Vec::new();
    let mut total_truth = 0;

    for person in dep.people.iter().map(|p| p.name.clone()) {
        let q = coffee_query(&person);
        let truth_eps = episodes(&detect_series(&base, &truth_world, &q).unwrap());
        total_truth += truth_eps.len();

        let rt = Lahar::prob_series(&filtered, &q).unwrap();
        pairs_lahar_rt.push((episodes(&threshold(&rt, rho)), truth_eps.clone()));

        let ar = Lahar::prob_series(&smoothed, &q).unwrap();
        pairs_lahar_ar.push((episodes(&threshold(&ar, rho)), truth_eps.clone()));

        let m = episodes(&detect_series(&base, &mle, &q).unwrap());
        pairs_mle.push((m, truth_eps.clone()));

        let v = episodes(&detect_series(&base, &viterbi, &q).unwrap());
        pairs_map.push((v, truth_eps));
    }

    println!("\n{total_truth} ground-truth coffee-room events\n");
    println!(
        "{:<28} {:>10} {:>8} {:>8}",
        "approach", "precision", "recall", "F1"
    );
    let report = |name: &str, pairs: &[(Vec<Episode>, Vec<Episode>)]| {
        let q = score_per_key(pairs, d);
        println!(
            "{:<28} {:>10.3} {:>8.3} {:>8.3}",
            name, q.precision, q.recall, q.f1
        );
        q
    };
    println!("-- real-time (filtered marginals) --");
    let lr = report("Lahar (independent)", &pairs_lahar_rt);
    let ml = report("MLE baseline", &pairs_mle);
    println!("-- archived (smoothed + CPTs) --");
    let la = report("Lahar (Markov)", &pairs_lahar_ar);
    let vt = report("Viterbi MAP baseline", &pairs_map);

    println!(
        "\nF1 gain, real-time: {:+.3};  archived: {:+.3}",
        lr.f1 - ml.f1,
        la.f1 - vt.f1
    );
}
