//! Streaming deployment of the engine: a push-based [`RealTimeSession`]
//! with the sharded parallel tick path, monitored through its
//! [`EngineStats`] telemetry.
//!
//! Simulates a building-sensor feed: per tick, the "inference layer"
//! stages one marginal per tracked person, the session closes the tick —
//! stepping every registered query's chains across a persistent worker
//! pool — and alerts above a probability threshold are printed. At the
//! end, the session's own metrics (tick latency percentiles, chains
//! stepped, fallback counters) are dumped as JSON, the shape a
//! deployment would scrape into its dashboard.
//!
//! Run with: `cargo run --release --example streaming_dashboard`

use lahar::model::{Database, StreamBuilder};
use lahar::{RealTimeSession, SessionConfig, TickMode};

const LOCS: [&str; 4] = ["office", "hallway", "kitchen", "lab"];

fn main() {
    let mut db = Database::new();
    db.declare_stream("At", &["person"], &["loc"]).unwrap();
    db.declare_relation("Room", 1).unwrap();
    let i = db.interner().clone();
    for loc in ["office", "kitchen", "lab"] {
        db.insert_relation_tuple("Room", lahar::model::tuple([i.intern(loc)]))
            .unwrap();
    }
    let people: Vec<String> = (0..24).map(|p| format!("person{p}")).collect();
    let mut builders = Vec::new();
    for p in &people {
        let b = StreamBuilder::new(&i, "At", &[p], &LOCS);
        db.add_stream(b.clone().independent(vec![]).unwrap())
            .unwrap();
        builders.push(b);
    }

    // Force the parallel path so the example exercises it even below the
    // auto threshold; a real deployment would leave `Auto` in place.
    let mut session = RealTimeSession::with_config(
        db,
        SessionConfig {
            tick_mode: TickMode::Parallel,
            ..SessionConfig::default()
        },
    )
    .unwrap();

    // One chain per person each: 48 chains stepped per tick.
    session
        .register("coffee", "At(p,'office') ; At(p,'kitchen')")
        .unwrap();
    session
        .register(
            "wandering",
            "At(p,'office') ; (At(p, l))+{p | Room(l)} ; At(p,'lab')",
        )
        .unwrap();
    println!(
        "session tracking {} chains across {} people\n",
        session.n_chains(),
        people.len()
    );

    // A deterministic little "feed": each person drifts office → hallway
    // → kitchen → lab on their own phase.
    for t in 0..12u32 {
        for (idx, b) in builders.iter().enumerate() {
            let phase = ((t as usize + idx) / 3) % LOCS.len();
            let m = b
                .marginal(&[(LOCS[phase], 0.75), (LOCS[(phase + 1) % 4], 0.15)])
                .unwrap();
            session.stage(idx, m).unwrap();
        }
        for alert in session.tick().unwrap() {
            if alert.probability > 0.5 {
                println!(
                    "t={:>2}  {:<10} μ = {:.3}",
                    alert.t, alert.name, alert.probability
                );
            }
        }
    }

    println!(
        "\nengine telemetry:\n{}",
        session.stats().snapshot().to_json()
    );
}
