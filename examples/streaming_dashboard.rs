//! Streaming deployment of the engine: a push-based [`RealTimeSession`]
//! with the sharded parallel tick path, monitored through its full
//! observability stack — the per-query [`lahar::EngineStats`] registry,
//! a live Prometheus `/metrics` endpoint, and Chrome-trace span
//! recording.
//!
//! Simulates a building-sensor feed: per tick, the "inference layer"
//! stages one marginal per tracked person, the session closes the tick —
//! stepping every registered query's chains across a persistent worker
//! pool — and alerts above a probability threshold are printed. While
//! ticks run, the session serves `GET /metrics` from the address given
//! by `--metrics-addr` (default `127.0.0.1:0`, a free port); at the end
//! the example *scrapes its own endpoint* and prints a few of the
//! per-query series a deployment's dashboard would chart. With
//! `--trace-out FILE`, every span is exported as Chrome Trace Event
//! JSON for `chrome://tracing`/Perfetto — the file is re-parsed and
//! validated before the example exits.
//!
//! Run with: `cargo run --release --example streaming_dashboard -- \
//!     [--metrics-addr IP:PORT] [--trace-out FILE]`

use lahar::model::{Database, StreamBuilder};
use lahar::{RealTimeSession, SessionConfig, TickMode};
use std::io::{Read, Write};
use std::net::TcpStream;

const LOCS: [&str; 4] = ["office", "hallway", "kitchen", "lab"];

fn parse_args() -> (std::net::SocketAddr, Option<String>) {
    let mut metrics_addr = "127.0.0.1:0".parse().unwrap();
    let mut trace_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics-addr" => {
                let v = args.next().expect("--metrics-addr requires IP:PORT");
                metrics_addr = v.parse().expect("--metrics-addr expects IP:PORT");
            }
            "--trace-out" => {
                trace_out = Some(args.next().expect("--trace-out requires a file path"));
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    (metrics_addr, trace_out)
}

/// Scrapes `GET {path}` from our own metrics endpoint over plain TCP.
fn scrape(addr: std::net::SocketAddr, path: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connecting to metrics endpoint");
    write!(conn, "GET {path} HTTP/1.1\r\nHost: lahar\r\n\r\n").unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    let (headers, body) = response
        .split_once("\r\n\r\n")
        .expect("HTTP response has a header/body split");
    assert!(
        headers.starts_with("HTTP/1.1 200"),
        "scrape of {path} failed: {headers}"
    );
    body.to_owned()
}

fn main() {
    let (metrics_addr, trace_out) = parse_args();
    let mut db = Database::new();
    db.declare_stream("At", &["person"], &["loc"]).unwrap();
    db.declare_relation("Room", 1).unwrap();
    let i = db.interner().clone();
    for loc in ["office", "kitchen", "lab"] {
        db.insert_relation_tuple("Room", lahar::model::tuple([i.intern(loc)]))
            .unwrap();
    }
    let people: Vec<String> = (0..24).map(|p| format!("person{p}")).collect();
    let mut builders = Vec::new();
    for p in &people {
        let b = StreamBuilder::new(&i, "At", &[p], &LOCS);
        db.add_stream(b.clone().independent(vec![]).unwrap())
            .unwrap();
        builders.push(b);
    }

    // Force the parallel path so the example exercises it even below the
    // auto threshold; a real deployment would leave `Auto` in place.
    let mut session = RealTimeSession::with_config(
        db,
        SessionConfig::builder()
            .tick_mode(TickMode::Parallel)
            .metrics_addr(metrics_addr)
            .trace(trace_out.is_some())
            .build()
            .unwrap(),
    )
    .unwrap();
    let endpoint = session.metrics_addr().expect("metrics endpoint started");
    println!("metrics endpoint: http://{endpoint}/metrics");

    // One chain per person each: 48 chains stepped per tick.
    session
        .register("coffee", "At(p,'office') ; At(p,'kitchen')")
        .unwrap();
    session
        .register(
            "wandering",
            "At(p,'office') ; (At(p, l))+{p | Room(l)} ; At(p,'lab')",
        )
        .unwrap();
    println!(
        "session tracking {} chains across {} people\n",
        session.n_chains(),
        people.len()
    );

    // A deterministic little "feed": each person drifts office → hallway
    // → kitchen → lab on their own phase.
    for t in 0..12u32 {
        for (idx, b) in builders.iter().enumerate() {
            let phase = ((t as usize + idx) / 3) % LOCS.len();
            let m = b
                .marginal(&[(LOCS[phase], 0.75), (LOCS[(phase + 1) % 4], 0.15)])
                .unwrap();
            let id = session.database().stream_id_at(idx).unwrap();
            session.stage(id, m).unwrap();
        }
        for alert in session.tick().unwrap() {
            if alert.probability > 0.5 {
                println!(
                    "t={:>2}  {:<10} μ = {:.3}",
                    alert.t, alert.name, alert.probability
                );
            }
        }
    }

    // The endpoint also answers /healthz while ticks run: a JSON
    // readiness report that stays `"ok":true` while the session is
    // healthy.
    let health = scrape(endpoint, "/healthz");
    assert!(
        health.contains("\"ok\":true"),
        "unexpected healthz: {health}"
    );
    println!("healthz: ok");

    // Scrape our own /metrics and show the per-query series a dashboard
    // would chart.
    let metrics = scrape(endpoint, "/metrics");
    assert!(metrics.contains("lahar_query_ticks_total{query=\"coffee\""));
    assert!(metrics.contains("lahar_query_step_latency_seconds_bucket{query=\"wandering\""));
    assert!(metrics.contains("lahar_kernel_steps_total{path=\"fast\"}"));
    println!("\nscraped per-query series from /metrics:");
    for line in metrics.lines().filter(|l| {
        l.starts_with("lahar_query_ticks_total{")
            || l.starts_with("lahar_query_probability{")
            || l.starts_with("lahar_query_step_latency_seconds_count{")
            || l.starts_with("lahar_tick_latency_seconds_count")
            || l.starts_with("lahar_kernel_steps_total{")
            || l.starts_with("lahar_kernel_sym_cache_total{")
            || l.starts_with("lahar_kernel_automata_")
    }) {
        println!("  {line}");
    }

    if let Some(path) = &trace_out {
        lahar::core::trace::write_chrome_trace(path).unwrap();
        // Validate: the file must re-parse as Chrome Trace Event JSON
        // and contain the tick/worker span taxonomy.
        let raw = std::fs::read_to_string(path).unwrap();
        let doc = lahar::core::json::parse(&raw).expect("trace file parses as JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        let has = |name: &str| {
            events
                .iter()
                .any(|e| e.get("name").and_then(|n| n.as_str()) == Some(name))
        };
        assert!(has("tick") && has("worker_step") && has("chain_step"));
        println!("\nchrome trace: {} events -> {path}", events.len());
    }

    println!(
        "\nengine telemetry:\n{}",
        session.stats().snapshot().to_json()
    );
}
