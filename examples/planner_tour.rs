//! A tour of Lahar's static analysis: classify every query from the paper
//! and show the compiled safe plans (Algorithm 1).
//!
//! Run with: `cargo run --release --example planner_tour`

use lahar::model::Database;
use lahar::query::{classify, compile_safe_plan, parse_and_validate, NormalQuery, QueryClass};

fn main() {
    let mut db = Database::new();
    db.declare_stream("At", &["person"], &["loc"]).unwrap();
    db.declare_stream("Carries", &["person", "object"], &["loc"])
        .unwrap();
    db.declare_stream("R", &["k"], &["v"]).unwrap();
    db.declare_stream("S", &["k"], &["v"]).unwrap();
    db.declare_stream("T", &["k"], &["v"]).unwrap();
    for (rel, arity) in [
        ("Hallway", 1),
        ("Person", 1),
        ("Laptop", 1),
        ("Office", 2),
        ("CRoom", 1),
        ("LectureRoom", 1),
    ] {
        db.declare_relation(rel, arity).unwrap();
    }

    let queries: Vec<(&str, String)> = vec![
        (
            "q_JoeCoffee (Ex 2.2): Joe got coffee",
            "At('Joe','220') ; At('Joe', l)[CRoom(l)] ; At('Joe','220')".to_owned(),
        ),
        (
            "q_AnyCoffee (Ex 2.2): anyone straight to coffee",
            "sigma[Person(p) AND Office(p, l1) AND CRoom(l3)]\
             ( At(p, l1) ; (At(p, l2))+{p | Hallway(l2)} ; At(p, l3) )"
                .to_owned(),
        ),
        (
            "q_Joe,hall (Ex 3.2): Joe a -> hallways -> c",
            "At('Joe','a') ; (At('Joe', l))+{| Hallway(l)} ; At('Joe','c')".to_owned(),
        ),
        (
            "q_hall (Ex 3.6): any person a -> hallways -> c",
            "sigma[Person(x)](At(x,'a') ; (At(x, l2))+{x | Hallway(l2)} ; At(x,'c'))".to_owned(),
        ),
        (
            "q_talk (Ex 3.9): person+laptop to a lecture room",
            "sigma[Person(x) AND Laptop(y) AND Office(x, z) AND LectureRoom(u)]\
             ( Carries(x, y, z) ; (Carries(x, y, _))+{x, y} ; At(x, u) )"
                .to_owned(),
        ),
        (
            "Fig 6: R(x); S(x); T('a', y)",
            "R(x, _) ; S(x, _) ; T('a', y)".to_owned(),
        ),
        (
            "h1 (Prop 3.18): non-local predicate",
            "sigma[x = y](R(x, _) ; S(y, _))".to_owned(),
        ),
        (
            "h2 (Prop 3.18): ungrounded Kleene sharing",
            "R('r', _) ; (S(x, _))+{x}".to_owned(),
        ),
        (
            "h3 (Prop 3.19): R(); S(x); T(x)",
            "R('r', _) ; S(x, _) ; T(x, _)".to_owned(),
        ),
        (
            "h4 (Prop 3.19): R(x); S(); T(x)",
            "R(x, _) ; S('s', _) ; T(x, _)".to_owned(),
        ),
    ];

    for (label, src) in queries {
        println!("== {label}");
        println!("   {src}");
        let q = match parse_and_validate(db.catalog(), db.interner(), &src) {
            Ok(q) => q,
            Err(e) => {
                println!("   parse/validation error: {e}\n");
                continue;
            }
        };
        let nq = NormalQuery::from_query(&q);
        let class = classify(db.catalog(), &nq);
        println!("   class: {class}");
        match class {
            QueryClass::Unsafe => {
                println!("   evaluation: Monte Carlo sampling (#P-hard in general)\n");
            }
            _ => match compile_safe_plan(db.catalog(), &nq) {
                Ok(plan) => {
                    println!("   safe plan:");
                    for line in plan.display(db.interner()).lines() {
                        println!("     {line}");
                    }
                    println!();
                }
                Err(e) => println!("   planner: {e}\n"),
            },
        }
    }
}
