//! Process-level crash-recovery harness: a real `lahar serve` process is
//! spawned, fed over TCP, and killed with SIGKILL at randomized points —
//! including (under `--features failpoints`) mid-WAL-append and
//! mid-checkpoint-write torn-write faults. A fresh process over the same
//! checkpoint directory must then recover **every acknowledged tick**,
//! with the recovered `μ(q@t)` series bit-identical to the offline
//! engine's prefix, and keep serving: the continued stream must land on
//! the exact full-series bits.
//!
//! The durability contract under test (`batch` and `always` levels):
//! a tick is acknowledged only after its WAL record hit the kernel via
//! `write(2)`, so no SIGKILL can un-ack it. `LAHAR_CRASH_ITERS` bounds
//! the randomized kill count (default 20).

use lahar::core::protocol::WireMarginal;
use lahar::model::{encode_stream, Database, StreamBuilder, Value};
use lahar::{EngineError, Lahar, LaharClient};
use std::io::BufRead as _;
use std::io::BufReader;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;
use std::time::Duration;

const SRC: &str = "At(p,'a') ; At(p,'c')";
const TICKS: u32 = 24;
/// Auto-checkpoint interval handed to every spawned server: small enough
/// that kills land before, between, and after generation persists.
const INTERVAL: &str = "5";

// ---------------------------------------------------------------------
// Deployment fixture (same shape as tests/server_session.rs, longer).

fn schema_parts() -> (Database, Vec<StreamBuilder>) {
    let mut db = Database::new();
    db.declare_stream("At", &["person"], &["loc"]).unwrap();
    let i = db.interner().clone();
    let builders = ["joe", "sue"]
        .iter()
        .map(|p| StreamBuilder::new(&i, "At", &[p], &["a", "h", "c"]))
        .collect();
    (db, builders)
}

fn marginal_at(b: &StreamBuilder, t: u32, stream: usize) -> lahar::model::Marginal {
    let vals = ["a", "h", "c"];
    let k = (t as usize + stream) % 3;
    b.marginal(&[
        (vals[k], 0.55 + 0.03 * stream as f64),
        (vals[(k + 1) % 3], 0.2),
    ])
    .unwrap()
}

fn recorded_db() -> Database {
    let (mut db, builders) = schema_parts();
    for (s, b) in builders.iter().enumerate() {
        let ms = (0..TICKS).map(|t| marginal_at(b, t, s)).collect::<Vec<_>>();
        db.add_stream(b.clone().independent(ms).unwrap()).unwrap();
    }
    db
}

fn wire_frames(db: &Database) -> Vec<Vec<WireMarginal>> {
    let interner = db.interner();
    (0..TICKS)
        .map(|t| {
            db.streams()
                .iter()
                .map(|stream| WireMarginal {
                    stream_type: interner.resolve(stream.id().stream_type).unwrap(),
                    key: stream
                        .id()
                        .key
                        .iter()
                        .map(|v| match v {
                            Value::Str(s) => interner.resolve(*s).unwrap(),
                            other => panic!("non-string key {other:?}"),
                        })
                        .collect(),
                    probs: stream.marginal_at(t).probs().to_vec(),
                })
                .collect()
        })
        .collect()
}

/// The offline engine's full series — the bit-exact reference every
/// recovered prefix is held to.
fn reference_bits() -> Vec<u64> {
    Lahar::prob_series(&recorded_db(), SRC)
        .unwrap()
        .iter()
        .map(|p| p.to_bits())
        .collect()
}

fn bits(series: &[f64]) -> Vec<u64> {
    series.iter().map(|p| p.to_bits()).collect()
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

// ---------------------------------------------------------------------
// Spawning and killing real server processes.

/// The manifest directory every spawned server loads its schema from —
/// written once per test process.
fn manifest_dir() -> &'static Path {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("lahar-crash-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("manifest.txt"), "stream At person | loc\n").unwrap();
        let db = recorded_db();
        for (i, stream) in db.streams().iter().enumerate() {
            let bytes = encode_stream(db.interner(), stream);
            std::fs::write(dir.join(format!("{i:03}_s.lstream")), &bytes).unwrap();
        }
        dir
    })
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lahar-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Serve {
    child: Child,
    addr: SocketAddr,
}

/// Spawns a real `lahar serve` with the crash-harness configuration and
/// waits for its "serving on" line. `failpoints` arms torn-write faults
/// in the child via `LAHAR_FAILPOINTS` (builds without the feature
/// ignore the variable).
fn spawn_serve(ckpt: &Path, durability: &str, failpoints: Option<&str>) -> Serve {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_lahar"));
    cmd.args([
        "serve",
        "--manifest",
        &manifest_dir().display().to_string(),
        "--addr",
        "127.0.0.1:0",
        "--checkpoint-dir",
        &ckpt.display().to_string(),
        "--durability",
        durability,
        "--checkpoint-interval",
        INTERVAL,
        "--shards",
        "2",
    ])
    .stdin(Stdio::null())
    .stdout(Stdio::null())
    .stderr(Stdio::piped());
    cmd.env_remove("LAHAR_FAILPOINTS");
    if let Some(spec) = failpoints {
        cmd.env("LAHAR_FAILPOINTS", spec);
    }
    let mut child = cmd.spawn().expect("spawn lahar serve");
    let mut reader = BufReader::new(child.stderr.take().unwrap());
    let mut addr = None;
    let mut line = String::new();
    while reader.read_line(&mut line).unwrap_or(0) > 0 {
        if let Some(rest) = line.trim().strip_prefix("serving on ") {
            addr = Some(rest.parse().expect("serve address"));
            break;
        }
        line.clear();
    }
    // Keep draining stderr so the child can never block on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).unwrap_or(0) > 0 {
            sink.clear();
        }
    });
    let Some(addr) = addr else {
        let _ = child.kill();
        panic!("serve exited before reporting its address");
    };
    Serve { child, addr }
}

/// Sends SIGKILL to `pid` — the one thing a durability layer cannot
/// negotiate with. (`Child::kill` needs `&mut`, and the harness kills
/// from a second thread while the main one is mid-request.)
fn sigkill(pid: u32) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    unsafe {
        kill(pid as i32, 9);
    }
}

/// Restarts over `ckpt`, asserts the recovered state covers every
/// acknowledged tick with offline-bit-identical answers, then drives the
/// session to the full script and checks the complete series. Returns
/// the recovered tick count.
fn verify_recovery_and_finish(
    ckpt: &Path,
    durability: &str,
    acked: u32,
    frames: &[Vec<WireMarginal>],
    reference: &[u64],
) -> u32 {
    let mut serve = spawn_serve(ckpt, durability, None);
    let mut client = LaharClient::connect(serve.addr, "crash").unwrap();
    let (t, _restored) = client.open().unwrap();
    assert!(
        t >= acked,
        "recovery lost acknowledged ticks: recovered t={t}, acked {acked}"
    );
    assert!(t <= TICKS, "recovered t={t} beyond the script");
    match client.series("q") {
        Ok(series) => {
            assert_eq!(series.len(), t as usize, "series length != recovered clock");
            assert_eq!(
                bits(&series),
                &reference[..t as usize],
                "recovered series prefix diverged from the offline engine"
            );
        }
        // The kill landed before the registration was acknowledged (so
        // it is allowed to be lost) — re-register and carry on.
        Err(EngineError::Remote {
            code: lahar::WireCode::UnknownQuery,
            ..
        }) => {
            assert_eq!(acked, 0, "q lost after {acked} acked ticks");
            client.register("q", SRC).unwrap();
        }
        Err(e) => panic!("series after recovery: {e}"),
    }
    for frame in &frames[t as usize..] {
        client.stage_tick(frame).unwrap();
    }
    assert_eq!(
        bits(&client.series("q").unwrap()),
        reference,
        "continued stream diverged after recovery"
    );
    client.shutdown_server().unwrap();
    let _ = serve.child.wait();
    t
}

// ---------------------------------------------------------------------
// The harness proper.

/// Tentpole acceptance: ≥ 20 randomized SIGKILLs (seeded, so a failure
/// reproduces), alternating `batch` and `always` durability. Every
/// acknowledged tick must survive, bit-identically, and the recovered
/// server must finish the stream on the exact offline bits.
#[test]
fn kill_nine_at_randomized_points_loses_no_acknowledged_tick() {
    let iters: u64 = std::env::var("LAHAR_CRASH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let frames = wire_frames(&recorded_db());
    let reference = reference_bits();

    for iter in 0..iters {
        let seed = splitmix64(0x5EED_CAFE ^ iter);
        let durability = if iter % 2 == 0 { "batch" } else { "always" };
        // Kill after a random number of acks plus a random in-flight
        // delay, so kills land between commands, mid-request, mid-WAL
        // append, and mid-auto-checkpoint.
        let kill_after = (seed % u64::from(TICKS)) as usize;
        let delay = Duration::from_micros(splitmix64(seed) % 3_000);

        let ckpt = temp_dir(&format!("kill-{iter}"));
        let mut serve = spawn_serve(&ckpt, durability, None);
        let mut client = LaharClient::connect(serve.addr, "crash").unwrap();
        client.open().unwrap();
        client.register("q", SRC).unwrap();

        let mut acked: u32 = 0;
        for frame in &frames[..kill_after] {
            client.stage_tick(frame).unwrap();
            acked += 1;
        }
        let pid = serve.child.id();
        let killer = std::thread::spawn(move || {
            std::thread::sleep(delay);
            sigkill(pid);
        });
        for frame in &frames[kill_after..] {
            match client.stage_tick(frame) {
                Ok(_) => acked += 1,
                Err(_) => break,
            }
        }
        killer.join().unwrap();
        let _ = serve.child.wait();

        let t = verify_recovery_and_finish(&ckpt, durability, acked, &frames, &reference);
        eprintln!(
            "crash iter {iter}: {durability}, killed after {acked} acks (+{delay:?}), recovered t={t}"
        );
        let _ = std::fs::remove_dir_all(&ckpt);
    }
}

/// Clean-shutdown generations survive having their newest file torn:
/// restore quarantines it, falls back to the previous generation, and
/// the WAL replay still reaches the exact pre-shutdown clock.
#[test]
fn torn_newest_generation_falls_back_and_replays_to_the_full_clock() {
    let frames = wire_frames(&recorded_db());
    let reference = reference_bits();
    let ckpt = temp_dir("torn-newest");

    let mut serve = spawn_serve(&ckpt, "batch", None);
    let mut client = LaharClient::connect(serve.addr, "crash").unwrap();
    client.open().unwrap();
    client.register("q", SRC).unwrap();
    const RAN: u32 = 12;
    for frame in &frames[..RAN as usize] {
        client.stage_tick(frame).unwrap();
    }
    client.shutdown_server().unwrap();
    let _ = serve.child.wait();

    // Tear the newest generation in place (a torn write the atomic
    // tmp+rename protocol would never produce, i.e. real disk damage).
    let mut gens: Vec<PathBuf> = std::fs::read_dir(&ckpt)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.to_string_lossy().ends_with(".ckpt.json"))
        .collect();
    gens.sort();
    assert!(
        gens.len() >= 2,
        "expected a fallback generation on disk, found {gens:?}"
    );
    let newest = gens.last().unwrap();
    let full = std::fs::read(newest).unwrap();
    std::fs::write(newest, &full[..full.len() / 2]).unwrap();

    let t = verify_recovery_and_finish(&ckpt, "batch", RAN, &frames, &reference);
    assert_eq!(
        t, RAN,
        "fallback + WAL replay must reach the exact pre-shutdown clock"
    );
    let _ = std::fs::remove_dir_all(&ckpt);
}

/// Torn-write fault on the WAL append path: the server writes half a
/// frame, fsyncs the tear, and dies (`abort`). Recovery must stop the
/// replay at the torn frame — losing only unacknowledged work — and
/// rotate the log so the tear never shadows later appends.
#[cfg(feature = "failpoints")]
#[test]
fn torn_wal_append_recovers_the_acked_prefix() {
    let frames = wire_frames(&recorded_db());
    let reference = reference_bits();
    // Append #0 is the query registration; later ones are tick records,
    // chosen to land before, at, and after auto-checkpoint boundaries.
    for at in [0u64, 1, 5, 9] {
        let ckpt = temp_dir(&format!("torn-wal-{at}"));
        let mut serve = spawn_serve(&ckpt, "batch", Some(&format!("wal_append=error:once@{at}")));
        let mut client = LaharClient::connect(serve.addr, "crash").unwrap();
        client.open().unwrap();
        let mut acked: u32 = 0;
        if client.register("q", SRC).is_ok() {
            for frame in &frames {
                match client.stage_tick(frame) {
                    Ok(_) => acked += 1,
                    Err(_) => break,
                }
            }
        }
        let _ = serve.child.wait();
        let t = verify_recovery_and_finish(&ckpt, "batch", acked, &frames, &reference);
        eprintln!("torn WAL append @{at}: {acked} acks, recovered t={t}");
        let _ = std::fs::remove_dir_all(&ckpt);
    }
}

/// Torn-write fault on the checkpoint path: a half-written generation
/// lands under the *final* name and the process dies mid-persist.
/// Recovery must quarantine it, fall back (to the previous generation,
/// or to fresh + full replay when none exists), and lose nothing acked.
#[cfg(feature = "failpoints")]
#[test]
fn torn_checkpoint_write_falls_back_and_replays_the_wal() {
    let frames = wire_frames(&recorded_db());
    let reference = reference_bits();
    // @0 tears the very first generation (no fallback: fresh + replay);
    // @1 tears the second (fallback to generation 1 + WAL tail).
    for at in [0u64, 1] {
        let ckpt = temp_dir(&format!("torn-ckpt-{at}"));
        let mut serve = spawn_serve(
            &ckpt,
            "batch",
            Some(&format!("checkpoint_write=error:once@{at}")),
        );
        let mut client = LaharClient::connect(serve.addr, "crash").unwrap();
        client.open().unwrap();
        client.register("q", SRC).unwrap();
        let mut acked: u32 = 0;
        for frame in &frames {
            match client.stage_tick(frame) {
                Ok(_) => acked += 1,
                Err(_) => break,
            }
        }
        assert!(
            acked < TICKS,
            "the armed checkpoint tear never fired (acked all {acked} ticks)"
        );
        let _ = serve.child.wait();
        let t = verify_recovery_and_finish(&ckpt, "batch", acked, &frames, &reference);
        eprintln!("torn checkpoint @{at}: {acked} acks, recovered t={t}");
        let _ = std::fs::remove_dir_all(&ckpt);
    }
}
