//! Observability integration suite: the live Prometheus endpoint, the
//! Chrome-trace exporter, and their behaviour on degraded sessions.
//!
//! These tests exercise the full stack end to end — a real
//! [`RealTimeSession`] over a real TCP socket — rather than the encoder
//! units (those live in `lahar-core`). The tracer is process-global, so
//! the tests that enable it serialize on a local mutex.

use lahar::model::{Database, Marginal, StreamBuilder};
use lahar::{RealTimeSession, SessionConfig, TickMode};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that touch the process-global tracer.
fn lock_tracer() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn schema_db() -> (Database, Vec<StreamBuilder>) {
    let mut db = Database::new();
    db.declare_stream("At", &["person"], &["loc"]).unwrap();
    let i = db.interner().clone();
    let mut builders = Vec::new();
    for p in ["joe", "sue", "ann"] {
        let b = StreamBuilder::new(&i, "At", &[p], &["a", "h", "c"]);
        db.add_stream(b.clone().independent(vec![]).unwrap())
            .unwrap();
        builders.push(b);
    }
    (db, builders)
}

/// A live parallel session with the metrics endpoint bound to a free
/// port, two registered queries, and `ticks` substantive ticks played.
fn live_session(ticks: usize, trace: bool) -> RealTimeSession {
    let (db, builders) = schema_db();
    let mut session = RealTimeSession::with_config(
        db,
        SessionConfig::builder()
            .tick_mode(TickMode::Parallel)
            .n_workers(2)
            .metrics_addr("127.0.0.1:0".parse().unwrap())
            .trace(trace)
            .build()
            .unwrap(),
    )
    .unwrap();
    session.register("reach", "At(p,'a') ; At(p,'c')").unwrap();
    session
        .register("joe", "At('joe','a') ; At('joe','c')")
        .unwrap();
    feed(&mut session, &builders, 0..ticks);
    session
}

/// Plays deterministic marginals for the tick range and closes each tick.
fn feed(session: &mut RealTimeSession, builders: &[StreamBuilder], ticks: std::ops::Range<usize>) {
    for t in ticks {
        for (idx, b) in builders.iter().enumerate() {
            let id = session.database().stream_id_at(idx).unwrap();
            session.stage(id, marginal_at(b, t, idx)).unwrap();
        }
        session.tick().unwrap();
    }
}

fn marginal_at(b: &StreamBuilder, t: usize, idx: usize) -> Marginal {
    let vals = ["a", "h", "c"];
    let v = vals[(t + idx) % 3];
    b.marginal(&[(v, 0.7), (vals[(t + idx + 1) % 3], 0.2)])
        .unwrap()
}

/// Raw `GET {path}` over plain TCP; returns (status line, body).
fn scrape(addr: SocketAddr, path: &str) -> (String, String) {
    let mut conn = TcpStream::connect(addr).expect("connecting to metrics endpoint");
    write!(conn, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    let (headers, body) = response
        .split_once("\r\n\r\n")
        .expect("HTTP header/body split");
    let status = headers.lines().next().unwrap_or_default().to_owned();
    (status, body.to_owned())
}

/// Structural validator for the Prometheus text exposition format: every
/// sample line must be `name{labels} value` with a parseable value, and
/// every sampled metric family must have been declared by `# TYPE`.
fn assert_prometheus_well_formed(text: &str) {
    let mut declared: Vec<String> = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("# TYPE has a metric name");
            let kind = parts.next().expect("# TYPE has a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram" | "summary"),
                "unknown metric kind in {line:?}"
            );
            declared.push(name.to_owned());
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        let name = series.split('{').next().unwrap();
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in {line:?}"
        );
        // Histogram samples append _bucket/_sum/_count to the family name.
        assert!(
            declared.iter().any(|d| {
                name == d
                    || name == format!("{d}_bucket")
                    || name == format!("{d}_sum")
                    || name == format!("{d}_count")
            }),
            "sample {name} has no preceding # TYPE declaration"
        );
        if series.contains('{') {
            assert!(series.ends_with('}'), "unterminated label set in {line:?}");
        }
        assert!(
            matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok(),
            "unparseable value in {line:?}"
        );
    }
    assert!(!declared.is_empty(), "no metric families declared");
}

/// Extracts `le -> cumulative count` pairs for one histogram series
/// filtered by a label fragment, in exposition order.
fn bucket_counts(text: &str, family: &str, label_fragment: &str) -> Vec<(String, u64)> {
    text.lines()
        .filter(|l| l.starts_with(&format!("{family}_bucket{{")) && l.contains(label_fragment))
        .map(|l| {
            let le = l
                .split("le=\"")
                .nth(1)
                .and_then(|s| s.split('"').next())
                .expect("bucket has le label")
                .to_owned();
            let count: u64 = l.rsplit_once(' ').unwrap().1.parse().unwrap();
            (le, count)
        })
        .collect()
}

/// The live endpoint must serve well-formed Prometheus text with
/// per-query-labeled series, a healthz probe, and a 404 fallback.
#[test]
fn live_endpoint_serves_per_query_prometheus_series() {
    const TICKS: usize = 6;
    let session = live_session(TICKS, false);
    let addr = session.metrics_addr().expect("endpoint started");

    let (status, body) = scrape(addr, "/healthz");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert!(body.contains("\"ok\":true"), "unexpected healthz: {body}");

    let (status, metrics) = scrape(addr, "/metrics");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert_prometheus_well_formed(&metrics);

    // Engine-wide counters reflect the session's actual work.
    assert!(metrics.contains(&format!("lahar_ticks_total {TICKS}")));
    assert!(metrics.contains(&format!("lahar_parallel_ticks_total {TICKS}")));
    assert!(metrics.contains(&format!("lahar_tick_latency_seconds_count {TICKS}")));

    // Per-query series carry both the name and the stable id label.
    for (name, id) in [("reach", 0), ("joe", 1)] {
        let labels = format!("{{query=\"{name}\",id=\"{id}\"}}");
        assert!(
            metrics.contains(&format!("lahar_query_ticks_total{labels} {TICKS}")),
            "missing per-query tick counter for {name}:\n{metrics}"
        );
        assert!(metrics.contains(&format!("lahar_query_probability{labels} ")));
        let buckets = bucket_counts(&metrics, "lahar_query_step_latency_seconds", name);
        assert!(!buckets.is_empty(), "no latency buckets for {name}");
        // Buckets are cumulative and end at +Inf == _count.
        assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1));
        let (last_le, last_count) = buckets.last().unwrap();
        assert_eq!(last_le, "+Inf");
        assert_eq!(*last_count, TICKS as u64);
    }

    let (status, _) = scrape(addr, "/nope");
    assert!(status.starts_with("HTTP/1.1 404"), "{status}");
}

/// A traced parallel run must export valid Chrome Trace Event JSON —
/// parseable by our own parser, with complete events carrying numeric
/// timestamps and the tick/worker/chain span taxonomy present.
#[test]
fn chrome_trace_from_parallel_session_is_valid() {
    let _gate = lock_tracer();
    lahar::core::trace::clear();
    let session = live_session(4, true);

    // The /trace route serves the same document the exporter writes.
    let addr = session.metrics_addr().expect("endpoint started");
    let (status, raw) = scrape(addr, "/trace");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");

    let doc = lahar::core::json::parse(&raw).expect("trace parses as JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut names = std::collections::BTreeSet::new();
    for e in events {
        let ph = e.get("ph").and_then(|v| v.as_str()).expect("ph field");
        assert!(e.get("pid").and_then(|v| v.as_u64()).is_some());
        assert!(e.get("tid").and_then(|v| v.as_u64()).is_some());
        let name = e.get("name").and_then(|v| v.as_str()).expect("name field");
        match ph {
            "X" => {
                assert!(e.get("ts").and_then(|v| v.as_f64()).is_some());
                assert!(e.get("dur").and_then(|v| v.as_f64()).is_some());
                names.insert(name.to_owned());
            }
            "M" => assert_eq!(name, "thread_name"),
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    for expected in ["tick", "worker_step", "chain_step"] {
        assert!(names.contains(expected), "no {expected} span in {names:?}");
    }

    drop(session);
    lahar::core::trace::disable();
    lahar::core::trace::clear();
}

/// Prometheus label-value escaping survives the full serve path: a
/// session whose name contains quotes, backslashes, and newlines is
/// opened over TCP, and the server's merged multi-session /metrics
/// exposition still parses with the test-side parser and carries the
/// escaped label (exercising `push_label_value` end to end).
#[test]
fn session_label_escaping_survives_live_server_scrape() {
    use lahar::{LaharClient, LaharServer, ServerConfig};
    let name = "we\"ird\\session\nname";
    let config = ServerConfig::builder()
        .n_shards(2)
        .metrics_addr("127.0.0.1:0".parse().unwrap())
        .build()
        .unwrap();
    let server = LaharServer::start(config, schema_db().0).unwrap();
    let mut client = LaharClient::connect(server.addr(), name).unwrap();
    client.open().unwrap();
    client.tick().unwrap();

    let (status, metrics) = scrape(server.metrics_addr().unwrap(), "/metrics");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert_prometheus_well_formed(&metrics);
    // Raw quote/backslash/newline escaped per the exposition format.
    let escaped = "session=\"we\\\"ird\\\\session\\nname\"";
    assert!(
        metrics.contains(escaped),
        "escaped session label missing:\n{metrics}"
    );
}

/// One request is followable across threads: the connection reader's
/// `serve_request` span and the shard worker's `shard_dequeue` span in
/// the Chrome trace export carry the same `req` argument — the id the
/// client generated and the server echoed.
#[test]
fn chrome_trace_links_one_request_across_reader_and_worker_threads() {
    use lahar::{LaharClient, LaharServer, ServerConfig};
    let _gate = lock_tracer();
    lahar::core::trace::clear();
    lahar::core::trace::enable();

    let config = ServerConfig::builder().n_shards(2).build().unwrap();
    let server = LaharServer::start(config, schema_db().0).unwrap();
    let mut client = LaharClient::connect(server.addr(), "traced").unwrap();
    client.open().unwrap();
    client.tick().unwrap();
    let req = client.last_id();
    // The serve_request span closes just after the reply is flushed; a
    // follow-up on the same sequential connection makes it durable in
    // the rings before the export below.
    client.ping().unwrap();
    lahar::core::trace::disable();

    let raw = lahar::core::trace::chrome_trace_json();
    let doc = lahar::core::json::parse(&raw).expect("trace parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    let mut thread_names = std::collections::BTreeMap::new();
    for e in events {
        if e.get("ph").and_then(|p| p.as_str()) == Some("M") {
            thread_names.insert(
                e.get("tid").and_then(|t| t.as_u64()).unwrap(),
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
                    .unwrap()
                    .to_owned(),
            );
        }
    }
    let span_with_req_on = |span: &str, thread_prefix: &str| {
        events.iter().any(|e| {
            e.get("name").and_then(|n| n.as_str()) == Some(span)
                && e.get("args")
                    .and_then(|a| a.get("req"))
                    .and_then(|r| r.as_u64())
                    == Some(req)
                && e.get("tid")
                    .and_then(|t| t.as_u64())
                    .and_then(|tid| thread_names.get(&tid))
                    .is_some_and(|name| name.starts_with(thread_prefix))
        })
    };
    assert!(
        span_with_req_on("serve_request", "lahar-conn"),
        "no serve_request span with req={req} on a connection-reader thread"
    );
    assert!(
        span_with_req_on("shard_dequeue", "lahar-shard-"),
        "no shard_dequeue span with req={req} on a shard-worker thread"
    );
    // The client side of the same request is in the export too.
    assert!(
        events.iter().any(|e| {
            e.get("name").and_then(|n| n.as_str()) == Some("client_send")
                && e.get("args")
                    .and_then(|a| a.get("req"))
                    .and_then(|r| r.as_u64())
                    == Some(req)
        }),
        "no client_send span with req={req}"
    );

    drop(client);
    drop(server);
    lahar::core::trace::clear();
}

/// Metric snapshots round-trip through a checkpoint: a restored session
/// re-serves the same per-query counters from its endpoint.
#[test]
fn restored_session_reserves_per_query_metrics() {
    let (db, builders) = schema_db();
    let mut session = live_session(5, false);
    let ckpt = session.checkpoint().unwrap();
    drop(session);
    drop(builders);

    let restored = RealTimeSession::restore_with_config(
        db,
        &ckpt,
        SessionConfig::builder()
            .tick_mode(TickMode::Parallel)
            .n_workers(2)
            .metrics_addr("127.0.0.1:0".parse().unwrap())
            .build()
            .unwrap(),
    )
    .unwrap();
    let addr = restored.metrics_addr().expect("endpoint restarted");
    let (status, metrics) = scrape(addr, "/metrics");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert_prometheus_well_formed(&metrics);
    assert!(metrics.contains("lahar_ticks_total 5"));
    assert!(metrics.contains("lahar_query_ticks_total{query=\"reach\",id=\"0\"} 5"));
    assert!(metrics.contains("lahar_query_step_latency_seconds_count{query=\"reach\",id=\"0\"} 5"));
}

/// A poisoned session must stay observable: the endpoint keeps serving
/// /healthz and /metrics mid-fault, and after recover() the recovery
/// shows up in the scraped counters.
#[cfg(feature = "failpoints")]
#[test]
fn poisoned_session_remains_scrapeable_and_reports_recovery() {
    use lahar::core::failpoint::{self, FailAction, Schedule};

    let _gate = lock_tracer(); // failpoint registry is process-global too
    failpoint::clear_all();
    let (_db, builders) = schema_db();
    let mut session = live_session(3, false);
    let addr = session.metrics_addr().expect("endpoint started");

    failpoint::configure("worker_step", FailAction::Error, Schedule::Once { at: 0 });
    for (idx, b) in builders.iter().enumerate() {
        let id = session.database().stream_id_at(idx).unwrap();
        session.stage(id, marginal_at(b, 3, idx)).unwrap();
    }
    assert!(session.tick().is_err());
    assert!(session.is_poisoned());

    // Observability survives the fault — and /healthz now tells the
    // truth about it: 503 with the poisoned session named (a session's
    // own endpoint reports it under the empty name).
    let (status, body) = scrape(addr, "/healthz");
    assert!(status.starts_with("HTTP/1.1 503"), "{status}");
    assert!(body.contains("\"ok\":false"), "unexpected healthz: {body}");
    assert!(
        body.contains("\"poisoned\":[\"\"]"),
        "unexpected healthz: {body}"
    );
    let (status, metrics) = scrape(addr, "/metrics");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert_prometheus_well_formed(&metrics);
    assert!(metrics.contains("lahar_recoveries_total 0"));

    session.recover().unwrap();
    let (status, body) = scrape(addr, "/healthz");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert!(body.contains("\"ok\":true"), "healthz must recover: {body}");
    let (_, metrics) = scrape(addr, "/metrics");
    assert!(metrics.contains("lahar_recoveries_total 1"));
    assert!(metrics.contains("lahar_ticks_total 4"));
    failpoint::clear_all();
}
