//! End-to-end suite for `lahar serve`: a real TCP server hosting real
//! sessions, driven through [`LaharClient`]. The acceptance bar is the
//! same as everywhere else in this repo — answers fetched over the wire
//! must be **bit-identical** (`f64::to_bits`) to the offline batch
//! engine, including after a shutdown-checkpoint → restart cycle — plus
//! the serving-specific contracts: explicit, observable backpressure and
//! automatic recovery from injected faults.

use lahar::core::protocol::WireMarginal;
use lahar::model::{Database, StreamBuilder, Value};
use lahar::{EngineError, Lahar, LaharClient, LaharServer, ServerConfig, WireCode};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

const SRC: &str = "At(p,'a') ; At(p,'c')";
const TICKS: u32 = 8;

/// The recorded deployment every test replays: two keyed streams with a
/// deterministic 8-tick script.
fn recorded_db() -> Database {
    let (mut db, builders) = schema_parts();
    for (s, b) in builders.iter().enumerate() {
        let ms = (0..TICKS).map(|t| marginal_at(b, t, s)).collect::<Vec<_>>();
        db.add_stream(b.clone().independent(ms).unwrap()).unwrap();
    }
    db
}

/// The schema-only template the server hosts sessions from.
fn schema_db() -> Database {
    let (mut db, builders) = schema_parts();
    for b in &builders {
        db.add_stream(b.clone().independent(vec![]).unwrap())
            .unwrap();
    }
    db
}

fn schema_parts() -> (Database, Vec<StreamBuilder>) {
    let mut db = Database::new();
    db.declare_stream("At", &["person"], &["loc"]).unwrap();
    let i = db.interner().clone();
    let builders = ["joe", "sue"]
        .iter()
        .map(|p| StreamBuilder::new(&i, "At", &[p], &["a", "h", "c"]))
        .collect();
    (db, builders)
}

fn marginal_at(b: &StreamBuilder, t: u32, stream: usize) -> lahar::model::Marginal {
    let vals = ["a", "h", "c"];
    let k = (t as usize + stream) % 3;
    b.marginal(&[
        (vals[k], 0.55 + 0.03 * stream as f64),
        (vals[(k + 1) % 3], 0.2),
    ])
    .unwrap()
}

/// One wire frame per tick, built from the recorded database — the same
/// marginals, bit for bit, that the offline engine sees.
fn wire_frames(db: &Database) -> Vec<Vec<WireMarginal>> {
    let interner = db.interner();
    (0..TICKS)
        .map(|t| {
            db.streams()
                .iter()
                .map(|stream| WireMarginal {
                    stream_type: interner.resolve(stream.id().stream_type).unwrap(),
                    key: stream
                        .id()
                        .key
                        .iter()
                        .map(|v| match v {
                            Value::Str(s) => interner.resolve(*s).unwrap(),
                            other => panic!("non-string key {other:?}"),
                        })
                        .collect(),
                    probs: stream.marginal_at(t).probs().to_vec(),
                })
                .collect()
        })
        .collect()
}

fn offline_bits() -> Vec<u64> {
    Lahar::prob_series(&recorded_db(), SRC)
        .unwrap()
        .iter()
        .map(|p| p.to_bits())
        .collect()
}

fn bits(series: &[f64]) -> Vec<u64> {
    series.iter().map(|p| p.to_bits()).collect()
}

fn local_config() -> ServerConfig {
    local_builder().build().unwrap()
}

/// The validating builder every test starts from (field-by-field
/// mutation of [`ServerConfig`] is deprecated).
fn local_builder() -> lahar::ServerConfigBuilder {
    ServerConfig::builder().n_shards(2)
}

/// A unique per-test checkpoint directory under the system temp dir.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lahar-server-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Tentpole acceptance: the series fetched over TCP is bit-identical to
/// the offline batch engine, and so are the alerts streamed tick by
/// tick on the way in.
#[test]
fn served_series_is_bit_identical_to_offline() {
    let server = LaharServer::start(local_config(), schema_db()).unwrap();
    let mut client = LaharClient::connect(server.addr(), "e2e").unwrap();
    assert_eq!(
        client.ping().unwrap(),
        lahar::core::protocol::PROTOCOL_VERSION
    );
    let (t, restored) = client.open().unwrap();
    assert_eq!((t, restored), (0, false));
    client.register("q", SRC).unwrap();

    let mut streamed = Vec::new();
    for frame in wire_frames(&recorded_db()) {
        let alerts = client.stage_tick(&frame).unwrap();
        assert_eq!(alerts.len(), 1, "one alert per registered query");
        streamed.push(alerts[0].probability.to_bits());
    }
    let series = client.series("q").unwrap();
    assert_eq!(bits(&series), offline_bits());
    assert_eq!(
        streamed,
        offline_bits(),
        "live alerts must equal the series"
    );

    // Unknown queries answer a typed error, not a hang or a guess.
    match client.series("nope") {
        Err(EngineError::Remote { code, .. }) => assert_eq!(code, WireCode::UnknownQuery),
        other => panic!("expected unknown_query, got {other:?}"),
    }
    client.shutdown_server().unwrap();
    server.join().unwrap();
}

/// A query registered mid-stream catches up through the session history:
/// its series still starts at t = 0 and matches offline bits.
#[test]
fn late_registered_query_series_starts_at_zero() {
    let server = LaharServer::start(local_config(), schema_db()).unwrap();
    let mut client = LaharClient::connect(server.addr(), "late").unwrap();
    client.open().unwrap();
    let frames = wire_frames(&recorded_db());
    for frame in &frames[..4] {
        client.stage_tick(frame).unwrap();
    }
    client.register("q", SRC).unwrap();
    for frame in &frames[4..] {
        client.stage_tick(frame).unwrap();
    }
    assert_eq!(bits(&client.series("q").unwrap()), offline_bits());
}

/// Shutdown checkpoints every hosted session; a fresh server over the
/// same checkpoint directory restores it, and the continued stream stays
/// bit-identical to the uninterrupted offline run.
#[test]
fn restart_from_shutdown_checkpoint_continues_bit_identically() {
    let dir = temp_dir("restart");
    let frames = wire_frames(&recorded_db());

    let config = local_builder().checkpoint_dir(&dir).build().unwrap();
    let server = LaharServer::start(config, schema_db()).unwrap();
    let addr = server.addr();
    let mut client = LaharClient::connect(addr, "durable").unwrap();
    client.open().unwrap();
    client.register("q", SRC).unwrap();
    for frame in &frames[..5] {
        client.stage_tick(frame).unwrap();
    }
    client.shutdown_server().unwrap();
    server.join().unwrap();

    // Same checkpoint dir, fresh process-equivalent server (new port).
    let config = local_builder().checkpoint_dir(&dir).build().unwrap();
    let server = LaharServer::start(config, schema_db()).unwrap();
    let mut client = LaharClient::connect(server.addr(), "durable").unwrap();
    let (t, restored) = client.open().unwrap();
    assert_eq!(
        (t, restored),
        (5, true),
        "session must resume where it stopped"
    );
    for frame in &frames[5..] {
        client.stage_tick(frame).unwrap();
    }
    assert_eq!(bits(&client.series("q").unwrap()), offline_bits());
    client.shutdown_server().unwrap();
    server.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Distinct sessions are fully isolated: concurrent clients replaying
/// the same deployment into different session names each get the exact
/// offline bits.
#[test]
fn concurrent_clients_in_distinct_sessions_agree_with_offline() {
    let config = ServerConfig::builder().n_shards(3).build().unwrap();
    let server = LaharServer::start(config, schema_db()).unwrap();
    let addr = server.addr();
    let want = offline_bits();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let want = want.clone();
            std::thread::spawn(move || {
                let mut client = LaharClient::connect(addr, &format!("worker-{i}")).unwrap();
                client.open().unwrap();
                client.register("q", SRC).unwrap();
                for frame in wire_frames(&recorded_db()) {
                    loop {
                        match client.stage_tick(&frame) {
                            Ok(_) => break,
                            Err(EngineError::Remote {
                                code: WireCode::Overloaded,
                                ..
                            }) => {
                                std::thread::sleep(std::time::Duration::from_millis(5));
                            }
                            Err(e) => panic!("worker {i}: {e}"),
                        }
                    }
                }
                assert_eq!(bits(&client.series("q").unwrap()), want);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

/// Backpressure contract: a slow shard with a tiny queue answers
/// `overloaded` instead of buffering without bound, nothing is silently
/// dropped (every accepted tick lands), and the pressure is visible in
/// the merged /metrics exposition.
#[test]
fn backpressure_is_explicit_and_observable() {
    let config = ServerConfig::builder()
        .n_shards(1)
        .queue_cap(1)
        .shard_delay(std::time::Duration::from_millis(60))
        .metrics_addr("127.0.0.1:0".parse().unwrap())
        .build()
        .unwrap();
    let server = LaharServer::start(config, schema_db()).unwrap();
    let addr = server.addr();

    // Prime the session so workers all hit an existing one.
    let mut primer = LaharClient::connect(addr, "busy").unwrap();
    primer.open().unwrap();

    const CLIENTS: usize = 8;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let overloaded = Arc::new(AtomicUsize::new(0));
    let accepted = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let barrier = barrier.clone();
            let overloaded = overloaded.clone();
            let accepted = accepted.clone();
            std::thread::spawn(move || {
                let mut client = LaharClient::connect(addr, "busy").unwrap();
                barrier.wait();
                loop {
                    match client.tick() {
                        Ok(_) => {
                            accepted.fetch_add(1, Ordering::SeqCst);
                            return;
                        }
                        Err(EngineError::Remote {
                            code: WireCode::Overloaded,
                            ..
                        }) => {
                            overloaded.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_millis(30));
                        }
                        Err(e) => panic!("unexpected failure under load: {e}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        accepted.load(Ordering::SeqCst),
        CLIENTS,
        "every client's tick must eventually land (no silent drops)"
    );
    assert!(
        overloaded.load(Ordering::SeqCst) > 0,
        "8 simultaneous ticks against a 1-deep queue on a 60ms shard must overload at least once"
    );
    // Every accepted tick really closed: the session clock agrees.
    let (t, restored) = primer.open().unwrap();
    assert_eq!((t, restored), (CLIENTS as u32, false));

    // The pressure is observable: server gauges live next to the
    // session-labelled engine counters in one exposition.
    let metrics = http_get(server.metrics_addr().unwrap(), "/metrics");
    assert!(metrics.contains("lahar_server_queue_cap 1"), "{metrics}");
    assert!(metrics.contains("lahar_server_queue_depth{shard=\"0\"}"));
    assert!(metrics.contains("lahar_server_sessions 1"));
    assert!(metrics.contains("lahar_ticks_total{session=\"busy\"} 8"));
    let total: u64 = metrics
        .lines()
        .find(|l| l.starts_with("lahar_server_overloaded_total"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap();
    assert_eq!(total as usize, overloaded.load(Ordering::SeqCst));
}

/// A frame split across writes with a pause longer than the server's
/// read timeout must not be corrupted: the reader keeps the partial
/// bytes across the timeout and the request/response pairing survives.
#[test]
fn partial_frame_split_across_read_timeout_is_not_lost() {
    use std::io::{BufRead as _, BufReader, Write as _};

    let server = LaharServer::start(local_config(), schema_db()).unwrap();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let frame = b"{\"v\":1,\"cmd\":\"ping\"}\n";
    let (head, tail) = frame.split_at(9); // mid-frame, mid-token
    stream.write_all(head).unwrap();
    stream.flush().unwrap();
    // Longer than the server's 500ms read timeout: the slow-client path.
    std::thread::sleep(std::time::Duration::from_millis(700));
    stream.write_all(tail).unwrap();
    stream.flush().unwrap();

    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("\"pong\""),
        "split frame must still parse as ping, got: {line}"
    );

    // The connection is still healthy and in-order afterwards.
    stream.write_all(frame).unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"pong\""), "{line}");
}

/// Sessions exist only after an explicit `open`: any other command for
/// an unknown name answers `unknown_session` instead of implicitly
/// creating server state, and `open` is bounded by the session cap.
#[test]
fn sessions_require_open_and_respect_the_cap() {
    let config = local_builder().max_sessions(1).build().unwrap();
    let server = LaharServer::start(config, schema_db()).unwrap();

    let mut client = LaharClient::connect(server.addr(), "ghost").unwrap();
    for result in [
        client.tick().map(|_| ()),
        client.series("q").map(|_| ()),
        client.register("q", SRC).map(|_| ()),
        client.checkpoint().map(|_| ()),
    ] {
        match result {
            Err(EngineError::Remote { code, .. }) => assert_eq!(code, WireCode::UnknownSession),
            other => panic!("expected unknown_session, got {other:?}"),
        }
    }

    // An explicit open creates the session and commands start working.
    assert_eq!(client.open().unwrap(), (0, false));
    client.tick().unwrap();

    // The cap bounds hosted sessions; re-opening an existing one is fine.
    let mut second = LaharClient::connect(server.addr(), "overflow").unwrap();
    match second.open() {
        Err(EngineError::Remote { code, .. }) => assert_eq!(code, WireCode::SessionLimit),
        other => panic!("expected session_limit, got {other:?}"),
    }
    assert_eq!(client.open().unwrap(), (1, false));
}

/// Minimal HTTP GET against the server's metrics endpoint.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\nHost: lahar\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or(response)
}

/// Tentpole acceptance: after one of every wire command, the merged
/// /metrics exposition has a `lahar_server_request_duration_seconds`
/// histogram for all four phases of each command and a
/// `lahar_server_requests_total` counter per outcome code — including
/// the error and unparseable-frame rows — and /healthz answers ready.
#[test]
fn request_metrics_cover_every_wire_command_and_phase() {
    let dir = temp_dir("reqmetrics");
    let config = local_builder()
        .metrics_addr("127.0.0.1:0".parse().unwrap())
        .checkpoint_dir(&dir)
        .build()
        .unwrap();
    let server = LaharServer::start(config, schema_db()).unwrap();
    let mut client = LaharClient::connect(server.addr(), "metered").unwrap();

    client.ping().unwrap();
    client.open().unwrap();
    client.register("q", SRC).unwrap();
    let frames = wire_frames(&recorded_db());
    client.stage(&frames[0]).unwrap();
    client.tick().unwrap();
    client.stage_epoch(&frames[1..3]).unwrap();
    client.series("q").unwrap();
    client.checkpoint().unwrap();
    // An error outcome and an unparseable frame land in the counters too.
    match client.series("nope") {
        Err(EngineError::Remote { code, .. }) => assert_eq!(code, WireCode::UnknownQuery),
        other => panic!("expected unknown_query, got {other:?}"),
    }
    {
        use std::io::{BufRead as _, BufReader, Write as _};
        let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
        raw.write_all(b"this is not a request\n").unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"protocol\""), "{line}");
        // Metrics are recorded after each reply is flushed; a follow-up
        // frame on the same sequential connection guarantees the
        // invalid-frame row is counted before the scrape below.
        raw.write_all(b"{\"v\":1,\"cmd\":\"ping\"}\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
    }
    // Same fence for the main connection's unknown_query outcome.
    client.ping().unwrap();

    let maddr = server.metrics_addr().unwrap();
    let metrics = http_get(maddr, "/metrics");
    for command in [
        "ping",
        "open",
        "register",
        "stage",
        "tick",
        "stage_ticks",
        "series",
        "checkpoint",
    ] {
        for phase in ["queue_wait", "execute", "wal_append", "respond"] {
            let needle = format!(
                "lahar_server_request_duration_seconds_bucket\
                 {{command=\"{command}\",phase=\"{phase}\",le=\"+Inf\"}}"
            );
            assert!(metrics.contains(&needle), "missing {needle} in:\n{metrics}");
        }
        let ok = format!("lahar_server_requests_total{{command=\"{command}\",code=\"ok\"}}");
        assert!(metrics.contains(&ok), "missing {ok} in:\n{metrics}");
    }
    assert!(metrics
        .contains("lahar_server_requests_total{command=\"series\",code=\"unknown_query\"} 1"));
    assert!(
        metrics.contains("lahar_server_requests_total{command=\"invalid\",code=\"protocol\"} 1")
    );
    assert!(metrics.contains("lahar_trace_dropped_spans_total"));

    // /healthz is a real readiness verdict now, not a constant.
    let health = http_get(maddr, "/healthz");
    assert!(
        health.contains("\"ok\":true"),
        "unexpected healthz: {health}"
    );

    client.shutdown_server().unwrap();
    server.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A forced-slow request (threshold 0) produces a JSONL slow-log entry
/// whose correlation id matches the id the client's response echoed,
/// with all four phase durations and the outcome.
#[test]
fn slow_log_entry_id_matches_the_response_echo() {
    let dir = temp_dir("slowlog");
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("slow.jsonl");
    let config = local_builder()
        .slow_request_ms(0)
        .slow_log(&log)
        .build()
        .unwrap();
    let server = LaharServer::start(config, schema_db()).unwrap();
    let mut client = LaharClient::connect(server.addr(), "sluggish").unwrap();
    client.open().unwrap();
    client.tick().unwrap();
    let tick_id = client.last_id();
    // The slow-log write happens after the tick's reply is flushed; a
    // follow-up request on the same (sequential) connection guarantees
    // the entry is on disk before the file is read.
    client.ping().unwrap();

    let text = std::fs::read_to_string(&log).unwrap();
    // The ping's own entry may still be mid-write when the file is
    // read; the tick entry was flushed before the ping's reply, so it
    // is complete — skip any torn tail instead of failing on it.
    let entry = text
        .lines()
        .filter_map(|l| lahar::core::json::parse(l).ok())
        .find(|e| e.get("command").and_then(|c| c.as_str()) == Some("tick"))
        .expect("tick entry in slow log");
    assert_eq!(entry.get("id").unwrap().as_u64(), Some(tick_id));
    assert_eq!(entry.get("session").unwrap().as_str(), Some("sluggish"));
    assert_eq!(entry.get("outcome").unwrap().as_str(), Some("ok"));
    for phase in ["queue_wait_ns", "execute_ns", "wal_append_ns", "respond_ns"] {
        assert!(
            entry.get(phase).and_then(|v| v.as_u64()).is_some(),
            "missing {phase} in slow-log entry"
        );
    }
    client.shutdown_server().unwrap();
    server.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Chaos, over the wire: N concurrent clients ingest into disjoint
/// sessions — plus two clients sharing one more — while deterministic
/// faults fire on the parallel tick path. The server must stay live,
/// auto-recover every poisoned session, and still answer every series
/// bit-identical to the offline engine.
#[cfg(feature = "failpoints")]
#[test]
fn concurrent_clients_survive_injected_faults() {
    use lahar::core::failpoint::{self, FailAction, Schedule};
    use lahar::core::{SessionConfig, TickMode};
    use std::time::Duration;

    /// Resyncs after a server-side fault: the next command auto-recovers
    /// the session, and `open` reports the tick the session is really at.
    fn resync(client: &mut LaharClient) -> u32 {
        loop {
            match client.open() {
                Ok((now, _)) => return now,
                Err(EngineError::Remote { .. }) => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => panic!("resync failed: {e}"),
            }
        }
    }

    failpoint::clear_all();
    let config = local_builder()
        .session_config(
            SessionConfig::builder()
                .tick_mode(TickMode::Parallel)
                .n_workers(2)
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();
    let server = LaharServer::start(config, schema_db()).unwrap();
    let addr = server.addr();

    // Sparse deterministic faults on the shared parallel step path while
    // every client below hammers the server at once.
    failpoint::configure(
        "worker_step",
        FailAction::Error,
        Schedule::EveryNth { n: 7 },
    );

    let want = offline_bits();
    let mut handles: Vec<std::thread::JoinHandle<()>> = (0..3)
        .map(|i| {
            let want = want.clone();
            std::thread::spawn(move || {
                let mut client = LaharClient::connect(addr, &format!("chaos-{i}")).unwrap();
                client.open().unwrap();
                client.register("q", SRC).unwrap();
                let frames = wire_frames(&recorded_db());
                let mut t = 0;
                while (t as usize) < frames.len() {
                    match client.stage_tick(&frames[t as usize]) {
                        Ok(_) => t += 1,
                        Err(EngineError::Remote {
                            code: WireCode::Overloaded,
                            ..
                        }) => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(EngineError::Remote { .. }) => {
                            // A fault landed in this command; recovery may
                            // already have completed the tick, so resync
                            // the clock instead of blindly re-staging.
                            t = resync(&mut client);
                        }
                        Err(e) => panic!("chaos-{i}: {e}"),
                    }
                }
                assert_eq!(bits(&client.series("q").unwrap()), want, "chaos-{i}");
            })
        })
        .collect();
    // Two more clients share one session, each closing empty ticks; the
    // per-session command serialization must keep the clock exact.
    const SHARED_TICKS_EACH: u32 = 4;
    for _ in 0..2 {
        handles.push(std::thread::spawn(move || {
            let mut client = LaharClient::connect(addr, "chaos-shared").unwrap();
            client.open().unwrap();
            let mut closed = 0;
            while closed < SHARED_TICKS_EACH {
                match client.tick() {
                    Ok(_) => closed += 1,
                    Err(EngineError::Remote {
                        code: WireCode::Overloaded,
                        ..
                    }) => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(EngineError::Remote { .. }) => {
                        // Recovery completed the tick server-side; it
                        // still counts as this client's close.
                        resync(&mut client);
                        closed += 1;
                    }
                    Err(e) => panic!("shared client: {e}"),
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    failpoint::clear_all();

    // The shared session closed exactly the ticks its clients sent —
    // nothing lost, nothing double-counted, server still answering.
    let mut c = LaharClient::connect(addr, "chaos-shared").unwrap();
    assert_eq!(c.open().unwrap(), (2 * SHARED_TICKS_EACH, false));
}

/// The `stage_ticks` wire command closes a whole epoch per frame and is
/// bit-identical to per-tick `stage` frames — including when the batch
/// spans several server-side epochs.
#[test]
fn staged_epochs_over_the_wire_match_per_tick_frames() {
    let config = local_builder()
        .session_config(
            lahar::SessionConfig::builder()
                .tick_mode(lahar::TickMode::Parallel)
                .n_workers(2)
                .max_epoch_ticks(3)
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();
    let server = LaharServer::start(config, schema_db()).unwrap();
    let mut client = LaharClient::connect(server.addr(), "epoch").unwrap();
    client.open().unwrap();
    client.register("q", SRC).unwrap();

    // All 8 recorded ticks in one frame: the server closes them as
    // epochs of ≤ 3 ticks, answering one alert per query per tick.
    let frames = wire_frames(&recorded_db());
    let alerts = client.stage_epoch(&frames).unwrap();
    assert_eq!(alerts.len(), TICKS as usize);
    let streamed: Vec<u64> = alerts.iter().map(|a| a.probability.to_bits()).collect();
    assert_eq!(streamed, offline_bits());
    assert_eq!(bits(&client.series("q").unwrap()), offline_bits());
    client.shutdown_server().unwrap();
    server.join().unwrap();
}

/// Every `lahar serve` process runs ONE stepping pool: the number of
/// `lahar-pool-*` threads is set by the machine, not by how many hosted
/// sessions tick in parallel mode. (Before the shared pool, each session
/// spawned its own per-core pool — n_sessions × n_cores threads.)
#[cfg(target_os = "linux")]
#[test]
fn hosted_sessions_share_one_worker_pool() {
    fn pool_threads() -> usize {
        std::fs::read_dir("/proc/self/task")
            .unwrap()
            .filter_map(|entry| {
                let comm = entry.ok()?.path().join("comm");
                std::fs::read_to_string(comm).ok()
            })
            .filter(|name| name.trim_end().starts_with("lahar-pool"))
            .count()
    }

    let config = local_builder()
        .session_config(
            lahar::SessionConfig::builder()
                .tick_mode(lahar::TickMode::Parallel)
                .n_workers(2)
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();
    let server = LaharServer::start(config, schema_db()).unwrap();
    let frames = wire_frames(&recorded_db());
    let mut counts = Vec::new();
    for s in 0..4 {
        let mut client = LaharClient::connect(server.addr(), &format!("pool-{s}")).unwrap();
        client.open().unwrap();
        client.register("q", SRC).unwrap();
        // Parallel epochs force this session onto the stepping pool.
        client.stage_epoch(&frames).unwrap();
        assert_eq!(bits(&client.series("q").unwrap()), offline_bits());
        counts.push(pool_threads());
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    assert!(counts[0] >= 1, "the pool spawned");
    assert!(
        counts.iter().all(|&c| c == cores),
        "pool threads must stay at {cores} (one per core) regardless of \
         session count, got {counts:?}"
    );
    client_free_shutdown(server);
}

/// Drives a clean shutdown without keeping a client alive (helper for
/// tests that only inspect process state).
fn client_free_shutdown(server: LaharServer) {
    let mut c = LaharClient::connect(server.addr(), "shutdown-helper").unwrap();
    c.shutdown_server().unwrap();
    server.join().unwrap();
}

/// Parses one un-labelled gauge/counter sample out of a Prometheus
/// exposition.
fn metric_value(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no sample {name} in:\n{metrics}"))
}

/// Polls /metrics until the evicted-sessions gauge reaches `want`.
fn await_evicted(maddr: std::net::SocketAddr, want: u64) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let metrics = http_get(maddr, "/metrics");
        if metric_value(&metrics, "lahar_server_sessions_evicted") >= want {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "session never evicted:\n{metrics}"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}

/// Cold-session tiering, no durability: an idle session is checkpointed
/// out of memory (the resident/evicted gauges flip), and the next
/// touching command restores it lazily — no explicit re-open — with the
/// continued series bit-identical to the never-evicted offline run.
#[test]
fn evicted_session_restores_bit_identically() {
    let dir = temp_dir("evict");
    let config = local_builder()
        .checkpoint_dir(&dir)
        .evict_after(std::time::Duration::from_millis(200))
        .metrics_addr("127.0.0.1:0".parse().unwrap())
        .build()
        .unwrap();
    let server = LaharServer::start(config, schema_db()).unwrap();
    let maddr = server.metrics_addr().unwrap();
    let mut client = LaharClient::connect(server.addr(), "cold").unwrap();
    client.open().unwrap();
    client.register("q", SRC).unwrap();
    let frames = wire_frames(&recorded_db());
    for frame in &frames[..5] {
        client.stage_tick(frame).unwrap();
    }

    // Go idle past the threshold: the shard sweep tiers the session out.
    await_evicted(maddr, 1);
    let metrics = http_get(maddr, "/metrics");
    assert_eq!(metric_value(&metrics, "lahar_server_sessions_resident"), 0);
    assert_eq!(metric_value(&metrics, "lahar_server_sessions"), 1);
    assert!(metric_value(&metrics, "lahar_server_evictions_total") >= 1);

    // The same connection keeps streaming as if nothing happened.
    for frame in &frames[5..] {
        client.stage_tick(frame).unwrap();
    }
    assert_eq!(bits(&client.series("q").unwrap()), offline_bits());
    let metrics = http_get(maddr, "/metrics");
    assert!(metric_value(&metrics, "lahar_server_restores_total") >= 1);
    assert_eq!(metric_value(&metrics, "lahar_server_sessions_resident"), 1);
    assert_eq!(metric_value(&metrics, "lahar_server_sessions_evicted"), 0);
    client.shutdown_server().unwrap();
    server.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cold-session tiering with durability: an explicit checkpoint midway
/// leaves a write-ahead tail past the eviction checkpoint, eviction
/// drops the session from memory without writing anything new, and the
/// lazy restore replays checkpoint + tail — still bit-identical.
#[test]
fn evicted_session_with_wal_tail_restores_bit_identically() {
    let dir = temp_dir("evict-wal");
    let config = local_builder()
        .checkpoint_dir(&dir)
        .evict_after(std::time::Duration::from_millis(200))
        .metrics_addr("127.0.0.1:0".parse().unwrap())
        .session_config(
            lahar::SessionConfig::builder()
                .durability(lahar::Durability::Batch)
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();
    let server = LaharServer::start(config, schema_db()).unwrap();
    let maddr = server.metrics_addr().unwrap();
    let mut client = LaharClient::connect(server.addr(), "cold-wal").unwrap();
    client.open().unwrap();
    client.register("q", SRC).unwrap();
    let frames = wire_frames(&recorded_db());
    for frame in &frames[..3] {
        client.stage_tick(frame).unwrap();
    }
    // Persist a generation at t = 3 ...
    client.checkpoint().unwrap();
    // ... then keep going: ticks 4 and 5 live only in the log tail.
    for frame in &frames[3..5] {
        client.stage_tick(frame).unwrap();
    }

    await_evicted(maddr, 1);

    // The restore replays the t = 3 checkpoint plus the 2-tick tail;
    // `open` reports the session exactly where it was dropped.
    assert_eq!(client.open().unwrap(), (5, true));
    for frame in &frames[5..] {
        client.stage_tick(frame).unwrap();
    }
    assert_eq!(bits(&client.series("q").unwrap()), offline_bits());
    client.shutdown_server().unwrap();
    server.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tentpole acceptance: 512 concurrent connections are served by ONE
/// `lahar-conn*` thread (plus the shard workers) — connections cost
/// file descriptors, not threads — and every connection's command
/// lands: the per-session clocks account for all 512 ticks.
#[cfg(target_os = "linux")]
#[test]
fn reactor_serves_512_connections_from_o_shards_threads() {
    fn conn_threads() -> usize {
        std::fs::read_dir("/proc/self/task")
            .unwrap()
            .filter_map(|entry| {
                let comm = entry.ok()?.path().join("comm");
                std::fs::read_to_string(comm).ok()
            })
            .filter(|name| name.trim_end().starts_with("lahar-conn"))
            .count()
    }

    const CONNS: usize = 512;
    const SESSIONS: usize = 8;
    let server = LaharServer::start(local_config(), schema_db()).unwrap();
    let addr = server.addr();

    let mut clients: Vec<LaharClient> = (0..CONNS)
        .map(|i| LaharClient::connect(addr, &format!("fan-{}", i % SESSIONS)).unwrap())
        .collect();
    // Every connection is live (a real request/response round trip),
    // all at once.
    for client in &mut clients {
        assert_eq!(
            client.ping().unwrap(),
            lahar::core::protocol::PROTOCOL_VERSION
        );
    }
    assert_eq!(
        conn_threads(),
        1,
        "512 open connections must still be served by the single reactor thread"
    );

    // Each connection closes one tick on its session; nothing may be
    // silently dropped even with all 512 interleaving.
    for client in clients.iter_mut().take(SESSIONS) {
        client.open().unwrap();
    }
    for client in &mut clients {
        loop {
            match client.tick() {
                Ok(_) => break,
                Err(EngineError::Remote {
                    code: WireCode::Overloaded,
                    ..
                }) => std::thread::sleep(std::time::Duration::from_millis(2)),
                Err(e) => panic!("tick under fan-out failed: {e}"),
            }
        }
    }
    for client in clients.iter_mut().take(SESSIONS) {
        let (t, _) = client.open().unwrap();
        assert_eq!(
            t as usize,
            CONNS / SESSIONS,
            "every accepted tick must land on its session's clock"
        );
    }
    drop(clients);
    client_free_shutdown(server);
}
