//! The backbone correctness suite: every evaluation path in the engine
//! must agree with the possible-world oracle (Definition 2.3) on random
//! small databases.
//!
//! Databases are kept tiny (2 keys × ≤2 values × ≤5 ticks) so the oracle's
//! exponential world enumeration stays fast; queries cover all four
//! classes and both stream representations.

use lahar::core::{CompileOptions, Lahar};
use lahar::model::{Cpt, Database, Domain, Marginal, Stream, StreamKey};
use lahar::query::{parse_query, prob_series};
use proptest::prelude::*;

const TICKS: usize = 4;

/// Strategy: one stream's probabilistic content over a 2-value domain.
#[derive(Debug, Clone)]
struct StreamSpec {
    markov: bool,
    /// For independent: per-tick (p_a, p_b); for markov: initial plus rows.
    rows: Vec<(f64, f64)>,
}

fn stream_spec() -> impl Strategy<Value = StreamSpec> {
    (
        any::<bool>(),
        prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), TICKS + 2 * (TICKS - 1)),
    )
        .prop_map(|(markov, raw)| StreamSpec {
            markov,
            rows: raw
                .into_iter()
                .map(|(a, b)| {
                    // Normalize so a + b <= 1 (the rest is bottom mass).
                    let total = a + b;
                    if total > 1.0 {
                        (a / total * 0.95, b / total * 0.95)
                    } else {
                        (a, b)
                    }
                })
                .collect(),
        })
}

fn build_stream(db: &Database, key: &str, spec: &StreamSpec) -> Stream {
    let i = db.interner();
    let domain = Domain::new(
        1,
        vec![
            lahar::model::tuple([i.intern("a")]),
            lahar::model::tuple([i.intern("b")]),
        ],
    )
    .unwrap();
    let id = StreamKey {
        stream_type: i.intern("At"),
        key: lahar::model::tuple([i.intern(key)]),
    };
    let marginal =
        |&(a, b): &(f64, f64)| Marginal::new(&domain, vec![a, b, (1.0 - a - b).max(0.0)]).unwrap();
    if spec.markov {
        let initial = marginal(&spec.rows[0]);
        let cpts = (0..TICKS - 1)
            .map(|t| {
                // Two rows per step: transitions from a and from b; from
                // bottom stay bottom.
                let ra = spec.rows[TICKS + 2 * t];
                let rb = spec.rows[TICKS + 2 * t + 1];
                let col = |r: (f64, f64)| [r.0, r.1, (1.0 - r.0 - r.1).max(0.0)];
                let ca = col(ra);
                let cb = col(rb);
                let mut data = vec![0.0; 9];
                for next in 0..3 {
                    data[next * 3] = ca[next];
                    data[next * 3 + 1] = cb[next];
                }
                data[2 * 3 + 2] = 1.0;
                Cpt::new(3, data).unwrap()
            })
            .collect();
        Stream::markov(id, domain, initial, cpts).unwrap()
    } else {
        let marginals = spec.rows[..TICKS].iter().map(marginal).collect();
        Stream::independent(id, domain, marginals).unwrap()
    }
}

fn build_db(s1: &StreamSpec, s2: &StreamSpec) -> Database {
    let mut db = Database::new();
    db.declare_stream("At", &["p"], &["l"]).unwrap();
    db.declare_relation("IsA", 1).unwrap();
    let i = db.interner().clone();
    db.insert_relation_tuple("IsA", lahar::model::tuple([i.intern("a")]))
        .unwrap();
    db.add_stream(build_stream(&db, "joe", s1)).unwrap();
    db.add_stream(build_stream(&db, "sue", s2)).unwrap();
    db
}

/// Queries spanning all classes (the engine dispatches per class).
const QUERIES: &[&str] = &[
    // Regular.
    "At('joe', 'a')",
    "At('joe', 'a') ; At('joe', 'b')",
    "At('joe', 'a') ; At('sue', 'b')",
    "At('joe', l)[IsA(l)] ; At('joe', 'b')",
    "sigma[l = 'b'](At('joe', 'a') ; At('joe', l))",
    "At('joe','a') ; (At('joe', l))+{} ; At('joe','b')",
    "(At('joe', l))+{| IsA(l)}",
    // Extended regular.
    "At(p, 'a') ; At(p, 'b')",
    "sigma[l2 = 'b'](At(p, 'a') ; At(p, l2))",
    "(At(p, l))+{p | IsA(l)}",
];

fn assert_engine_matches_oracle(db: &Database, src: &str) {
    let got = Lahar::prob_series(db, src).unwrap_or_else(|e| panic!("{src}: {e}"));
    let q = parse_query(db.interner(), src).unwrap();
    let want = prob_series(db, &q).unwrap();
    for (t, (g, w)) in got.iter().zip(&want).enumerate() {
        assert!(
            (g - w).abs() < 1e-9,
            "{src} at t={t}: engine {g} vs oracle {w}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exact_evaluators_match_oracle(s1 in stream_spec(), s2 in stream_spec()) {
        let db = build_db(&s1, &s2);
        for src in QUERIES {
            assert_engine_matches_oracle(&db, src);
        }
    }

    /// Safe queries with a seq split: prefix over R/S, witness over T.
    #[test]
    fn safe_plans_match_oracle(
        s1 in stream_spec(),
        s2 in stream_spec(),
        witness in stream_spec(),
    ) {
        let mut db = Database::new();
        db.declare_stream("R", &["k"], &["v"]).unwrap();
        db.declare_stream("T", &["k"], &["v"]).unwrap();
        let i = db.interner().clone();
        // Reuse the At-stream builder under different type names.
        let mut tmp = Database::new();
        tmp.declare_stream("At", &["p"], &["l"]).unwrap();
        for (key, spec, st) in [("k1", &s1, "R"), ("k2", &s2, "R"), ("w", &witness, "T")] {
            let s = build_stream(&tmp, key, spec);
            let domain = s.domain().clone();
            let id = StreamKey {
                stream_type: i.intern(st),
                key: lahar::model::tuple([i.intern(key)]),
            };
            let rebuilt = match s.data() {
                lahar::model::StreamData::Independent(ms) => {
                    Stream::independent(id, domain, ms.clone()).unwrap()
                }
                lahar::model::StreamData::Markov { initial, cpts } => {
                    Stream::markov(id, domain, initial.clone(), cpts.clone()).unwrap()
                }
            };
            db.add_stream(rebuilt).unwrap();
        }
        for src in [
            "R(x, 'a') ; R(x, 'b') ; T('w', y)",
            "R(x, _) ; R(x, _) ; T('w', 'b')",
        ] {
            let q = parse_query(db.interner(), src).unwrap();
            let compiled = Lahar::compile_with(&db, &q, CompileOptions::new()).unwrap();
            let got = compiled.prob_series(db.horizon()).unwrap();
            let want = prob_series(&db, &q).unwrap();
            for (t, (g, w)) in got.iter().zip(&want).enumerate() {
                prop_assert!(
                    (g - w).abs() < 1e-9,
                    "{} at t={}: engine {} vs oracle {}", src, t, g, w
                );
            }
        }
    }
}

// The deterministic CEP baseline must agree with the reference semantics
// on sampled worlds.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn deterministic_cep_matches_reference(s1 in stream_spec(), s2 in stream_spec(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let db = build_db(&s1, &s2);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let world = db.sample_world(&mut rng);
        for src in ["At('joe','a') ; At('joe','b')", "At(p,'a') ; At(p,'b')"] {
            let got = lahar::baselines::detect_series(&db, &world, src).unwrap();
            let q = parse_query(db.interner(), src).unwrap();
            for (t, g) in got.iter().enumerate() {
                let want = lahar::query::satisfied_at(&db, &world, &q, t as u32).unwrap();
                prop_assert_eq!(*g, want, "{} at t={}", src, t);
            }
        }
    }
}
