//! Chaos suite: deterministic fault injection against the streaming
//! session's resilience layer (`cargo test --features failpoints`).
//!
//! Every test drives a faulty session and a fault-free sequential
//! reference through the same marginal script and asserts that alerts
//! after recovery are **bit-identical** (`f64::to_bits`) to the
//! reference — the acceptance bar of the resilience layer.
//!
//! The fail-point registry is process-global, so tests serialize on a
//! local mutex and disarm every point on entry and exit.

#![cfg(feature = "failpoints")]

use lahar::core::failpoint::{self, FailAction, Schedule};
use lahar::core::EngineError;
use lahar::model::{Database, Marginal, StreamBuilder};
use lahar::{Lahar, RealTimeSession, SessionConfig, TickMode};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Serializes chaos tests (the fail-point registry is process-global)
/// and guarantees a clean registry on entry and exit.
struct ChaosGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl ChaosGuard {
    fn acquire() -> Self {
        static LOCK: Mutex<()> = Mutex::new(());
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        failpoint::clear_all();
        ChaosGuard(guard)
    }
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        failpoint::clear_all();
    }
}

fn schema_db() -> (Database, StreamBuilder, StreamBuilder) {
    let mut db = Database::new();
    db.declare_stream("At", &["person"], &["loc"]).unwrap();
    let i = db.interner().clone();
    let joe = StreamBuilder::new(&i, "At", &["joe"], &["a", "h", "c"]);
    let sue = StreamBuilder::new(&i, "At", &["sue"], &["a", "h", "c"]);
    db.add_stream(joe.clone().independent(vec![]).unwrap())
        .unwrap();
    db.add_stream(sue.clone().independent(vec![]).unwrap())
        .unwrap();
    (db, joe, sue)
}

/// A fixed 8-tick marginal script over both streams.
fn script(joe: &StreamBuilder, sue: &StreamBuilder) -> Vec<Vec<(usize, Marginal)>> {
    let probs = [
        [("a", 0.6), ("h", 0.2)],
        [("h", 0.5), ("c", 0.3)],
        [("c", 0.7), ("a", 0.1)],
        [("a", 0.4), ("c", 0.4)],
        [("c", 0.9), ("h", 0.05)],
        [("h", 0.3), ("a", 0.5)],
        [("a", 0.8), ("c", 0.1)],
        [("c", 0.6), ("h", 0.2)],
    ];
    probs
        .iter()
        .enumerate()
        .map(|(t, p)| {
            vec![
                (0, joe.marginal(&p[..1 + t % 2]).unwrap()),
                (1, sue.marginal(&p[1..]).unwrap()),
            ]
        })
        .collect()
}

fn register_all(session: &mut RealTimeSession) {
    session.register("ext", "At(p,'a') ; At(p,'c')").unwrap();
    session
        .register("joe", "At('joe','a') ; At('joe','c')")
        .unwrap();
    session.register("sue_h", "At('sue','h')").unwrap();
}

/// Resolves a raw script index to the session's opaque stream handle.
fn sid(session: &RealTimeSession, idx: usize) -> lahar::StreamId {
    session.database().stream_id_at(idx).unwrap()
}

fn parallel_session(config_patch: impl FnOnce(&mut SessionConfig)) -> RealTimeSession {
    let (db, _, _) = schema_db();
    let mut config = SessionConfig::builder()
        .tick_mode(TickMode::Parallel)
        .n_workers(3)
        .build()
        .unwrap();
    config_patch(&mut config);
    let mut session = RealTimeSession::with_config(db, config).unwrap();
    register_all(&mut session);
    session
}

/// Fault-free sequential reference run over the full script.
fn reference_alerts(ticks: &[Vec<(usize, Marginal)>]) -> Vec<Vec<(String, u32, u64)>> {
    let (db, _, _) = schema_db();
    let mut session = RealTimeSession::with_config(
        db,
        SessionConfig::builder()
            .tick_mode(TickMode::Sequential)
            .build()
            .unwrap(),
    )
    .unwrap();
    register_all(&mut session);
    ticks
        .iter()
        .map(|staged| {
            for (idx, m) in staged {
                session.stage(sid(&session, *idx), m.clone()).unwrap();
            }
            session
                .tick()
                .unwrap()
                .into_iter()
                .map(|a| (a.name.to_string(), a.t, a.probability.to_bits()))
                .collect()
        })
        .collect()
}

fn assert_tick_matches(got: &[lahar::core::Alert], want: &[(String, u32, u64)]) {
    assert_eq!(got.len(), want.len());
    for (a, (name, t, bits)) in got.iter().zip(want) {
        assert_eq!(&*a.name, name);
        assert_eq!(a.t, *t);
        assert_eq!(
            a.probability.to_bits(),
            *bits,
            "alert '{}' at t={} diverged: {} vs {}",
            name,
            t,
            a.probability,
            f64::from_bits(*bits)
        );
    }
}

/// Drives `session` through the script, injecting `arm` immediately
/// before tick `fault_at`, and checks: the faulted tick errors with
/// `expect_err`, `recover()` completes it bit-identically to the
/// reference, and every later tick stays bit-identical.
fn run_fault_recover_script(
    mut session: RealTimeSession,
    fault_at: usize,
    arm: impl FnOnce(),
    expect_err: impl FnOnce(&EngineError),
) {
    let (_, joe, sue) = schema_db();
    let ticks = script(&joe, &sue);
    let reference = reference_alerts(&ticks);
    // Option-wrapped so the compiler accepts FnOnce calls inside the
    // loop: the fault fires on exactly one iteration.
    let (mut arm, mut expect_err) = (Some(arm), Some(expect_err));
    for (t, staged) in ticks.iter().enumerate() {
        for (idx, m) in staged {
            session.stage(sid(&session, *idx), m.clone()).unwrap();
        }
        if t == fault_at {
            (arm.take().expect("single fault tick"))();
            let err = session.tick().unwrap_err();
            (expect_err.take().expect("single fault tick"))(&err);
            assert!(err.is_recoverable(), "fault must be recoverable: {err}");
            assert!(session.is_poisoned());
            failpoint::clear_all();
            let alerts = session.recover().unwrap();
            assert!(!session.is_poisoned());
            assert_tick_matches(&alerts, &reference[t]);
        } else {
            assert_tick_matches(&session.tick().unwrap(), &reference[t]);
        }
    }
    assert_eq!(session.stats().snapshot().recoveries, 1);
}

/// Tentpole acceptance: a worker panic mid-run, recover(), and every
/// subsequent tick bit-identical to a fault-free session.
#[test]
fn worker_panic_mid_tick_recovers_bit_identically() {
    let _guard = ChaosGuard::acquire();
    run_fault_recover_script(
        parallel_session(|_| {}),
        3,
        || failpoint::configure("worker_step", FailAction::Panic, Schedule::Once { at: 0 }),
        |err| {
            assert!(
                matches!(
                    err,
                    EngineError::WorkerPanicked {
                        worker: Some(_),
                        ..
                    }
                ),
                "expected a located worker panic, got {err:?}"
            );
        },
    );
}

/// Same fault, but recovery runs from a checkpoint plus the bounded
/// replay log instead of replaying the whole database history.
#[test]
fn worker_panic_recovers_from_checkpoint_and_replay_log() {
    let _guard = ChaosGuard::acquire();
    let session = parallel_session(|c| c.checkpoint_interval = 2);
    run_fault_recover_script(
        session,
        5,
        || failpoint::configure("worker_step", FailAction::Panic, Schedule::Once { at: 0 }),
        |err| assert!(matches!(err, EngineError::WorkerPanicked { .. })),
    );
}

/// An injected structured error (not a panic) takes the same
/// poison-then-recover path.
#[test]
fn injected_worker_error_recovers_bit_identically() {
    let _guard = ChaosGuard::acquire();
    run_fault_recover_script(
        parallel_session(|_| {}),
        2,
        || failpoint::configure("worker_step", FailAction::Error, Schedule::Once { at: 0 }),
        |err| assert_eq!(*err, EngineError::FaultInjected("worker_step".to_owned())),
    );
}

/// A panic on the sequential path drops every shard; recover() must
/// rebuild all of them bit-identically.
#[test]
fn sequential_path_panic_recovers_bit_identically() {
    let _guard = ChaosGuard::acquire();
    let (db, _, _) = schema_db();
    let mut session = RealTimeSession::with_config(
        db,
        SessionConfig::builder()
            .tick_mode(TickMode::Sequential)
            .build()
            .unwrap(),
    )
    .unwrap();
    register_all(&mut session);
    run_fault_recover_script(
        session,
        4,
        || {
            failpoint::configure(
                "sequential_step",
                FailAction::Panic,
                Schedule::Once { at: 1 },
            )
        },
        |err| {
            assert!(
                matches!(err, EngineError::WorkerPanicked { worker: None, .. }),
                "sequential faults carry no worker index, got {err:?}"
            );
        },
    );
}

/// Watchdog: a stalled worker trips the tick deadline, the session
/// poisons and degrades, and after recovery ticks run sequentially
/// (still bit-identical) until degraded mode is cleared.
#[test]
fn tick_timeout_degrades_to_sequential_then_recovers() {
    let _guard = ChaosGuard::acquire();
    let mut session = parallel_session(|c| c.tick_deadline = Some(Duration::from_millis(40)));
    let (_, joe, sue) = schema_db();
    let ticks = script(&joe, &sue);
    let reference = reference_alerts(&ticks);

    for t in 0..2 {
        for (idx, m) in &ticks[t] {
            session.stage(sid(&session, *idx), m.clone()).unwrap();
        }
        assert_tick_matches(&session.tick().unwrap(), &reference[t]);
    }
    let parallel_before = session.stats().snapshot().parallel_ticks;

    // Stall every worker step well past the deadline.
    failpoint::configure(
        "worker_step",
        FailAction::Delay(Duration::from_millis(400)),
        Schedule::EveryNth { n: 1 },
    );
    for (idx, m) in &ticks[2] {
        session.stage(sid(&session, *idx), m.clone()).unwrap();
    }
    let err = session.tick().unwrap_err();
    assert!(
        matches!(err, EngineError::TickTimeout { .. }),
        "expected a watchdog trip, got {err:?}"
    );
    assert!(err.is_recoverable());
    assert!(session.is_poisoned());
    assert!(session.is_degraded());
    failpoint::clear_all();

    let alerts = session.recover().unwrap();
    assert_tick_matches(&alerts, &reference[2]);

    // Degraded mode: later ticks avoid the pool but stay bit-identical.
    for t in 3..6 {
        for (idx, m) in &ticks[t] {
            session.stage(sid(&session, *idx), m.clone()).unwrap();
        }
        assert_tick_matches(&session.tick().unwrap(), &reference[t]);
    }
    let snap = session.stats().snapshot();
    assert_eq!(
        snap.parallel_ticks, parallel_before,
        "degraded ticks must not use the pool"
    );
    assert_eq!(snap.degraded_ticks, 3);
    assert_eq!(snap.recoveries, 1);

    // Clearing degraded mode re-engages the pool, still bit-identical.
    session.clear_degraded();
    for t in 6..8 {
        for (idx, m) in &ticks[t] {
            session.stage(sid(&session, *idx), m.clone()).unwrap();
        }
        assert_tick_matches(&session.tick().unwrap(), &reference[t]);
    }
    assert_eq!(
        session.stats().snapshot().parallel_ticks,
        parallel_before + 2
    );
}

/// A worker panic in the middle of a multi-tick epoch: recover()
/// re-completes the whole in-flight epoch in one call, and its alerts —
/// plus everything before and after — stay bit-identical to the
/// per-tick sequential reference.
#[test]
fn mid_epoch_worker_panic_recovers_whole_epoch_bit_identically() {
    let _guard = ChaosGuard::acquire();
    let mut session = parallel_session(|c| c.max_epoch_ticks = 4);
    let (_, joe, sue) = schema_db();
    let ticks = script(&joe, &sue);
    let reference = reference_alerts(&ticks);
    let to_batch = |session: &RealTimeSession,
                    slice: &[Vec<(usize, Marginal)>]|
     -> Vec<Vec<(lahar::StreamId, Marginal)>> {
        slice
            .iter()
            .map(|staged| {
                staged
                    .iter()
                    .map(|(idx, m)| (sid(session, *idx), m.clone()))
                    .collect()
            })
            .collect()
    };

    // The first epoch (ticks 0–3) closes clean under a single join.
    let batch = to_batch(&session, &ticks[..4]);
    let alerts = session.tick_epoch(batch).unwrap();
    let flat: Vec<_> = reference[..4].iter().flatten().cloned().collect();
    assert_tick_matches(&alerts, &flat);
    assert_eq!(session.stats().snapshot().epochs, 1);

    // Panic partway into the second epoch: with 3 shard jobs each
    // stepping 4 ticks, hit 4 lands after some of the epoch's ticks
    // have already been stepped somewhere — a genuine mid-epoch fault.
    failpoint::configure("worker_step", FailAction::Panic, Schedule::Once { at: 4 });
    let batch = to_batch(&session, &ticks[4..]);
    let err = session.tick_epoch(batch).unwrap_err();
    assert!(
        matches!(err, EngineError::WorkerPanicked { .. }),
        "expected a worker panic, got {err:?}"
    );
    assert!(err.is_recoverable());
    assert!(session.is_poisoned());
    failpoint::clear_all();

    // recover() targets the whole interrupted epoch, not just one tick.
    let alerts = session.recover().unwrap();
    let flat: Vec<_> = reference[4..].iter().flatten().cloned().collect();
    assert_tick_matches(&alerts, &flat);
    assert!(!session.is_poisoned());
    assert_eq!(session.now(), ticks.len() as u32);
    assert_eq!(session.stats().snapshot().recoveries, 1);
}

/// The poisoned-session regression surface: between fault and recovery,
/// every mutating entry point refuses cleanly instead of corrupting or
/// succeeding silently.
#[test]
fn poisoned_window_rejects_mutations_until_recovered() {
    let _guard = ChaosGuard::acquire();
    let mut session = parallel_session(|_| {});
    let (_, joe, sue) = schema_db();
    let ticks = script(&joe, &sue);
    for (idx, m) in &ticks[0] {
        session.stage(sid(&session, *idx), m.clone()).unwrap();
    }
    failpoint::configure("worker_step", FailAction::Panic, Schedule::Once { at: 0 });
    session.tick().unwrap_err();
    failpoint::clear_all();

    let staged = session.stage(sid(&session, 0), joe.marginal(&[("a", 0.5)]).unwrap());
    assert_eq!(staged, Err(EngineError::SessionPoisoned));
    assert_eq!(
        session.register("late", "At('sue','a')").unwrap_err(),
        EngineError::SessionPoisoned
    );
    assert_eq!(session.tick().unwrap_err(), EngineError::SessionPoisoned);

    session.recover().unwrap();
    let (id0, id1) = (sid(&session, 0), sid(&session, 1));
    session
        .stage(id0, joe.marginal(&[("a", 0.5)]).unwrap())
        .unwrap();
    session
        .stage(id1, sue.marginal(&[("h", 0.4)]).unwrap())
        .unwrap();
    session.tick().unwrap();
}

/// The sampler fail point gates Monte Carlo compilation.
#[test]
fn sampler_failpoint_injects_structured_errors() {
    let _guard = ChaosGuard::acquire();
    let mut db = Database::new();
    db.declare_stream("At", &["person"], &["loc"]).unwrap();
    let i = db.interner().clone();
    for p in ["joe", "sue"] {
        let b = StreamBuilder::new(&i, "At", &[p], &["a", "c"]);
        let ms = vec![
            b.marginal(&[("a", 0.5)]).unwrap(),
            b.marginal(&[("c", 0.5)]).unwrap(),
        ];
        db.add_stream(b.independent(ms).unwrap()).unwrap();
    }
    let src = "sigma[x = y](At(x,'a') ; At(y,'c'))";
    failpoint::configure("sampler", FailAction::Error, Schedule::EveryNth { n: 1 });
    assert_eq!(
        Lahar::prob_series(&db, src).unwrap_err(),
        EngineError::FaultInjected("sampler".to_owned())
    );
    failpoint::clear("sampler");
    assert!(Lahar::prob_series(&db, src).is_ok());
}
