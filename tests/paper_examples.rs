//! Regression tests pinned to the paper's own examples: every named query
//! must parse, classify, and behave exactly as the paper describes.

use lahar::core::{Algorithm, CompileOptions, Lahar};
use lahar::model::{Database, StreamBuilder};
use lahar::query::{classify, compile_safe_plan, parse_and_validate, NormalQuery, QueryClass};

fn paper_db() -> Database {
    let mut db = Database::new();
    db.declare_stream("At", &["person"], &["loc"]).unwrap();
    db.declare_stream("Carries", &["person", "object"], &["loc"])
        .unwrap();
    db.declare_stream("R", &["k"], &["v"]).unwrap();
    db.declare_stream("S", &["k"], &["v"]).unwrap();
    db.declare_stream("T", &["k"], &["v"]).unwrap();
    for (rel, arity) in [
        ("Hallway", 1),
        ("Person", 1),
        ("Laptop", 1),
        ("Office", 2),
        ("CRoom", 1),
        ("LectureRoom", 1),
    ] {
        db.declare_relation(rel, arity).unwrap();
    }
    db
}

fn class_of(db: &Database, src: &str) -> QueryClass {
    let q = parse_and_validate(db.catalog(), db.interner(), src)
        .unwrap_or_else(|e| panic!("{src}: {e}"));
    classify(db.catalog(), &NormalQuery::from_query(&q))
}

#[test]
fn paper_query_classifications() {
    let db = paper_db();
    let cases = [
        // Ex 2.2 — q_JoeCoffee: constants only.
        (
            "At('Joe','220') ; At('Joe', l)[CRoom(l)] ; At('Joe','220')",
            QueryClass::Regular,
        ),
        // Ex 2.2 — q_AnyCoffee.
        (
            "sigma[Person(p) AND Office(p, l1) AND CRoom(l3)]\
             ( At(p, l1) ; (At(p, l2))+{p | Hallway(l2)} ; At(p, l3) )",
            QueryClass::ExtendedRegular,
        ),
        // Ex 3.2 — q_Joe,hall.
        (
            "At('Joe','a') ; (At('Joe', l))+{| Hallway(l)} ; At('Joe','c')",
            QueryClass::Regular,
        ),
        // Ex 3.6 — q_hall.
        (
            "sigma[Person(x)](At(x,'a') ; (At(x, l2))+{x | Hallway(l2)} ; At(x,'c'))",
            QueryClass::ExtendedRegular,
        ),
        // Ex 3.9 — q_talk.
        (
            "sigma[Person(x) AND Laptop(y) AND Office(x, z) AND LectureRoom(u)]\
             ( Carries(x, y, z) ; (Carries(x, y, _))+{x, y} ; At(x, u) )",
            QueryClass::Safe,
        ),
        // Fig 6 / Ex 3.17.
        ("R(x, _) ; S(x, _) ; T('a', y)", QueryClass::Safe),
        // §3.4 hardness frontier.
        ("sigma[x = y](R(x, _) ; S(y, _))", QueryClass::Unsafe),
        ("R('r', _) ; (S(x, _))+{x}", QueryClass::Unsafe),
        ("R('r', _) ; S(x, _) ; T(x, _)", QueryClass::Unsafe),
        ("R(x, _) ; S('s', _) ; T(x, _)", QueryClass::Unsafe),
    ];
    for (src, want) in cases {
        assert_eq!(class_of(&db, src), want, "{src}");
    }
}

#[test]
fn unsafe_queries_have_no_safe_plan_and_safe_queries_do() {
    let db = paper_db();
    let safe = "R(x, _) ; S(x, _) ; T('a', y)";
    let q = parse_and_validate(db.catalog(), db.interner(), safe).unwrap();
    assert!(compile_safe_plan(db.catalog(), &NormalQuery::from_query(&q)).is_ok());

    for src in [
        "sigma[x = y](R(x, _) ; S(y, _))",
        "R('r', _) ; S(x, _) ; T(x, _)",
        "R(x, _) ; S('s', _) ; T(x, _)",
    ] {
        let q = parse_and_validate(db.catalog(), db.interner(), src).unwrap();
        assert!(
            compile_safe_plan(db.catalog(), &NormalQuery::from_query(&q)).is_err(),
            "{src} must have no safe plan"
        );
    }
}

/// Example 3.11 end to end: q_f and q_s differ exactly as described, on
/// both deterministic and probabilistic data.
#[test]
fn example_3_11_qf_vs_qs() {
    let mut db = Database::new();
    db.declare_stream("R", &[], &["y"]).unwrap();
    let i = db.interner().clone();
    let b = StreamBuilder::new(&i, "R", &[], &["a", "b", "c"]);
    // The deterministic input I = R(a)@0, R(c)@1, R(b)@2.
    db.add_stream(b.deterministic(&[Some("a"), Some("c"), Some("b")]).unwrap())
        .unwrap();

    let qf = Lahar::prob_series(&db, "R('a') ; R('b')").unwrap();
    assert_eq!(qf, vec![0.0, 0.0, 1.0], "q_f is true at t=2");
    let qs = Lahar::prob_series(&db, "sigma[y = 'b'](R('a') ; R(y))").unwrap();
    assert_eq!(qs, vec![0.0, 0.0, 0.0], "q_s is never true");
}

/// The engine's dispatch matches the classification table in §3.
#[test]
fn dispatch_per_class() {
    let mut db = paper_db();
    let i = db.interner().clone();
    for key in ["k1", "k2"] {
        for st in ["R", "S", "T"] {
            let b = StreamBuilder::new(&i, st, &[key], &["a", "b"]);
            let ms = vec![
                b.marginal(&[("a", 0.5)]).unwrap(),
                b.marginal(&[("b", 0.5)]).unwrap(),
            ];
            db.add_stream(b.independent(ms).unwrap()).unwrap();
        }
    }
    let cases = [
        ("R('k1', 'a') ; S('k1', 'b')", Algorithm::Regular),
        ("R(x, 'a') ; S(x, 'b')", Algorithm::ExtendedRegular),
        ("R(x, _) ; S(x, _) ; T('k1', y)", Algorithm::SafePlan),
        ("sigma[x = y](R(x, _) ; S(y, _))", Algorithm::Sampling),
    ];
    for (src, algo) in cases {
        let compiled = Lahar::compile_with(&db, src, CompileOptions::new()).unwrap();
        assert_eq!(compiled.algorithm(), algo, "{src}");
    }
}

/// The complexity claims behind Theorems 3.3/3.7: regular evaluation state
/// does not grow with the stream length, extended regular state grows with
/// the number of keys.
#[test]
fn evaluator_state_scaling() {
    let mut db = Database::new();
    db.declare_stream("At", &["p"], &["l"]).unwrap();
    let i = db.interner().clone();
    for key in ["p1", "p2", "p3", "p4"] {
        let b = StreamBuilder::new(&i, "At", &[key], &["a", "b"]);
        let ms = (0..6)
            .map(|_| b.marginal(&[("a", 0.4), ("b", 0.4)]).unwrap())
            .collect();
        db.add_stream(b.independent(ms).unwrap()).unwrap();
    }
    let q = parse_and_validate(db.catalog(), db.interner(), "At(p,'a') ; At(p,'b')").unwrap();
    let nq = NormalQuery::from_query(&q);
    let eval = lahar::core::ExtendedRegularEvaluator::new(&db, &nq).unwrap();
    assert_eq!(eval.n_chains(), 4, "one chain per key (Thm 3.7)");
}
