//! Checkpoint property suite: save → serialize → parse → restore must
//! be lossless. Random marginal scripts check that a restored session
//! (a) rebuilds a database whose `prob_series` answers are bit-identical
//! to the original's, and (b) produces bit-identical alerts for every
//! future tick — including across a tick-mode override at restore time.

use lahar::model::{Database, StreamBuilder};
use lahar::{Checkpoint, Lahar, RealTimeSession, SessionConfig, TickMode};
use proptest::prelude::*;

const QUERIES: [(&str, &str); 2] = [("ext", "At(p,'a') ; At(p,'c')"), ("joe", "At('joe','a')")];

fn schema_db() -> (Database, StreamBuilder, StreamBuilder) {
    let mut db = Database::new();
    db.declare_stream("At", &["person"], &["loc"]).unwrap();
    let i = db.interner().clone();
    let joe = StreamBuilder::new(&i, "At", &["joe"], &["a", "h", "c"]);
    let sue = StreamBuilder::new(&i, "At", &["sue"], &["a", "h", "c"]);
    db.add_stream(joe.clone().independent(vec![]).unwrap())
        .unwrap();
    db.add_stream(sue.clone().independent(vec![]).unwrap())
        .unwrap();
    (db, joe, sue)
}

fn session(mode: TickMode) -> RealTimeSession {
    let (db, _, _) = schema_db();
    let mut s = RealTimeSession::with_config(
        db,
        SessionConfig::builder()
            .tick_mode(mode)
            .n_workers(2)
            .build()
            .unwrap(),
    )
    .unwrap();
    for (name, src) in QUERIES {
        s.register(name, src).unwrap();
    }
    s
}

/// One tick of staged marginals for both streams from a `(p_a, p_c)`
/// pair per stream (the rest of the mass is ⊥).
type TickSpec = ((f64, f64), (f64, f64));

fn prob_pair() -> impl Strategy<Value = (f64, f64)> {
    (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, c)| {
        let total = a + c;
        if total > 1.0 {
            (a / total * 0.95, c / total * 0.95)
        } else {
            (a, c)
        }
    })
}

fn stage_tick(s: &mut RealTimeSession, joe: &StreamBuilder, sue: &StreamBuilder, spec: &TickSpec) {
    let jm = joe.marginal(&[("a", spec.0 .0), ("c", spec.0 .1)]).unwrap();
    let sm = sue.marginal(&[("a", spec.1 .0), ("c", spec.1 .1)]).unwrap();
    let (j, u) = (
        s.database().stream_id_at(0).unwrap(),
        s.database().stream_id_at(1).unwrap(),
    );
    s.stage(j, jm).unwrap();
    s.stage(u, sm).unwrap();
}

fn alerts_bits(alerts: &[lahar::core::Alert]) -> Vec<(String, u32, u64)> {
    alerts
        .iter()
        .map(|a| (a.name.to_string(), a.t, a.probability.to_bits()))
        .collect()
}

fn series_bits(db: &Database, src: &str) -> Vec<u64> {
    Lahar::prob_series(db, src)
        .unwrap()
        .iter()
        .map(|p| p.to_bits())
        .collect()
}

/// Runs `script[..split]` on one session, checkpoints through a JSON
/// round trip, restores with `restore_mode` (None = checkpointed
/// config), and drives both sessions through `script[split..]`,
/// asserting bit-identical alerts and accumulated `prob_series`.
fn check_roundtrip(
    script: &[TickSpec],
    split: usize,
    original_mode: TickMode,
    restore_mode: Option<TickMode>,
) -> Result<(), TestCaseError> {
    let (_, joe, sue) = schema_db();
    let mut original = session(original_mode);
    for spec in &script[..split] {
        stage_tick(&mut original, &joe, &sue, spec);
        original.tick().unwrap();
    }
    let ckpt = original.checkpoint().unwrap();
    let json = ckpt.to_json();
    let parsed = Checkpoint::from_json(&json).unwrap();
    prop_assert_eq!(&parsed, &ckpt, "parse(to_json) must be the identity");
    prop_assert_eq!(
        parsed.to_json(),
        json,
        "re-encoding a parsed checkpoint must be stable"
    );

    let (fresh, _, _) = schema_db();
    let mut restored = match restore_mode {
        None => RealTimeSession::restore(fresh, &parsed).unwrap(),
        Some(mode) => {
            let mut config = parsed.config();
            config.tick_mode = mode;
            RealTimeSession::restore_with_config(fresh, &parsed, config).unwrap()
        }
    };
    prop_assert_eq!(restored.now(), original.now());
    for (_, src) in QUERIES {
        prop_assert_eq!(
            series_bits(restored.database(), src),
            series_bits(original.database(), src),
            "restored history diverged for {}",
            src
        );
    }
    for spec in &script[split..] {
        stage_tick(&mut original, &joe, &sue, spec);
        stage_tick(&mut restored, &joe, &sue, spec);
        let a = original.tick().unwrap();
        let b = restored.tick().unwrap();
        prop_assert_eq!(alerts_bits(&a), alerts_bits(&b));
    }
    for (_, src) in QUERIES {
        prop_assert_eq!(
            series_bits(restored.database(), src),
            series_bits(original.database(), src),
            "post-restore ticks diverged for {}",
            src
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn checkpoint_roundtrip_preserves_series_and_future_alerts(
        script in prop::collection::vec((prob_pair(), prob_pair()), 6),
        split in 1usize..5,
    ) {
        check_roundtrip(&script, split, TickMode::Sequential, None)?;
    }

    /// Restoring under a different tick mode (sequential checkpoint,
    /// parallel resume and vice versa) never changes answers.
    #[test]
    fn restore_is_tick_mode_independent(
        script in prop::collection::vec((prob_pair(), prob_pair()), 5),
        split in 1usize..4,
        to_parallel in any::<bool>(),
    ) {
        let (original, restored) = if to_parallel {
            (TickMode::Sequential, TickMode::Parallel)
        } else {
            (TickMode::Parallel, TickMode::Sequential)
        };
        check_roundtrip(&script, split, original, Some(restored))?;
    }
}

/// A corrupted serialization never restores silently.
#[test]
fn corrupt_checkpoints_are_rejected() {
    let (_, joe, sue) = schema_db();
    let mut s = session(TickMode::Sequential);
    stage_tick(&mut s, &joe, &sue, &((0.4, 0.3), (0.2, 0.5)));
    s.tick().unwrap();
    let json = s.checkpoint().unwrap().to_json();
    assert!(Checkpoint::from_json(&json[..json.len() - 2]).is_err());
    assert!(Checkpoint::from_json(&json.replace("lahar-checkpoint", "other")).is_err());
    assert!(Checkpoint::from_json("{}").is_err());
}

/// File-level corruption of a *persisted* checkpoint: truncation, a
/// flipped byte, and an emptied file must all fail the envelope check
/// with `CheckpointCorrupt` — a damaged generation never parses into a
/// session.
#[test]
fn corrupt_generation_files_never_parse() {
    use lahar::core::checkpoint::{generation_path, write_generation};
    use lahar::EngineError;

    let dir = std::env::temp_dir().join(format!("lahar-rt-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (_, joe, sue) = schema_db();
    let mut s = session(TickMode::Sequential);
    for spec in [((0.4, 0.3), (0.2, 0.5)), ((0.1, 0.6), (0.3, 0.3))] {
        stage_tick(&mut s, &joe, &sue, &spec);
        s.tick().unwrap();
    }
    let ckpt = s.checkpoint().unwrap();
    write_generation(&dir, "s", 1, &ckpt).unwrap();
    let path = generation_path(&dir, "s", 1);
    let pristine = std::fs::read(&path).unwrap();
    assert_eq!(
        Checkpoint::from_envelope(std::str::from_utf8(&pristine).unwrap()).unwrap(),
        ckpt,
        "the uncorrupted generation restores exactly"
    );

    let corruptions: [(&str, Vec<u8>); 3] = [
        ("truncated", pristine[..pristine.len() / 2].to_vec()),
        ("bit-flipped", {
            let mut bytes = pristine.clone();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            bytes
        }),
        ("emptied", Vec::new()),
    ];
    for (what, bytes) in corruptions {
        let err = match std::str::from_utf8(&bytes) {
            Ok(text) => Checkpoint::from_envelope(text).unwrap_err(),
            // Non-UTF-8 damage cannot even reach the parser; the
            // load path reports it the same way.
            Err(_) => EngineError::CheckpointCorrupt("not utf-8".to_owned()),
        };
        assert!(
            matches!(err, EngineError::CheckpointCorrupt(_)),
            "{what} generation must fail as CheckpointCorrupt, got {err:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Generation fallback end to end: tear the newest persisted generation,
/// `load_newest` quarantines it and restores the previous one, and the
/// restored session's series is bit-identical to the checkpointed
/// original at that point.
#[test]
fn torn_newest_generation_restores_the_previous_one() {
    use lahar::core::checkpoint::{
        generation_path, list_generations, load_newest, write_generation,
    };

    let dir = std::env::temp_dir().join(format!("lahar-rt-fallback-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (_, joe, sue) = schema_db();
    let script = [
        ((0.4, 0.3), (0.2, 0.5)),
        ((0.1, 0.6), (0.3, 0.3)),
        ((0.5, 0.2), (0.4, 0.4)),
    ];
    let mut s = session(TickMode::Sequential);

    // Generation 1 after two ticks, generation 2 after the third.
    for spec in &script[..2] {
        stage_tick(&mut s, &joe, &sue, spec);
        s.tick().unwrap();
    }
    let at_gen1 = s.checkpoint().unwrap();
    write_generation(&dir, "s", 1, &at_gen1).unwrap();
    stage_tick(&mut s, &joe, &sue, &script[2]);
    s.tick().unwrap();
    write_generation(&dir, "s", 2, &s.checkpoint().unwrap()).unwrap();

    // Intact scan prefers the newest generation.
    let loaded = load_newest(&dir, "s").unwrap().unwrap();
    assert_eq!((loaded.gen, loaded.checkpoint.t()), (2, 3));
    assert!(loaded.quarantined.is_empty());

    // Tear generation 2 in place: the scan must fall back to 1,
    // quarantining the damage as evidence rather than deleting it.
    let newest = generation_path(&dir, "s", 2);
    let full = std::fs::read(&newest).unwrap();
    std::fs::write(&newest, &full[..full.len() * 2 / 3]).unwrap();
    let loaded = load_newest(&dir, "s").unwrap().unwrap();
    assert_eq!((loaded.gen, loaded.checkpoint.t()), (1, 2));
    assert_eq!(loaded.quarantined.len(), 1);
    assert!(loaded.quarantined[0]
        .to_string_lossy()
        .ends_with(".corrupt"));
    assert!(loaded.quarantined[0].exists());
    assert_eq!(list_generations(&dir, "s").len(), 1);

    // The fallback is bit for bit the generation-1 capture, and it
    // restores into a live session at the gen-1 clock.
    assert_eq!(loaded.checkpoint, at_gen1);
    let (fresh, _, _) = schema_db();
    let restored = RealTimeSession::restore(fresh, &loaded.checkpoint).unwrap();
    assert_eq!(restored.now(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}
