//! Streaming-deployment regression suite: the incremental APIs
//! ([`CompiledQuery::step`], [`RealTimeSession::tick`]) must agree with
//! their batch and sequential counterparts on every algorithm path.

use lahar::core::ExtendedRegularEvaluator;
use lahar::model::{Database, Marginal, StreamBuilder};
use lahar::query::NormalQuery;
use lahar::{CompileOptions, Lahar, RealTimeSession, SessionConfig, TickMode};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A mixed database exercising all four compilation targets.
fn four_class_db() -> Database {
    let mut db = Database::new();
    db.declare_stream("At", &["person"], &["loc"]).unwrap();
    db.declare_stream("Door", &["id"], &["state"]).unwrap();
    db.declare_relation("Hallway", 1).unwrap();
    let i = db.interner().clone();
    db.insert_relation_tuple("Hallway", lahar::model::tuple([i.intern("h")]))
        .unwrap();
    for (p, pa) in [("joe", 0.5), ("sue", 0.3)] {
        let b = StreamBuilder::new(&i, "At", &[p], &["a", "h", "c"]);
        let ms = vec![
            b.marginal(&[("a", pa)]).unwrap(),
            b.marginal(&[("h", 0.6)]).unwrap(),
            b.marginal(&[("c", 0.5), ("h", 0.1)]).unwrap(),
            b.marginal(&[("c", 0.2), ("a", 0.3)]).unwrap(),
        ];
        db.add_stream(b.independent(ms).unwrap()).unwrap();
    }
    let b = StreamBuilder::new(&i, "Door", &["d1"], &["open", "closed"]);
    let ms = vec![
        b.marginal(&[("closed", 0.9)]).unwrap(),
        b.marginal(&[("open", 0.4)]).unwrap(),
        b.marginal(&[("open", 0.7)]).unwrap(),
        b.marginal(&[("closed", 0.5)]).unwrap(),
    ];
    db.add_stream(b.independent(ms).unwrap()).unwrap();
    db
}

/// One query per algorithm class over [`four_class_db`].
fn one_query_per_class() -> [(&'static str, lahar::Algorithm); 4] {
    use lahar::Algorithm::*;
    [
        ("At('joe','a') ; At('joe','c')", Regular),
        ("At(p,'a') ; At(p,'c')", ExtendedRegular),
        ("At(p,'a') ; At(p,'h') ; Door('d1', s)", SafePlan),
        ("sigma[x = y](At(x,'a') ; At(y,'c'))", Sampling),
    ]
}

/// Stepping a compiled query and then asking for the remaining series
/// must continue from the cursor — not restart from t = 0 — on every
/// algorithm path (the safe-plan path used to ignore the cursor).
#[test]
fn step_then_prob_series_continues_from_cursor() {
    let db = four_class_db();
    let horizon = db.horizon();
    for (src, algo) in one_query_per_class() {
        let full = Lahar::compile_with(&db, src, CompileOptions::new())
            .unwrap()
            .prob_series(horizon)
            .unwrap();
        for k in 1..horizon {
            let mut c = Lahar::compile_with(&db, src, CompileOptions::new()).unwrap();
            assert_eq!(c.algorithm(), algo, "{src}");
            let mut got = Vec::with_capacity(horizon as usize);
            for _ in 0..k {
                got.push(c.step().unwrap());
            }
            got.extend(c.prob_series(horizon - k).unwrap());
            assert_eq!(got.len(), full.len(), "{src} k={k}");
            for (t, (g, w)) in got.iter().zip(&full).enumerate() {
                assert!(
                    (g - w).abs() < 1e-12,
                    "{src} (k={k}) t={t}: stepped {g} vs batch {w}"
                );
            }
        }
    }
}

/// A random per-tick marginal over `domain` (with some mass usually left
/// on ⊥ so sequences do not saturate).
fn random_marginal(b: &StreamBuilder, domain: &[&str], rng: &mut SmallRng) -> Marginal {
    let raw: Vec<f64> = domain.iter().map(|_| rng.gen::<f64>()).collect();
    let slack = 0.25 + rng.gen::<f64>();
    let total: f64 = raw.iter().sum::<f64>() + slack;
    let pairs: Vec<(&str, f64)> = domain
        .iter()
        .zip(&raw)
        .map(|(v, p)| (*v, p / total))
        .collect();
    b.marginal(&pairs).unwrap()
}

/// Forced-parallel and forced-sequential sessions fed identical random
/// marginals must emit identical alerts, tick for tick.
#[test]
fn randomized_parallel_session_matches_sequential() {
    const PEOPLE: [&str; 4] = ["p0", "p1", "p2", "p3"];
    const DOMAIN: [&str; 3] = ["a", "h", "c"];
    const TICKS: usize = 8;
    for seed in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE ^ seed);
        let build = || {
            let mut db = Database::new();
            db.declare_stream("At", &["person"], &["loc"]).unwrap();
            db.declare_relation("Hallway", 1).unwrap();
            let i = db.interner().clone();
            db.insert_relation_tuple("Hallway", lahar::model::tuple([i.intern("h")]))
                .unwrap();
            let mut builders = Vec::new();
            for p in PEOPLE {
                let b = StreamBuilder::new(&i, "At", &[p], &DOMAIN);
                db.add_stream(b.clone().independent(vec![]).unwrap())
                    .unwrap();
                builders.push(b);
            }
            (db, builders)
        };
        let (db_seq, builders) = build();
        let (db_par, _) = build();
        let mut seq = RealTimeSession::with_config(
            db_seq,
            SessionConfig::builder()
                .tick_mode(TickMode::Sequential)
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut par = RealTimeSession::with_config(
            db_par,
            SessionConfig::builder()
                .tick_mode(TickMode::Parallel)
                .n_workers(3)
                .build()
                .unwrap(),
        )
        .unwrap();
        for s in [&mut seq, &mut par] {
            s.register("reg", "At('p0','a') ; At('p0','c')").unwrap();
            s.register("ext", "At(p,'a') ; At(p,'c')").unwrap();
            s.register(
                "hall",
                "At(p,'a') ; (At(p, l))+{p | Hallway(l)} ; At(p,'c')",
            )
            .unwrap();
            s.register("single", "At(p, l)[Hallway(l)]").unwrap();
        }
        for _ in 0..TICKS {
            for (idx, b) in builders.iter().enumerate() {
                // Leave some streams unstaged so the ⊥ default runs on
                // both paths too.
                if rng.gen::<f64>() < 0.8 {
                    let m = random_marginal(b, &DOMAIN, &mut rng);
                    let seq_id = seq.database().stream_id_at(idx).unwrap();
                    let par_id = par.database().stream_id_at(idx).unwrap();
                    seq.stage(seq_id, m.clone()).unwrap();
                    par.stage(par_id, m).unwrap();
                }
            }
            let a = seq.tick().unwrap();
            let b = par.tick().unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert!(
                    (x.probability - y.probability).abs() < 1e-12,
                    "seed {seed} t={}: {} sequential {} vs parallel {}",
                    x.t,
                    x.name,
                    x.probability,
                    y.probability
                );
            }
        }
        let snap = par.stats().snapshot();
        assert_eq!(snap.ticks, TICKS as u64);
        assert_eq!(snap.parallel_ticks, TICKS as u64);
        assert!(snap.chains_stepped >= (TICKS * PEOPLE.len()) as u64);
    }
}

/// The evaluator-level parallel series must also match on Markov
/// (correlated) streams, where chain stepping exercises the CPT path.
#[test]
fn parallel_series_matches_sequential_on_markov_streams() {
    let mut db = Database::new();
    db.declare_stream("At", &["person"], &["loc"]).unwrap();
    let i = db.interner().clone();
    let mut rng = SmallRng::seed_from_u64(42);
    for p in ["p0", "p1", "p2", "p3", "p4"] {
        let b = StreamBuilder::new(&i, "At", &[p], &["a", "c"]);
        let init = b
            .marginal(&[("a", 0.3 + 0.4 * rng.gen::<f64>()), ("c", 0.1)])
            .unwrap();
        let stay = 0.2 + 0.6 * rng.gen::<f64>();
        let cpt = b
            .cpt(&[("a", "a", stay), ("a", "c", 0.9 - stay), ("c", "c", 0.7)])
            .unwrap();
        db.add_stream(b.markov(init, vec![cpt.clone(), cpt.clone(), cpt]).unwrap())
            .unwrap();
    }
    let q = lahar::query::parse_query(db.interner(), "At(p,'a') ; At(p,'c')").unwrap();
    let nq = NormalQuery::from_query(&q);
    let sequential = ExtendedRegularEvaluator::new(&db, &nq)
        .unwrap()
        .prob_series(&db, db.horizon());
    for n_threads in [1, 2, 4, 7] {
        let parallel = ExtendedRegularEvaluator::new(&db, &nq)
            .unwrap()
            .prob_series_parallel(&db, db.horizon(), n_threads)
            .unwrap();
        for (t, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
            assert!(
                (s - p).abs() < 1e-12,
                "{n_threads} threads, t={t}: {s} vs {p}"
            );
        }
    }
}

/// A query registered mid-session — after ticks carrying real (non-⊥)
/// marginals — must catch up through the recorded history and then agree
/// exactly with a session that had it from the start.
#[test]
fn late_registration_catches_up_after_staged_history() {
    const DOMAIN: [&str; 3] = ["a", "h", "c"];
    let build = || {
        let mut db = Database::new();
        db.declare_stream("At", &["person"], &["loc"]).unwrap();
        let i = db.interner().clone();
        let joe = StreamBuilder::new(&i, "At", &["joe"], &DOMAIN);
        let sue = StreamBuilder::new(&i, "At", &["sue"], &DOMAIN);
        db.add_stream(joe.clone().independent(vec![]).unwrap())
            .unwrap();
        db.add_stream(sue.clone().independent(vec![]).unwrap())
            .unwrap();
        (db, joe, sue)
    };
    let (db_a, joe, sue) = build();
    let (db_b, _, _) = build();
    let mut early = RealTimeSession::new(db_a).unwrap();
    let mut late = RealTimeSession::new(db_b).unwrap();
    let src = "At(p,'a') ; At(p,'c')";
    let q_early = early.register("q", src).unwrap();

    let mut rng = SmallRng::seed_from_u64(99);
    let mut staged: Vec<Vec<Marginal>> = Vec::new();
    for _ in 0..3 {
        let ms = vec![
            random_marginal(&joe, &DOMAIN, &mut rng),
            random_marginal(&sue, &DOMAIN, &mut rng),
        ];
        staged.push(ms);
    }
    for ms in &staged {
        for (s, m) in [(&mut early, ms), (&mut late, ms)] {
            let ids = [
                s.database().stream_id_at(0).unwrap(),
                s.database().stream_id_at(1).unwrap(),
            ];
            s.stage(ids[0], m[0].clone()).unwrap();
            s.stage(ids[1], m[1].clone()).unwrap();
            s.tick().unwrap();
        }
    }
    // Register after three substantive ticks; the replayed history must
    // put the late query on the same footing.
    let q_late = late.register("q", src).unwrap();
    for _ in 0..3 {
        let ms = [
            random_marginal(&joe, &DOMAIN, &mut rng),
            random_marginal(&sue, &DOMAIN, &mut rng),
        ];
        let mut probs = [0.0f64; 2];
        for (which, (s, q)) in [(&mut early, q_early), (&mut late, q_late)]
            .into_iter()
            .enumerate()
        {
            let ids = [
                s.database().stream_id_at(0).unwrap(),
                s.database().stream_id_at(1).unwrap(),
            ];
            s.stage(ids[0], ms[0].clone()).unwrap();
            s.stage(ids[1], ms[1].clone()).unwrap();
            let alerts = s.tick().unwrap();
            probs[which] = alerts[q.index()].probability;
        }
        assert!(
            (probs[0] - probs[1]).abs() < 1e-12,
            "early {} vs late {}",
            probs[0],
            probs[1]
        );
    }
    // And both must equal the batch answer over the accumulated database.
    let batch = Lahar::prob_series(late.database(), src).unwrap();
    assert_eq!(batch.len(), 6);
}

/// Epoch-batched parallel ticks — several per
/// [`RealTimeSession::tick_epoch`] call, with the auto-checkpoint
/// cadence splitting epochs mid-batch — must stay byte-identical to
/// per-tick sequential ticks, and a twin restored from the checkpoint
/// taken *inside* the batch must rejoin the stream bit-for-bit.
#[test]
fn epoch_batches_stay_bit_identical_across_mid_batch_checkpoint() {
    const PEOPLE: [&str; 4] = ["p0", "p1", "p2", "p3"];
    const DOMAIN: [&str; 3] = ["a", "h", "c"];
    const TICKS: usize = 9;
    let build = || {
        let mut db = Database::new();
        db.declare_stream("At", &["person"], &["loc"]).unwrap();
        db.declare_relation("Hallway", 1).unwrap();
        let i = db.interner().clone();
        db.insert_relation_tuple("Hallway", lahar::model::tuple([i.intern("h")]))
            .unwrap();
        let mut builders = Vec::new();
        for p in PEOPLE {
            let b = StreamBuilder::new(&i, "At", &[p], &DOMAIN);
            db.add_stream(b.clone().independent(vec![]).unwrap())
                .unwrap();
            builders.push(b);
        }
        (db, builders)
    };
    let bits = |alerts: &[lahar::Alert]| -> Vec<(String, u32, u64)> {
        alerts
            .iter()
            .map(|a| (a.name.to_string(), a.t, a.probability.to_bits()))
            .collect()
    };
    let to_batch = |session: &RealTimeSession,
                    rows: &[Vec<(usize, Marginal)>]|
     -> Vec<Vec<(lahar::StreamId, Marginal)>> {
        rows.iter()
            .map(|row| {
                row.iter()
                    .map(|(idx, m)| (session.database().stream_id_at(*idx).unwrap(), m.clone()))
                    .collect()
            })
            .collect()
    };

    let mut rng = SmallRng::seed_from_u64(0xEB0C4);
    let (db_seq, builders) = build();
    let (db_par, _) = build();
    let mut seq = RealTimeSession::with_config(
        db_seq,
        SessionConfig::builder()
            .tick_mode(TickMode::Sequential)
            .build()
            .unwrap(),
    )
    .unwrap();
    // Epochs of up to 5 ticks, but the interval-3 auto-checkpoint cadence
    // forces splits at t = 3 and t = 6.
    let mut par = RealTimeSession::with_config(
        db_par,
        SessionConfig::builder()
            .tick_mode(TickMode::Parallel)
            .n_workers(3)
            .max_epoch_ticks(5)
            .checkpoint_interval(3)
            .build()
            .unwrap(),
    )
    .unwrap();
    for s in [&mut seq, &mut par] {
        s.register("reg", "At('p0','a') ; At('p0','c')").unwrap();
        s.register("ext", "At(p,'a') ; At(p,'c')").unwrap();
        s.register(
            "hall",
            "At(p,'a') ; (At(p, l))+{p | Hallway(l)} ; At(p,'c')",
        )
        .unwrap();
    }
    let mut script: Vec<Vec<(usize, Marginal)>> = Vec::new();
    for _ in 0..TICKS {
        let mut row = Vec::new();
        for (idx, b) in builders.iter().enumerate() {
            if rng.gen::<f64>() < 0.8 {
                row.push((idx, random_marginal(b, &DOMAIN, &mut rng)));
            }
        }
        script.push(row);
    }

    // Per-tick sequential reference.
    let mut reference = Vec::new();
    for row in &script {
        for (idx, m) in row {
            let id = seq.database().stream_id_at(*idx).unwrap();
            seq.stage(id, m.clone()).unwrap();
        }
        reference.push(seq.tick().unwrap());
    }

    // One staged batch of 7 ticks: internally three epochs (3 + 3 + 1),
    // with auto-checkpoints landing mid-batch at t = 3 and t = 6.
    let batch = to_batch(&par, &script[..7]);
    let alerts = par.tick_epoch(batch).unwrap();
    let flat: Vec<_> = reference[..7].iter().flatten().cloned().collect();
    assert_eq!(bits(&alerts), bits(&flat));
    let snap = par.stats().snapshot();
    assert_eq!(snap.checkpoints_taken, 2);
    assert_eq!(snap.epochs, 3);
    assert_eq!(snap.epoch_ticks, 7);
    let ckpt = par.last_checkpoint().cloned().unwrap();
    assert_eq!(ckpt.t(), 6, "auto-checkpoint lands inside the batch");

    // A twin restored from the mid-batch checkpoint finishes the stream
    // in one batched call and stays bit-identical.
    let (db_twin, _) = build();
    let mut twin = RealTimeSession::restore(db_twin, &ckpt).unwrap();
    assert_eq!(twin.now(), 6);
    let batch = to_batch(&twin, &script[6..]);
    let twin_alerts = twin.tick_epoch(batch).unwrap();
    let flat: Vec<_> = reference[6..].iter().flatten().cloned().collect();
    assert_eq!(bits(&twin_alerts), bits(&flat));

    // The original finishes its remaining two ticks batched as well.
    let batch = to_batch(&par, &script[7..]);
    let tail = par.tick_epoch(batch).unwrap();
    let flat: Vec<_> = reference[7..].iter().flatten().cloned().collect();
    assert_eq!(bits(&tail), bits(&flat));
    assert_eq!(par.now(), TICKS as u32);
    assert_eq!(twin.now(), TICKS as u32);
}
