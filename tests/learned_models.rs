//! Integration of HMM training with the deployment pipeline: the paper
//! assumes the location model is given; here we learn it from raw antenna
//! readings and verify the learned model is a better fit than a perturbed
//! prior — and that the query pipeline runs unchanged on top of it.

use lahar::core::Lahar;
use lahar::hmm::{baum_welch, log_likelihood, Hmm, TrainOptions};
use lahar::rfid::{build_location_hmm, Deployment, DeploymentConfig};

fn deployment() -> Deployment {
    Deployment::simulate(DeploymentConfig {
        ticks: 250,
        n_people: 3,
        n_objects: 0,
        seed: 99,
        floors: 1,
        hall_len: 4,
        antenna_every: 1,
        ..DeploymentConfig::default()
    })
}

/// A deliberately mis-specified prior: uniform transitions.
fn flat_prior(reference: &Hmm) -> Hmm {
    let n = reference.n_states();
    let m = reference.n_obs();
    let uniform_row = |len: usize| vec![1.0 / len as f64; len];
    let mut trans = Vec::with_capacity(n * n);
    for _ in 0..n {
        trans.extend(uniform_row(n));
    }
    // Keep the emission structure (the antenna geometry) but flatten it
    // halfway toward uniform.
    let mut emit = Vec::with_capacity(n * m);
    for i in 0..n {
        for o in 0..m {
            emit.push(0.5 * reference.emit(i, o) + 0.5 / m as f64);
        }
    }
    Hmm::new(uniform_row(n), trans, emit, m).unwrap()
}

#[test]
fn training_improves_fit_over_flat_prior() {
    let dep = deployment();
    let prior = flat_prior(&dep.hmm);
    let before = log_likelihood(&prior, &dep.observations).unwrap();
    let trained = baum_welch(
        &prior,
        &dep.observations,
        TrainOptions {
            max_iters: 15,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        trained.log_likelihood > before + 1.0,
        "EM must improve the fit: {} -> {}",
        before,
        trained.log_likelihood
    );
    // The hand-specified deployment model is a decent fit too; the learned
    // model should be at least competitive with the flat prior's start.
    let hand = log_likelihood(&dep.hmm, &dep.observations).unwrap();
    assert!(trained.log_likelihood > hand - (hand.abs() * 0.2));
}

#[test]
fn query_pipeline_runs_on_a_learned_model() {
    let mut dep = deployment();
    let prior = build_location_hmm(&dep.plan, &dep.config);
    let trained = baum_welch(
        &prior,
        &dep.observations,
        TrainOptions {
            max_iters: 5,
            ..Default::default()
        },
    )
    .unwrap();
    // Swap the learned model into the pipeline and rebuild both databases.
    dep.hmm = trained.hmm;
    let filtered = dep.filtered_database();
    let smoothed = dep.smoothed_database();
    let q = "At('person0', l1)[NotRoom(l1)] ; At('person0', l2)[CoffeeRoom(l2)]";
    for db in [&filtered, &smoothed] {
        let series = Lahar::prob_series(db, q).unwrap();
        assert_eq!(series.len(), db.horizon() as usize);
        assert!(series.iter().all(|p| (0.0..=1.0 + 1e-9).contains(p)));
    }
}
