//! End-to-end integration: the full RFID pipeline (simulate → sense →
//! infer → query → score) reproduces the paper's headline quality claims
//! as *tests*, not just benchmark printouts.

use lahar::baselines::{detect_series, mle_world};
use lahar::core::Lahar;
use lahar::metrics::{episodes, score_per_key, threshold, Episode};
use lahar::rfid::{Deployment, DeploymentConfig};

fn coffee_query(person: &str) -> String {
    format!(
        "At('{person}', l1)[NotRoom(l1)] ; At('{person}', l2)[NotRoom(l2)] ; \
         At('{person}', l3)[CoffeeRoom(l3)]"
    )
}

fn deployment() -> Deployment {
    Deployment::simulate(DeploymentConfig {
        ticks: 300,
        n_people: 4,
        n_objects: 0,
        seed: 7,
        ..DeploymentConfig::default()
    })
}

#[test]
fn realtime_lahar_beats_mle_on_f1() {
    let dep = deployment();
    let base = dep.base_database();
    let truth_world = dep.truth_world(&base);
    let filtered = dep.filtered_database();
    let mle = mle_world(&filtered);
    let d = 15;
    let rho = 0.15;

    let mut lahar_pairs = Vec::new();
    let mut mle_pairs = Vec::new();
    let mut any_truth = false;
    for p in &dep.people {
        let q = coffee_query(&p.name);
        let truth_eps = episodes(&detect_series(&base, &truth_world, &q).unwrap());
        any_truth |= !truth_eps.is_empty();
        let probs = Lahar::prob_series(&filtered, &q).unwrap();
        lahar_pairs.push((episodes(&threshold(&probs, rho)), truth_eps.clone()));
        mle_pairs.push((
            episodes(&detect_series(&base, &mle, &q).unwrap()),
            truth_eps,
        ));
    }
    assert!(any_truth, "the trace must contain coffee events");
    let lahar_q = score_per_key(&lahar_pairs, d);
    let mle_q = score_per_key(&mle_pairs, d);
    assert!(
        lahar_q.f1 >= mle_q.f1,
        "Lahar must not lose to MLE on F1 (lahar {:.3} vs mle {:.3})",
        lahar_q.f1,
        mle_q.f1
    );
    assert!(lahar_q.recall > 0.3, "recall unexpectedly low: {lahar_q:?}");
}

#[test]
fn archived_lahar_beats_viterbi_on_f1() {
    let dep = deployment();
    let base = dep.base_database();
    let truth_world = dep.truth_world(&base);
    let smoothed = dep.smoothed_database();
    let viterbi = dep.viterbi_world(&base);
    let d = 15;
    let rho = 0.1;

    let mut lahar_pairs = Vec::new();
    let mut vit_pairs = Vec::new();
    for p in &dep.people {
        let q = coffee_query(&p.name);
        let truth_eps = episodes(&detect_series(&base, &truth_world, &q).unwrap());
        let probs = Lahar::prob_series(&smoothed, &q).unwrap();
        lahar_pairs.push((episodes(&threshold(&probs, rho)), truth_eps.clone()));
        vit_pairs.push((
            episodes(&detect_series(&base, &viterbi, &q).unwrap()),
            truth_eps,
        ));
    }
    let lahar_q = score_per_key(&lahar_pairs, d);
    let vit_q = score_per_key(&vit_pairs, d);
    assert!(
        lahar_q.f1 > vit_q.f1,
        "Lahar(Markov) must beat Viterbi MAP on F1 (lahar {:.3} vs viterbi {:.3})",
        lahar_q.f1,
        vit_q.f1
    );
}

#[test]
fn coffee_query_is_regular_and_runs_on_both_scenarios() {
    let dep = Deployment::simulate(DeploymentConfig::small());
    let filtered = dep.filtered_database();
    let smoothed = dep.smoothed_database();
    let q = coffee_query("person0");
    assert_eq!(
        Lahar::classify(&filtered, &q).unwrap(),
        lahar::query::QueryClass::Regular
    );
    for db in [&filtered, &smoothed] {
        let series = Lahar::prob_series(db, &q).unwrap();
        assert_eq!(series.len(), db.horizon() as usize);
        assert!(series.iter().all(|p| (0.0..=1.0 + 1e-9).contains(p)));
    }
}

/// The per-episode detection pipeline is deterministic given the seed.
#[test]
fn pipeline_is_reproducible() {
    let a = Deployment::simulate(DeploymentConfig::small());
    let b = Deployment::simulate(DeploymentConfig::small());
    assert_eq!(a.truth, b.truth);
    assert_eq!(a.observations, b.observations);
    let qa = Lahar::prob_series(&a.filtered_database(), &coffee_query("person0")).unwrap();
    let qb = Lahar::prob_series(&b.filtered_database(), &coffee_query("person0")).unwrap();
    assert_eq!(qa, qb);
}

/// Ground-truth detection finds at least one event per person who
/// actually visited the coffee room (sanity of the metric pipeline).
#[test]
fn truth_detection_agrees_with_trajectories() {
    let dep = deployment();
    let base = dep.base_database();
    let truth_world = dep.truth_world(&base);
    let coffee_ids = dep.plan.of_kind(lahar::rfid::RoomKind::CoffeeRoom);
    for (p, traj) in dep.people.iter().zip(&dep.truth) {
        let visited = traj.iter().any(|l| coffee_ids.contains(l));
        let eps: Vec<Episode> =
            episodes(&detect_series(&base, &truth_world, &coffee_query(&p.name)).unwrap());
        if visited {
            assert!(
                !eps.is_empty(),
                "{} visited the coffee room but no event was detected",
                p.name
            );
        } else {
            assert!(eps.is_empty());
        }
    }
}
