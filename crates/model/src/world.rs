//! Deterministic possible worlds.
//!
//! A probabilistic event database represents a distribution over *worlds*
//! (paper §2.1): each world is a plain deterministic event database — a set
//! of ground events, at most one per (stream, timestep). Worlds are what the
//! Fig-2 denotational query semantics evaluates over, and what the
//! possible-world oracle enumerates.

use crate::value::{display_tuple, Interner, Symbol, Tuple, Value};

/// A single deterministic event: `EventType(key…, values…, T = t)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroundEvent {
    /// The stream type this event belongs to.
    pub stream_type: Symbol,
    /// The event key attributes.
    pub key: Tuple,
    /// The value attributes.
    pub values: Tuple,
    /// The timestamp.
    pub t: u32,
}

impl GroundEvent {
    /// The full attribute tuple in subgoal position order
    /// (key attributes first, then value attributes).
    pub fn attrs(&self) -> Vec<Value> {
        self.key.iter().chain(self.values.iter()).copied().collect()
    }

    /// Attribute at position `i` of the full (key ++ value) tuple.
    pub fn attr(&self, i: usize) -> Value {
        if i < self.key.len() {
            self.key[i]
        } else {
            self.values[i - self.key.len()]
        }
    }

    /// Total number of (non-timestamp) attributes.
    pub fn arity(&self) -> usize {
        self.key.len() + self.values.len()
    }

    /// Renders e.g. `At('Joe', 'H1')@6`.
    pub fn display(&self, interner: &Interner) -> String {
        let name = interner
            .resolve(self.stream_type)
            .unwrap_or_else(|| format!("#{}", self.stream_type.0));
        let attrs = self.attrs();
        format!("{name}{}@{}", display_tuple(&attrs, interner), self.t)
    }
}

/// A deterministic world: all events up to some horizon, sorted by timestamp.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct World {
    events: Vec<GroundEvent>,
    t_max: u32,
}

impl World {
    /// Builds a world from events; they are sorted by timestamp internally.
    /// `t_max` is the snapshot horizon (a world can have trailing timesteps
    /// with no events at all).
    pub fn new(mut events: Vec<GroundEvent>, t_max: u32) -> Self {
        events.sort_by_key(|e| e.t);
        Self { events, t_max }
    }

    /// All events, sorted by timestamp.
    pub fn events(&self) -> &[GroundEvent] {
        &self.events
    }

    /// Events with timestamp exactly `t`.
    pub fn events_at(&self, t: u32) -> impl Iterator<Item = &GroundEvent> {
        let start = self.events.partition_point(|e| e.t < t);
        self.events[start..].iter().take_while(move |e| e.t == t)
    }

    /// The snapshot horizon: timesteps run `0 ..= t_max`.
    pub fn t_max(&self) -> u32 {
        self.t_max
    }

    /// Number of events in the world.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the world holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{tuple, Interner};

    fn ev(i: &Interner, loc: &str, t: u32) -> GroundEvent {
        GroundEvent {
            stream_type: i.intern("At"),
            key: tuple([i.intern("joe")]),
            values: tuple([i.intern(loc)]),
            t,
        }
    }

    #[test]
    fn events_at_filters_by_timestamp() {
        let i = Interner::new();
        let w = World::new(vec![ev(&i, "b", 2), ev(&i, "a", 1), ev(&i, "c", 2)], 5);
        assert_eq!(w.events_at(1).count(), 1);
        assert_eq!(w.events_at(2).count(), 2);
        assert_eq!(w.events_at(3).count(), 0);
        assert_eq!(w.t_max(), 5);
        // Sorted by timestamp after construction.
        assert!(w.events().windows(2).all(|p| p[0].t <= p[1].t));
    }

    #[test]
    fn ground_event_attr_access() {
        let i = Interner::new();
        let e = ev(&i, "h1", 3);
        assert_eq!(e.arity(), 2);
        assert_eq!(e.attr(0), crate::value::Value::Str(i.intern("joe")));
        assert_eq!(e.attr(1), crate::value::Value::Str(i.intern("h1")));
        assert_eq!(e.display(&i), "At('joe', 'h1')@3");
    }
}
