//! Probabilistic event streams.
//!
//! A stream (paper §2.1/§2.3) is the sequence of probabilistic events with a
//! fixed type and a fixed event key, one event per timestep. Lahar handles
//! two representations:
//!
//! * [`StreamData::Independent`]: one marginal distribution per timestep,
//!   with events at distinct timesteps independent. This is the *real-time*
//!   scenario (filtered particle-filter output).
//! * [`StreamData::Markov`]: an initial marginal plus one conditional
//!   probability table per step, `E(t)(d′, d) = P[e(t+1) = d′ | e(t) = d]`.
//!   This is the *archived* scenario (smoothed output with correlations).
//!
//! Streams are indexed by a global discrete clock starting at `t = 0`.
//! Timesteps beyond the recorded length are deterministically ⊥.

use crate::dist::{Cpt, Domain, Marginal, ModelError};
use crate::value::{Interner, Tuple};
use rand::Rng;
use std::fmt;
use std::sync::Arc;

/// Identity of a stream: its type name plus its event key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StreamKey {
    /// The stream type (a [`crate::StreamSchema`] name).
    pub stream_type: crate::value::Symbol,
    /// The event key shared by every event in the stream.
    pub key: Tuple,
}

impl StreamKey {
    /// Renders e.g. `At('Joe')`.
    pub fn display(&self, interner: &Interner) -> String {
        let name = interner
            .resolve(self.stream_type)
            .unwrap_or_else(|| format!("#{}", self.stream_type.0));
        format!("{name}{}", crate::value::display_tuple(&self.key, interner))
    }
}

/// The probabilistic payload of a stream.
#[derive(Debug, Clone)]
pub enum StreamData {
    /// Per-timestep marginals; timesteps are mutually independent.
    Independent(Vec<Marginal>),
    /// Markovian correlations.
    Markov {
        /// The marginal at `t = 0`.
        initial: Marginal,
        /// `cpts[t]` is the transition from timestep `t` to `t + 1`.
        cpts: Vec<Cpt>,
    },
}

/// A probabilistic event stream.
#[derive(Debug, Clone)]
pub struct Stream {
    id: StreamKey,
    domain: Arc<Domain>,
    data: StreamData,
}

impl Stream {
    /// Builds an independent stream from per-timestep marginals.
    pub fn independent(
        id: StreamKey,
        domain: Arc<Domain>,
        marginals: Vec<Marginal>,
    ) -> Result<Self, ModelError> {
        for m in &marginals {
            if m.probs().len() != domain.len() {
                return Err(ModelError::DimensionMismatch {
                    expected: domain.len(),
                    got: m.probs().len(),
                });
            }
        }
        Ok(Self {
            id,
            domain,
            data: StreamData::Independent(marginals),
        })
    }

    /// Builds a Markovian stream from an initial marginal and per-step CPTs.
    pub fn markov(
        id: StreamKey,
        domain: Arc<Domain>,
        initial: Marginal,
        cpts: Vec<Cpt>,
    ) -> Result<Self, ModelError> {
        if initial.probs().len() != domain.len() {
            return Err(ModelError::DimensionMismatch {
                expected: domain.len(),
                got: initial.probs().len(),
            });
        }
        for c in &cpts {
            if c.dim() != domain.len() {
                return Err(ModelError::DimensionMismatch {
                    expected: domain.len(),
                    got: c.dim(),
                });
            }
        }
        Ok(Self {
            id,
            domain,
            data: StreamData::Markov { initial, cpts },
        })
    }

    /// The stream identity (type + key).
    pub fn id(&self) -> &StreamKey {
        &self.id
    }

    /// The value domain (shared, includes ⊥).
    pub fn domain(&self) -> &Arc<Domain> {
        &self.domain
    }

    /// The payload representation.
    pub fn data(&self) -> &StreamData {
        &self.data
    }

    /// True for Markovian (archived/smoothed) streams.
    pub fn is_markov(&self) -> bool {
        matches!(self.data, StreamData::Markov { .. })
    }

    /// Number of recorded timesteps (`t = 0 .. len-1`).
    pub fn len(&self) -> usize {
        match &self.data {
            StreamData::Independent(ms) => ms.len(),
            StreamData::Markov { cpts, .. } => cpts.len() + 1,
        }
    }

    /// True when the stream records no timesteps at all.
    pub fn is_empty(&self) -> bool {
        matches!(&self.data, StreamData::Independent(ms) if ms.is_empty())
    }

    /// The marginal distribution at timestep `t`.
    ///
    /// For Markov streams this runs the forward recursion from the initial
    /// marginal (`O(t · n²)`); use [`Stream::all_marginals`] when several
    /// timesteps are needed. Timesteps beyond the end are all-⊥.
    pub fn marginal_at(&self, t: u32) -> Marginal {
        let t = t as usize;
        match &self.data {
            StreamData::Independent(ms) => ms
                .get(t)
                .cloned()
                .unwrap_or_else(|| Marginal::all_bottom(&self.domain)),
            StreamData::Markov { initial, cpts } => {
                if t >= self.len() {
                    return Marginal::all_bottom(&self.domain);
                }
                let mut cur = initial.probs().to_vec();
                let mut next = vec![0.0; cur.len()];
                for cpt in cpts.iter().take(t) {
                    cpt.apply(&cur, &mut next);
                    std::mem::swap(&mut cur, &mut next);
                }
                Marginal::new(&self.domain, cur).expect("forward pass preserves normalization")
            }
        }
    }

    /// Borrowed view of an independent stream's recorded marginals
    /// (`None` for Markov streams, whose marginals are derived, not
    /// stored — use [`Stream::all_marginals`] there). This is the
    /// allocation-free state-extraction path used by session
    /// checkpointing.
    pub fn marginals(&self) -> Option<&[Marginal]> {
        match &self.data {
            StreamData::Independent(ms) => Some(ms),
            StreamData::Markov { .. } => None,
        }
    }

    /// All marginals `t = 0 .. len-1` in a single forward pass.
    pub fn all_marginals(&self) -> Vec<Marginal> {
        match &self.data {
            StreamData::Independent(ms) => ms.clone(),
            StreamData::Markov { initial, cpts } => {
                let mut out = Vec::with_capacity(self.len());
                let mut cur = initial.probs().to_vec();
                let mut next = vec![0.0; cur.len()];
                out.push(initial.clone());
                for cpt in cpts {
                    cpt.apply(&cur, &mut next);
                    std::mem::swap(&mut cur, &mut next);
                    out.push(
                        Marginal::new(&self.domain, cur.clone())
                            .expect("forward pass preserves normalization"),
                    );
                }
                out
            }
        }
    }

    /// The transition CPT from timestep `t` to `t + 1`.
    ///
    /// For independent streams this materializes the rank-1 CPT of the
    /// marginal at `t + 1`; evaluators on hot paths should branch on
    /// [`Stream::data`] instead.
    pub fn cpt_at(&self, t: u32) -> Cpt {
        let t = t as usize;
        match &self.data {
            StreamData::Independent(ms) => {
                let next = ms
                    .get(t + 1)
                    .cloned()
                    .unwrap_or_else(|| Marginal::all_bottom(&self.domain));
                Cpt::independent(&next)
            }
            StreamData::Markov { cpts, .. } => match cpts.get(t) {
                Some(c) => c.clone(),
                None => Cpt::independent(&Marginal::all_bottom(&self.domain)),
            },
        }
    }

    /// Returns a copy of the stream with small probabilities pruned away:
    /// CPT entries (and marginal entries) below `epsilon` are dropped and
    /// the distributions renormalized — the paper's storage optimization
    /// (§4.3.2). The result is an approximation; the `ablations` bench
    /// quantifies the size/quality trade-off.
    #[must_use]
    pub fn pruned(&self, epsilon: f64) -> Stream {
        let prune_marginal = |m: &Marginal| -> Marginal {
            let mut probs: Vec<f64> = m
                .probs()
                .iter()
                .map(|&p| if p < epsilon { 0.0 } else { p })
                .collect();
            let total: f64 = probs.iter().sum();
            if total > 0.0 {
                for p in probs.iter_mut() {
                    *p /= total;
                }
                Marginal::new(&self.domain, probs).expect("renormalized")
            } else {
                m.clone()
            }
        };
        let data = match &self.data {
            StreamData::Independent(ms) => {
                StreamData::Independent(ms.iter().map(prune_marginal).collect())
            }
            StreamData::Markov { initial, cpts } => StreamData::Markov {
                initial: prune_marginal(initial),
                cpts: cpts.iter().map(|c| c.pruned(epsilon)).collect(),
            },
        };
        Stream {
            id: self.id.clone(),
            domain: self.domain.clone(),
            data,
        }
    }

    /// Appends one timestep to an *independent* stream (the real-time
    /// ingestion path: one marginal per tick from the inference layer).
    /// Markovian streams are archived artifacts and reject appends.
    pub fn push_marginal(&mut self, marginal: Marginal) -> Result<(), ModelError> {
        if marginal.probs().len() != self.domain.len() {
            return Err(ModelError::DimensionMismatch {
                expected: self.domain.len(),
                got: marginal.probs().len(),
            });
        }
        match &mut self.data {
            StreamData::Independent(ms) => {
                ms.push(marginal);
                Ok(())
            }
            StreamData::Markov { .. } => Err(ModelError::TimeOutOfRange {
                t: self.len() as u32,
                len: self.len(),
            }),
        }
    }

    /// Samples one trajectory (an outcome index per timestep) from the
    /// stream's distribution.
    pub fn sample_trajectory<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.len());
        match &self.data {
            StreamData::Independent(ms) => {
                for m in ms {
                    out.push(sample_index(m.probs(), rng));
                }
            }
            StreamData::Markov { initial, cpts } => {
                let mut cur = sample_index(initial.probs(), rng);
                out.push(cur);
                let n = self.domain.len();
                let mut col = vec![0.0; n];
                for cpt in cpts {
                    for (d_next, slot) in col.iter_mut().enumerate() {
                        *slot = cpt.get(d_next, cur);
                    }
                    cur = sample_index(&col, rng);
                    out.push(cur);
                }
            }
        }
        out
    }

    /// Enumerates every trajectory with non-zero probability, together with
    /// its probability `μ(d̄)` (paper Eq. 1).
    ///
    /// Exponential in the stream length — intended for the possible-world
    /// oracle on tiny test inputs only.
    pub fn enumerate_trajectories(&self) -> Vec<(Vec<usize>, f64)> {
        let n = self.domain.len();
        let mut acc: Vec<(Vec<usize>, f64)> = vec![(Vec::new(), 1.0)];
        for t in 0..self.len() {
            let mut next_acc = Vec::new();
            for (traj, p) in &acc {
                for d in 0..n {
                    let step_p = match &self.data {
                        StreamData::Independent(ms) => ms[t].prob(d),
                        StreamData::Markov { initial, cpts } => {
                            if t == 0 {
                                initial.prob(d)
                            } else {
                                cpts[t - 1].get(d, traj[t - 1])
                            }
                        }
                    };
                    if step_p > 0.0 {
                        let mut traj2 = traj.clone();
                        traj2.push(d);
                        next_acc.push((traj2, p * step_p));
                    }
                }
            }
            acc = next_acc;
        }
        acc
    }

    /// Probability of a full trajectory under this stream (Eq. 1).
    pub fn trajectory_prob(&self, traj: &[usize]) -> f64 {
        assert_eq!(traj.len(), self.len(), "trajectory length mismatch");
        let mut p = 1.0;
        for (t, &d) in traj.iter().enumerate() {
            p *= match &self.data {
                StreamData::Independent(ms) => ms[t].prob(d),
                StreamData::Markov { initial, cpts } => {
                    if t == 0 {
                        initial.prob(d)
                    } else {
                        cpts[t - 1].get(d, traj[t - 1])
                    }
                }
            };
            if p == 0.0 {
                break;
            }
        }
        p
    }

    /// Relational tuple count of this stream in the paper's encoding:
    /// `E(ID, T, A1..Ak, P)` for independent streams (one tuple per non-zero
    /// marginal entry) and `E(ID, T, A′, A, P)` for Markov streams (one tuple
    /// per non-zero CPT entry, plus the initial marginal).
    pub fn relational_tuple_count(&self) -> usize {
        match &self.data {
            StreamData::Independent(ms) => ms
                .iter()
                .map(|m| m.probs().iter().filter(|&&p| p > 0.0).count())
                .sum(),
            StreamData::Markov { initial, cpts } => {
                initial.probs().iter().filter(|&&p| p > 0.0).count()
                    + cpts.iter().map(Cpt::nonzero_entries).sum::<usize>()
            }
        }
    }
}

impl fmt::Display for StreamKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream#{}/{:?}", self.stream_type.0, self.key)
    }
}

/// Samples an index from an unnormalized weight vector.
pub(crate) fn sample_index<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "cannot sample from all-zero weights");
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{tuple, Interner};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn dom2() -> Arc<Domain> {
        Domain::new(1, vec![tuple([1i64]), tuple([2i64])]).unwrap()
    }

    fn id(i: &Interner) -> StreamKey {
        StreamKey {
            stream_type: i.intern("At"),
            key: tuple([i.intern("joe")]),
        }
    }

    fn indep_stream() -> Stream {
        let i = Interner::new();
        let d = dom2();
        Stream::independent(
            id(&i),
            d.clone(),
            vec![
                Marginal::new(&d, vec![0.5, 0.3, 0.2]).unwrap(),
                Marginal::new(&d, vec![0.1, 0.8, 0.1]).unwrap(),
            ],
        )
        .unwrap()
    }

    fn markov_stream() -> Stream {
        let i = Interner::new();
        let d = dom2();
        let initial = Marginal::new(&d, vec![0.5, 0.5, 0.0]).unwrap();
        // Sticky chain: stay with 0.8, move to the other non-bottom with 0.1,
        // drop to bottom with 0.1; from bottom stay bottom.
        let cpt = Cpt::new(
            3,
            vec![
                0.8, 0.1, 0.0, //
                0.1, 0.8, 0.0, //
                0.1, 0.1, 1.0,
            ],
        )
        .unwrap();
        Stream::markov(id(&i), d, initial, vec![cpt.clone(), cpt]).unwrap()
    }

    #[test]
    fn lengths_and_kinds() {
        assert_eq!(indep_stream().len(), 2);
        assert!(!indep_stream().is_markov());
        assert_eq!(markov_stream().len(), 3);
        assert!(markov_stream().is_markov());
    }

    #[test]
    fn marginals_view_matches_recorded_data() {
        let s = indep_stream();
        let view = s.marginals().expect("independent stream exposes marginals");
        assert_eq!(view.len(), s.len());
        for (t, m) in view.iter().enumerate() {
            assert_eq!(m.probs(), s.marginal_at(t as u32).probs());
        }
        assert!(markov_stream().marginals().is_none());
    }

    #[test]
    fn marginal_beyond_end_is_bottom() {
        let s = indep_stream();
        let m = s.marginal_at(99);
        assert_eq!(m.prob(s.domain().bottom()), 1.0);
        let s = markov_stream();
        let m = s.marginal_at(99);
        assert_eq!(m.prob(s.domain().bottom()), 1.0);
    }

    #[test]
    fn markov_marginals_follow_forward_recursion() {
        let s = markov_stream();
        let m1 = s.marginal_at(1);
        // P[X1=0] = 0.8*0.5 + 0.1*0.5 = 0.45; symmetric for X1=1;
        // P[X1=bot] = 0.1.
        assert!((m1.prob(0) - 0.45).abs() < 1e-12);
        assert!((m1.prob(1) - 0.45).abs() < 1e-12);
        assert!((m1.prob(2) - 0.10).abs() < 1e-12);
        let all = s.all_marginals();
        assert_eq!(all.len(), 3);
        for t in 0..3 {
            assert_eq!(all[t].probs(), s.marginal_at(t as u32).probs());
        }
    }

    #[test]
    fn enumeration_matches_trajectory_prob_and_sums_to_one() {
        for s in [indep_stream(), markov_stream()] {
            let trajs = s.enumerate_trajectories();
            let total: f64 = trajs.iter().map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-9, "total {total}");
            for (traj, p) in &trajs {
                assert!((s.trajectory_prob(traj) - p).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn enumeration_marginals_match_forward_marginals() {
        let s = markov_stream();
        let trajs = s.enumerate_trajectories();
        for t in 0..s.len() {
            for d in 0..s.domain().len() {
                let enumerated: f64 = trajs
                    .iter()
                    .filter(|(traj, _)| traj[t] == d)
                    .map(|(_, p)| p)
                    .sum();
                let direct = s.marginal_at(t as u32).prob(d);
                assert!(
                    (enumerated - direct).abs() < 1e-9,
                    "t={t} d={d}: {enumerated} vs {direct}"
                );
            }
        }
    }

    #[test]
    fn sampling_approximates_marginals() {
        let s = markov_stream();
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 20_000;
        let mut counts = vec![0usize; s.domain().len()];
        for _ in 0..n {
            let traj = s.sample_trajectory(&mut rng);
            counts[traj[1]] += 1;
        }
        let m1 = s.marginal_at(1);
        for d in 0..s.domain().len() {
            let freq = counts[d] as f64 / n as f64;
            assert!(
                (freq - m1.prob(d)).abs() < 0.02,
                "d={d}: {freq} vs {}",
                m1.prob(d)
            );
        }
    }

    #[test]
    fn relational_tuple_counts() {
        let s = indep_stream();
        assert_eq!(s.relational_tuple_count(), 6);
        let s = markov_stream();
        // initial: 2 nonzero; each CPT has 7 nonzero entries.
        assert_eq!(s.relational_tuple_count(), 2 + 14);
    }

    #[test]
    fn pruned_stream_shrinks_and_stays_valid() {
        let s = markov_stream();
        let pruned = s.pruned(0.15);
        assert!(pruned.relational_tuple_count() < s.relational_tuple_count());
        // Marginals still normalize.
        for t in 0..pruned.len() as u32 {
            let m = pruned.marginal_at(t);
            let sum: f64 = m.probs().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        // Small enough epsilon is a no-op.
        let same = s.pruned(1e-12);
        assert_eq!(same.relational_tuple_count(), s.relational_tuple_count());
    }

    #[test]
    fn independent_cpt_view() {
        let s = indep_stream();
        let cpt = s.cpt_at(0);
        for d_prev in 0..3 {
            assert!((cpt.get(1, d_prev) - 0.8).abs() < 1e-12);
        }
    }
}
