//! Finite discrete distributions over event values, including the special
//! "no event" outcome ⊥.
//!
//! A probabilistic event is a *partial random variable* (paper §2.3): a
//! distribution over `D̄⊥ = D1 × … × Dk ∪ {⊥}`. We represent the finite
//! support `D̄` of a stream as a [`Domain`] — an indexed list of value
//! tuples — and a distribution as a dense probability vector with one extra
//! slot for ⊥ at index [`Domain::bottom`].

use crate::value::{display_tuple, Interner, Tuple, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Tolerance used when validating that probabilities sum to one.
pub const PROB_EPS: f64 = 1e-6;

/// Errors raised while constructing model objects.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A probability vector does not sum to 1 (within [`PROB_EPS`]).
    NotNormalized {
        /// The actual sum.
        sum: f64,
    },
    /// A probability is negative or not finite.
    BadProbability {
        /// The offending value.
        p: f64,
    },
    /// A vector or matrix has the wrong dimension for its domain.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        got: usize,
    },
    /// A tuple has the wrong arity for its schema or domain.
    ArityMismatch {
        /// Expected arity.
        expected: usize,
        /// Actual arity.
        got: usize,
    },
    /// A tuple is not part of the stream's declared domain.
    UnknownTuple(String),
    /// A timestep is outside the stream's range.
    TimeOutOfRange {
        /// The requested timestep.
        t: u32,
        /// The stream length.
        len: usize,
    },
    /// Two streams with the same (type, key) identity were inserted.
    DuplicateStream(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NotNormalized { sum } => {
                write!(f, "probabilities sum to {sum}, expected 1")
            }
            ModelError::BadProbability { p } => write!(f, "invalid probability {p}"),
            ModelError::DimensionMismatch { expected, got } => {
                write!(f, "expected dimension {expected}, got {got}")
            }
            ModelError::ArityMismatch { expected, got } => {
                write!(f, "expected arity {expected}, got {got}")
            }
            ModelError::UnknownTuple(t) => write!(f, "tuple {t} not in stream domain"),
            ModelError::TimeOutOfRange { t, len } => {
                write!(f, "timestep {t} outside stream of length {len}")
            }
            ModelError::DuplicateStream(s) => write!(f, "duplicate stream {s}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// The finite support of a stream's value attributes, with an implicit extra
/// outcome ⊥ ("no event this timestep").
///
/// Domains are immutable and shared (`Arc`) between a stream and every
/// evaluator state derived from it.
#[derive(Debug, Clone)]
pub struct Domain {
    tuples: Vec<Tuple>,
    index: HashMap<Tuple, usize>,
    arity: usize,
}

impl Domain {
    /// Builds a domain from distinct value tuples of equal arity.
    ///
    /// `arity` must be supplied explicitly so that empty domains (streams
    /// that can only be ⊥) are representable.
    pub fn new(arity: usize, tuples: Vec<Tuple>) -> Result<Arc<Self>, ModelError> {
        let mut index = HashMap::with_capacity(tuples.len());
        for (i, t) in tuples.iter().enumerate() {
            if t.len() != arity {
                return Err(ModelError::ArityMismatch {
                    expected: arity,
                    got: t.len(),
                });
            }
            if index.insert(t.clone(), i).is_some() {
                return Err(ModelError::UnknownTuple(format!("duplicate {t:?}")));
            }
        }
        Ok(Arc::new(Self {
            tuples,
            index,
            arity,
        }))
    }

    /// Number of non-⊥ outcomes.
    pub fn support_len(&self) -> usize {
        self.tuples.len()
    }

    /// Total number of outcomes including ⊥ (the dimension of probability
    /// vectors over this domain).
    pub fn len(&self) -> usize {
        self.tuples.len() + 1
    }

    /// `false`: a domain always contains at least ⊥.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Index of the ⊥ outcome.
    pub fn bottom(&self) -> usize {
        self.tuples.len()
    }

    /// Arity of the value tuples.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The tuple at outcome `i`, or `None` when `i` is ⊥ (or out of range).
    pub fn tuple(&self, i: usize) -> Option<&Tuple> {
        self.tuples.get(i)
    }

    /// The outcome index of `t`, if present in the support.
    pub fn index_of(&self, t: &[Value]) -> Option<usize> {
        self.index.get(t).copied()
    }

    /// Iterates over the support tuples with their indices.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Tuple)> {
        self.tuples.iter().enumerate()
    }

    /// Renders outcome `i` for diagnostics.
    pub fn display_outcome(&self, i: usize, interner: &Interner) -> String {
        match self.tuple(i) {
            Some(t) => display_tuple(t, interner),
            None => "⊥".to_owned(),
        }
    }
}

/// Validates that `probs` is a probability vector of dimension `dim`.
pub fn validate_dist(probs: &[f64], dim: usize) -> Result<(), ModelError> {
    if probs.len() != dim {
        return Err(ModelError::DimensionMismatch {
            expected: dim,
            got: probs.len(),
        });
    }
    let mut sum = 0.0;
    for &p in probs {
        if !p.is_finite() || p < -PROB_EPS {
            return Err(ModelError::BadProbability { p });
        }
        sum += p;
    }
    if (sum - 1.0).abs() > PROB_EPS {
        return Err(ModelError::NotNormalized { sum });
    }
    Ok(())
}

/// A marginal distribution over a [`Domain`] (one probability per outcome,
/// ⊥ last).
#[derive(Debug, Clone, PartialEq)]
pub struct Marginal {
    probs: Vec<f64>,
}

impl Marginal {
    /// Validates and wraps a probability vector of dimension `domain.len()`.
    pub fn new(domain: &Domain, probs: Vec<f64>) -> Result<Self, ModelError> {
        validate_dist(&probs, domain.len())?;
        Ok(Self { probs })
    }

    /// A marginal putting all mass on ⊥.
    pub fn all_bottom(domain: &Domain) -> Self {
        let mut probs = vec![0.0; domain.len()];
        probs[domain.bottom()] = 1.0;
        Self { probs }
    }

    /// A marginal putting all mass on outcome `i`.
    pub fn point(domain: &Domain, i: usize) -> Self {
        debug_assert!(i < domain.len());
        let mut probs = vec![0.0; domain.len()];
        probs[i] = 1.0;
        Self { probs }
    }

    /// Probability of outcome `i`.
    pub fn prob(&self, i: usize) -> f64 {
        self.probs[i]
    }

    /// The full probability vector (⊥ last).
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Index of the most probable outcome (ties broken towards lower index).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &p) in self.probs.iter().enumerate() {
            if p > self.probs[best] {
                best = i;
            }
        }
        best
    }
}

/// A conditional probability table `E(d' | d)` over a domain of `n`
/// outcomes: `n × n`, column-stochastic (for every previous outcome `d`,
/// the probabilities of the next outcome `d'` sum to 1).
///
/// Stored row-major with the *next* outcome as the row index, matching the
/// paper's `E(t)(d', d) = P[e(t+1) = d' | e(t) = d]` (Fig 3(d)).
#[derive(Debug, Clone, PartialEq)]
pub struct Cpt {
    n: usize,
    data: Vec<f64>,
}

impl Cpt {
    /// Validates and wraps an `n × n` column-stochastic matrix given in
    /// row-major order (`data[d_next * n + d_prev]`).
    pub fn new(n: usize, data: Vec<f64>) -> Result<Self, ModelError> {
        if data.len() != n * n {
            return Err(ModelError::DimensionMismatch {
                expected: n * n,
                got: data.len(),
            });
        }
        for d_prev in 0..n {
            let mut sum = 0.0;
            for d_next in 0..n {
                let p = data[d_next * n + d_prev];
                if !p.is_finite() || p < -PROB_EPS {
                    return Err(ModelError::BadProbability { p });
                }
                sum += p;
            }
            if (sum - 1.0).abs() > PROB_EPS {
                return Err(ModelError::NotNormalized { sum });
            }
        }
        Ok(Self { n, data })
    }

    /// Builds the rank-1 CPT of an independent step: `E(d'|d) = next[d']`
    /// for every `d`.
    pub fn independent(next: &Marginal) -> Self {
        let n = next.probs().len();
        let mut data = vec![0.0; n * n];
        for d_next in 0..n {
            let p = next.prob(d_next);
            for d_prev in 0..n {
                data[d_next * n + d_prev] = p;
            }
        }
        Self { n, data }
    }

    /// Dimension of the underlying domain (including ⊥).
    pub fn dim(&self) -> usize {
        self.n
    }

    /// `P[next = d_next | prev = d_prev]`.
    #[inline]
    pub fn get(&self, d_next: usize, d_prev: usize) -> f64 {
        self.data[d_next * self.n + d_prev]
    }

    /// The column for `d_prev` gathered into a vector (used by samplers).
    pub fn column(&self, d_prev: usize) -> Vec<f64> {
        (0..self.n).map(|d_next| self.get(d_next, d_prev)).collect()
    }

    /// Applies the CPT to a marginal: `out[d'] = Σ_d E(d'|d) · in[d]`.
    pub fn apply(&self, input: &[f64], out: &mut [f64]) {
        debug_assert_eq!(input.len(), self.n);
        debug_assert_eq!(out.len(), self.n);
        out.fill(0.0);
        for d_prev in 0..self.n {
            let p_prev = input[d_prev];
            if p_prev == 0.0 {
                continue;
            }
            for d_next in 0..self.n {
                out[d_next] += self.get(d_next, d_prev) * p_prev;
            }
        }
    }

    /// Raw row-major data, `data[d_next * n + d_prev]`.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Number of non-zero entries — the relational tuple count of this CPT
    /// in the paper's `E(ID, T, A', A, P)` encoding (Fig 3(d)).
    pub fn nonzero_entries(&self) -> usize {
        self.data.iter().filter(|&&p| p > 0.0).count()
    }

    /// Prunes entries below `epsilon` and renormalizes each column — the
    /// storage-reduction technique the paper reports cutting its CPT
    /// relation from 26 GB to ≈1 GB "without a noticeable degradation in
    /// quality" (§4.3.2). Columns whose entire mass falls below the
    /// threshold are left untouched.
    #[must_use]
    pub fn pruned(&self, epsilon: f64) -> Cpt {
        let n = self.n;
        let mut data = self.data.clone();
        for d_prev in 0..n {
            let mut kept = 0.0;
            for d_next in 0..n {
                let slot = &mut data[d_next * n + d_prev];
                if *slot < epsilon {
                    *slot = 0.0;
                } else {
                    kept += *slot;
                }
            }
            if kept > 0.0 {
                for d_next in 0..n {
                    data[d_next * n + d_prev] /= kept;
                }
            } else {
                for d_next in 0..n {
                    data[d_next * n + d_prev] = self.get(d_next, d_prev);
                }
            }
        }
        Cpt { n, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::tuple;

    fn dom3() -> Arc<Domain> {
        Domain::new(1, vec![tuple([1i64]), tuple([2i64]), tuple([3i64])]).unwrap()
    }

    #[test]
    fn domain_indexing_round_trips() {
        let d = dom3();
        assert_eq!(d.len(), 4);
        assert_eq!(d.bottom(), 3);
        for (i, t) in d.iter() {
            assert_eq!(d.index_of(t), Some(i));
        }
        assert_eq!(d.index_of(&tuple([9i64])), None);
        assert_eq!(d.tuple(d.bottom()), None);
    }

    #[test]
    fn domain_rejects_duplicates_and_bad_arity() {
        assert!(Domain::new(1, vec![tuple([1i64]), tuple([1i64])]).is_err());
        assert!(Domain::new(2, vec![tuple([1i64])]).is_err());
    }

    #[test]
    fn marginal_validation() {
        let d = dom3();
        assert!(Marginal::new(&d, vec![0.25; 4]).is_ok());
        assert!(Marginal::new(&d, vec![0.5; 4]).is_err());
        assert!(Marginal::new(&d, vec![0.5, 0.5]).is_err());
        assert!(Marginal::new(&d, vec![1.5, -0.5, 0.0, 0.0]).is_err());
    }

    #[test]
    fn marginal_argmax_and_point() {
        let d = dom3();
        let m = Marginal::new(&d, vec![0.1, 0.6, 0.2, 0.1]).unwrap();
        assert_eq!(m.argmax(), 1);
        let p = Marginal::point(&d, 2);
        assert_eq!(p.prob(2), 1.0);
        let b = Marginal::all_bottom(&d);
        assert_eq!(b.prob(d.bottom()), 1.0);
    }

    #[test]
    fn cpt_validation_is_per_column() {
        // Column 0 sums to 1, column 1 sums to 2 -> invalid.
        let bad = Cpt::new(2, vec![0.5, 1.0, 0.5, 1.0]);
        assert!(bad.is_err());
        let good = Cpt::new(2, vec![0.5, 0.3, 0.5, 0.7]).unwrap();
        assert!((good.get(0, 1) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn independent_cpt_ignores_previous_state() {
        let d = dom3();
        let next = Marginal::new(&d, vec![0.4, 0.3, 0.2, 0.1]).unwrap();
        let cpt = Cpt::independent(&next);
        for d_prev in 0..4 {
            for d_next in 0..4 {
                assert_eq!(cpt.get(d_next, d_prev), next.prob(d_next));
            }
        }
    }

    #[test]
    fn cpt_apply_matches_matrix_vector_product() {
        let cpt = Cpt::new(2, vec![0.9, 0.2, 0.1, 0.8]).unwrap();
        let mut out = vec![0.0; 2];
        cpt.apply(&[0.5, 0.5], &mut out);
        assert!((out[0] - 0.55).abs() < 1e-12);
        assert!((out[1] - 0.45).abs() < 1e-12);
        // Stochastic: output still sums to 1.
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pruning_drops_small_entries_and_renormalizes() {
        let cpt = Cpt::new(2, vec![0.95, 0.5, 0.05, 0.5]).unwrap();
        let pruned = cpt.pruned(0.1);
        assert_eq!(pruned.get(1, 0), 0.0);
        assert!((pruned.get(0, 0) - 1.0).abs() < 1e-12);
        // Column 1 untouched (both entries above threshold).
        assert!((pruned.get(0, 1) - 0.5).abs() < 1e-12);
        assert_eq!(pruned.nonzero_entries(), 3);
        // Columns remain stochastic.
        for d_prev in 0..2 {
            let sum: f64 = (0..2).map(|d| pruned.get(d, d_prev)).sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
        // A threshold above every entry leaves the column unchanged.
        let all_small = Cpt::new(2, vec![0.5, 0.5, 0.5, 0.5]).unwrap();
        assert_eq!(all_small.pruned(0.9), all_small);
    }

    #[test]
    fn cpt_nonzero_entries() {
        let cpt = Cpt::new(2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(cpt.nonzero_entries(), 2);
    }
}
