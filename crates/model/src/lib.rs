//! # lahar-model — probabilistic event data model
//!
//! The data model of *Event Queries on Correlated Probabilistic Streams*
//! (Ré, Letchner, Balazinska, Suciu — SIGMOD 2008), §2:
//!
//! * [`Value`], [`Tuple`], [`Interner`] — attribute values with interned
//!   strings.
//! * [`Domain`], [`Marginal`], [`Cpt`] — finite distributions over event
//!   values including the "no event" outcome ⊥, and the conditional
//!   probability tables that encode Markovian correlations.
//! * [`Stream`] — a probabilistic event stream, either *independent*
//!   (real-time scenario: filtered marginals) or *Markovian* (archived
//!   scenario: smoothed marginals + CPTs).
//! * [`Database`] — a set of mutually independent streams plus standard
//!   relations; defines a distribution over deterministic [`World`]s, which
//!   is the measure `μ` that query answers are probabilities under.
//!
//! The crate also provides the **possible-world oracle**
//! ([`Database::enumerate_worlds`]) used throughout the workspace to
//! property-test every exact evaluator against the denotational semantics.

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // numeric kernels index flat matrices

mod builder;
mod database;
mod dist;
mod encode;
mod schema;
mod stream;
mod value;
mod world;

pub use builder::StreamBuilder;
pub use database::{Database, Relation, StreamId};
pub use dist::{validate_dist, Cpt, Domain, Marginal, ModelError, PROB_EPS};
pub use encode::{
    decode_stream, encode_stream, encode_streams, stream_rows, DecodeError, StreamRow,
};
pub use schema::{Catalog, CatalogError, RelationSchema, StreamSchema};
pub use stream::{Stream, StreamData, StreamKey};
pub use value::{display_tuple, tuple, Interner, Symbol, Tuple, Value};
pub use world::{GroundEvent, World};
