//! Stream and relation schemas, and the catalog that names them.
//!
//! An event type (paper §2.1) has schema `EventType(ID, a1, …, an, T)` with
//! a distinguished *event key* `ID` (possibly spanning several attributes)
//! and an implicit timestamp `T`. A [`StreamSchema`] lists the named
//! attributes and how many of them, counted from the left, form the key.
//! Standard (deterministic) relations such as `Hallway(loc)` get a
//! [`RelationSchema`].

use crate::value::{Interner, Symbol};
use std::collections::HashMap;
use std::fmt;

/// Schema of an event stream type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSchema {
    /// Stream type name, e.g. `At`.
    pub name: Symbol,
    /// All attribute names, key attributes first. `T` is implicit.
    pub attrs: Vec<Symbol>,
    /// Number of leading attributes that form the event key.
    pub key_arity: usize,
}

impl StreamSchema {
    /// Total number of (non-timestamp) attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Number of value (non-key) attributes — the arity of the stream's
    /// [`crate::Domain`].
    pub fn value_arity(&self) -> usize {
        self.attrs.len() - self.key_arity
    }

    /// True if attribute position `i` is part of the event key.
    pub fn is_key_position(&self, i: usize) -> bool {
        i < self.key_arity
    }

    /// Renders e.g. `At(person*, location)` (`*` marks key attributes).
    pub fn display(&self, interner: &Interner) -> String {
        let attrs: Vec<String> = self
            .attrs
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let name = interner.resolve(*a).unwrap_or_default();
                if self.is_key_position(i) {
                    format!("{name}*")
                } else {
                    name
                }
            })
            .collect();
        let name = interner.resolve(self.name).unwrap_or_default();
        format!("{name}({})", attrs.join(", "))
    }
}

/// Schema of a standard (deterministic, time-invariant) relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelationSchema {
    /// Relation name, e.g. `Hallway`.
    pub name: Symbol,
    /// Number of attributes.
    pub arity: usize,
}

/// Errors raised by catalog operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A stream or relation with this name was already declared.
    Duplicate(String),
    /// The declared key arity exceeds the attribute count.
    BadKeyArity {
        /// Total attribute count.
        attrs: usize,
        /// Declared key arity.
        key_arity: usize,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Duplicate(n) => write!(f, "duplicate declaration of {n}"),
            CatalogError::BadKeyArity { attrs, key_arity } => {
                write!(f, "key arity {key_arity} exceeds attribute count {attrs}")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// Name resolution for stream types and relations.
///
/// Parsers and static analysis consult the catalog to distinguish stream
/// subgoals from relational predicates and to find key positions.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    streams: HashMap<Symbol, StreamSchema>,
    relations: HashMap<Symbol, RelationSchema>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a stream type. `key_attrs` and `value_attrs` are attribute
    /// names; the key attributes come first in subgoal position order.
    pub fn declare_stream(
        &mut self,
        interner: &Interner,
        name: &str,
        key_attrs: &[&str],
        value_attrs: &[&str],
    ) -> Result<&StreamSchema, CatalogError> {
        let name_sym = interner.intern(name);
        if self.streams.contains_key(&name_sym) || self.relations.contains_key(&name_sym) {
            return Err(CatalogError::Duplicate(name.to_owned()));
        }
        let attrs: Vec<Symbol> = key_attrs
            .iter()
            .chain(value_attrs.iter())
            .map(|a| interner.intern(a))
            .collect();
        let schema = StreamSchema {
            name: name_sym,
            attrs,
            key_arity: key_attrs.len(),
        };
        Ok(self.streams.entry(name_sym).or_insert(schema))
    }

    /// Declares a standard relation of the given arity.
    pub fn declare_relation(
        &mut self,
        interner: &Interner,
        name: &str,
        arity: usize,
    ) -> Result<RelationSchema, CatalogError> {
        let name_sym = interner.intern(name);
        if self.streams.contains_key(&name_sym) || self.relations.contains_key(&name_sym) {
            return Err(CatalogError::Duplicate(name.to_owned()));
        }
        let schema = RelationSchema {
            name: name_sym,
            arity,
        };
        self.relations.insert(name_sym, schema);
        Ok(schema)
    }

    /// Looks up a stream schema by name symbol.
    pub fn stream(&self, name: Symbol) -> Option<&StreamSchema> {
        self.streams.get(&name)
    }

    /// Looks up a relation schema by name symbol.
    pub fn relation(&self, name: Symbol) -> Option<&RelationSchema> {
        self.relations.get(&name)
    }

    /// Iterates over all declared stream schemas.
    pub fn streams(&self) -> impl Iterator<Item = &StreamSchema> {
        self.streams.values()
    }

    /// Iterates over all declared relation schemas.
    pub fn relations(&self) -> impl Iterator<Item = &RelationSchema> {
        self.relations.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup_stream() {
        let i = Interner::new();
        let mut c = Catalog::new();
        c.declare_stream(&i, "At", &["person"], &["location"])
            .unwrap();
        let at = c.stream(i.intern("At")).unwrap();
        assert_eq!(at.arity(), 2);
        assert_eq!(at.key_arity, 1);
        assert_eq!(at.value_arity(), 1);
        assert!(at.is_key_position(0));
        assert!(!at.is_key_position(1));
        assert_eq!(at.display(&i), "At(person*, location)");
    }

    #[test]
    fn declare_relation_and_reject_duplicates() {
        let i = Interner::new();
        let mut c = Catalog::new();
        c.declare_relation(&i, "Hallway", 1).unwrap();
        assert!(c.declare_relation(&i, "Hallway", 1).is_err());
        assert!(c.declare_stream(&i, "Hallway", &[], &["x"]).is_err());
        assert_eq!(c.relation(i.intern("Hallway")).unwrap().arity, 1);
    }

    #[test]
    fn stream_and_relation_namespaces_are_shared() {
        let i = Interner::new();
        let mut c = Catalog::new();
        c.declare_stream(&i, "At", &["p"], &["l"]).unwrap();
        assert!(c.declare_relation(&i, "At", 2).is_err());
    }

    #[test]
    fn multi_attribute_keys() {
        let i = Interner::new();
        let mut c = Catalog::new();
        c.declare_stream(&i, "Carries", &["person", "object"], &["location"])
            .unwrap();
        let s = c.stream(i.intern("Carries")).unwrap();
        assert_eq!(s.key_arity, 2);
        assert!(s.is_key_position(1));
        assert!(!s.is_key_position(2));
    }
}
