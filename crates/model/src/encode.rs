//! Relational and binary encodings of probabilistic streams.
//!
//! The paper stores streams in a relational system (§2.3): an independent
//! stream with value attributes `A1..Ak` lives in a relation
//! `E(ID, T, A1..Ak, P)` — one row per non-zero marginal entry — and a
//! Markovian stream in `E(ID, T, A′1..A′k, A1..Ak, P)` — one row per
//! non-zero CPT entry (Fig 3(d)). This module materializes those rows
//! and provides a compact binary codec used to persist whole databases.

use crate::database::Database;
use crate::dist::{Cpt, Domain, Marginal};
use crate::stream::{Stream, StreamData, StreamKey};
use crate::value::{Interner, Tuple, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// One row of the paper's relational stream encoding.
///
/// For independent streams `prev` is `None`; for Markov streams the row
/// encodes `P[e(t) = values | e(t-1) = prev]`. The ⊥ outcome is encoded
/// as an empty attribute list.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRow {
    /// Stream type name.
    pub stream_type: String,
    /// Event key attribute values (rendered).
    pub key: Vec<String>,
    /// Timestamp.
    pub t: u32,
    /// Previous value attributes (`None` for marginal rows, empty = ⊥).
    pub prev: Option<Vec<String>>,
    /// Value attributes (empty = ⊥).
    pub values: Vec<String>,
    /// The probability.
    pub p: f64,
}

fn render(interner: &Interner, t: &[Value]) -> Vec<String> {
    t.iter().map(|v| v.display(interner)).collect()
}

/// Materializes the paper's relational rows for one stream.
pub fn stream_rows(interner: &Interner, stream: &Stream) -> Vec<StreamRow> {
    let dom = stream.domain();
    let name = interner
        .resolve(stream.id().stream_type)
        .unwrap_or_default();
    let key = render(interner, &stream.id().key);
    let outcome = |d: usize| -> Vec<String> {
        dom.tuple(d)
            .map(|t| render(interner, t))
            .unwrap_or_default()
    };
    let mut rows = Vec::new();
    match stream.data() {
        StreamData::Independent(marginals) => {
            for (t, m) in marginals.iter().enumerate() {
                for (d, &p) in m.probs().iter().enumerate() {
                    if p > 0.0 {
                        rows.push(StreamRow {
                            stream_type: name.clone(),
                            key: key.clone(),
                            t: t as u32,
                            prev: None,
                            values: outcome(d),
                            p,
                        });
                    }
                }
            }
        }
        StreamData::Markov { initial, cpts } => {
            for (d, &p) in initial.probs().iter().enumerate() {
                if p > 0.0 {
                    rows.push(StreamRow {
                        stream_type: name.clone(),
                        key: key.clone(),
                        t: 0,
                        prev: None,
                        values: outcome(d),
                        p,
                    });
                }
            }
            for (t, cpt) in cpts.iter().enumerate() {
                let n = cpt.dim();
                for d_prev in 0..n {
                    for d_next in 0..n {
                        let p = cpt.get(d_next, d_prev);
                        if p > 0.0 {
                            rows.push(StreamRow {
                                stream_type: name.clone(),
                                key: key.clone(),
                                t: t as u32 + 1,
                                prev: Some(outcome(d_prev)),
                                values: outcome(d_next),
                                p,
                            });
                        }
                    }
                }
            }
        }
    }
    rows
}

const MAGIC: u32 = 0x4c41_4852; // "LAHR"

/// Errors raised while decoding a binary stream image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with the expected magic number.
    BadMagic,
    /// The buffer ended prematurely or contained invalid lengths.
    Truncated,
    /// An embedded string is not valid UTF-8.
    BadString,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a Lahar stream image"),
            DecodeError::Truncated => write!(f, "truncated stream image"),
            DecodeError::BadString => write!(f, "invalid string in stream image"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(DecodeError::Truncated);
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadString)
}

fn put_value(buf: &mut BytesMut, interner: &Interner, v: Value) {
    match v {
        Value::Str(s) => {
            buf.put_u8(0);
            put_str(buf, &interner.resolve(s).unwrap_or_default());
        }
        Value::Int(n) => {
            buf.put_u8(1);
            buf.put_i64_le(n);
        }
        Value::Bool(b) => {
            buf.put_u8(2);
            buf.put_u8(b as u8);
        }
    }
}

fn get_value(buf: &mut Bytes, interner: &Interner) -> Result<Value, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    match buf.get_u8() {
        0 => Ok(Value::Str(interner.intern(&get_str(buf)?))),
        1 => {
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            Ok(Value::Int(buf.get_i64_le()))
        }
        2 => {
            if buf.remaining() < 1 {
                return Err(DecodeError::Truncated);
            }
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        _ => Err(DecodeError::Truncated),
    }
}

fn put_tuple(buf: &mut BytesMut, interner: &Interner, t: &[Value]) {
    buf.put_u32_le(t.len() as u32);
    for &v in t {
        put_value(buf, interner, v);
    }
}

fn get_tuple(buf: &mut Bytes, interner: &Interner) -> Result<Tuple, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if len > 1 << 16 {
        return Err(DecodeError::Truncated);
    }
    (0..len).map(|_| get_value(buf, interner)).collect()
}

/// Encodes one stream into a compact binary image.
pub fn encode_stream(interner: &Interner, stream: &Stream) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    put_str(
        &mut buf,
        &interner
            .resolve(stream.id().stream_type)
            .unwrap_or_default(),
    );
    put_tuple(&mut buf, interner, &stream.id().key);
    let dom = stream.domain();
    buf.put_u32_le(dom.arity() as u32);
    buf.put_u32_le(dom.support_len() as u32);
    for (_, t) in dom.iter() {
        put_tuple(&mut buf, interner, t);
    }
    match stream.data() {
        StreamData::Independent(marginals) => {
            buf.put_u8(0);
            buf.put_u32_le(marginals.len() as u32);
            for m in marginals {
                for &p in m.probs() {
                    buf.put_f64_le(p);
                }
            }
        }
        StreamData::Markov { initial, cpts } => {
            buf.put_u8(1);
            buf.put_u32_le(cpts.len() as u32);
            for &p in initial.probs() {
                buf.put_f64_le(p);
            }
            for cpt in cpts {
                for &p in cpt.data() {
                    buf.put_f64_le(p);
                }
            }
        }
    }
    buf.freeze()
}

/// Decodes a stream image produced by [`encode_stream`], interning strings
/// into `interner`.
pub fn decode_stream(interner: &Interner, mut buf: Bytes) -> Result<Stream, DecodeError> {
    if buf.remaining() < 4 || buf.get_u32_le() != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let stream_type = interner.intern(&get_str(&mut buf)?);
    let key = get_tuple(&mut buf, interner)?;
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    let arity = buf.get_u32_le() as usize;
    let support = buf.get_u32_le() as usize;
    let tuples: Result<Vec<Tuple>, _> = (0..support)
        .map(|_| get_tuple(&mut buf, interner))
        .collect();
    let domain = Domain::new(arity, tuples?).map_err(|_| DecodeError::Truncated)?;
    let dim = domain.len();
    let get_f64s = |n: usize, buf: &mut Bytes| -> Result<Vec<f64>, DecodeError> {
        if buf.remaining() < 8 * n {
            return Err(DecodeError::Truncated);
        }
        Ok((0..n).map(|_| buf.get_f64_le()).collect())
    };
    if buf.remaining() < 5 {
        return Err(DecodeError::Truncated);
    }
    let kind = buf.get_u8();
    let count = buf.get_u32_le() as usize;
    if count > 1 << 24 {
        return Err(DecodeError::Truncated);
    }
    let id = StreamKey { stream_type, key };
    match kind {
        0 => {
            let marginals: Result<Vec<Marginal>, DecodeError> = (0..count)
                .map(|_| {
                    let probs = get_f64s(dim, &mut buf)?;
                    Marginal::new(&domain, probs).map_err(|_| DecodeError::Truncated)
                })
                .collect();
            Stream::independent(id, domain, marginals?).map_err(|_| DecodeError::Truncated)
        }
        1 => {
            let initial = Marginal::new(&domain, get_f64s(dim, &mut buf)?)
                .map_err(|_| DecodeError::Truncated)?;
            let cpts: Result<Vec<Cpt>, DecodeError> = (0..count)
                .map(|_| {
                    let data = get_f64s(dim * dim, &mut buf)?;
                    Cpt::new(dim, data).map_err(|_| DecodeError::Truncated)
                })
                .collect();
            Stream::markov(id, domain, initial, cpts?).map_err(|_| DecodeError::Truncated)
        }
        _ => Err(DecodeError::Truncated),
    }
}

/// Encodes every stream of a database (relations and catalog are cheap to
/// rebuild and are not serialized).
pub fn encode_streams(db: &Database) -> Vec<Bytes> {
    db.streams()
        .iter()
        .map(|s| encode_stream(db.interner(), s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::StreamBuilder;

    fn sample_streams() -> (Interner, Vec<Stream>) {
        let i = Interner::new();
        let b = StreamBuilder::new(&i, "At", &["joe"], &["a", "b"]);
        let indep = b
            .clone()
            .independent(vec![
                b.marginal(&[("a", 0.5), ("b", 0.2)]).unwrap(),
                b.marginal(&[("b", 0.9)]).unwrap(),
            ])
            .unwrap();
        let init = b.marginal(&[("a", 1.0)]).unwrap();
        let cpt = b
            .cpt(&[("a", "a", 0.6), ("a", "b", 0.3), ("b", "b", 0.8)])
            .unwrap();
        let markov = b.markov(init, vec![cpt]).unwrap();
        (i, vec![indep, markov])
    }

    #[test]
    fn binary_round_trip_preserves_streams() {
        let (i, streams) = sample_streams();
        for s in &streams {
            let bytes = encode_stream(&i, s);
            let back = decode_stream(&i, bytes).unwrap();
            assert_eq!(back.id(), s.id());
            assert_eq!(back.len(), s.len());
            assert_eq!(back.is_markov(), s.is_markov());
            for t in 0..s.len() as u32 {
                assert_eq!(back.marginal_at(t).probs(), s.marginal_at(t).probs());
            }
        }
    }

    #[test]
    fn round_trip_across_interners() {
        // Decoding into a fresh interner must still produce equal content.
        let (i, streams) = sample_streams();
        let bytes = encode_stream(&i, &streams[0]);
        let j = Interner::new();
        let back = decode_stream(&j, bytes).unwrap();
        assert_eq!(j.resolve(back.id().stream_type).as_deref(), Some("At"));
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn decode_rejects_garbage() {
        let i = Interner::new();
        assert!(matches!(
            decode_stream(&i, Bytes::from_static(b"nope")),
            Err(DecodeError::BadMagic)
        ));
        let (j, streams) = sample_streams();
        let bytes = encode_stream(&j, &streams[0]);
        let truncated = bytes.slice(0..bytes.len() - 3);
        assert!(decode_stream(&i, truncated).is_err());
    }

    #[test]
    fn relational_rows_match_tuple_counts() {
        let (i, streams) = sample_streams();
        for s in &streams {
            let rows = stream_rows(&i, s);
            assert_eq!(rows.len(), s.relational_tuple_count());
            // Rows are valid probabilities and reference the right stream.
            for r in &rows {
                assert!(r.p > 0.0 && r.p <= 1.0 + 1e-9);
                assert_eq!(r.stream_type, "At");
            }
        }
    }

    #[test]
    fn markov_rows_have_prev_columns_after_t0() {
        let (i, streams) = sample_streams();
        let rows = stream_rows(&i, &streams[1]);
        for r in &rows {
            if r.t == 0 {
                assert!(r.prev.is_none());
            } else {
                assert!(r.prev.is_some());
            }
        }
    }
}
