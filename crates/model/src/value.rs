//! Attribute values and string interning.
//!
//! Lahar events carry tuples of attribute values. String values dominate in
//! practice (people, rooms, tags), so strings are interned into compact
//! [`Symbol`] ids: comparisons in the evaluator hot loops are integer
//! comparisons and tuples stay small.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An interned string. Cheap to copy, hash and compare.
///
/// Symbols are only meaningful relative to the [`Interner`] that produced
/// them; a [`crate::Database`] owns a single interner shared by all of its
/// streams and relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

#[derive(Default)]
struct InternerInner {
    by_name: HashMap<String, Symbol>,
    names: Vec<String>,
}

/// A thread-safe string interner.
///
/// Cloning an `Interner` is cheap and yields a handle to the *same* table,
/// so symbols created through any clone are interchangeable.
#[derive(Clone, Default)]
pub struct Interner {
    inner: Arc<RwLock<InternerInner>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol. Idempotent.
    pub fn intern(&self, name: &str) -> Symbol {
        if let Some(&sym) = self.inner.read().by_name.get(name) {
            return sym;
        }
        let mut inner = self.inner.write();
        if let Some(&sym) = inner.by_name.get(name) {
            return sym;
        }
        let sym = Symbol(inner.names.len() as u32);
        inner.names.push(name.to_owned());
        inner.by_name.insert(name.to_owned(), sym);
        sym
    }

    /// Returns the symbol for `name` if it has been interned.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.inner.read().by_name.get(name).copied()
    }

    /// Returns the string for `sym`, or `None` for a foreign symbol.
    pub fn resolve(&self, sym: Symbol) -> Option<String> {
        self.inner.read().names.get(sym.0 as usize).cloned()
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.inner.read().names.len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.len())
            .finish()
    }
}

/// A single attribute value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An interned string, e.g. a person or room name.
    Str(Symbol),
    /// A 64-bit integer, e.g. a sensor reading.
    Int(i64),
    /// A boolean flag.
    Bool(bool),
}

impl Value {
    /// Renders the value using `interner` for string symbols.
    pub fn display(&self, interner: &Interner) -> String {
        match self {
            Value::Str(s) => interner
                .resolve(*s)
                .map(|n| format!("'{n}'"))
                .unwrap_or_else(|| format!("'#{}'", s.0)),
            Value::Int(i) => i.to_string(),
            Value::Bool(b) => b.to_string(),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<Symbol> for Value {
    fn from(v: Symbol) -> Self {
        Value::Str(v)
    }
}

/// A tuple of attribute values (an event key, or the value attributes of an
/// event).
pub type Tuple = Box<[Value]>;

/// Builds a [`Tuple`] from anything iterable over values.
pub fn tuple<I, V>(values: I) -> Tuple
where
    I: IntoIterator<Item = V>,
    V: Into<Value>,
{
    values.into_iter().map(Into::into).collect()
}

/// Renders a tuple as `(v1, v2, ...)` using `interner`.
pub fn display_tuple(t: &[Value], interner: &Interner) -> String {
    let parts: Vec<String> = t.iter().map(|v| v.display(interner)).collect();
    format!("({})", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let i = Interner::new();
        let a = i.intern("joe");
        let b = i.intern("joe");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn clones_share_table() {
        let i = Interner::new();
        let j = i.clone();
        let a = i.intern("room-220");
        assert_eq!(j.lookup("room-220"), Some(a));
        assert_eq!(j.resolve(a).as_deref(), Some("room-220"));
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let i = Interner::new();
        assert_ne!(i.intern("a"), i.intern("b"));
    }

    #[test]
    fn resolve_unknown_symbol_is_none() {
        let i = Interner::new();
        assert_eq!(i.resolve(Symbol(7)), None);
    }

    #[test]
    fn value_ordering_and_display() {
        let i = Interner::new();
        let s = i.intern("x");
        assert_eq!(Value::Int(3).display(&i), "3");
        assert_eq!(Value::Bool(true).display(&i), "true");
        assert_eq!(Value::Str(s).display(&i), "'x'");
        assert!(Value::Int(1) < Value::Int(2));
    }

    #[test]
    fn tuple_builder() {
        let t = tuple([1i64, 2, 3]);
        assert_eq!(t.len(), 3);
        assert_eq!(t[0], Value::Int(1));
    }
}
