//! The probabilistic event database.
//!
//! A [`Database`] (paper §2.3) holds a set of probabilistic event streams —
//! distinct streams are independent, while a single stream may carry
//! Markovian correlations — plus optional standard relations (`Hallway`,
//! `Office`, …) used by query predicates.

use crate::dist::ModelError;
use crate::schema::{Catalog, CatalogError};
use crate::stream::{Stream, StreamKey};
use crate::value::{Interner, Symbol, Tuple, Value};
use crate::world::{GroundEvent, World};
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// A deterministic, time-invariant relation (e.g. the set of hallway
/// locations).
#[derive(Debug, Clone, Default)]
pub struct Relation {
    arity: usize,
    tuples: HashSet<Tuple>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Self {
            arity,
            tuples: HashSet::new(),
        }
    }

    /// Inserts a tuple; returns an error on arity mismatch.
    pub fn insert(&mut self, t: Tuple) -> Result<(), ModelError> {
        if t.len() != self.arity {
            return Err(ModelError::ArityMismatch {
                expected: self.arity,
                got: t.len(),
            });
        }
        self.tuples.insert(t);
        Ok(())
    }

    /// Membership test.
    pub fn contains(&self, t: &[Value]) -> bool {
        self.tuples.contains(t)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over the tuples (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }
}

/// Opaque handle to one stream of one [`Database`].
///
/// A `StreamId` is obtained from [`Database::stream_id`] (lookup by
/// [`StreamKey`]) or [`Database::stream_id_at`] (lookup by position) and
/// is only meaningful for the database — or a schema-identical clone,
/// such as a checkpoint-restored session database — that produced it.
/// It exists so per-tick hot paths (staging, ingestion) can address
/// streams in `O(1)` without the caller juggling raw `usize` positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(usize);

impl StreamId {
    /// The position of the stream in [`Database::streams`].
    pub fn index(self) -> usize {
        self.0
    }
}

/// A probabilistic event database: streams + relations + catalog.
#[derive(Debug, Clone, Default)]
pub struct Database {
    interner: Interner,
    catalog: Catalog,
    streams: Vec<Stream>,
    by_id: HashMap<StreamKey, usize>,
    relations: HashMap<Symbol, Relation>,
}

impl Database {
    /// An empty database with a fresh interner and catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared string interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The schema catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Declares a stream type (see [`Catalog::declare_stream`]).
    pub fn declare_stream(
        &mut self,
        name: &str,
        key_attrs: &[&str],
        value_attrs: &[&str],
    ) -> Result<(), CatalogError> {
        self.catalog
            .declare_stream(&self.interner, name, key_attrs, value_attrs)?;
        Ok(())
    }

    /// Declares a standard relation and returns a handle for inserting.
    pub fn declare_relation(&mut self, name: &str, arity: usize) -> Result<(), CatalogError> {
        let schema = self.catalog.declare_relation(&self.interner, name, arity)?;
        self.relations.insert(schema.name, Relation::new(arity));
        Ok(())
    }

    /// Inserts a tuple into a declared relation.
    pub fn insert_relation_tuple(&mut self, name: &str, t: Tuple) -> Result<(), ModelError> {
        let sym = self.interner.intern(name);
        let rel = self
            .relations
            .get_mut(&sym)
            .ok_or_else(|| ModelError::UnknownTuple(format!("relation {name} not declared")))?;
        rel.insert(t)
    }

    /// Looks up a relation by name symbol.
    pub fn relation(&self, name: Symbol) -> Option<&Relation> {
        self.relations.get(&name)
    }

    /// Adds a stream; rejects a second stream with the same (type, key).
    pub fn add_stream(&mut self, stream: Stream) -> Result<(), ModelError> {
        if self.by_id.contains_key(stream.id()) {
            return Err(ModelError::DuplicateStream(
                stream.id().display(&self.interner),
            ));
        }
        self.by_id.insert(stream.id().clone(), self.streams.len());
        self.streams.push(stream);
        Ok(())
    }

    /// All streams, in insertion order.
    pub fn streams(&self) -> &[Stream] {
        &self.streams
    }

    /// Appends one timestep's marginal to the identified (independent)
    /// stream — the real-time ingestion path.
    pub fn push_marginal(
        &mut self,
        id: &StreamKey,
        marginal: crate::dist::Marginal,
    ) -> Result<(), ModelError> {
        let idx = *self
            .by_id
            .get(id)
            .ok_or_else(|| ModelError::UnknownTuple(id.display(&self.interner)))?;
        self.streams[idx].push_marginal(marginal)
    }

    /// [`Database::push_marginal`] addressed by stream index (position in
    /// [`Database::streams`]) — the per-tick ingestion hot path, where the
    /// caller already resolved the index and an id lookup per append would
    /// be pure overhead.
    pub fn push_marginal_at(
        &mut self,
        idx: usize,
        marginal: crate::dist::Marginal,
    ) -> Result<(), ModelError> {
        let stream = self
            .streams
            .get_mut(idx)
            .ok_or_else(|| ModelError::UnknownTuple(format!("stream index {idx}")))?;
        stream.push_marginal(marginal)
    }

    /// Looks up a stream by identity.
    pub fn stream(&self, id: &StreamKey) -> Option<&Stream> {
        self.by_id.get(id).map(|&i| &self.streams[i])
    }

    /// Resolves a stream's opaque [`StreamId`] handle from its identity
    /// key — the typed replacement for addressing streams by raw index.
    pub fn stream_id(&self, key: &StreamKey) -> Option<StreamId> {
        self.by_id.get(key).copied().map(StreamId)
    }

    /// The [`StreamId`] of the stream at `index` (its position in
    /// [`Database::streams`]), when one exists.
    pub fn stream_id_at(&self, index: usize) -> Option<StreamId> {
        (index < self.streams.len()).then_some(StreamId(index))
    }

    /// Handles for every stream, in insertion order.
    pub fn stream_ids(&self) -> impl Iterator<Item = StreamId> {
        (0..self.streams.len()).map(StreamId)
    }

    /// Streams of a given type.
    pub fn streams_of_type(&self, stream_type: Symbol) -> impl Iterator<Item = &Stream> {
        self.streams
            .iter()
            .filter(move |s| s.id().stream_type == stream_type)
    }

    /// The horizon: one past the last recorded timestep across all streams.
    pub fn horizon(&self) -> u32 {
        self.streams
            .iter()
            .map(|s| s.len() as u32)
            .max()
            .unwrap_or(0)
    }

    /// Total relational tuple count across all streams (paper Fig 8(b)).
    pub fn relational_tuple_count(&self) -> usize {
        self.streams
            .iter()
            .map(Stream::relational_tuple_count)
            .sum()
    }

    /// Materializes the world induced by one trajectory per stream
    /// (`trajectories[i]` belongs to `self.streams()[i]`).
    pub fn world_from_trajectories(&self, trajectories: &[Vec<usize>]) -> World {
        assert_eq!(trajectories.len(), self.streams.len());
        let mut events = Vec::new();
        for (stream, traj) in self.streams.iter().zip(trajectories) {
            let dom = stream.domain();
            for (t, &d) in traj.iter().enumerate() {
                if let Some(values) = dom.tuple(d) {
                    events.push(GroundEvent {
                        stream_type: stream.id().stream_type,
                        key: stream.id().key.clone(),
                        values: values.clone(),
                        t: t as u32,
                    });
                }
            }
        }
        let t_max = self.horizon().saturating_sub(1);
        World::new(events, t_max)
    }

    /// Enumerates **all** possible worlds with their probabilities `μ(W)`.
    ///
    /// The result is the exact distribution the query semantics is defined
    /// over; the total probability sums to 1. Exponential — test-sized
    /// databases only.
    pub fn enumerate_worlds(&self) -> Vec<(World, f64)> {
        let per_stream: Vec<Vec<(Vec<usize>, f64)>> = self
            .streams
            .iter()
            .map(Stream::enumerate_trajectories)
            .collect();
        let mut worlds = Vec::new();
        let mut choice = vec![0usize; per_stream.len()];
        loop {
            let mut p = 1.0;
            let mut trajs = Vec::with_capacity(per_stream.len());
            for (i, options) in per_stream.iter().enumerate() {
                let (traj, tp) = &options[choice[i]];
                p *= tp;
                trajs.push(traj.clone());
            }
            if p > 0.0 {
                worlds.push((self.world_from_trajectories(&trajs), p));
            }
            // Odometer increment over the per-stream option indices.
            let mut i = 0;
            loop {
                if i == per_stream.len() {
                    return worlds;
                }
                choice[i] += 1;
                if choice[i] < per_stream[i].len() {
                    break;
                }
                choice[i] = 0;
                i += 1;
            }
        }
    }

    /// Samples a single world from the database's distribution.
    pub fn sample_world<R: Rng + ?Sized>(&self, rng: &mut R) -> World {
        let trajs: Vec<Vec<usize>> = self
            .streams
            .iter()
            .map(|s| s.sample_trajectory(rng))
            .collect();
        self.world_from_trajectories(&trajs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Domain, Marginal};
    use crate::value::tuple;

    fn tiny_db() -> Database {
        let mut db = Database::new();
        db.declare_stream("At", &["person"], &["loc"]).unwrap();
        let i = db.interner().clone();
        let dom = Domain::new(1, vec![tuple([i.intern("a")]), tuple([i.intern("b")])]).unwrap();
        let id = StreamKey {
            stream_type: i.intern("At"),
            key: tuple([i.intern("joe")]),
        };
        let s = Stream::independent(
            id,
            dom.clone(),
            vec![
                Marginal::new(&dom, vec![0.5, 0.5, 0.0]).unwrap(),
                Marginal::new(&dom, vec![0.0, 0.7, 0.3]).unwrap(),
            ],
        )
        .unwrap();
        db.add_stream(s).unwrap();
        db
    }

    #[test]
    fn duplicate_streams_rejected() {
        let mut db = tiny_db();
        let dup = db.streams()[0].clone();
        assert!(db.add_stream(dup).is_err());
    }

    #[test]
    fn relations_round_trip() {
        let mut db = tiny_db();
        db.declare_relation("Hallway", 1).unwrap();
        let i = db.interner().clone();
        db.insert_relation_tuple("Hallway", tuple([i.intern("h1")]))
            .unwrap();
        let rel = db.relation(i.intern("Hallway")).unwrap();
        assert!(rel.contains(&tuple([i.intern("h1")])));
        assert!(!rel.contains(&tuple([i.intern("h2")])));
        assert!(db
            .insert_relation_tuple("Hallway", tuple([i.intern("a"), i.intern("b")]))
            .is_err());
        assert!(db
            .insert_relation_tuple("Nope", tuple([i.intern("x")]))
            .is_err());
    }

    #[test]
    fn world_enumeration_sums_to_one() {
        let db = tiny_db();
        let worlds = db.enumerate_worlds();
        // t0: 2 options, t1: 2 options -> 4 worlds.
        assert_eq!(worlds.len(), 4);
        let total: f64 = worlds.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn worlds_respect_bottom() {
        let db = tiny_db();
        // The world where t1 draws bottom has a single event.
        let worlds = db.enumerate_worlds();
        let with_one_event: f64 = worlds
            .iter()
            .filter(|(w, _)| w.len() == 1)
            .map(|(_, p)| p)
            .sum();
        // P[bottom at t1] = 0.3 (both t0 choices).
        assert!((with_one_event - 0.3).abs() < 1e-9);
    }

    #[test]
    fn horizon_and_tuple_count() {
        let db = tiny_db();
        assert_eq!(db.horizon(), 2);
        assert_eq!(db.relational_tuple_count(), 4);
    }

    #[test]
    fn multi_stream_enumeration_is_product() {
        let mut db = tiny_db();
        let i = db.interner().clone();
        let dom = Domain::new(1, vec![tuple([i.intern("a")])]).unwrap();
        let id = StreamKey {
            stream_type: i.intern("At"),
            key: tuple([i.intern("sue")]),
        };
        let s = Stream::independent(
            id,
            dom.clone(),
            vec![Marginal::new(&dom, vec![0.4, 0.6]).unwrap()],
        )
        .unwrap();
        db.add_stream(s).unwrap();
        let worlds = db.enumerate_worlds();
        assert_eq!(worlds.len(), 8);
        let total: f64 = worlds.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
