//! Ergonomic construction of streams over single-attribute string domains.
//!
//! Most streams in the paper's scenarios have one string value attribute
//! (a location, an activity). [`StreamBuilder`] covers that case concisely;
//! multi-attribute or non-string streams use the [`crate::Stream`]
//! constructors directly.

use crate::dist::{Cpt, Domain, Marginal, ModelError};
use crate::stream::{Stream, StreamKey};
use crate::value::{tuple, Interner, Value};
use std::sync::Arc;

/// Builder for streams whose values are single interned strings.
#[derive(Debug, Clone)]
pub struct StreamBuilder {
    interner: Interner,
    id: StreamKey,
    domain: Arc<Domain>,
}

impl StreamBuilder {
    /// Creates a builder for stream `stream_type` with key `key` over the
    /// value alphabet `values` (e.g. the rooms a person can be in).
    pub fn new(interner: &Interner, stream_type: &str, key: &[&str], values: &[&str]) -> Self {
        let tuples = values.iter().map(|v| tuple([interner.intern(v)])).collect();
        let domain = Domain::new(1, tuples).expect("distinct single-attribute values");
        Self {
            interner: interner.clone(),
            id: StreamKey {
                stream_type: interner.intern(stream_type),
                key: key.iter().map(|k| Value::Str(interner.intern(k))).collect(),
            },
            domain,
        }
    }

    /// The domain under construction.
    pub fn domain(&self) -> &Arc<Domain> {
        &self.domain
    }

    /// The identity (type + key) streams built by this builder carry —
    /// what [`crate::Database::stream_id`] resolves to an opaque handle.
    pub fn key(&self) -> &StreamKey {
        &self.id
    }

    /// Outcome index of `value` in the domain.
    ///
    /// # Panics
    /// Panics when `value` was not in the builder's alphabet.
    pub fn outcome(&self, value: &str) -> usize {
        let sym = self
            .interner
            .lookup(value)
            .unwrap_or_else(|| panic!("value {value:?} not interned"));
        self.domain
            .index_of(&tuple([sym]))
            .unwrap_or_else(|| panic!("value {value:?} not in domain"))
    }

    /// A marginal assigning the listed probabilities and the remaining mass
    /// to ⊥.
    pub fn marginal(&self, entries: &[(&str, f64)]) -> Result<Marginal, ModelError> {
        let mut probs = vec![0.0; self.domain.len()];
        let mut used = 0.0;
        for &(v, p) in entries {
            probs[self.outcome(v)] += p;
            used += p;
        }
        probs[self.domain.bottom()] = (1.0 - used).max(0.0);
        Marginal::new(&self.domain, probs)
    }

    /// A point marginal on `value` (or on ⊥ for `None`).
    pub fn point(&self, value: Option<&str>) -> Marginal {
        match value {
            Some(v) => Marginal::point(&self.domain, self.outcome(v)),
            None => Marginal::all_bottom(&self.domain),
        }
    }

    /// A CPT given as `(prev, next, prob)` triples; unlisted columns default
    /// to "stay in place" (identity), and any missing column mass goes to ⊥.
    pub fn cpt(&self, entries: &[(&str, &str, f64)]) -> Result<Cpt, ModelError> {
        let n = self.domain.len();
        let mut data = vec![0.0; n * n];
        let mut col_mass = vec![0.0; n];
        for &(prev, next, p) in entries {
            let dp = self.outcome(prev);
            let dn = self.outcome(next);
            data[dn * n + dp] += p;
            col_mass[dp] += p;
        }
        let bottom = self.domain.bottom();
        for d_prev in 0..n {
            if col_mass[d_prev] == 0.0 && d_prev != bottom {
                // No entries for this previous state: stay in place.
                data[d_prev * n + d_prev] = 1.0;
            } else {
                data[bottom * n + d_prev] += (1.0 - col_mass[d_prev]).max(0.0);
            }
        }
        // From bottom: computed above (all residual mass stays at bottom).
        Cpt::new(n, data)
    }

    /// Finishes an independent stream from per-timestep marginals.
    pub fn independent(self, marginals: Vec<Marginal>) -> Result<Stream, ModelError> {
        Stream::independent(self.id, self.domain, marginals)
    }

    /// Finishes a Markov stream from an initial marginal and per-step CPTs.
    pub fn markov(self, initial: Marginal, cpts: Vec<Cpt>) -> Result<Stream, ModelError> {
        Stream::markov(self.id, self.domain, initial, cpts)
    }

    /// A fully deterministic stream: at each timestep the value is known
    /// exactly (`None` = no event). Useful for replicating the paper's
    /// deterministic examples (e.g. Ex 3.11).
    pub fn deterministic(self, values: &[Option<&str>]) -> Result<Stream, ModelError> {
        let marginals = values.iter().map(|v| self.point(*v)).collect();
        Stream::independent(self.id, self.domain, marginals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marginal_fills_bottom() {
        let i = Interner::new();
        let b = StreamBuilder::new(&i, "At", &["joe"], &["a", "b", "c"]);
        let m = b.marginal(&[("a", 0.3), ("b", 0.5)]).unwrap();
        assert!((m.prob(b.outcome("a")) - 0.3).abs() < 1e-12);
        assert!((m.prob(b.domain().bottom()) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn deterministic_stream() {
        let i = Interner::new();
        let b = StreamBuilder::new(&i, "R", &["k"], &["a", "b", "c"]);
        let s = b.deterministic(&[Some("a"), None, Some("b")]).unwrap();
        assert_eq!(s.len(), 3);
        let m = s.marginal_at(1);
        assert_eq!(m.prob(s.domain().bottom()), 1.0);
    }

    #[test]
    fn cpt_defaults_missing_columns_to_identity() {
        let i = Interner::new();
        let b = StreamBuilder::new(&i, "At", &["joe"], &["a", "b"]);
        let c = b.cpt(&[("a", "a", 0.7), ("a", "b", 0.2)]).unwrap();
        let da = b.outcome("a");
        let db = b.outcome("b");
        let bot = b.domain().bottom();
        assert!((c.get(da, da) - 0.7).abs() < 1e-12);
        assert!((c.get(db, da) - 0.2).abs() < 1e-12);
        assert!((c.get(bot, da) - 0.1).abs() < 1e-12);
        // Column b unlisted -> identity.
        assert!((c.get(db, db) - 1.0).abs() < 1e-12);
        // Bottom column -> stays bottom.
        assert!((c.get(bot, bot) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn markov_builder_round_trip() {
        let i = Interner::new();
        let b = StreamBuilder::new(&i, "At", &["joe"], &["a", "b"]);
        let init = b.marginal(&[("a", 1.0)]).unwrap();
        let cpt = b
            .cpt(&[("a", "a", 0.5), ("a", "b", 0.5), ("b", "b", 1.0)])
            .unwrap();
        let s = b.markov(init, vec![cpt]).unwrap();
        assert!(s.is_markov());
        assert_eq!(s.len(), 2);
    }
}
