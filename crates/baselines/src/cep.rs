//! Deterministic complex event detection (a Cayuga/SASE-style engine).
//!
//! Runs an event query over a *deterministic* event stream — the output of
//! MLE or Viterbi determinization, or a ground-truth trace — using the same
//! symbol-set/NFA machinery as the probabilistic engine, but with plain
//! boolean state. This is the execution model of the paper's deterministic
//! competitors and also how ground-truth event sets are derived for the
//! quality metrics.
//!
//! Exactness: grounding shared variables commutes with the Fig-2 successor
//! semantics only for (extended) regular queries, so [`DeterministicCep`]
//! requires that class; anything else should use the reference evaluator
//! `lahar_query::eval_query` directly.

use lahar_automata::{BitSet, Nfa};
use lahar_model::{Database, Value, World};
use lahar_query::{
    is_extended_regular, is_regular, shared_vars, Binding, NormalQuery, QueryError, Term, Var,
};
use std::collections::BTreeSet;

/// A compiled deterministic detector for one query over worlds.
pub struct DeterministicCep {
    groundings: Vec<(Vec<lahar_query::NormalItem>, Nfa)>,
}

impl DeterministicCep {
    /// Compiles the query for a particular world. Fails unless the query is
    /// regular or extended regular (see module docs).
    pub fn new(db: &Database, world: &World, nq: &NormalQuery) -> Result<Self, QueryError> {
        if !is_regular(nq) && !is_extended_regular(db.catalog(), nq) {
            return Err(QueryError::NotInClass(
                "regular or extended regular (deterministic CEP)".to_owned(),
            ));
        }
        let shared: Vec<Var> = shared_vars(&nq.items).into_iter().collect();
        let bindings = enumerate_world_bindings(world, &nq.items, &shared);
        let mut groundings = Vec::with_capacity(bindings.len().max(1));
        for binding in bindings {
            let items = lahar_core::substitute_items(&nq.items, &binding);
            let nfa = Nfa::compile(&lahar_core::build_regex(&items));
            groundings.push((items, nfa));
        }
        Ok(Self { groundings })
    }

    /// Runs detection: `out[t]` is true when the query is satisfied at `t`.
    pub fn detect(&self, db: &Database, world: &World) -> Result<Vec<bool>, QueryError> {
        let horizon = world.t_max() as usize + 1;
        let mut out = vec![false; horizon];
        for (items, nfa) in &self.groundings {
            let mut cur = nfa.initial().clone();
            let mut next = BitSet::new(nfa.n_states());
            for (t, slot) in out.iter_mut().enumerate() {
                let mut sym = lahar_automata::SymbolSet::EMPTY;
                for event in world.events_at(t as u32) {
                    sym = sym.union(
                        lahar_core::symbols_for_event(db, event, items).map_err(engine_to_query)?,
                    );
                }
                nfa.step_into(&cur, sym, &mut next);
                std::mem::swap(&mut cur, &mut next);
                *slot |= nfa.is_accepting(&cur);
            }
        }
        Ok(out)
    }

    /// Number of grounded automata.
    pub fn n_groundings(&self) -> usize {
        self.groundings.len()
    }
}

fn engine_to_query(e: lahar_core::EngineError) -> QueryError {
    match e {
        lahar_core::EngineError::Query(q) => q,
        other => QueryError::NotInClass(other.to_string()),
    }
}

/// Candidate bindings for the shared variables, drawn from the world's
/// events (per variable: the values observed at its positions, intersected
/// across subgoals).
fn enumerate_world_bindings(
    world: &World,
    items: &[lahar_query::NormalItem],
    vars: &[Var],
) -> Vec<Binding> {
    let mut out = vec![Binding::new()];
    for &x in vars {
        let mut candidates: Option<BTreeSet<Value>> = None;
        for item in items {
            let goal = item.base.goal();
            let positions = goal.positions_of(x);
            if positions.is_empty() {
                continue;
            }
            let mut here = BTreeSet::new();
            for event in world.events() {
                if event.stream_type != goal.stream_type || event.arity() != goal.args.len() {
                    continue;
                }
                // Constants elsewhere in the pattern must not clash.
                let compatible = goal.args.iter().enumerate().all(|(i, term)| match term {
                    Term::Const(c) => event.attr(i) == *c,
                    Term::Var(_) => true,
                });
                if !compatible {
                    continue;
                }
                for &p in &positions {
                    here.insert(event.attr(p));
                }
            }
            candidates = Some(match candidates {
                None => here,
                Some(prev) => prev.intersection(&here).copied().collect(),
            });
        }
        let candidates = candidates.unwrap_or_default();
        let mut next = Vec::with_capacity(out.len() * candidates.len());
        for b in &out {
            for &v in &candidates {
                let mut b2 = b.clone();
                b2.insert(x, v);
                next.push(b2);
            }
        }
        out = next;
    }
    out
}

/// Convenience: detection series for a textual query.
pub fn detect_series(db: &Database, world: &World, src: &str) -> Result<Vec<bool>, QueryError> {
    let q = lahar_query::parse_and_validate(db.catalog(), db.interner(), src)?;
    let nq = NormalQuery::from_query(&q);
    DeterministicCep::new(db, world, &nq)?.detect(db, world)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lahar_model::{tuple, GroundEvent};
    use lahar_query::{parse_query, satisfied_at};

    fn world(db: &Database, events: &[(&str, &str, u32)]) -> World {
        let i = db.interner();
        let evs = events
            .iter()
            .map(|(p, l, t)| GroundEvent {
                stream_type: i.intern("At"),
                key: tuple([i.intern(p)]),
                values: tuple([i.intern(l)]),
                t: *t,
            })
            .collect();
        World::new(evs, events.iter().map(|e| e.2).max().unwrap_or(0))
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.declare_stream("At", &["p"], &["l"]).unwrap();
        db.declare_relation("Hallway", 1).unwrap();
        let i = db.interner().clone();
        db.insert_relation_tuple("Hallway", tuple([i.intern("h")]))
            .unwrap();
        db
    }

    fn assert_matches_reference(db: &Database, w: &World, src: &str) {
        let got = detect_series(db, w, src).unwrap();
        let q = parse_query(db.interner(), src).unwrap();
        for (t, g) in got.iter().enumerate() {
            let want = satisfied_at(db, w, &q, t as u32).unwrap();
            assert_eq!(*g, want, "{src} at t={t}");
        }
    }

    #[test]
    fn regular_detection_matches_reference() {
        let db = db();
        let w = world(&db, &[("joe", "a", 0), ("joe", "h", 1), ("joe", "c", 2)]);
        assert_matches_reference(&db, &w, "At('joe','a') ; At('joe','c')");
        assert_matches_reference(&db, &w, "At('joe','a') ; At('joe','h') ; At('joe','c')");
        assert_matches_reference(
            &db,
            &w,
            "At('joe','a') ; (At('joe', l))+{| Hallway(l)} ; At('joe','c')",
        );
    }

    #[test]
    fn blocking_semantics_is_respected() {
        // Ex 3.11's q_s: the successor R(c) consumes the slot.
        let mut db = Database::new();
        db.declare_stream("R", &[], &["y"]).unwrap();
        let i = db.interner().clone();
        let evs = vec![
            GroundEvent {
                stream_type: i.intern("R"),
                key: tuple(Vec::<Value>::new()),
                values: tuple([i.intern("a")]),
                t: 0,
            },
            GroundEvent {
                stream_type: i.intern("R"),
                key: tuple(Vec::<Value>::new()),
                values: tuple([i.intern("c")]),
                t: 1,
            },
            GroundEvent {
                stream_type: i.intern("R"),
                key: tuple(Vec::<Value>::new()),
                values: tuple([i.intern("b")]),
                t: 2,
            },
        ];
        let w = World::new(evs, 2);
        let qf = detect_series(&db, &w, "R('a') ; R('b')").unwrap();
        assert_eq!(qf, vec![false, false, true]);
        let qs = detect_series(&db, &w, "sigma[y = 'b'](R('a') ; R(y))").unwrap();
        assert_eq!(qs, vec![false, false, false]);
    }

    #[test]
    fn extended_regular_grounds_per_person() {
        let db = db();
        let w = world(
            &db,
            &[
                ("joe", "a", 0),
                ("sue", "a", 1),
                ("joe", "c", 2),
                ("sue", "c", 3),
            ],
        );
        assert_matches_reference(&db, &w, "At(p,'a') ; At(p,'c')");
        let q = parse_query(db.interner(), "At(p,'a') ; At(p,'c')").unwrap();
        let nq = NormalQuery::from_query(&q);
        let cep = DeterministicCep::new(&db, &w, &nq).unwrap();
        assert_eq!(cep.n_groundings(), 2);
    }

    #[test]
    fn rejects_unsafe_queries() {
        let db = db();
        let w = world(&db, &[("joe", "a", 0)]);
        let q = parse_query(db.interner(), "sigma[x = y](At(x,'a') ; At(y,'c'))").unwrap();
        let nq = NormalQuery::from_query(&q);
        assert!(DeterministicCep::new(&db, &w, &nq).is_err());
    }

    #[test]
    fn empty_world_never_detects() {
        let db = db();
        let w = World::new(vec![], 5);
        let got = detect_series(&db, &w, "At('joe','a')").unwrap();
        assert!(got.iter().all(|&b| !b));
    }
}
