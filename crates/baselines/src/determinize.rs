//! Stream determinization: the paper's two competitors (§4.1).
//!
//! * **MLE** (real-time): pick the single most likely tuple at each
//!   timestep of each stream.
//! * **MAP** (archived): the Viterbi path — computed upstream by
//!   `lahar-hmm`/`lahar-rfid` since it needs the raw observations; this
//!   module only provides the MLE transform, which is defined on any
//!   probabilistic database.

use lahar_model::{Database, GroundEvent, World};

/// Determinizes a probabilistic database by keeping, per stream and
/// timestep, only the most probable outcome (dropping timesteps whose
/// argmax is ⊥).
pub fn mle_world(db: &Database) -> World {
    let mut events = Vec::new();
    for stream in db.streams() {
        let dom = stream.domain();
        for (t, marginal) in stream.all_marginals().iter().enumerate() {
            let best = marginal.argmax();
            if let Some(values) = dom.tuple(best) {
                events.push(GroundEvent {
                    stream_type: stream.id().stream_type,
                    key: stream.id().key.clone(),
                    values: values.clone(),
                    t: t as u32,
                });
            }
        }
    }
    World::new(events, db.horizon().saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lahar_model::StreamBuilder;

    #[test]
    fn mle_picks_argmax_and_skips_bottom() {
        let mut db = Database::new();
        db.declare_stream("At", &["p"], &["l"]).unwrap();
        let i = db.interner().clone();
        let b = StreamBuilder::new(&i, "At", &["joe"], &["a", "b"]);
        let ms = vec![
            b.marginal(&[("a", 0.6), ("b", 0.3)]).unwrap(),
            b.marginal(&[("a", 0.2), ("b", 0.3)]).unwrap(), // bottom wins
            b.marginal(&[("b", 0.9)]).unwrap(),
        ];
        db.add_stream(b.independent(ms).unwrap()).unwrap();
        let w = mle_world(&db);
        assert_eq!(w.len(), 2);
        assert_eq!(w.events_at(0).count(), 1);
        assert_eq!(w.events_at(1).count(), 0);
        let e = w.events_at(2).next().unwrap();
        assert_eq!(e.values[0], lahar_model::Value::Str(i.intern("b")));
    }

    #[test]
    fn mle_on_markov_stream_uses_forward_marginals() {
        let mut db = Database::new();
        db.declare_stream("At", &["p"], &["l"]).unwrap();
        let i = db.interner().clone();
        let b = StreamBuilder::new(&i, "At", &["joe"], &["a", "b"]);
        let init = b.marginal(&[("a", 1.0)]).unwrap();
        let cpt = b
            .cpt(&[("a", "b", 0.9), ("a", "a", 0.1), ("b", "b", 1.0)])
            .unwrap();
        db.add_stream(b.markov(init, vec![cpt]).unwrap()).unwrap();
        let w = mle_world(&db);
        let e0 = w.events_at(0).next().unwrap();
        let e1 = w.events_at(1).next().unwrap();
        assert_eq!(e0.values[0], lahar_model::Value::Str(i.intern("a")));
        assert_eq!(e1.values[0], lahar_model::Value::Str(i.intern("b")));
    }
}
