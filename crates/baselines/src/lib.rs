//! # lahar-baselines — deterministic competitors
//!
//! The two baselines Lahar is evaluated against (paper §4.1):
//!
//! * **MLE** ([`mle_world`]): keep the single most likely tuple per
//!   timestep, then run the query with ordinary deterministic CEP
//!   semantics — the real-time competitor (Fig 9, Fig 12).
//! * **MAP / Viterbi**: the most likely *path* through the smoothed data —
//!   the archived competitor (Fig 10, Fig 13); the path itself is produced
//!   by `lahar_hmm::Hmm::viterbi` and materialized as a world by
//!   `lahar_rfid::Deployment::viterbi_world`.
//!
//! [`DeterministicCep`] is the Cayuga/SASE-style detector both baselines
//! run on, built from the same NFA translation as the probabilistic engine
//! (and used to derive ground-truth event sets for the quality metrics).

#![warn(missing_docs)]

mod cep;
mod determinize;

pub use cep::{detect_series, DeterministicCep};
pub use determinize::mle_world;
