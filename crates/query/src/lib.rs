//! # lahar-query — the Lahar event query language
//!
//! The query language of *Event Queries on Correlated Probabilistic
//! Streams* (SIGMOD 2008) — a strict subset of Cayuga with selections,
//! left-associative sequencing, joins via shared variables, and
//! parameterized Kleene plus — together with everything static about it:
//!
//! * [`Query`]/[`BaseQuery`]/[`Cond`] — the AST (§2.2, Definition 2.1) and
//!   a text [`parser`](parse_query).
//! * [`eval_query`]/[`satisfied_at`]/[`prob_at`] — the Fig-2 denotational
//!   semantics on deterministic worlds and the possible-world probability
//!   oracle (Definition 2.3), used as the specification for every
//!   evaluator in `lahar-core`.
//! * [`NormalQuery`] — selection push-down into the canonical
//!   one-predicate-per-subgoal form required by the translation (§3.1.1).
//! * [`classify`] and friends — the Regular / Extended-Regular / Safe /
//!   Unsafe static analysis (Definitions 3.1, 3.4, 3.5, 3.8).
//! * [`compile_safe_plan`] — Algorithm 1, producing [`SafePlan`] trees for
//!   the probabilistic stream algebra of §3.3.

#![warn(missing_docs)]

mod analysis;
mod ast;
mod matching;
mod normalize;
mod parser;
mod plan;
mod semantics;

pub use analysis::{
    cannot_unify, classify, is_extended_regular, is_regular, is_safe, shared_vars,
    streams_disjoint, syntactically_independent, validate, QueryClass, MAX_SUBGOALS,
};
pub use ast::{BaseQuery, CmpOp, Cond, Query, Subgoal, Term, Var};
pub use matching::{eval_cond, match_event, Binding, QueryError};
pub use normalize::{NormalItem, NormalQuery, ResidualCond};
pub use parser::{parse_and_validate, parse_query};
pub use plan::{compile_safe_plan, SafePlan};
pub use semantics::{eval_query, prob_at, prob_series, satisfied_at, ResultEvent};
