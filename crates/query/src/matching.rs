//! Subgoal-to-event matching and condition evaluation under a binding.

use crate::ast::{Cond, Subgoal, Term, Var};
use lahar_model::{Database, GroundEvent, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A variable binding produced by matching.
pub type Binding = BTreeMap<Var, Value>;

/// Errors raised during query validation or evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A condition references a variable that is not bound at that point.
    UnboundVar(String),
    /// A condition references an undeclared relation.
    UnknownRelation(String),
    /// A subgoal references an undeclared stream type.
    UnknownStream(String),
    /// A subgoal or relation atom has the wrong number of arguments.
    ArityMismatch {
        /// The offending atom, rendered.
        atom: String,
        /// Expected arity.
        expected: usize,
        /// Actual arity.
        got: usize,
    },
    /// A Kleene plus exports a variable that does not occur in its subgoal.
    BadKleeneVar(String),
    /// The query exceeds the 32-subgoal translation limit.
    TooManySubgoals(usize),
    /// A parse error (position and message).
    Parse {
        /// Byte offset in the input.
        offset: usize,
        /// Human-readable message.
        message: String,
    },
    /// The query is not in the class required by the invoked algorithm.
    NotInClass(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnboundVar(v) => write!(f, "unbound variable {v}"),
            QueryError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            QueryError::UnknownStream(s) => write!(f, "unknown stream type {s}"),
            QueryError::ArityMismatch {
                atom,
                expected,
                got,
            } => write!(f, "{atom}: expected {expected} arguments, got {got}"),
            QueryError::BadKleeneVar(v) => {
                write!(
                    f,
                    "Kleene-shared variable {v} does not occur in its subgoal"
                )
            }
            QueryError::TooManySubgoals(n) => {
                write!(
                    f,
                    "query has {n} subgoals; the translation supports at most 32"
                )
            }
            QueryError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            QueryError::NotInClass(c) => write!(f, "query is not {c}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Attempts to match `event` against subgoal `goal` under an existing
/// `binding`, then checks the inner condition `cond` on the extended
/// binding.
///
/// Returns the extended binding on success. Variables already present in
/// `binding` act as constants (this is how shared variables constrain
/// successor choice in the sequence semantics); repeated variables within
/// the subgoal must match equal values.
pub fn match_event(
    db: &Database,
    goal: &Subgoal,
    cond: &Cond,
    event: &GroundEvent,
    binding: &Binding,
) -> Result<Option<Binding>, QueryError> {
    if event.stream_type != goal.stream_type || event.arity() != goal.args.len() {
        return Ok(None);
    }
    let mut extended = binding.clone();
    for (i, term) in goal.args.iter().enumerate() {
        let actual = event.attr(i);
        match term {
            Term::Const(c) => {
                if *c != actual {
                    return Ok(None);
                }
            }
            Term::Var(v) => match extended.get(v) {
                Some(&bound) if bound != actual => return Ok(None),
                Some(_) => {}
                None => {
                    extended.insert(*v, actual);
                }
            },
        }
    }
    if eval_cond(db, cond, &extended)? {
        Ok(Some(extended))
    } else {
        Ok(None)
    }
}

/// Resolves a term to a value under a binding.
fn resolve(term: &Term, binding: &Binding) -> Result<Value, QueryError> {
    match term {
        Term::Const(c) => Ok(*c),
        Term::Var(v) => binding
            .get(v)
            .copied()
            .ok_or_else(|| QueryError::UnboundVar(format!("?{}", v.0 .0))),
    }
}

/// Evaluates a condition under a binding, consulting the database's
/// standard relations for [`Cond::Rel`] atoms.
pub fn eval_cond(db: &Database, cond: &Cond, binding: &Binding) -> Result<bool, QueryError> {
    match cond {
        Cond::True => Ok(true),
        Cond::Cmp { op, lhs, rhs } => {
            let l = resolve(lhs, binding)?;
            let r = resolve(rhs, binding)?;
            Ok(op.apply(l, r))
        }
        Cond::Rel { name, args } => {
            let rel = db.relation(*name).ok_or_else(|| {
                QueryError::UnknownRelation(db.interner().resolve(*name).unwrap_or_default())
            })?;
            let vals: Result<Vec<Value>, _> = args.iter().map(|t| resolve(t, binding)).collect();
            Ok(rel.contains(&vals?))
        }
        Cond::And(a, b) => Ok(eval_cond(db, a, binding)? && eval_cond(db, b, binding)?),
        Cond::Or(a, b) => Ok(eval_cond(db, a, binding)? || eval_cond(db, b, binding)?),
        Cond::Not(a) => Ok(!eval_cond(db, a, binding)?),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;
    use lahar_model::{tuple, Database, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.declare_stream("At", &["person"], &["loc"]).unwrap();
        db.declare_relation("Hallway", 1).unwrap();
        let i = db.interner().clone();
        db.insert_relation_tuple("Hallway", tuple([i.intern("h1")]))
            .unwrap();
        db
    }

    fn event(db: &Database, person: &str, loc: &str, t: u32) -> GroundEvent {
        let i = db.interner();
        GroundEvent {
            stream_type: i.intern("At"),
            key: tuple([i.intern(person)]),
            values: tuple([i.intern(loc)]),
            t,
        }
    }

    #[test]
    fn match_binds_variables() {
        let db = db();
        let i = db.interner().clone();
        let x = Var(i.intern("x"));
        let g = Subgoal {
            stream_type: i.intern("At"),
            args: vec![Term::Var(x), Term::Const(Value::Str(i.intern("h1")))],
        };
        let e = event(&db, "joe", "h1", 3);
        let b = match_event(&db, &g, &Cond::True, &e, &Binding::new())
            .unwrap()
            .unwrap();
        assert_eq!(b[&x], Value::Str(i.intern("joe")));
        // Constant mismatch.
        let e2 = event(&db, "joe", "h2", 4);
        assert!(match_event(&db, &g, &Cond::True, &e2, &Binding::new())
            .unwrap()
            .is_none());
    }

    #[test]
    fn existing_binding_constrains_match() {
        let db = db();
        let i = db.interner().clone();
        let x = Var(i.intern("x"));
        let g = Subgoal {
            stream_type: i.intern("At"),
            args: vec![Term::Var(x), Term::Var(Var(i.intern("l")))],
        };
        let mut b = Binding::new();
        b.insert(x, Value::Str(i.intern("sue")));
        let e = event(&db, "joe", "h1", 1);
        assert!(match_event(&db, &g, &Cond::True, &e, &b).unwrap().is_none());
        let e2 = event(&db, "sue", "h1", 1);
        assert!(match_event(&db, &g, &Cond::True, &e2, &b)
            .unwrap()
            .is_some());
    }

    #[test]
    fn repeated_var_in_subgoal_requires_equal_values() {
        let db = db();
        let i = db.interner().clone();
        let x = Var(i.intern("x"));
        let g = Subgoal {
            stream_type: i.intern("At"),
            args: vec![Term::Var(x), Term::Var(x)],
        };
        let e = event(&db, "joe", "joe", 1);
        assert!(match_event(&db, &g, &Cond::True, &e, &Binding::new())
            .unwrap()
            .is_some());
        let e2 = event(&db, "joe", "h1", 1);
        assert!(match_event(&db, &g, &Cond::True, &e2, &Binding::new())
            .unwrap()
            .is_none());
    }

    #[test]
    fn inner_condition_filters_match() {
        let db = db();
        let i = db.interner().clone();
        let l = Var(i.intern("l"));
        let g = Subgoal {
            stream_type: i.intern("At"),
            args: vec![Term::Var(Var(i.intern("x"))), Term::Var(l)],
        };
        let cond = Cond::Rel {
            name: i.intern("Hallway"),
            args: vec![Term::Var(l)],
        };
        let hall = event(&db, "joe", "h1", 1);
        let office = event(&db, "joe", "o2", 1);
        assert!(match_event(&db, &g, &cond, &hall, &Binding::new())
            .unwrap()
            .is_some());
        assert!(match_event(&db, &g, &cond, &office, &Binding::new())
            .unwrap()
            .is_none());
    }

    #[test]
    fn cond_evaluation() {
        let db = db();
        let i = db.interner().clone();
        let x = Var(i.intern("x"));
        let mut b = Binding::new();
        b.insert(x, Value::Int(5));
        let gt = Cond::Cmp {
            op: CmpOp::Gt,
            lhs: Term::Var(x),
            rhs: Term::Const(Value::Int(3)),
        };
        assert!(eval_cond(&db, &gt, &b).unwrap());
        let and = gt.clone().and(Cond::Not(Box::new(gt.clone())));
        assert!(!eval_cond(&db, &and, &b).unwrap());
        let or = Cond::Or(Box::new(Cond::Not(Box::new(gt.clone()))), Box::new(gt));
        assert!(eval_cond(&db, &or, &b).unwrap());
        // Unbound variable errors out.
        let y = Var(i.intern("y"));
        let bad = Cond::Cmp {
            op: CmpOp::Eq,
            lhs: Term::Var(y),
            rhs: Term::Const(Value::Int(1)),
        };
        assert!(eval_cond(&db, &bad, &b).is_err());
        // Unknown relation errors out.
        let bad_rel = Cond::Rel {
            name: i.intern("Nope"),
            args: vec![],
        };
        assert!(eval_cond(&db, &bad_rel, &b).is_err());
    }
}
