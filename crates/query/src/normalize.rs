//! Selection push-down and the normalized query form.
//!
//! The paper's translation (§3.1.1) first pushes selections down using the
//! identities `σθ(q1; q2) = σθ(q1); q2` (when `var(θ) ⊆ var(q1)`) and
//! `σθ1(σθ2(q)) = σθ1∧θ2(q)`, until every selection conjunct either sits
//! directly on a subgoal or applies to the last subgoal of its child
//! sequence. A [`NormalQuery`] is the result: a flat chain of
//! [`NormalItem`]s, each a base query plus its *associated predicate* `σᵢ`
//! (the paper's "exactly one predicate per subgoal"). Conjuncts that cannot
//! be associated with any single covering subgoal are *residual* — they
//! make the query non-local and therefore unsafe (§3.4).

use crate::ast::{BaseQuery, Cond, Query, Var};
use std::collections::BTreeSet;

/// A base query plus its associated outer predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NormalItem {
    /// The base query (subgoal + inner condition, or Kleene plus). For
    /// Kleene items, associated conjuncts are merged into the
    /// per-repetition condition (sound because their variables are
    /// constant across repetitions).
    pub base: BaseQuery,
    /// The associated predicate `σᵢ`, applied after this item is selected
    /// as successor. Always local: `var(assoc) ⊆ var(goal)`.
    pub assoc: Cond,
}

impl NormalItem {
    /// Free variables exported by this item.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        self.base.free_vars()
    }
}

/// A selection conjunct that could not be attached to any single subgoal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResidualCond {
    /// Index of the last item in scope when the selection applied
    /// (the conjunct is evaluated on results of `items[0..=after_item]`).
    pub after_item: usize,
    /// The conjunct.
    pub cond: Cond,
}

/// A query in normalized (push-down) form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NormalQuery {
    /// The base queries in sequence order, each with its associated
    /// predicate.
    pub items: Vec<NormalItem>,
    /// Non-local conjuncts. Non-empty residuals put the query outside the
    /// Safe class.
    pub residual: Vec<ResidualCond>,
}

impl NormalQuery {
    /// Normalizes a query by pushing every selection conjunct down to the
    /// latest position at which it is still covered by a single subgoal.
    pub fn from_query(q: &Query) -> Self {
        let mut items: Vec<NormalItem> = Vec::new();
        // (after_item index, conjunct) pairs discovered while walking.
        let mut selects: Vec<(usize, Cond)> = Vec::new();
        collect(q, &mut items, &mut selects);

        // Cumulative free-variable sets: free[j] = free(items[0..=j]).
        let mut free: Vec<BTreeSet<Var>> = Vec::with_capacity(items.len());
        let mut acc = BTreeSet::new();
        for item in &items {
            acc.extend(item.free_vars());
            free.push(acc.clone());
        }

        let mut residual = Vec::new();
        for (after, cond) in selects {
            for conjunct in cond.conjuncts() {
                let vars = conjunct.vars();
                // Earliest position at which every variable is bound.
                let jmin = free
                    .iter()
                    .position(|f| vars.iter().all(|v| f.contains(v)))
                    .unwrap_or(after);
                // Earliest position `p ∈ [jmin, after]` whose subgoal
                // covers the conjunct: the identity σθ(q1; bq) = σθ(q1); bq
                // lets the conjunct sit anywhere in that range, and pushing
                // it down maximally (the paper's rule) keeps predicates
                // inside regular leaves rather than on seq items.
                let p = (jmin..=after.min(items.len() - 1)).find(|&j| {
                    let goal_vars = items[j].base.goal().vars();
                    vars.iter().all(|v| goal_vars.contains(v))
                });
                match p {
                    Some(j) => attach(&mut items[j], conjunct.clone()),
                    None => residual.push(ResidualCond {
                        after_item: after,
                        cond: conjunct.clone(),
                    }),
                }
            }
        }
        NormalQuery { items, residual }
    }

    /// Reconstructs an equivalent [`Query`] (used to cross-check the
    /// normalization against the denotational semantics).
    pub fn to_query(&self) -> Query {
        let mut q: Option<Query> = None;
        for (i, item) in self.items.iter().enumerate() {
            q = Some(match q {
                None => Query::Base(item.base.clone()),
                Some(prev) => prev.then(item.base.clone()),
            });
            if !item.assoc.is_true() {
                q = Some(q.unwrap().select(item.assoc.clone()));
            }
            for r in &self.residual {
                if r.after_item == i {
                    q = Some(q.unwrap().select(r.cond.clone()));
                }
            }
        }
        q.expect("a query has at least one base query")
    }

    /// Free variables of the whole query.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        self.items.iter().flat_map(|i| i.free_vars()).collect()
    }

    /// True when no residual (non-local) conjuncts remain.
    pub fn is_local(&self) -> bool {
        self.residual.is_empty()
    }
}

/// Attaches a conjunct to an item: merged into `each` for Kleene items
/// (its variables are shared, hence constant across repetitions), into the
/// associated predicate otherwise.
fn attach(item: &mut NormalItem, conjunct: Cond) {
    match &mut item.base {
        BaseQuery::Kleene { each, .. } => {
            let prev = std::mem::replace(each, Cond::True);
            *each = prev.and(conjunct);
        }
        BaseQuery::Goal { .. } => {
            let prev = std::mem::replace(&mut item.assoc, Cond::True);
            item.assoc = prev.and(conjunct);
        }
    }
}

fn collect(q: &Query, items: &mut Vec<NormalItem>, selects: &mut Vec<(usize, Cond)>) {
    match q {
        Query::Base(b) => items.push(NormalItem {
            base: b.clone(),
            assoc: Cond::True,
        }),
        Query::Seq(q1, b) => {
            collect(q1, items, selects);
            items.push(NormalItem {
                base: b.clone(),
                assoc: Cond::True,
            });
        }
        Query::Select(c, q1) => {
            collect(q1, items, selects);
            if !c.is_true() {
                selects.push((items.len() - 1, c.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, Subgoal, Term};
    use lahar_model::{Interner, Value};

    fn setup() -> (Interner, Var, Var, Var) {
        let i = Interner::new();
        let x = Var(i.intern("x"));
        let y = Var(i.intern("y"));
        let z = Var(i.intern("z"));
        (i, x, y, z)
    }

    fn goal(i: &Interner, name: &str, terms: Vec<Term>) -> BaseQuery {
        BaseQuery::Goal {
            goal: Subgoal {
                stream_type: i.intern(name),
                args: terms,
            },
            cond: Cond::True,
        }
    }

    fn rel(i: &Interner, name: &str, v: Var) -> Cond {
        Cond::Rel {
            name: i.intern(name),
            args: vec![Term::Var(v)],
        }
    }

    #[test]
    fn conjuncts_are_attached_to_covering_subgoals() {
        // sigma[P(x) AND Q(y)]( R(x); S(y) ) — P(x) goes to item 0,
        // Q(y) to item 1.
        let (i, x, y, _) = setup();
        let q = Query::Base(goal(&i, "R", vec![Term::Var(x)]))
            .then(match goal(&i, "S", vec![Term::Var(y)]) {
                BaseQuery::Goal { goal, cond } => BaseQuery::Goal { goal, cond },
                k => k,
            })
            .select(rel(&i, "P", x).and(rel(&i, "Q", y)));
        let nq = NormalQuery::from_query(&q);
        assert!(nq.is_local());
        assert_eq!(nq.items[0].assoc, rel(&i, "P", x));
        assert_eq!(nq.items[1].assoc, rel(&i, "Q", y));
    }

    #[test]
    fn non_local_conjunct_becomes_residual() {
        // h1 = σθ(x,y)(R(x); S(y)) — θ spans both subgoals.
        let (i, x, y, _) = setup();
        let theta = Cond::Cmp {
            op: CmpOp::Eq,
            lhs: Term::Var(x),
            rhs: Term::Var(y),
        };
        let q = Query::Base(goal(&i, "R", vec![Term::Var(x)]))
            .then(goal(&i, "S", vec![Term::Var(y)]).goal().clone().into_goal())
            .select(theta.clone());
        let nq = NormalQuery::from_query(&q);
        assert!(!nq.is_local());
        assert_eq!(nq.residual.len(), 1);
        assert_eq!(nq.residual[0].cond, theta);
    }

    #[test]
    fn conjunct_prefers_latest_covering_subgoal() {
        // σθ(x,y)(R(x); S(y); T(x, y)) — θ is local to T even though both
        // variables are free earlier.
        let (i, x, y, _) = setup();
        let theta = Cond::Cmp {
            op: CmpOp::Eq,
            lhs: Term::Var(x),
            rhs: Term::Var(y),
        };
        let q = Query::Base(goal(&i, "R", vec![Term::Var(x)]))
            .then(BaseQuery::Goal {
                goal: Subgoal {
                    stream_type: i.intern("S"),
                    args: vec![Term::Var(y)],
                },
                cond: Cond::True,
            })
            .then(BaseQuery::Goal {
                goal: Subgoal {
                    stream_type: i.intern("T"),
                    args: vec![Term::Var(x), Term::Var(y)],
                },
                cond: Cond::True,
            })
            .select(theta.clone());
        let nq = NormalQuery::from_query(&q);
        assert!(nq.is_local());
        assert_eq!(nq.items[2].assoc, theta);
    }

    #[test]
    fn kleene_conjunct_merges_into_each() {
        // σ_P(p)( (At(p,l))+<p> ) — P(p) joins the per-repetition filter.
        let (i, _, _, _) = setup();
        let p = Var(i.intern("p"));
        let l = Var(i.intern("l"));
        let q = Query::Base(BaseQuery::Kleene {
            goal: Subgoal {
                stream_type: i.intern("At"),
                args: vec![Term::Var(p), Term::Var(l)],
            },
            cond: Cond::True,
            shared: vec![p],
            each: rel(&i, "Hallway", l),
        })
        .select(rel(&i, "Person", p));
        let nq = NormalQuery::from_query(&q);
        assert!(nq.is_local());
        match &nq.items[0].base {
            BaseQuery::Kleene { each, .. } => {
                assert_eq!(each.conjuncts().len(), 2);
            }
            other => panic!("expected kleene, got {other:?}"),
        }
        assert!(nq.items[0].assoc.is_true());
    }

    #[test]
    fn round_trip_reconstruction_preserves_items() {
        let (i, x, _, _) = setup();
        let q = Query::Base(goal(&i, "R", vec![Term::Var(x)]))
            .select(rel(&i, "P", x))
            .then(BaseQuery::Goal {
                goal: Subgoal {
                    stream_type: i.intern("S"),
                    args: vec![Term::Const(Value::Int(3))],
                },
                cond: Cond::True,
            });
        let nq = NormalQuery::from_query(&q);
        let back = NormalQuery::from_query(&nq.to_query());
        assert_eq!(nq, back);
    }

    // Helper so the h1 test reads naturally.
    trait IntoGoal {
        fn into_goal(self) -> BaseQuery;
    }
    impl IntoGoal for Subgoal {
        fn into_goal(self) -> BaseQuery {
            BaseQuery::Goal {
                goal: self,
                cond: Cond::True,
            }
        }
    }
}
