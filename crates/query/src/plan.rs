//! Safe plans and the Algorithm-1 compiler (paper §3.3.2).
//!
//! A safe plan is a left-linear tree of probabilistic stream algebra
//! operators whose leftmost leaf is a regular-expression operator
//! `reg⟨V⟩(q)`: substituting any constants for the variables in `V` makes
//! the leaf query regular. Inner nodes are projections `π₋ₓ` and sequencing
//! `seq(P, bq)`; selections are already folded into the items by
//! normalization.

use crate::analysis::{shared_vars, streams_disjoint, syntactically_independent};
use crate::ast::Var;
use crate::matching::QueryError;
use crate::normalize::{NormalItem, NormalQuery};
use lahar_model::{Catalog, Interner};
use std::collections::BTreeSet;

/// A compiled safe plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SafePlan {
    /// The leftmost leaf: a query that is regular once every variable in
    /// `env` is substituted with a constant.
    Reg {
        /// The grounded variables `V_reg` (enumerated at runtime over key
        /// bindings).
        env: Vec<Var>,
        /// The leaf query items.
        items: Vec<NormalItem>,
    },
    /// Projection `π₋ₓ`: combines the independent probabilities of the
    /// child plan's per-binding instances as `1 − Π(1 − pᵢ)`.
    Project {
        /// The variable projected away.
        var: Var,
        /// The child plan.
        input: Box<SafePlan>,
    },
    /// Sequencing `seq(P, bq)`: the latest-precursor / latest-witness
    /// factorization (paper Eq. 3).
    Seq {
        /// The child plan computing interval probabilities.
        input: Box<SafePlan>,
        /// The appended base query.
        item: NormalItem,
    },
}

impl SafePlan {
    /// Renders an indented tree for diagnostics.
    pub fn display(&self, interner: &Interner) -> String {
        let mut out = String::new();
        self.fmt_into(interner, 0, &mut out);
        out
    }

    fn fmt_into(&self, interner: &Interner, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            SafePlan::Reg { env, items } => {
                let vars: Vec<String> = env.iter().map(|v| v.display(interner)).collect();
                let body: Vec<String> = items
                    .iter()
                    .map(|i| {
                        if i.assoc.is_true() {
                            i.base.display(interner)
                        } else {
                            format!(
                                "{} [{}]",
                                i.base.display(interner),
                                i.assoc.display(interner)
                            )
                        }
                    })
                    .collect();
                out.push_str(&format!(
                    "{pad}reg<{}>({})\n",
                    vars.join(", "),
                    body.join(" ; ")
                ));
            }
            SafePlan::Project { var, input } => {
                out.push_str(&format!("{pad}π-{}\n", var.display(interner)));
                input.fmt_into(interner, depth + 1, out);
            }
            SafePlan::Seq { input, item } => {
                out.push_str(&format!("{pad}seq[{}]\n", item.base.display(interner)));
                input.fmt_into(interner, depth + 1, out);
            }
        }
    }

    /// The regular leaf of the plan.
    pub fn reg_leaf(&self) -> (&[Var], &[NormalItem]) {
        match self {
            SafePlan::Reg { env, items } => (env, items),
            SafePlan::Project { input, .. } | SafePlan::Seq { input, .. } => input.reg_leaf(),
        }
    }
}

/// Compiles a safe plan for a normalized query (Algorithm 1), or fails
/// with [`QueryError::NotInClass`] when the query is unsafe.
pub fn compile_safe_plan(catalog: &Catalog, nq: &NormalQuery) -> Result<SafePlan, QueryError> {
    if !nq.is_local() {
        return Err(QueryError::NotInClass(
            "safe: query has non-local predicates".to_owned(),
        ));
    }
    let env = BTreeSet::new();
    plan(catalog, &env, &nq.items)
        .ok_or_else(|| QueryError::NotInClass("safe: no safe plan exists".to_owned()))
}

fn plan(catalog: &Catalog, env: &BTreeSet<Var>, items: &[NormalItem]) -> Option<SafePlan> {
    // Line 1: all shared variables eliminated — regular leaf.
    let shared = shared_vars(items);
    if shared.iter().all(|v| env.contains(v)) {
        // Keep only the env variables that actually occur in the leaf.
        let leaf_vars: BTreeSet<Var> = items.iter().flat_map(|i| i.base.goal().vars()).collect();
        let env_vec: Vec<Var> = env
            .iter()
            .copied()
            .filter(|v| leaf_vars.contains(v))
            .collect();
        return Some(SafePlan::Reg {
            env: env_vec,
            items: items.to_vec(),
        });
    }
    // Line 3: eliminate a syntactically independent variable.
    for x in &shared {
        if !env.contains(x) && syntactically_independent(catalog, items, *x) {
            let mut env2 = env.clone();
            env2.insert(*x);
            return Some(SafePlan::Project {
                var: *x,
                input: Box::new(plan(catalog, &env2, items)?),
            });
        }
    }
    // Line 7: split off the last base query with seq. Algorithm 1 writes
    // the split as `q = q1; g` — a plain subgoal: a Kleene tail would need
    // chained-unfolding occurrence statistics the seq operator does not
    // have (and splitting one can smuggle an ungrounded shared variable
    // past the analysis, e.g. the #P-hard `h2`).
    if items.len() >= 2 && !items[items.len() - 1].base.is_kleene() {
        let (prefix, last) = items.split_at(items.len() - 1);
        let last = &last[0];
        let prefix_vars: BTreeSet<Var> = prefix.iter().flat_map(|i| i.base.goal().vars()).collect();
        let last_vars = last.base.goal().vars();
        let common_in_env = prefix_vars
            .intersection(&last_vars)
            .all(|v| env.contains(v));
        if common_in_env && streams_disjoint(catalog, prefix, last.base.goal()) {
            return Some(SafePlan::Seq {
                input: Box::new(plan(catalog, env, prefix)?),
                item: last.clone(),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{classify, QueryClass};
    use crate::ast::{BaseQuery, Cond, Query, Subgoal, Term};
    use lahar_model::{Interner, Value};

    fn catalog(i: &Interner) -> Catalog {
        let mut c = Catalog::new();
        c.declare_stream(i, "R", &["k"], &["v"]).unwrap();
        c.declare_stream(i, "S", &["k"], &["v"]).unwrap();
        c.declare_stream(i, "T", &["k"], &["v"]).unwrap();
        c
    }

    fn goal(i: &Interner, name: &str, args: Vec<Term>) -> BaseQuery {
        BaseQuery::Goal {
            goal: Subgoal {
                stream_type: i.intern(name),
                args,
            },
            cond: Cond::True,
        }
    }

    /// Ex 3.17: the plan for R(x); S(x); T('a', y) is
    /// seq(π₋ₓ(reg⟨x⟩(R(x); S(x))), T('a', y)).
    #[test]
    fn example_3_17_plan_shape() {
        let i = Interner::new();
        let c = catalog(&i);
        let x = Var(i.intern("x"));
        let y = Var(i.intern("y"));
        let q = Query::Base(goal(
            &i,
            "R",
            vec![Term::Var(x), Term::Var(Var(i.intern("_1")))],
        ))
        .then(goal(
            &i,
            "S",
            vec![Term::Var(x), Term::Var(Var(i.intern("_2")))],
        ))
        .then(goal(
            &i,
            "T",
            vec![Term::Const(Value::Str(i.intern("a"))), Term::Var(y)],
        ));
        let nq = NormalQuery::from_query(&q);
        assert_eq!(classify(&c, &nq), QueryClass::Safe);
        let plan = compile_safe_plan(&c, &nq).unwrap();
        match &plan {
            SafePlan::Seq { input, item } => {
                assert_eq!(item.base.goal().stream_type, i.intern("T"));
                match input.as_ref() {
                    SafePlan::Project { var, input } => {
                        assert_eq!(*var, x);
                        match input.as_ref() {
                            SafePlan::Reg { env, items } => {
                                assert_eq!(env.as_slice(), &[x]);
                                assert_eq!(items.len(), 2);
                            }
                            other => panic!("expected reg leaf, got {other:?}"),
                        }
                    }
                    other => panic!("expected projection, got {other:?}"),
                }
            }
            other => panic!("expected seq at root, got {other:?}"),
        }
        // The rendering is stable enough to eyeball.
        let text = plan.display(&i);
        assert!(text.contains("seq"), "{text}");
        assert!(text.contains("π-x"), "{text}");
        assert!(text.contains("reg<x>"), "{text}");
    }

    /// A regular query compiles to a bare reg leaf with empty env.
    #[test]
    fn regular_query_compiles_to_reg_leaf() {
        let i = Interner::new();
        let c = catalog(&i);
        let q = Query::Base(goal(
            &i,
            "R",
            vec![
                Term::Const(Value::Str(i.intern("k1"))),
                Term::Const(Value::Str(i.intern("a"))),
            ],
        ));
        let plan = compile_safe_plan(&c, &NormalQuery::from_query(&q)).unwrap();
        assert!(matches!(plan, SafePlan::Reg { ref env, .. } if env.is_empty()));
    }

    /// An extended regular query compiles to π(reg).
    #[test]
    fn extended_regular_compiles_to_projected_reg() {
        let i = Interner::new();
        let c = catalog(&i);
        let x = Var(i.intern("x"));
        let q = Query::Base(goal(
            &i,
            "R",
            vec![Term::Var(x), Term::Var(Var(i.intern("_1")))],
        ))
        .then(goal(
            &i,
            "S",
            vec![Term::Var(x), Term::Var(Var(i.intern("_2")))],
        ));
        let plan = compile_safe_plan(&c, &NormalQuery::from_query(&q)).unwrap();
        match plan {
            SafePlan::Project { var, input } => {
                assert_eq!(var, x);
                assert!(matches!(*input, SafePlan::Reg { .. }));
            }
            other => panic!("expected projection at root, got {other:?}"),
        }
    }

    /// Unsafe queries are rejected.
    #[test]
    fn unsafe_queries_fail_to_compile() {
        let i = Interner::new();
        let c = catalog(&i);
        let x = Var(i.intern("x"));
        // h3 = R(); S(x); T(x).
        let q = Query::Base(goal(
            &i,
            "R",
            vec![
                Term::Const(Value::Str(i.intern("r"))),
                Term::Var(Var(i.intern("_1"))),
            ],
        ))
        .then(goal(
            &i,
            "S",
            vec![Term::Var(x), Term::Var(Var(i.intern("_2")))],
        ))
        .then(goal(
            &i,
            "T",
            vec![Term::Var(x), Term::Var(Var(i.intern("_3")))],
        ));
        assert!(compile_safe_plan(&c, &NormalQuery::from_query(&q)).is_err());
    }

    /// Safe-plan compilation succeeds exactly on the Safe class for the
    /// paper's example queries (agreement between Def 3.8 and Algorithm 1).
    #[test]
    fn planner_agrees_with_classification() {
        let i = Interner::new();
        let c = catalog(&i);
        let x = Var(i.intern("x"));
        let y = Var(i.intern("y"));
        let queries = vec![
            // Safe (Fig 6).
            Query::Base(goal(
                &i,
                "R",
                vec![Term::Var(x), Term::Var(Var(i.intern("_1")))],
            ))
            .then(goal(
                &i,
                "S",
                vec![Term::Var(x), Term::Var(Var(i.intern("_2")))],
            ))
            .then(goal(
                &i,
                "T",
                vec![Term::Const(Value::Str(i.intern("a"))), Term::Var(y)],
            )),
            // Unsafe (h4).
            Query::Base(goal(
                &i,
                "R",
                vec![Term::Var(x), Term::Var(Var(i.intern("_1")))],
            ))
            .then(goal(
                &i,
                "S",
                vec![
                    Term::Const(Value::Str(i.intern("s"))),
                    Term::Var(Var(i.intern("_2"))),
                ],
            ))
            .then(goal(
                &i,
                "T",
                vec![Term::Var(x), Term::Var(Var(i.intern("_3")))],
            )),
        ];
        for q in &queries {
            let nq = NormalQuery::from_query(q);
            let is_safe = classify(&c, &nq) != QueryClass::Unsafe;
            assert_eq!(compile_safe_plan(&c, &nq).is_ok(), is_safe);
        }
    }
}
