//! Abstract syntax of Lahar's event query language (paper §2.2).
//!
//! The language is a strict subset of Cayuga: subgoals over event streams,
//! selections `σθ(q)`, left-associative sequencing `q ; bq`, and
//! parameterized Kleene plus `(σθ1(g))+⟨V, θ2⟩`. A [`Query`] is built
//! from [`BaseQuery`]s exactly as in Definition 2.1: sequencing is only
//! allowed with a *base query* on the right, keeping every query a
//! left-deep chain.

use lahar_model::{Interner, Symbol, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A query variable (an interned name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub Symbol);

impl Var {
    /// Renders the variable name.
    pub fn display(&self, interner: &Interner) -> String {
        interner
            .resolve(self.0)
            .unwrap_or_else(|| format!("?{}", self.0 .0))
    }
}

/// A term in a subgoal or condition: a variable or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    /// A variable to be bound by matching.
    Var(Var),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// The variable, if this term is one.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// Renders the term.
    pub fn display(&self, interner: &Interner) -> String {
        match self {
            Term::Var(v) => v.display(interner),
            Term::Const(c) => c.display(interner),
        }
    }
}

/// A subgoal: a stream type applied to terms (no timestamp — `T` is
/// implicit), e.g. `At(x, 'Room201')`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subgoal {
    /// The stream type name.
    pub stream_type: Symbol,
    /// One term per schema attribute (key attributes first).
    pub args: Vec<Term>,
}

impl Subgoal {
    /// The set of variables occurring in the subgoal.
    pub fn vars(&self) -> BTreeSet<Var> {
        self.args.iter().filter_map(Term::as_var).collect()
    }

    /// Positions (0-based attribute indices) where `x` occurs.
    pub fn positions_of(&self, x: Var) -> Vec<usize> {
        self.args
            .iter()
            .enumerate()
            .filter(|(_, t)| t.as_var() == Some(x))
            .map(|(i, _)| i)
            .collect()
    }

    /// Renders e.g. `At(x, 'Room201')`.
    pub fn display(&self, interner: &Interner) -> String {
        let name = interner
            .resolve(self.stream_type)
            .unwrap_or_else(|| format!("#{}", self.stream_type.0));
        let args: Vec<String> = self.args.iter().map(|t| t.display(interner)).collect();
        format!("{name}({})", args.join(", "))
    }
}

/// Comparison operators usable in conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the comparison to two values.
    ///
    /// Ordering comparisons between values of different kinds (e.g. a
    /// string and an integer) follow the total order on [`Value`].
    pub fn apply(self, l: Value, r: Value) -> bool {
        match self {
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A condition `θ`: a Boolean combination of comparisons and relational
/// membership tests (paper §2.2, e.g. `y > 20` or `Hall(z)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cond {
    /// Always true (the trivial predicate `σ_true`).
    True,
    /// A comparison between two terms.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Term,
        /// Right operand.
        rhs: Term,
    },
    /// Membership in a standard relation, e.g. `Hallway(l)`.
    Rel {
        /// Relation name.
        name: Symbol,
        /// Argument terms.
        args: Vec<Term>,
    },
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
    /// Negation.
    Not(Box<Cond>),
}

impl Cond {
    /// Conjunction smart constructor (drops `True` operands).
    #[must_use]
    pub fn and(self, other: Cond) -> Cond {
        match (self, other) {
            (Cond::True, c) | (c, Cond::True) => c,
            (a, b) => Cond::And(Box::new(a), Box::new(b)),
        }
    }

    /// True for the trivial predicate.
    pub fn is_true(&self) -> bool {
        matches!(self, Cond::True)
    }

    /// Variables occurring anywhere in the condition.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            Cond::True => {}
            Cond::Cmp { lhs, rhs, .. } => {
                if let Some(v) = lhs.as_var() {
                    out.insert(v);
                }
                if let Some(v) = rhs.as_var() {
                    out.insert(v);
                }
            }
            Cond::Rel { args, .. } => {
                for t in args {
                    if let Some(v) = t.as_var() {
                        out.insert(v);
                    }
                }
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Cond::Not(a) => a.collect_vars(out),
        }
    }

    /// Splits top-level conjunctions into a flat list of conjuncts.
    /// `True` yields an empty list.
    pub fn conjuncts(&self) -> Vec<&Cond> {
        let mut out = Vec::new();
        self.collect_conjuncts(&mut out);
        out
    }

    fn collect_conjuncts<'a>(&'a self, out: &mut Vec<&'a Cond>) {
        match self {
            Cond::True => {}
            Cond::And(a, b) => {
                a.collect_conjuncts(out);
                b.collect_conjuncts(out);
            }
            other => out.push(other),
        }
    }

    /// Rebuilds a condition from conjuncts.
    pub fn from_conjuncts<I: IntoIterator<Item = Cond>>(conjuncts: I) -> Cond {
        conjuncts.into_iter().fold(Cond::True, |acc, c| acc.and(c))
    }

    /// Renders the condition.
    pub fn display(&self, interner: &Interner) -> String {
        match self {
            Cond::True => "true".to_owned(),
            Cond::Cmp { op, lhs, rhs } => {
                format!("{} {op} {}", lhs.display(interner), rhs.display(interner))
            }
            Cond::Rel { name, args } => {
                let n = interner.resolve(*name).unwrap_or_default();
                let args: Vec<String> = args.iter().map(|t| t.display(interner)).collect();
                format!("{n}({})", args.join(", "))
            }
            Cond::And(a, b) => format!("({} AND {})", a.display(interner), b.display(interner)),
            Cond::Or(a, b) => format!("({} OR {})", a.display(interner), b.display(interner)),
            Cond::Not(a) => format!("NOT {}", a.display(interner)),
        }
    }
}

/// A base query (Definition 2.1): a guarded subgoal or a parameterized
/// Kleene plus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaseQuery {
    /// `σθ(g)`: a subgoal with an *inner* predicate that is part of the
    /// match itself (an event must satisfy `θ` to count as an occurrence of
    /// this base query — contrast with an outer [`Query::Select`]).
    Goal {
        /// The subgoal pattern.
        goal: Subgoal,
        /// The inner predicate `θ` (often `True`).
        cond: Cond,
    },
    /// `(σθ1(g))+⟨V, θ2⟩`: one or more strictly-ordered repetitions of the
    /// guarded subgoal. Variables in `shared` keep a single binding across
    /// repetitions and are the only variables exported; all other variables
    /// of `g` rebind freshly at each repetition. `each` is applied to every
    /// repetition (after it is chosen as successor).
    Kleene {
        /// The repeated subgoal.
        goal: Subgoal,
        /// Inner predicate `θ1` (filters which events count as matches).
        cond: Cond,
        /// The shared/exported variables `V`.
        shared: Vec<Var>,
        /// Per-repetition predicate `θ2`.
        each: Cond,
    },
}

impl BaseQuery {
    /// The subgoal pattern of this base query.
    pub fn goal(&self) -> &Subgoal {
        match self {
            BaseQuery::Goal { goal, .. } | BaseQuery::Kleene { goal, .. } => goal,
        }
    }

    /// The inner predicate (part of matching).
    pub fn inner_cond(&self) -> &Cond {
        match self {
            BaseQuery::Goal { cond, .. } | BaseQuery::Kleene { cond, .. } => cond,
        }
    }

    /// Free (exported) variables: all subgoal variables for a plain goal,
    /// only `V` for a Kleene plus.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        match self {
            BaseQuery::Goal { goal, .. } => goal.vars(),
            BaseQuery::Kleene { shared, .. } => shared.iter().copied().collect(),
        }
    }

    /// True for a Kleene plus.
    pub fn is_kleene(&self) -> bool {
        matches!(self, BaseQuery::Kleene { .. })
    }

    /// Renders the base query.
    pub fn display(&self, interner: &Interner) -> String {
        match self {
            BaseQuery::Goal { goal, cond } => {
                if cond.is_true() {
                    goal.display(interner)
                } else {
                    format!("{}[{}]", goal.display(interner), cond.display(interner))
                }
            }
            BaseQuery::Kleene {
                goal,
                cond,
                shared,
                each,
            } => {
                let inner = if cond.is_true() {
                    goal.display(interner)
                } else {
                    format!("{}[{}]", goal.display(interner), cond.display(interner))
                };
                let vars: Vec<String> = shared.iter().map(|v| v.display(interner)).collect();
                if each.is_true() {
                    format!("({inner})+{{{}}}", vars.join(", "))
                } else {
                    format!(
                        "({inner})+{{{} | {}}}",
                        vars.join(", "),
                        each.display(interner)
                    )
                }
            }
        }
    }
}

/// An event query (Definition 2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// A base query.
    Base(BaseQuery),
    /// Left-associative sequencing `q ; bq`.
    Seq(Box<Query>, BaseQuery),
    /// Outer selection `σθ(q)` — applied to the results of `q`, *after*
    /// successor selection (this placement is semantically significant:
    /// see the paper's Example 3.11, `q_f` vs `q_s`).
    Select(Cond, Box<Query>),
}

impl Query {
    /// Sequencing smart constructor.
    #[must_use]
    pub fn then(self, bq: BaseQuery) -> Query {
        Query::Seq(Box::new(self), bq)
    }

    /// Selection smart constructor (drops trivial conditions).
    #[must_use]
    pub fn select(self, cond: Cond) -> Query {
        if cond.is_true() {
            self
        } else {
            Query::Select(cond, Box::new(self))
        }
    }

    /// Free variables of the query: the union of the free variables of its
    /// base queries (selection does not bind anything).
    pub fn free_vars(&self) -> BTreeSet<Var> {
        match self {
            Query::Base(b) => b.free_vars(),
            Query::Seq(q, b) => {
                let mut vars = q.free_vars();
                vars.extend(b.free_vars());
                vars
            }
            Query::Select(_, q) => q.free_vars(),
        }
    }

    /// All base queries, in left-to-right sequence order.
    pub fn base_queries(&self) -> Vec<&BaseQuery> {
        let mut out = Vec::new();
        self.collect_bases(&mut out);
        out
    }

    fn collect_bases<'a>(&'a self, out: &mut Vec<&'a BaseQuery>) {
        match self {
            Query::Base(b) => out.push(b),
            Query::Seq(q, b) => {
                q.collect_bases(out);
                out.push(b);
            }
            Query::Select(_, q) => q.collect_bases(out),
        }
    }

    /// All subgoals, in left-to-right sequence order (paper: `goal(q)`).
    pub fn subgoals(&self) -> Vec<&Subgoal> {
        self.base_queries()
            .into_iter()
            .map(BaseQuery::goal)
            .collect()
    }

    /// All conditions anywhere in the query (inner, per-repetition, and
    /// outer selections).
    pub fn all_conds(&self) -> Vec<&Cond> {
        let mut out = Vec::new();
        self.collect_conds(&mut out);
        out
    }

    fn collect_conds<'a>(&'a self, out: &mut Vec<&'a Cond>) {
        match self {
            Query::Base(b) => {
                out.push(b.inner_cond());
                if let BaseQuery::Kleene { each, .. } = b {
                    out.push(each);
                }
            }
            Query::Seq(q, b) => {
                q.collect_conds(out);
                out.push(b.inner_cond());
                if let BaseQuery::Kleene { each, .. } = b {
                    out.push(each);
                }
            }
            Query::Select(c, q) => {
                out.push(c);
                q.collect_conds(out);
            }
        }
    }

    /// Renders the query.
    pub fn display(&self, interner: &Interner) -> String {
        match self {
            Query::Base(b) => b.display(interner),
            Query::Seq(q, b) => format!("{} ; {}", q.display(interner), b.display(interner)),
            Query::Select(c, q) => {
                format!("sigma[{}]({})", c.display(interner), q.display(interner))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lahar_model::{tuple, Interner};

    fn v(i: &Interner, name: &str) -> Var {
        Var(i.intern(name))
    }

    fn at(i: &Interner, args: Vec<Term>) -> Subgoal {
        Subgoal {
            stream_type: i.intern("At"),
            args,
        }
    }

    #[test]
    fn free_vars_of_sequence() {
        let i = Interner::new();
        let x = v(&i, "x");
        let y = v(&i, "y");
        let q = Query::Base(BaseQuery::Goal {
            goal: at(&i, vec![Term::Var(x)]),
            cond: Cond::True,
        })
        .then(BaseQuery::Goal {
            goal: at(&i, vec![Term::Var(y)]),
            cond: Cond::True,
        });
        let vars = q.free_vars();
        assert!(vars.contains(&x) && vars.contains(&y));
        assert_eq!(q.subgoals().len(), 2);
    }

    #[test]
    fn kleene_exports_only_shared() {
        let i = Interner::new();
        let p = v(&i, "p");
        let l = v(&i, "l");
        let k = BaseQuery::Kleene {
            goal: at(&i, vec![Term::Var(p), Term::Var(l)]),
            cond: Cond::True,
            shared: vec![p],
            each: Cond::Rel {
                name: i.intern("Hallway"),
                args: vec![Term::Var(l)],
            },
        };
        let free = k.free_vars();
        assert!(free.contains(&p));
        assert!(!free.contains(&l));
    }

    #[test]
    fn conjunct_split_and_rebuild() {
        let i = Interner::new();
        let x = v(&i, "x");
        let c1 = Cond::Rel {
            name: i.intern("Person"),
            args: vec![Term::Var(x)],
        };
        let c2 = Cond::Cmp {
            op: CmpOp::Gt,
            lhs: Term::Var(x),
            rhs: Term::Const(lahar_model::Value::Int(3)),
        };
        let c = c1.clone().and(c2.clone()).and(Cond::True);
        let parts = c.conjuncts();
        assert_eq!(parts.len(), 2);
        let rebuilt = Cond::from_conjuncts(parts.into_iter().cloned());
        assert_eq!(rebuilt.conjuncts().len(), 2);
        // OR is not split.
        let o = Cond::Or(Box::new(c1), Box::new(c2));
        assert_eq!(o.conjuncts().len(), 1);
    }

    #[test]
    fn cmp_ops() {
        use lahar_model::Value::Int;
        assert!(CmpOp::Eq.apply(Int(1), Int(1)));
        assert!(CmpOp::Ne.apply(Int(1), Int(2)));
        assert!(CmpOp::Lt.apply(Int(1), Int(2)));
        assert!(CmpOp::Ge.apply(Int(2), Int(2)));
        assert!(!CmpOp::Gt.apply(Int(2), Int(2)));
        assert!(CmpOp::Le.apply(Int(1), Int(2)));
    }

    #[test]
    fn display_round_trip_shape() {
        let i = Interner::new();
        let x = v(&i, "x");
        let q = Query::Base(BaseQuery::Goal {
            goal: at(
                &i,
                vec![
                    Term::Var(x),
                    Term::Const(lahar_model::Value::Str(i.intern("a"))),
                ],
            ),
            cond: Cond::True,
        });
        assert_eq!(q.display(&i), "At(x, 'a')");
        let _ = tuple([1i64]); // silence unused import in some cfgs
    }

    #[test]
    fn positions_of_var() {
        let i = Interner::new();
        let x = v(&i, "x");
        let g = at(&i, vec![Term::Var(x), Term::Var(x)]);
        assert_eq!(g.positions_of(x), vec![0, 1]);
    }
}
