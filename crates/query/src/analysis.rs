//! Static analysis: query validation and the Regular / Extended-Regular /
//! Safe / Unsafe classification (paper Definitions 3.1, 3.4, 3.5, 3.8).

use crate::ast::{BaseQuery, Query, Subgoal, Var};
use crate::matching::QueryError;
use crate::normalize::{NormalItem, NormalQuery};
use lahar_model::{Catalog, Interner};
use std::collections::BTreeSet;

/// Maximum number of subgoals supported by the symbol-set translation
/// (2 bits per subgoal in a `u64`).
pub const MAX_SUBGOALS: usize = 32;

/// The paper's query classes, ordered from most to least restrictive.
///
/// `Regular ⊂ ExtendedRegular ⊂ Safe`; `Unsafe` queries are #P-hard
/// (§3.4) and fall back to the Monte Carlo sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum QueryClass {
    /// No shared variables, local predicates (Def 3.1): streaming `O(1)`
    /// state.
    Regular,
    /// Shared variables, all syntactically independent (Def 3.5):
    /// streaming `O(m)` state in the number of keys.
    ExtendedRegular,
    /// Every shared variable grounded in its covering prefix (Def 3.8):
    /// `O(T²)` offline algebra.
    Safe,
    /// Provably hard (§3.4): sampling only.
    Unsafe,
}

impl std::fmt::Display for QueryClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            QueryClass::Regular => "regular",
            QueryClass::ExtendedRegular => "extended regular",
            QueryClass::Safe => "safe",
            QueryClass::Unsafe => "unsafe",
        };
        f.write_str(s)
    }
}

/// Validates a query against a catalog: declared stream types and
/// relations, correct arities, bound condition variables, well-formed
/// Kleene exports, and the subgoal-count limit.
pub fn validate(catalog: &Catalog, interner: &Interner, q: &Query) -> Result<(), QueryError> {
    let bases = q.base_queries();
    if bases.len() > MAX_SUBGOALS {
        return Err(QueryError::TooManySubgoals(bases.len()));
    }
    let mut bound: BTreeSet<Var> = BTreeSet::new();
    for base in &bases {
        let goal = base.goal();
        let schema = catalog.stream(goal.stream_type).ok_or_else(|| {
            QueryError::UnknownStream(interner.resolve(goal.stream_type).unwrap_or_default())
        })?;
        if schema.arity() != goal.args.len() {
            return Err(QueryError::ArityMismatch {
                atom: goal.display(interner),
                expected: schema.arity(),
                got: goal.args.len(),
            });
        }
        if let BaseQuery::Kleene {
            shared, goal, each, ..
        } = base
        {
            let gv = goal.vars();
            for v in shared {
                if !gv.contains(v) {
                    return Err(QueryError::BadKleeneVar(v.display(interner)));
                }
            }
            check_cond_vars(interner, each, &gv, &bound)?;
        }
        let gv = goal.vars();
        check_cond_vars(interner, base.inner_cond(), &gv, &bound)?;
        bound.extend(base.free_vars());
    }
    // Relation atoms anywhere in the query must be declared with matching
    // arity, and selection variables must be free somewhere.
    let free = q.free_vars();
    for cond in q.all_conds() {
        validate_cond_relations(catalog, interner, cond)?;
    }
    if let Query::Select(c, _) = q {
        for v in c.vars() {
            if !free.contains(&v) {
                return Err(QueryError::UnboundVar(v.display(interner)));
            }
        }
    }
    validate_selects(interner, q)?;
    Ok(())
}

/// Checks that a condition only uses variables of its own subgoal or ones
/// bound earlier in the sequence.
fn check_cond_vars(
    interner: &Interner,
    cond: &crate::ast::Cond,
    own: &BTreeSet<Var>,
    earlier: &BTreeSet<Var>,
) -> Result<(), QueryError> {
    for v in cond.vars() {
        if !own.contains(&v) && !earlier.contains(&v) {
            return Err(QueryError::UnboundVar(v.display(interner)));
        }
    }
    Ok(())
}

fn validate_cond_relations(
    catalog: &Catalog,
    interner: &Interner,
    cond: &crate::ast::Cond,
) -> Result<(), QueryError> {
    use crate::ast::Cond;
    match cond {
        Cond::True | Cond::Cmp { .. } => Ok(()),
        Cond::Rel { name, args } => {
            let schema = catalog.relation(*name).ok_or_else(|| {
                QueryError::UnknownRelation(interner.resolve(*name).unwrap_or_default())
            })?;
            if schema.arity != args.len() {
                return Err(QueryError::ArityMismatch {
                    atom: interner.resolve(*name).unwrap_or_default(),
                    expected: schema.arity,
                    got: args.len(),
                });
            }
            Ok(())
        }
        Cond::And(a, b) | Cond::Or(a, b) => {
            validate_cond_relations(catalog, interner, a)?;
            validate_cond_relations(catalog, interner, b)
        }
        Cond::Not(a) => validate_cond_relations(catalog, interner, a),
    }
}

/// Checks every selection's variables are free in its operand.
fn validate_selects(interner: &Interner, q: &Query) -> Result<(), QueryError> {
    match q {
        Query::Base(_) => Ok(()),
        Query::Seq(q1, _) => validate_selects(interner, q1),
        Query::Select(c, q1) => {
            let free = q1.free_vars();
            for v in c.vars() {
                if !free.contains(&v) {
                    return Err(QueryError::UnboundVar(v.display(interner)));
                }
            }
            validate_selects(interner, q1)
        }
    }
}

/// The set of *shared* variables of a normalized query: variables occurring
/// in more than one subgoal, plus every Kleene-shared variable.
pub fn shared_vars(items: &[NormalItem]) -> BTreeSet<Var> {
    let mut seen: BTreeSet<Var> = BTreeSet::new();
    let mut shared: BTreeSet<Var> = BTreeSet::new();
    for item in items {
        let gv = item.base.goal().vars();
        for v in &gv {
            if !seen.insert(*v) {
                shared.insert(*v);
            }
        }
        if let BaseQuery::Kleene { shared: vs, .. } = &item.base {
            shared.extend(vs.iter().copied());
        }
    }
    shared
}

/// Definition 3.4: `items` is *syntactically independent* on `x` when
/// (a) `x` occurs in every subgoal, (b) at a key position in every subgoal,
/// and (c) any two subgoals of the same stream type share a key position
/// at which `x` occurs in both.
pub fn syntactically_independent(catalog: &Catalog, items: &[NormalItem], x: Var) -> bool {
    let occurrences: Vec<(&Subgoal, Vec<usize>)> = items
        .iter()
        .map(|item| {
            let g = item.base.goal();
            (g, g.positions_of(x))
        })
        .collect();

    // (a) + (b): a key-position occurrence in every subgoal.
    for (g, positions) in &occurrences {
        let schema = match catalog.stream(g.stream_type) {
            Some(s) => s,
            None => return false,
        };
        if positions.is_empty() {
            return false;
        }
        if !positions.iter().any(|&i| schema.is_key_position(i)) {
            return false;
        }
    }
    // (c): pairwise common key position for same-type subgoals.
    for (i, (gi, pi)) in occurrences.iter().enumerate() {
        for (gj, pj) in occurrences.iter().skip(i + 1) {
            if gi.stream_type != gj.stream_type {
                continue;
            }
            let schema = catalog.stream(gi.stream_type).expect("checked above");
            let common = pi
                .iter()
                .any(|p| schema.is_key_position(*p) && pj.contains(p));
            if !common {
                return false;
            }
        }
    }
    true
}

/// True when every condition attached to the items is local, i.e. its
/// variables fit within its own subgoal (inner and per-repetition
/// conditions) — associated predicates are local by construction.
fn all_predicates_local(items: &[NormalItem]) -> bool {
    items.iter().all(|item| {
        let gv = item.base.goal().vars();
        let inner_ok = item.base.inner_cond().vars().iter().all(|v| gv.contains(v));
        let each_ok = match &item.base {
            BaseQuery::Kleene { each, .. } => each.vars().iter().all(|v| gv.contains(v)),
            BaseQuery::Goal { .. } => true,
        };
        inner_ok && each_ok
    })
}

/// Definition 3.1: regular — local predicates, no shared variables, no
/// Kleene-shared/exported variables.
pub fn is_regular(nq: &NormalQuery) -> bool {
    if !nq.is_local() || !all_predicates_local(&nq.items) {
        return false;
    }
    let mut seen: BTreeSet<Var> = BTreeSet::new();
    for item in &nq.items {
        if let BaseQuery::Kleene { shared, .. } = &item.base {
            if !shared.is_empty() {
                return false;
            }
        }
        let gv = item.base.goal().vars();
        for v in gv {
            if !seen.insert(v) {
                return false;
            }
        }
    }
    true
}

/// Definition 3.5: extended regular — local predicates and the whole query
/// syntactically independent on every shared variable.
pub fn is_extended_regular(catalog: &Catalog, nq: &NormalQuery) -> bool {
    if !nq.is_local() || !all_predicates_local(&nq.items) {
        return false;
    }
    shared_vars(&nq.items)
        .into_iter()
        .all(|x| syntactically_independent(catalog, &nq.items, x))
}

/// Definition 3.8: safe — local predicates and every shared variable
/// *grounded*: the smallest prefix containing all its occurrences is
/// syntactically independent on it.
pub fn is_safe(catalog: &Catalog, nq: &NormalQuery) -> bool {
    if !nq.is_local() || !all_predicates_local(&nq.items) {
        return false;
    }
    for x in shared_vars(&nq.items) {
        let last = nq
            .items
            .iter()
            .rposition(|item| {
                item.base.goal().vars().contains(&x)
                    || matches!(&item.base, BaseQuery::Kleene { shared, .. } if shared.contains(&x))
            })
            .expect("shared variable occurs somewhere");
        if !syntactically_independent(catalog, &nq.items[..=last], x) {
            return false;
        }
    }
    true
}

/// Classifies a normalized query into the narrowest applicable class.
pub fn classify(catalog: &Catalog, nq: &NormalQuery) -> QueryClass {
    if is_regular(nq) {
        QueryClass::Regular
    } else if is_extended_regular(catalog, nq) {
        QueryClass::ExtendedRegular
    } else if is_safe(catalog, nq) {
        QueryClass::Safe
    } else {
        QueryClass::Unsafe
    }
}

/// Conservative non-unifiability check used by the planner (§3.3.2):
/// true when no event can match both a subgoal of `items` and `goal`.
/// Subgoals of different stream types never unify; same-type subgoals fail
/// to unify only when some position holds distinct constants.
pub fn cannot_unify(items: &[NormalItem], goal: &Subgoal) -> bool {
    use crate::ast::Term;
    for item in items {
        let g = item.base.goal();
        if g.stream_type != goal.stream_type {
            continue;
        }
        let clash = g
            .args
            .iter()
            .zip(&goal.args)
            .any(|(a, b)| matches!((a, b), (Term::Const(ca), Term::Const(cb)) if ca != cb));
        if !clash {
            return false;
        }
    }
    true
}

/// Stream-level disjointness, a strengthening of [`cannot_unify`] used by
/// the safe-plan compiler: true when no *stream* can contribute events to
/// both a subgoal of `items` and `goal` — the two sides differ in stream
/// type, or hold distinct constants at a key position (hence always come
/// from streams with different keys).
///
/// This is what the `seq` operator's independence argument actually
/// requires: two subgoals with a value-position constant clash match
/// *disjoint tuples*, but same-stream tuples at one timestep are mutually
/// exclusive rather than independent, so tuple-level non-unifiability
/// ([`cannot_unify`]) is not sufficient for the Eq.-3 factorization.
pub fn streams_disjoint(catalog: &Catalog, items: &[NormalItem], goal: &Subgoal) -> bool {
    use crate::ast::Term;
    let schema = match catalog.stream(goal.stream_type) {
        Some(s) => s,
        None => return false,
    };
    for item in items {
        let g = item.base.goal();
        if g.stream_type != goal.stream_type {
            continue;
        }
        let key_clash = (0..schema.key_arity).any(|i| {
            matches!(
                (&g.args[i], &goal.args[i]),
                (Term::Const(ca), Term::Const(cb)) if ca != cb
            )
        });
        if !key_clash {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Cond, Query, Term};
    use lahar_model::{Catalog, Interner, Value};

    struct Fixture {
        interner: Interner,
        catalog: Catalog,
    }

    fn fixture() -> Fixture {
        let interner = Interner::new();
        let mut catalog = Catalog::new();
        catalog
            .declare_stream(&interner, "At", &["person"], &["loc"])
            .unwrap();
        catalog
            .declare_stream(&interner, "Carries", &["person", "object"], &["loc"])
            .unwrap();
        catalog
            .declare_stream(&interner, "R", &["k"], &["v"])
            .unwrap();
        catalog
            .declare_stream(&interner, "S", &["k"], &["v"])
            .unwrap();
        catalog
            .declare_stream(&interner, "T", &["k"], &["v"])
            .unwrap();
        catalog.declare_relation(&interner, "Hallway", 1).unwrap();
        catalog.declare_relation(&interner, "Person", 1).unwrap();
        catalog.declare_relation(&interner, "CRoom", 1).unwrap();
        catalog
            .declare_relation(&interner, "LectureRoom", 1)
            .unwrap();
        Fixture { interner, catalog }
    }

    impl Fixture {
        fn var(&self, n: &str) -> Var {
            Var(self.interner.intern(n))
        }
        fn s(&self, n: &str) -> Term {
            Term::Const(Value::Str(self.interner.intern(n)))
        }
        fn goal(&self, name: &str, args: Vec<Term>) -> BaseQuery {
            BaseQuery::Goal {
                goal: Subgoal {
                    stream_type: self.interner.intern(name),
                    args,
                },
                cond: Cond::True,
            }
        }
        fn rel(&self, name: &str, v: Var) -> Cond {
            Cond::Rel {
                name: self.interner.intern(name),
                args: vec![Term::Var(v)],
            }
        }
        fn classify(&self, q: &Query) -> QueryClass {
            let nq = NormalQuery::from_query(q);
            classify(&self.catalog, &nq)
        }
    }

    /// q_Joe,hall (Ex 3.2): regular — constants only, unshared Kleene.
    #[test]
    fn joe_hall_is_regular() {
        let f = fixture();
        let l = f.var("l");
        let q = Query::Base(f.goal("At", vec![f.s("joe"), f.s("a")]))
            .then(BaseQuery::Kleene {
                goal: Subgoal {
                    stream_type: f.interner.intern("At"),
                    args: vec![f.s("joe"), Term::Var(l)],
                },
                cond: Cond::True,
                shared: vec![],
                each: f.rel("Hallway", l),
            })
            .then(f.goal("At", vec![f.s("joe"), f.s("c")]));
        assert_eq!(f.classify(&q), QueryClass::Regular);
        assert!(validate(&f.catalog, &f.interner, &q).is_ok());
    }

    /// q_hall (Ex 3.6): extended regular — x shared at key position.
    #[test]
    fn qhall_is_extended_regular() {
        let f = fixture();
        let x = f.var("x");
        let l2 = f.var("l2");
        let q = Query::Base(f.goal("At", vec![Term::Var(x), f.s("a")]))
            .then(BaseQuery::Kleene {
                goal: Subgoal {
                    stream_type: f.interner.intern("At"),
                    args: vec![Term::Var(x), Term::Var(l2)],
                },
                cond: Cond::True,
                shared: vec![x],
                each: f.rel("Hallway", l2),
            })
            .then(f.goal("At", vec![Term::Var(x), f.s("c")]))
            .select(f.rel("Person", x));
        assert_eq!(f.classify(&q), QueryClass::ExtendedRegular);
    }

    /// q_talk (Ex 3.9): safe but not extended regular — y drops out before
    /// the final subgoal.
    #[test]
    fn qtalk_is_safe() {
        let f = fixture();
        let (x, y, z, u) = (f.var("x"), f.var("y"), f.var("z"), f.var("u"));
        let anon = f.var("_0");
        let q = Query::Base(f.goal("Carries", vec![Term::Var(x), Term::Var(y), Term::Var(z)]))
            .then(BaseQuery::Kleene {
                goal: Subgoal {
                    stream_type: f.interner.intern("Carries"),
                    args: vec![Term::Var(x), Term::Var(y), Term::Var(anon)],
                },
                cond: Cond::True,
                shared: vec![x, y],
                each: Cond::True,
            })
            .then(f.goal("At", vec![Term::Var(x), Term::Var(u)]))
            .select(f.rel("LectureRoom", u));
        assert_eq!(f.classify(&q), QueryClass::Safe);
    }

    /// Fig 6: R(x); S(x); T('a', y) is safe (not extended regular).
    #[test]
    fn fig6_query_is_safe() {
        let f = fixture();
        let (x, y) = (f.var("x"), f.var("y"));
        let q = Query::Base(f.goal("R", vec![Term::Var(x), Term::Var(f.var("_1"))]))
            .then(f.goal("S", vec![Term::Var(x), Term::Var(f.var("_2"))]))
            .then(f.goal("T", vec![f.s("a"), Term::Var(y)]));
        assert_eq!(f.classify(&q), QueryClass::Safe);
    }

    /// h1 = σθ(x,y)(R(); S()) with a non-local predicate: unsafe.
    #[test]
    fn h1_is_unsafe() {
        let f = fixture();
        let (x, y) = (f.var("x"), f.var("y"));
        let theta = Cond::Cmp {
            op: crate::ast::CmpOp::Eq,
            lhs: Term::Var(x),
            rhs: Term::Var(y),
        };
        let q = Query::Base(f.goal("R", vec![Term::Var(x), Term::Var(f.var("_1"))]))
            .then(f.goal("S", vec![Term::Var(y), Term::Var(f.var("_2"))]))
            .select(theta);
        assert_eq!(f.classify(&q), QueryClass::Unsafe);
    }

    /// h2 = R(); S(x)+<x>: Kleene shared variable not grounded in prefix.
    #[test]
    fn h2_is_unsafe() {
        let f = fixture();
        let x = f.var("x");
        let q = Query::Base(f.goal("R", vec![f.s("r"), Term::Var(f.var("_1"))])).then(
            BaseQuery::Kleene {
                goal: Subgoal {
                    stream_type: f.interner.intern("S"),
                    args: vec![Term::Var(x), Term::Var(f.var("_2"))],
                },
                cond: Cond::True,
                shared: vec![x],
                each: Cond::True,
            },
        );
        assert_eq!(f.classify(&q), QueryClass::Unsafe);
    }

    /// h3 = R(); S(x); T(x): x's covering prefix includes R() where it does
    /// not occur.
    #[test]
    fn h3_is_unsafe() {
        let f = fixture();
        let x = f.var("x");
        let q = Query::Base(f.goal("R", vec![f.s("r"), Term::Var(f.var("_1"))]))
            .then(f.goal("S", vec![Term::Var(x), Term::Var(f.var("_2"))]))
            .then(f.goal("T", vec![Term::Var(x), Term::Var(f.var("_3"))]));
        assert_eq!(f.classify(&q), QueryClass::Unsafe);
    }

    /// h4 = R(x); S(); T(x): the middle subgoal breaks grounding.
    #[test]
    fn h4_is_unsafe() {
        let f = fixture();
        let x = f.var("x");
        let q = Query::Base(f.goal("R", vec![Term::Var(x), Term::Var(f.var("_1"))]))
            .then(f.goal("S", vec![f.s("s"), Term::Var(f.var("_2"))]))
            .then(f.goal("T", vec![Term::Var(x), Term::Var(f.var("_3"))]));
        assert_eq!(f.classify(&q), QueryClass::Unsafe);
    }

    /// A variable shared at a non-key position is not syntactically
    /// independent.
    #[test]
    fn value_position_sharing_is_unsafe() {
        let f = fixture();
        let v = f.var("v");
        let q = Query::Base(f.goal("R", vec![f.s("k1"), Term::Var(v)]))
            .then(f.goal("S", vec![f.s("k2"), Term::Var(v)]));
        assert_eq!(f.classify(&q), QueryClass::Unsafe);
    }

    #[test]
    fn cannot_unify_requires_constant_clash() {
        let f = fixture();
        let items =
            NormalQuery::from_query(&Query::Base(f.goal("At", vec![f.s("joe"), f.s("a")]))).items;
        // Same type, distinct constant in position 1: cannot unify.
        let g2 = Subgoal {
            stream_type: f.interner.intern("At"),
            args: vec![f.s("joe"), f.s("b")],
        };
        assert!(cannot_unify(&items, &g2));
        // Same type, variable in position 1: may unify.
        let g3 = Subgoal {
            stream_type: f.interner.intern("At"),
            args: vec![f.s("joe"), Term::Var(f.var("l"))],
        };
        assert!(!cannot_unify(&items, &g3));
        // Different type: cannot unify.
        let g4 = Subgoal {
            stream_type: f.interner.intern("R"),
            args: vec![f.s("joe"), f.s("a")],
        };
        assert!(cannot_unify(&items, &g4));
    }

    #[test]
    fn validation_catches_errors() {
        let f = fixture();
        let x = f.var("x");
        // Unknown stream.
        let q = Query::Base(f.goal("Nope", vec![Term::Var(x)]));
        assert!(matches!(
            validate(&f.catalog, &f.interner, &q),
            Err(QueryError::UnknownStream(_))
        ));
        // Wrong arity.
        let q = Query::Base(f.goal("At", vec![Term::Var(x)]));
        assert!(matches!(
            validate(&f.catalog, &f.interner, &q),
            Err(QueryError::ArityMismatch { .. })
        ));
        // Unknown relation.
        let q = Query::Base(f.goal("At", vec![Term::Var(x), Term::Var(f.var("l"))]))
            .select(f.rel("NopeRel", x));
        assert!(matches!(
            validate(&f.catalog, &f.interner, &q),
            Err(QueryError::UnknownRelation(_))
        ));
        // Select over a variable that is not free.
        let q = Query::Base(f.goal("At", vec![Term::Var(x), Term::Var(f.var("l"))]))
            .select(f.rel("Person", f.var("zz")));
        assert!(matches!(
            validate(&f.catalog, &f.interner, &q),
            Err(QueryError::UnboundVar(_))
        ));
        // Kleene exporting a variable not in its subgoal.
        let q = Query::Base(BaseQuery::Kleene {
            goal: Subgoal {
                stream_type: f.interner.intern("At"),
                args: vec![Term::Var(x), Term::Var(f.var("l"))],
            },
            cond: Cond::True,
            shared: vec![f.var("w")],
            each: Cond::True,
        });
        assert!(matches!(
            validate(&f.catalog, &f.interner, &q),
            Err(QueryError::BadKleeneVar(_))
        ));
    }
}
