//! Denotational semantics of event queries on deterministic worlds
//! (paper Fig 2), and the possible-world probability oracle.
//!
//! This module is the *specification* the rest of the workspace is tested
//! against: every exact evaluator in `lahar-core` must agree with
//! [`prob_at`] (which enumerates worlds and sums `μ(W)` over the satisfying
//! ones, Definition 2.3). It is deliberately simple and set-based rather
//! than fast.

use crate::ast::{BaseQuery, Cond, Query, Subgoal, Var};
use crate::matching::{eval_cond, match_event, Binding, QueryError};
use lahar_model::{Database, World};
use std::collections::{BTreeSet, HashSet};

/// A result event: a binding of the query's free variables plus the
/// timestamp at which the query completed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResultEvent {
    /// Values of the free variables.
    pub binding: Binding,
    /// The completion timestamp `T`.
    pub t: u32,
}

/// Evaluates `⟦q⟧W`: the set of result events of `q` on the world `world`.
pub fn eval_query(
    db: &Database,
    world: &World,
    q: &Query,
) -> Result<HashSet<ResultEvent>, QueryError> {
    match q {
        Query::Base(BaseQuery::Goal { goal, cond }) => eval_goal(db, world, goal, cond),
        Query::Base(BaseQuery::Kleene {
            goal,
            cond,
            shared,
            each,
        }) => eval_kleene(db, world, None, goal, cond, shared, each),
        Query::Seq(q1, bq) => {
            let prefix = eval_query(db, world, q1)?;
            match bq {
                BaseQuery::Goal { goal, cond } => seq_step(db, world, &prefix, goal, cond),
                BaseQuery::Kleene {
                    goal,
                    cond,
                    shared,
                    each,
                } => eval_kleene(db, world, Some(prefix), goal, cond, shared, each),
            }
        }
        Query::Select(cond, q1) => {
            let inner = eval_query(db, world, q1)?;
            let mut out = HashSet::new();
            for e in inner {
                if eval_cond(db, cond, &e.binding)? {
                    out.insert(e);
                }
            }
            Ok(out)
        }
    }
}

/// `⟦σθ(g)⟧W`: every event matching the guarded subgoal.
fn eval_goal(
    db: &Database,
    world: &World,
    goal: &Subgoal,
    cond: &Cond,
) -> Result<HashSet<ResultEvent>, QueryError> {
    let mut out = HashSet::new();
    for event in world.events() {
        if let Some(binding) = match_event(db, goal, cond, event, &Binding::new())? {
            out.insert(ResultEvent {
                binding,
                t: event.t,
            });
        }
    }
    Ok(out)
}

/// One sequencing step `q1 ; σθ(g)` (Fig 2): pair every prefix result with
/// its *earliest* strictly-later successor among events matching the
/// guarded subgoal under the shared-variable constraints.
fn seq_step(
    db: &Database,
    world: &World,
    prefix: &HashSet<ResultEvent>,
    goal: &Subgoal,
    cond: &Cond,
) -> Result<HashSet<ResultEvent>, QueryError> {
    let mut out = HashSet::new();
    for e1 in prefix {
        let mut best_t: Option<u32> = None;
        let mut best: Vec<Binding> = Vec::new();
        for event in world.events() {
            if event.t <= e1.t {
                continue;
            }
            if let Some(t) = best_t {
                if event.t > t {
                    // Events are sorted by timestamp; nothing later can win.
                    break;
                }
            }
            if let Some(extended) = match_event(db, goal, cond, event, &e1.binding)? {
                match best_t {
                    Some(t) if event.t == t => best.push(extended),
                    _ => {
                        best_t = Some(event.t);
                        best = vec![extended];
                    }
                }
            }
        }
        if let Some(t) = best_t {
            for binding in best {
                out.insert(ResultEvent { binding, t });
            }
        }
    }
    Ok(out)
}

/// Restricts a binding to the given variables (the fresh-renaming
/// substitution `F_V̄` of Fig 2, realized as projection).
fn project(binding: &Binding, keep: &BTreeSet<Var>) -> Binding {
    binding
        .iter()
        .filter(|(v, _)| keep.contains(v))
        .map(|(v, val)| (*v, *val))
        .collect()
}

/// `⟦q1 ; (σθ1(g))+⟨V, θ2⟩⟧W` (or the standalone Kleene when `prefix` is
/// `None`): the union over all unfolding counts of repeated sequencing
/// steps, with non-shared subgoal variables forgotten between repetitions
/// and `θ2` applied to every repetition.
fn eval_kleene(
    db: &Database,
    world: &World,
    prefix: Option<HashSet<ResultEvent>>,
    goal: &Subgoal,
    cond: &Cond,
    shared: &[Var],
    each: &Cond,
) -> Result<HashSet<ResultEvent>, QueryError> {
    // Variables surviving each repetition: the prefix's free variables plus
    // the shared set V.
    let mut keep: BTreeSet<Var> = shared.iter().copied().collect();
    if let Some(p) = &prefix {
        for e in p {
            keep.extend(e.binding.keys().copied());
        }
    }

    // First unfolding.
    let first = match &prefix {
        None => eval_goal(db, world, goal, cond)?,
        Some(p) => seq_step(db, world, p, goal, cond)?,
    };
    let mut frontier = apply_each_and_project(db, first, each, &keep)?;
    let mut results = frontier.clone();

    // Subsequent unfoldings; each strictly advances the timestamp, so the
    // loop ends once the frontier empties (at most t_max + 1 rounds).
    while !frontier.is_empty() {
        let stepped = seq_step(db, world, &frontier, goal, cond)?;
        frontier = apply_each_and_project(db, stepped, each, &keep)?;
        let before = results.len();
        results.extend(frontier.iter().cloned());
        if results.len() == before && frontier.iter().all(|e| results.contains(e)) {
            // All new results already known; timestamps still advance, so
            // continuing cannot add anything new through this frontier.
            break;
        }
    }
    Ok(results)
}

fn apply_each_and_project(
    db: &Database,
    events: HashSet<ResultEvent>,
    each: &Cond,
    keep: &BTreeSet<Var>,
) -> Result<HashSet<ResultEvent>, QueryError> {
    let mut out = HashSet::new();
    for e in events {
        if eval_cond(db, each, &e.binding)? {
            out.insert(ResultEvent {
                binding: project(&e.binding, keep),
                t: e.t,
            });
        }
    }
    Ok(out)
}

/// `W ⊨ q@t`: true when some result event of `q` on `world` has timestamp
/// `t` (paper §2.2).
pub fn satisfied_at(db: &Database, world: &World, q: &Query, t: u32) -> Result<bool, QueryError> {
    Ok(eval_query(db, world, q)?.iter().any(|e| e.t == t))
}

/// The possible-world oracle: `μ(q@t) = Σ_{W ⊨ q@t} μ(W)`
/// (Definition 2.3). Exponential; test-sized databases only.
pub fn prob_at(db: &Database, q: &Query, t: u32) -> Result<f64, QueryError> {
    let mut total = 0.0;
    for (world, p) in db.enumerate_worlds() {
        if satisfied_at(db, &world, q, t)? {
            total += p;
        }
    }
    Ok(total)
}

/// The oracle for every timestep `0 .. horizon` in one world enumeration.
pub fn prob_series(db: &Database, q: &Query) -> Result<Vec<f64>, QueryError> {
    let horizon = db.horizon();
    let mut out = vec![0.0; horizon as usize];
    for (world, p) in db.enumerate_worlds() {
        let results = eval_query(db, &world, q)?;
        let mut hit = vec![false; horizon as usize];
        for e in &results {
            if (e.t as usize) < hit.len() {
                hit[e.t as usize] = true;
            }
        }
        for (slot, h) in out.iter_mut().zip(hit) {
            if h {
                *slot += p;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, Term};
    use lahar_model::{tuple, Value};

    /// Builds the deterministic world of Ex 3.11: R(a)@1, R(c)@2, R(b)@3.
    fn ex311() -> (Database, World) {
        let mut db = Database::new();
        db.declare_stream("R", &[], &["y"]).unwrap();
        let i = db.interner().clone();
        let ev = |val: &str, t: u32| lahar_model::GroundEvent {
            stream_type: i.intern("R"),
            key: tuple(Vec::<Value>::new()),
            values: tuple([i.intern(val)]),
            t,
        };
        let world = World::new(vec![ev("a", 1), ev("c", 2), ev("b", 3)], 3);
        (db, world)
    }

    fn r_goal(db: &Database, term: Term) -> BaseQuery {
        BaseQuery::Goal {
            goal: Subgoal {
                stream_type: db.interner().intern("R"),
                args: vec![term],
            },
            cond: Cond::True,
        }
    }

    #[test]
    fn example_3_11_qf_vs_qs() {
        let (db, w) = ex311();
        let i = db.interner().clone();
        let a = Term::Const(Value::Str(i.intern("a")));
        let b = Term::Const(Value::Str(i.intern("b")));
        let y = Var(i.intern("y"));

        // q_f = R(a); R(b): successor search restricted to R(b) events.
        let qf = Query::Base(r_goal(&db, a)).then(r_goal(&db, b));
        assert!(satisfied_at(&db, &w, &qf, 3).unwrap());
        assert!(!satisfied_at(&db, &w, &qf, 2).unwrap());

        // q_s = σ_{y='b'}(R(a); R(y)): successor is R(c)@2, which then
        // fails the selection — never satisfied.
        let qs = Query::Base(r_goal(&db, a))
            .then(r_goal(&db, Term::Var(y)))
            .select(Cond::Cmp {
                op: CmpOp::Eq,
                lhs: Term::Var(y),
                rhs: Term::Const(Value::Str(i.intern("b"))),
            });
        for t in 0..4 {
            assert!(
                !satisfied_at(&db, &w, &qs, t).unwrap(),
                "q_s must never be satisfied (t = {t})"
            );
        }
    }

    #[test]
    fn goal_returns_all_matches() {
        let (db, w) = ex311();
        let i = db.interner().clone();
        let y = Var(i.intern("y"));
        let q = Query::Base(r_goal(&db, Term::Var(y)));
        let r = eval_query(&db, &w, &q).unwrap();
        assert_eq!(r.len(), 3);
        let ts: BTreeSet<u32> = r.iter().map(|e| e.t).collect();
        assert_eq!(ts, BTreeSet::from([1, 2, 3]));
    }

    #[test]
    fn sequence_takes_earliest_successor_only() {
        let (db, w) = ex311();
        let i = db.interner().clone();
        let a = Term::Const(Value::Str(i.intern("a")));
        let y = Var(i.intern("y"));
        // R(a); R(y): the only successor of R(a)@1 is R(c)@2.
        let q = Query::Base(r_goal(&db, a)).then(r_goal(&db, Term::Var(y)));
        let r = eval_query(&db, &w, &q).unwrap();
        assert_eq!(r.len(), 1);
        let e = r.iter().next().unwrap();
        assert_eq!(e.t, 2);
        assert_eq!(e.binding[&y], Value::Str(i.intern("c")));
    }

    #[test]
    fn kleene_unfolds_and_projects() {
        let (db, w) = ex311();
        let i = db.interner().clone();
        let y = Var(i.intern("y"));
        // (R(y))+<> : matches at t=1 (one unfolding), t=2 (one or two), t=3.
        let q = Query::Base(BaseQuery::Kleene {
            goal: Subgoal {
                stream_type: i.intern("R"),
                args: vec![Term::Var(y)],
            },
            cond: Cond::True,
            shared: vec![],
            each: Cond::True,
        });
        let r = eval_query(&db, &w, &q).unwrap();
        let ts: BTreeSet<u32> = r.iter().map(|e| e.t).collect();
        assert_eq!(ts, BTreeSet::from([1, 2, 3]));
        // Bindings are projected away (V = ∅).
        assert!(r.iter().all(|e| e.binding.is_empty()));
    }

    #[test]
    fn kleene_shared_variable_constrains_repetitions() {
        let mut db = Database::new();
        db.declare_stream("At", &["p"], &["l"]).unwrap();
        let i = db.interner().clone();
        let ev = |p: &str, l: &str, t: u32| lahar_model::GroundEvent {
            stream_type: i.intern("At"),
            key: tuple([i.intern(p)]),
            values: tuple([i.intern(l)]),
            t,
        };
        // joe@h1(1), sue@h2(2), joe@h3(3).
        let w = World::new(
            vec![ev("joe", "h1", 1), ev("sue", "h2", 2), ev("joe", "h3", 3)],
            3,
        );
        let p = Var(i.intern("p"));
        let l = Var(i.intern("l"));
        let q = Query::Base(BaseQuery::Kleene {
            goal: Subgoal {
                stream_type: i.intern("At"),
                args: vec![Term::Var(p), Term::Var(l)],
            },
            cond: Cond::True,
            shared: vec![p],
            each: Cond::True,
        });
        let r = eval_query(&db, &w, &q).unwrap();
        // Unfoldings: singletons at t=1,2,3; joe-chain 1->3... but the
        // successor of joe@1 among At(joe, l') is At(joe,h3)@3 — sue@2 does
        // not block because p is bound to joe. Also sue@2 alone.
        let joe = Value::Str(i.intern("joe"));
        assert!(r.contains(&ResultEvent {
            binding: Binding::from([(p, joe)]),
            t: 3
        }));
        assert_eq!(r.len(), 3, "{r:?}");
    }

    #[test]
    fn select_filters_on_free_vars() {
        let (db, w) = ex311();
        let i = db.interner().clone();
        let y = Var(i.intern("y"));
        let q = Query::Base(r_goal(&db, Term::Var(y))).select(Cond::Cmp {
            op: CmpOp::Eq,
            lhs: Term::Var(y),
            rhs: Term::Const(Value::Str(i.intern("c"))),
        });
        let r = eval_query(&db, &w, &q).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().unwrap().t, 2);
    }

    #[test]
    fn prob_oracle_on_tiny_probabilistic_db() {
        use lahar_model::StreamBuilder;
        let mut db = Database::new();
        db.declare_stream("R", &["k"], &["y"]).unwrap();
        let i = db.interner().clone();
        let b = StreamBuilder::new(&i, "R", &["k1"], &["a", "b"]);
        let m0 = b.marginal(&[("a", 0.5), ("b", 0.5)]).unwrap();
        let m1 = b.marginal(&[("b", 0.4)]).unwrap();
        let s = b.independent(vec![m0, m1]).unwrap();
        db.add_stream(s).unwrap();

        // q = R(k, 'b') — true at t=0 with prob 0.5, at t=1 with prob 0.4.
        let k = Var(i.intern("k"));
        let q = Query::Base(BaseQuery::Goal {
            goal: Subgoal {
                stream_type: i.intern("R"),
                args: vec![Term::Var(k), Term::Const(Value::Str(i.intern("b")))],
            },
            cond: Cond::True,
        });
        assert!((prob_at(&db, &q, 0).unwrap() - 0.5).abs() < 1e-9);
        assert!((prob_at(&db, &q, 1).unwrap() - 0.4).abs() < 1e-9);
        let series = prob_series(&db, &q).unwrap();
        assert_eq!(series.len(), 2);
        assert!((series[0] - 0.5).abs() < 1e-9);
        assert!((series[1] - 0.4).abs() < 1e-9);
    }
}
