//! A text syntax for Lahar queries.
//!
//! The grammar mirrors the paper's notation:
//!
//! ```text
//! query   := primary ( ';' base )*
//! primary := sigma | base
//! sigma   := 'sigma' '[' cond ']' '(' query ')'
//! base    := goal | kleene
//! goal    := IDENT '(' term (',' term)* ')' ( '[' cond ']' )?
//! kleene  := '(' goal ')' '+' '{' varlist? ( '|' cond )? '}'
//! cond    := orc ;  orc := andc ('OR' andc)* ;  andc := notc ('AND' notc)*
//! notc    := 'NOT' notc | 'true' | '(' cond ')'
//!          | IDENT '(' term* ')'            -- relation atom
//!          | term CMP term                  -- = != < <= > >=
//! term    := IDENT | '_' | 'STRING' | INT
//! ```
//!
//! * A `goal` trailing `[cond]` is the **inner** predicate `σθ(g)` of a
//!   base query (it takes part in matching and successor competition);
//!   `sigma[cond](q)` is the **outer** selection (applied after successor
//!   choice). The distinction is semantically significant — Example 3.11.
//! * In a Kleene plus `(At(p, l))+{p | Hallway(l)}`, the names before `|`
//!   are the shared set `V` and the condition after it is the
//!   per-repetition predicate `θ2`.
//! * `_` is an anonymous variable (each occurrence is fresh).
//! * Identifiers are variables in term position and stream/relation names
//!   in atom position; string constants are single-quoted.
//!
//! Examples from the paper:
//!
//! ```text
//! At('Joe', '220') ; At('Joe', l)[CRoom(l)] ; At('Joe', '220')
//! sigma[Person(x)]( At(x, 'a') ; (At(x, l2))+{x | Hallway(l2)} ; At(x, 'c') )
//! ```

use crate::ast::{BaseQuery, CmpOp, Cond, Query, Subgoal, Term, Var};
use crate::matching::QueryError;
use lahar_model::{Interner, Value};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    Punct(&'static str),
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn next(&mut self) -> Result<(usize, Tok), QueryError> {
        self.skip_ws();
        let start = self.pos;
        if self.pos >= self.src.len() {
            return Ok((start, Tok::Eof));
        }
        let c = self.src[self.pos];
        // Multi-character operators first.
        for op in ["!=", "<=", ">="] {
            if self.src[self.pos..].starts_with(op.as_bytes()) {
                self.pos += 2;
                return Ok((start, Tok::Punct(op)));
            }
        }
        for op in [
            ";", "(", ")", "[", "]", "{", "}", "+", ",", "|", "=", "<", ">", "_",
        ] {
            if c == op.as_bytes()[0] {
                self.pos += 1;
                return Ok((start, Tok::Punct(op)));
            }
        }
        if c == b'\'' {
            self.pos += 1;
            let begin = self.pos;
            while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                self.pos += 1;
            }
            if self.pos >= self.src.len() {
                return Err(self.error("unterminated string literal"));
            }
            let s = std::str::from_utf8(&self.src[begin..self.pos])
                .map_err(|_| self.error("invalid utf-8 in string literal"))?
                .to_owned();
            self.pos += 1;
            return Ok((start, Tok::Str(s)));
        }
        if c.is_ascii_digit() || (c == b'-' && self.peek_digit()) {
            let begin = self.pos;
            if c == b'-' {
                self.pos += 1;
            }
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.src[begin..self.pos]).unwrap();
            let n: i64 = text
                .parse()
                .map_err(|_| self.error(format!("invalid integer {text}")))?;
            return Ok((start, Tok::Int(n)));
        }
        if c.is_ascii_alphabetic() {
            let begin = self.pos;
            while self.pos < self.src.len()
                && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
            {
                self.pos += 1;
            }
            let s = std::str::from_utf8(&self.src[begin..self.pos])
                .unwrap()
                .to_owned();
            return Ok((start, Tok::Ident(s)));
        }
        Err(self.error(format!("unexpected character {:?}", c as char)))
    }

    fn peek_digit(&self) -> bool {
        self.src.get(self.pos + 1).is_some_and(u8::is_ascii_digit)
    }
}

/// Recursive-descent parser with one token of lookahead.
struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
    offset: usize,
    interner: &'a Interner,
    fresh: u32,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str, interner: &'a Interner) -> Result<Self, QueryError> {
        let mut lexer = Lexer::new(src);
        let (offset, tok) = lexer.next()?;
        Ok(Self {
            lexer,
            tok,
            offset,
            interner,
            fresh: 0,
        })
    }

    fn error(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse {
            offset: self.offset,
            message: message.into(),
        }
    }

    fn advance(&mut self) -> Result<Tok, QueryError> {
        let (offset, next) = self.lexer.next()?;
        self.offset = offset;
        Ok(std::mem::replace(&mut self.tok, next))
    }

    fn eat_punct(&mut self, p: &'static str) -> Result<(), QueryError> {
        if self.tok == Tok::Punct(p) {
            self.advance()?;
            Ok(())
        } else {
            Err(self.error(format!("expected {p:?}, found {:?}", self.tok)))
        }
    }

    fn try_punct(&mut self, p: &'static str) -> Result<bool, QueryError> {
        if self.tok == Tok::Punct(p) {
            self.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn fresh_var(&mut self) -> Var {
        let v = Var(self.interner.intern(&format!("_anon{}", self.fresh)));
        self.fresh += 1;
        v
    }

    fn query(&mut self) -> Result<Query, QueryError> {
        let mut q = self.primary()?;
        while self.try_punct(";")? {
            let bq = self.base()?;
            q = q.then(bq);
        }
        Ok(q)
    }

    fn primary(&mut self) -> Result<Query, QueryError> {
        if let Tok::Ident(name) = &self.tok {
            if name == "sigma" {
                self.advance()?;
                self.eat_punct("[")?;
                let cond = self.cond()?;
                self.eat_punct("]")?;
                self.eat_punct("(")?;
                let inner = self.query()?;
                self.eat_punct(")")?;
                return Ok(inner.select(cond));
            }
        }
        Ok(Query::Base(self.base()?))
    }

    fn base(&mut self) -> Result<BaseQuery, QueryError> {
        if self.tok == Tok::Punct("(") {
            // Kleene plus: '(' goal ')' '+' '{' ... '}'.
            self.advance()?;
            let (goal, cond) = self.goal()?;
            self.eat_punct(")")?;
            self.eat_punct("+")?;
            self.eat_punct("{")?;
            let mut shared = Vec::new();
            let mut each = Cond::True;
            if self.tok != Tok::Punct("}") {
                if self.tok != Tok::Punct("|") {
                    loop {
                        match self.advance()? {
                            Tok::Ident(name) => shared.push(Var(self.interner.intern(&name))),
                            other => {
                                return Err(self
                                    .error(format!("expected shared variable, found {other:?}")))
                            }
                        }
                        if !self.try_punct(",")? {
                            break;
                        }
                    }
                }
                if self.try_punct("|")? {
                    each = self.cond()?;
                }
            }
            self.eat_punct("}")?;
            Ok(BaseQuery::Kleene {
                goal,
                cond,
                shared,
                each,
            })
        } else {
            let (goal, cond) = self.goal()?;
            Ok(BaseQuery::Goal { goal, cond })
        }
    }

    /// Parses `IDENT '(' terms ')' ('[' cond ']')?`.
    fn goal(&mut self) -> Result<(Subgoal, Cond), QueryError> {
        let name = match self.advance()? {
            Tok::Ident(n) => n,
            other => return Err(self.error(format!("expected stream name, found {other:?}"))),
        };
        self.eat_punct("(")?;
        let mut args = Vec::new();
        if self.tok != Tok::Punct(")") {
            loop {
                args.push(self.term()?);
                if !self.try_punct(",")? {
                    break;
                }
            }
        }
        self.eat_punct(")")?;
        let cond = if self.try_punct("[")? {
            let c = self.cond()?;
            self.eat_punct("]")?;
            c
        } else {
            Cond::True
        };
        Ok((
            Subgoal {
                stream_type: self.interner.intern(&name),
                args,
            },
            cond,
        ))
    }

    fn term(&mut self) -> Result<Term, QueryError> {
        match self.advance()? {
            Tok::Ident(name) => Ok(Term::Var(Var(self.interner.intern(&name)))),
            Tok::Punct("_") => Ok(Term::Var(self.fresh_var())),
            Tok::Str(s) => Ok(Term::Const(Value::Str(self.interner.intern(&s)))),
            Tok::Int(n) => Ok(Term::Const(Value::Int(n))),
            other => Err(self.error(format!("expected term, found {other:?}"))),
        }
    }

    fn cond(&mut self) -> Result<Cond, QueryError> {
        let mut c = self.and_cond()?;
        while self.keyword("OR")? {
            let rhs = self.and_cond()?;
            c = Cond::Or(Box::new(c), Box::new(rhs));
        }
        Ok(c)
    }

    fn and_cond(&mut self) -> Result<Cond, QueryError> {
        let mut c = self.not_cond()?;
        while self.keyword("AND")? {
            let rhs = self.not_cond()?;
            c = c.and(rhs);
        }
        Ok(c)
    }

    fn keyword(&mut self, kw: &str) -> Result<bool, QueryError> {
        if matches!(&self.tok, Tok::Ident(name) if name.eq_ignore_ascii_case(kw)) {
            self.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn not_cond(&mut self) -> Result<Cond, QueryError> {
        if self.keyword("NOT")? {
            return Ok(Cond::Not(Box::new(self.not_cond()?)));
        }
        if self.keyword("true")? {
            return Ok(Cond::True);
        }
        if self.try_punct("(")? {
            let c = self.cond()?;
            self.eat_punct(")")?;
            return Ok(c);
        }
        // Relation atom or comparison: both can start with an identifier.
        if let Tok::Ident(name) = self.tok.clone() {
            // Peek: relation atom iff followed by '('.
            let save_offset = self.offset;
            self.advance()?;
            if self.tok == Tok::Punct("(") {
                self.advance()?;
                let mut args = Vec::new();
                if self.tok != Tok::Punct(")") {
                    loop {
                        args.push(self.term()?);
                        if !self.try_punct(",")? {
                            break;
                        }
                    }
                }
                self.eat_punct(")")?;
                return Ok(Cond::Rel {
                    name: self.interner.intern(&name),
                    args,
                });
            }
            // Comparison with a variable on the left.
            let lhs = Term::Var(Var(self.interner.intern(&name)));
            let _ = save_offset;
            return self.cmp_tail(lhs);
        }
        let lhs = self.term()?;
        self.cmp_tail(lhs)
    }

    fn cmp_tail(&mut self, lhs: Term) -> Result<Cond, QueryError> {
        let op = match self.advance()? {
            Tok::Punct("=") => CmpOp::Eq,
            Tok::Punct("!=") => CmpOp::Ne,
            Tok::Punct("<") => CmpOp::Lt,
            Tok::Punct("<=") => CmpOp::Le,
            Tok::Punct(">") => CmpOp::Gt,
            Tok::Punct(">=") => CmpOp::Ge,
            other => {
                return Err(self.error(format!("expected comparison operator, found {other:?}")))
            }
        };
        let rhs = self.term()?;
        Ok(Cond::Cmp { op, lhs, rhs })
    }
}

/// Parses a query from text. The result is *not* validated against a
/// catalog; call [`crate::validate`] afterwards (or use
/// [`parse_and_validate`]).
pub fn parse_query(interner: &Interner, src: &str) -> Result<Query, QueryError> {
    let mut p = Parser::new(src, interner)?;
    let q = p.query()?;
    if p.tok != Tok::Eof {
        return Err(p.error(format!("trailing input: {:?}", p.tok)));
    }
    Ok(q)
}

/// Parses and validates a query against a catalog.
pub fn parse_and_validate(
    catalog: &lahar_model::Catalog,
    interner: &Interner,
    src: &str,
) -> Result<Query, QueryError> {
    let q = parse_query(interner, src)?;
    crate::analysis::validate(catalog, interner, &q)?;
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interner() -> Interner {
        Interner::new()
    }

    #[test]
    fn parses_joe_coffee() {
        let i = interner();
        let q = parse_query(
            &i,
            "At('Joe','220') ; At('Joe', l)[CRoom(l)] ; At('Joe','220')",
        )
        .unwrap();
        let bases = q.base_queries();
        assert_eq!(bases.len(), 3);
        assert!(!bases[1].inner_cond().is_true());
        assert_eq!(
            q.display(&i),
            "At('Joe', '220') ; At('Joe', l)[CRoom(l)] ; At('Joe', '220')"
        );
    }

    #[test]
    fn parses_any_coffee_with_kleene() {
        let i = interner();
        let q = parse_query(
            &i,
            "sigma[Person(p) AND Office(p, l1) AND CRoom(l3)]\
             ( At(p, l1) ; (At(p, l2))+{p | Hall(l2)} ; At(p, l3) )",
        )
        .unwrap();
        match &q {
            Query::Select(c, inner) => {
                assert_eq!(c.conjuncts().len(), 3);
                let bases = inner.base_queries();
                assert_eq!(bases.len(), 3);
                assert!(bases[1].is_kleene());
                match bases[1] {
                    BaseQuery::Kleene { shared, each, .. } => {
                        assert_eq!(shared.len(), 1);
                        assert!(!each.is_true());
                    }
                    _ => unreachable!(),
                }
            }
            other => panic!("expected select at root, got {other:?}"),
        }
    }

    #[test]
    fn anonymous_variables_are_fresh() {
        let i = interner();
        let q = parse_query(&i, "Carries(x, y, _) ; Carries(x, y, _)").unwrap();
        let goals = q.subgoals();
        let a = goals[0].args[2].as_var().unwrap();
        let b = goals[1].args[2].as_var().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn parses_comparisons_and_booleans() {
        let i = interner();
        let q = parse_query(&i, "sigma[y > 20 AND (NOT Hall(z) OR y != 30)](R(y, z))").unwrap();
        match q {
            Query::Select(c, _) => {
                assert_eq!(c.conjuncts().len(), 2);
            }
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn parses_integer_and_negative_constants() {
        let i = interner();
        let q = parse_query(&i, "Reading(s, -5) ; Reading(s, 10)").unwrap();
        let goals = q.subgoals();
        assert_eq!(goals[0].args[1], Term::Const(Value::Int(-5)));
        assert_eq!(goals[1].args[1], Term::Const(Value::Int(10)));
    }

    #[test]
    fn kleene_without_condition_or_vars() {
        let i = interner();
        let q = parse_query(&i, "(R(x))+{}").unwrap();
        match q {
            Query::Base(BaseQuery::Kleene { shared, each, .. }) => {
                assert!(shared.is_empty());
                assert!(each.is_true());
            }
            other => panic!("expected kleene, got {other:?}"),
        }
        // Condition only.
        let q = parse_query(&i, "(At(p, l))+{| Hallway(l)}").unwrap();
        match q {
            Query::Base(BaseQuery::Kleene { shared, each, .. }) => {
                assert!(shared.is_empty());
                assert!(!each.is_true());
            }
            other => panic!("expected kleene, got {other:?}"),
        }
    }

    #[test]
    fn nested_sigma_preserves_structure() {
        // σ applied mid-sequence — the q_s shape from Ex 3.11.
        let i = interner();
        let q = parse_query(&i, "sigma[y = 'b'](R('a') ; R(y)) ; S(z)").unwrap();
        match &q {
            Query::Seq(inner, _) => {
                assert!(matches!(inner.as_ref(), Query::Select(_, _)));
            }
            other => panic!("expected seq at root, got {other:?}"),
        }
    }

    #[test]
    fn error_positions_are_reported() {
        let i = interner();
        for bad in [
            "At(x",
            "At(x,)",
            "sigma[](R(x))",
            "(R(x))+",
            "R(x) garbage",
            "At('unclosed",
            "sigma[x ~ 3](R(x))",
        ] {
            let err = parse_query(&i, bad).unwrap_err();
            assert!(matches!(err, QueryError::Parse { .. }), "{bad}: {err:?}");
        }
    }

    #[test]
    fn keywords_case_insensitive_for_booleans() {
        let i = interner();
        assert!(parse_query(&i, "sigma[Hall(x) and Person(x)](R(x))").is_ok());
        assert!(parse_query(&i, "sigma[not Hall(x)](R(x))").is_ok());
    }
}
