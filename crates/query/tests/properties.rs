//! Property tests for the query crate: parser round-trips, normalization
//! equivalence against the reference semantics, and classification
//! consistency with the planner.

use lahar_model::{tuple, Database, GroundEvent, Interner, Value, World};
use lahar_query::{
    classify, compile_safe_plan, eval_query, parse_query, BaseQuery, Cond, NormalQuery, Query,
    QueryClass, Subgoal, Term, Var,
};
use proptest::prelude::*;

const STREAMS: [&str; 2] = ["At", "Go"];
const CONSTS: [&str; 3] = ["a", "b", "c"];
const VARS: [&str; 3] = ["x", "y", "z"];
const RELS: [&str; 2] = ["Hall", "Room"];

fn interner() -> Interner {
    Interner::new()
}

#[derive(Debug, Clone)]
enum TermSpec {
    Var(usize),
    Const(usize),
}

fn term_spec() -> impl Strategy<Value = TermSpec> {
    prop_oneof![
        (0..VARS.len()).prop_map(TermSpec::Var),
        (0..CONSTS.len()).prop_map(TermSpec::Const),
    ]
}

#[derive(Debug, Clone)]
struct GoalSpec {
    stream: usize,
    args: Vec<TermSpec>,
}

fn goal_spec() -> impl Strategy<Value = GoalSpec> {
    (0..STREAMS.len(), prop::collection::vec(term_spec(), 2))
        .prop_map(|(stream, args)| GoalSpec { stream, args })
}

#[derive(Debug, Clone)]
enum CondSpec {
    True,
    Rel(usize, TermSpec),
    Eq(TermSpec, TermSpec),
    And(Box<CondSpec>, Box<CondSpec>),
    Not(Box<CondSpec>),
}

fn cond_spec() -> impl Strategy<Value = CondSpec> {
    let leaf = prop_oneof![
        Just(CondSpec::True),
        ((0..RELS.len()), term_spec()).prop_map(|(r, t)| CondSpec::Rel(r, t)),
        (term_spec(), term_spec()).prop_map(|(a, b)| CondSpec::Eq(a, b)),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| CondSpec::And(Box::new(a), Box::new(b))),
            inner.prop_map(|a| CondSpec::Not(Box::new(a))),
        ]
    })
    .boxed()
}

#[derive(Debug, Clone)]
enum ItemSpec {
    Goal(GoalSpec, CondSpec),
    Kleene(GoalSpec, Vec<usize>),
}

fn item_spec() -> impl Strategy<Value = ItemSpec> {
    prop_oneof![
        (goal_spec(), cond_spec()).prop_map(|(g, c)| ItemSpec::Goal(g, c)),
        (goal_spec(), prop::collection::vec(0..VARS.len(), 0..2))
            .prop_map(|(g, v)| ItemSpec::Kleene(g, v)),
    ]
}

#[derive(Debug, Clone)]
struct QuerySpec {
    items: Vec<ItemSpec>,
    select: Option<CondSpec>,
}

fn query_spec() -> impl Strategy<Value = QuerySpec> {
    (
        prop::collection::vec(item_spec(), 1..4),
        prop::option::of(cond_spec()),
    )
        .prop_map(|(items, select)| QuerySpec { items, select })
}

fn build_term(i: &Interner, t: &TermSpec) -> Term {
    match t {
        TermSpec::Var(v) => Term::Var(Var(i.intern(VARS[*v]))),
        TermSpec::Const(c) => Term::Const(Value::Str(i.intern(CONSTS[*c]))),
    }
}

fn build_cond(i: &Interner, c: &CondSpec) -> Cond {
    match c {
        CondSpec::True => Cond::True,
        CondSpec::Rel(r, t) => Cond::Rel {
            name: i.intern(RELS[*r]),
            args: vec![build_term(i, t)],
        },
        CondSpec::Eq(a, b) => Cond::Cmp {
            op: lahar_query::CmpOp::Eq,
            lhs: build_term(i, a),
            rhs: build_term(i, b),
        },
        // The smart constructor collapses `true` operands, matching what
        // the parser produces — keeps generated conditions canonical.
        CondSpec::And(a, b) => build_cond(i, a).and(build_cond(i, b)),
        CondSpec::Not(a) => Cond::Not(Box::new(build_cond(i, a))),
    }
}

fn build_goal(i: &Interner, g: &GoalSpec) -> Subgoal {
    Subgoal {
        stream_type: i.intern(STREAMS[g.stream]),
        args: g.args.iter().map(|t| build_term(i, t)).collect(),
    }
}

/// Builds a syntactically well-formed query from a spec, skipping invalid
/// combinations (Kleene shared vars must occur in the goal; select vars
/// must be free).
fn build_query(i: &Interner, spec: &QuerySpec) -> Option<Query> {
    let mut q: Option<Query> = None;
    for item in &spec.items {
        let base = match item {
            ItemSpec::Goal(g, c) => {
                let goal = build_goal(i, g);
                let cond = build_cond(i, c);
                // Inner condition variables must be covered by the goal.
                let gv = goal.vars();
                if !cond.vars().iter().all(|v| gv.contains(v)) {
                    return None;
                }
                BaseQuery::Goal { goal, cond }
            }
            ItemSpec::Kleene(g, shared_idx) => {
                let goal = build_goal(i, g);
                let gv = goal.vars();
                let shared: Vec<Var> = shared_idx.iter().map(|&v| Var(i.intern(VARS[v]))).collect();
                if !shared.iter().all(|v| gv.contains(v)) {
                    return None;
                }
                BaseQuery::Kleene {
                    goal,
                    cond: Cond::True,
                    shared,
                    each: Cond::True,
                }
            }
        };
        q = Some(match q {
            None => Query::Base(base),
            Some(prev) => prev.then(base),
        });
    }
    let mut q = q?;
    if let Some(c) = &spec.select {
        let cond = build_cond(i, c);
        let free = q.free_vars();
        if !cond.vars().iter().all(|v| free.contains(v)) {
            return None;
        }
        q = q.select(cond);
    }
    Some(q)
}

fn test_db(i: &Interner) -> Database {
    // Shares the interner through cloned handles: Database::new creates its
    // own, so instead intern names through the db's interner by re-building.
    let mut db = Database::new();
    for st in STREAMS {
        db.declare_stream(st, &["k"], &["v"]).unwrap();
    }
    for r in RELS {
        db.declare_relation(r, 1).unwrap();
    }
    let dbi = db.interner().clone();
    db.insert_relation_tuple("Hall", tuple([dbi.intern("a")]))
        .unwrap();
    db.insert_relation_tuple("Room", tuple([dbi.intern("b")]))
        .unwrap();
    // Keep the external interner aligned.
    for s in STREAMS
        .iter()
        .chain(RELS.iter())
        .chain(CONSTS.iter())
        .chain(VARS.iter())
    {
        i.intern(s);
        dbi.intern(s);
    }
    db
}

/// A small random deterministic world over the two stream types.
fn world_strategy() -> impl Strategy<Value = Vec<(usize, usize, usize, u32)>> {
    // (stream, key-const, value-const, t)
    prop::collection::vec(
        (0..STREAMS.len(), 0..CONSTS.len(), 0..CONSTS.len(), 0u32..5),
        0..8,
    )
}

fn build_world(i: &Interner, events: &[(usize, usize, usize, u32)]) -> World {
    let evs: Vec<GroundEvent> = events
        .iter()
        .map(|&(s, k, v, t)| GroundEvent {
            stream_type: i.intern(STREAMS[s]),
            key: tuple([i.intern(CONSTS[k])]),
            values: tuple([i.intern(CONSTS[v])]),
            t,
        })
        .collect();
    World::new(evs, 5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// display() output re-parses to the identical AST (anonymous-variable
    /// free queries).
    #[test]
    fn display_parse_round_trip(spec in query_spec()) {
        let i = interner();
        let Some(q) = build_query(&i, &spec) else { return Ok(()); };
        let text = q.display(&i);
        let parsed = parse_query(&i, &text)
            .unwrap_or_else(|e| panic!("reparsing {text:?}: {e}"));
        prop_assert_eq!(parsed, q, "{}", text);
    }

    /// Normalization (selection push-down) preserves the denotational
    /// semantics on random worlds.
    #[test]
    fn normalization_preserves_semantics(
        spec in query_spec(),
        events in world_strategy(),
    ) {
        let i = interner();
        let db = test_db(&i);
        let Some(q) = build_query(&db.interner().clone(), &spec) else { return Ok(()); };
        let world = build_world(db.interner(), &events);
        let nq = NormalQuery::from_query(&q);
        let back = nq.to_query();
        let orig = eval_query(&db, &world, &q);
        let norm = eval_query(&db, &world, &back);
        match (orig, norm) {
            (Ok(a), Ok(b)) => {
                let ta: std::collections::BTreeSet<u32> = a.iter().map(|e| e.t).collect();
                let tb: std::collections::BTreeSet<u32> = b.iter().map(|e| e.t).collect();
                prop_assert_eq!(ta, tb, "query {}", q.display(db.interner()));
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(
                false,
                "one side errored: {:?} vs {:?} for {}",
                a, b, q.display(db.interner())
            ),
        }
    }

    /// Algorithm 1 succeeds on everything classified Regular or Extended
    /// Regular (they sit inside Safe), and whenever it succeeds on a
    /// Safe-classified query the plan's leaf is well-formed.
    #[test]
    fn planner_consistent_with_classification(spec in query_spec()) {
        let i = interner();
        let db = test_db(&i);
        let Some(q) = build_query(&db.interner().clone(), &spec) else { return Ok(()); };
        let nq = NormalQuery::from_query(&q);
        let class = classify(db.catalog(), &nq);
        let plan = compile_safe_plan(db.catalog(), &nq);
        match class {
            QueryClass::Regular | QueryClass::ExtendedRegular => {
                prop_assert!(plan.is_ok(), "{} classified {class} but no plan", q.display(db.interner()));
            }
            QueryClass::Safe => { /* planner may refuse shapes the exact
                                     algebra cannot run (Kleene tails) */ }
            QueryClass::Unsafe => {
                prop_assert!(plan.is_err(), "{} classified unsafe but planned", q.display(db.interner()));
            }
        }
    }
}
