//! Differential property tests for the compiled kernel path
//! ([`lahar_core::kernel`]): on random databases, random queries, and
//! random tick schedules, the dense-table/frozen-table path must produce
//! **bit-identical** probabilities to the mutex-interpreter path — both
//! well inside the 1e-12 agreement the engine promises — including
//! across a mid-stream checkpoint/restore and across the sequential vs
//! parallel tick paths.

use lahar_core::{Checkpoint, ExtendedRegularEvaluator, RealTimeSession, SessionConfig, TickMode};
use lahar_model::{Database, Marginal, StreamBuilder};
use lahar_query::{parse_query, NormalQuery};
use proptest::prelude::*;

const DOMAIN: [&str; 3] = ["a", "h", "c"];

/// The query pool: per-key extended sequences, a Kleene-plus shape with
/// a relation-conditioned body, and a fully grounded (regular) query.
const QUERIES: [&str; 4] = [
    "At(p,'a') ; At(p,'c')",
    "At(p,'h') ; At(p,'c')",
    "At(p,'a') ; (At(p, l))+{p | Hallway(l)} ; At(p,'c')",
    "At('p0','a') ; At('p0','c')",
];

#[derive(Debug, Clone)]
struct Scenario {
    n_people: usize,
    /// Indices into [`QUERIES`]; registered as q0, q1, … in order.
    queries: Vec<usize>,
    /// `ticks[t][person]` = raw weights over [`DOMAIN`] (⊥ absorbs the rest).
    ticks: Vec<Vec<(f64, f64, f64)>>,
    /// Tick index after which the kernel session is checkpointed and a
    /// restored twin continues alongside it.
    split: usize,
    /// Run the kernel session on the sharded worker pool (the restored
    /// and interpreter sessions stay sequential — answers must still be
    /// bit-identical, worker interleaving is never observable).
    parallel: bool,
}

fn weights() -> impl Strategy<Value = (f64, f64, f64)> {
    (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64)
}

fn scenario() -> impl Strategy<Value = Scenario> {
    // The vendored proptest has no flat-map, so dependent shapes are
    // derived in the map: rows carry the maximum of 3 people and are
    // truncated to `n_people`; the split point is a seed reduced modulo
    // the generated tick count.
    (
        1..4usize,
        prop::collection::vec(0..QUERIES.len(), 1..4),
        prop::collection::vec(prop::collection::vec(weights(), 3), 2..7),
        0..1_000_000usize,
        any::<bool>(),
    )
        .prop_map(|(n_people, queries, ticks, split_seed, parallel)| {
            let split = 1 + split_seed % (ticks.len() - 1);
            let ticks = ticks
                .into_iter()
                .map(|mut row| {
                    row.truncate(n_people);
                    row
                })
                .collect();
            Scenario {
                n_people,
                queries,
                ticks,
                split,
                parallel,
            }
        })
}

fn schema_db(n_people: usize) -> Database {
    let mut db = Database::new();
    db.declare_stream("At", &["person"], &["loc"]).unwrap();
    db.declare_relation("Hallway", 1).unwrap();
    let i = db.interner().clone();
    db.insert_relation_tuple("Hallway", lahar_model::tuple([i.intern("h")]))
        .unwrap();
    for p in 0..n_people {
        let b = StreamBuilder::new(&i, "At", &[&format!("p{p}")], &DOMAIN);
        db.add_stream(b.independent(vec![]).unwrap()).unwrap();
    }
    db
}

fn build_session(s: &Scenario, mode: TickMode, forced: bool) -> RealTimeSession {
    let db = schema_db(s.n_people);
    let config = SessionConfig::builder().tick_mode(mode).build().unwrap();
    let mut session = RealTimeSession::with_config(db, config).unwrap();
    for (i, &q) in s.queries.iter().enumerate() {
        session.register(&format!("q{i}"), QUERIES[q]).unwrap();
    }
    if forced {
        session.force_interpreter(true);
    }
    session
}

/// One tick's marginal for a person: weights scaled so the named
/// outcomes sum below 1 (⊥ absorbs the remainder). Built once per tick
/// and cloned into every session, so all sessions see identical bits.
fn tick_marginal(db_interner: &lahar_model::Interner, p: usize, w: (f64, f64, f64)) -> Marginal {
    let b = StreamBuilder::new(db_interner, "At", &[&format!("p{p}")], &DOMAIN);
    let scale = 1.0 / (w.0 + w.1 + w.2 + 1.0);
    b.marginal(&[
        (DOMAIN[0], w.0 * scale),
        (DOMAIN[1], w.1 * scale),
        (DOMAIN[2], w.2 * scale),
    ])
    .unwrap()
}

/// Alerts reduced to comparable bits: (query name, tick, probability bits).
fn bits(alerts: &[lahar_core::Alert]) -> Vec<(String, u32, u64)> {
    alerts
        .iter()
        .map(|a| (a.name.to_string(), a.t, a.probability.to_bits()))
        .collect()
}

fn run_tick(
    session: &mut RealTimeSession,
    interner: &lahar_model::Interner,
    row: &[(f64, f64, f64)],
) -> Vec<lahar_core::Alert> {
    for (p, &w) in row.iter().enumerate() {
        let id = session.database().stream_id_at(p).unwrap();
        session.stage(id, tick_marginal(interner, p, w)).unwrap();
    }
    session.tick().unwrap()
}

/// The same rows as a staged multi-tick batch for
/// [`RealTimeSession::tick_epoch`] (element `i` = tick `t+i`).
fn epoch_batch(
    session: &RealTimeSession,
    interner: &lahar_model::Interner,
    rows: &[Vec<(f64, f64, f64)>],
) -> Vec<Vec<(lahar_model::StreamId, Marginal)>> {
    rows.iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .map(|(p, &w)| {
                    let id = session.database().stream_id_at(p).unwrap();
                    (id, tick_marginal(interner, p, w))
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Kernel vs interpreter vs checkpoint-restored sessions: the same
    /// staged marginals must yield bit-identical alerts on every tick.
    #[test]
    fn kernel_interpreter_and_restore_agree(s in scenario()) {
        let mode = if s.parallel { TickMode::Parallel } else { TickMode::Sequential };
        let mut kern = build_session(&s, mode, false);
        let mut intp = build_session(&s, TickMode::Sequential, true);
        let interner = kern.database().interner().clone();

        for row in &s.ticks[..s.split] {
            let ka = run_tick(&mut kern, &interner, row);
            let ia = run_tick(&mut intp, &interner, row);
            prop_assert_eq!(bits(&ka), bits(&ia));
        }

        // Mid-stream checkpoint, JSON round-trip, restore into a fresh
        // sequential session over a bare schema database.
        let ckpt = kern.checkpoint().unwrap();
        let parsed = Checkpoint::from_json(&ckpt.to_json()).unwrap();
        let mut restored = RealTimeSession::restore(schema_db(s.n_people), &parsed).unwrap();
        prop_assert_eq!(restored.now(), kern.now());

        for row in &s.ticks[s.split..] {
            let ka = run_tick(&mut kern, &interner, row);
            let ia = run_tick(&mut intp, &interner, row);
            let ra = run_tick(&mut restored, &interner, row);
            let kb = bits(&ka);
            prop_assert_eq!(&kb, &bits(&ia));
            prop_assert_eq!(&kb, &bits(&ra));
        }
    }

    /// Epoch batching: handing the parallel path `split` staged ticks per
    /// [`RealTimeSession::tick_epoch`] call (one worker join per epoch)
    /// must stay bit-identical to per-tick sequential ticks — including
    /// for a twin restored from a mid-stream checkpoint that continues
    /// in batched mode, and for batches longer than `max_epoch_ticks`
    /// (which the session splits into several epochs internally).
    #[test]
    fn epoch_batched_parallel_matches_per_tick_sequential(s in scenario()) {
        let epoch = s.split; // 1..ticks.len(): doubles as the batch size
        let db = schema_db(s.n_people);
        let config = SessionConfig::builder()
            .tick_mode(TickMode::Parallel)
            .max_epoch_ticks(epoch)
            .build()
            .unwrap();
        let mut batched = RealTimeSession::with_config(db, config).unwrap();
        for (i, &q) in s.queries.iter().enumerate() {
            batched.register(&format!("q{i}"), QUERIES[q]).unwrap();
        }
        let mut seq = build_session(&s, TickMode::Sequential, false);
        let interner = seq.database().interner().clone();

        let head = &s.ticks[..s.split];
        let batch = epoch_batch(&batched, &interner, head);
        let ba = batched.tick_epoch(batch).unwrap();
        let mut sa = Vec::new();
        for row in head {
            sa.extend(run_tick(&mut seq, &interner, row));
        }
        prop_assert_eq!(bits(&ba), bits(&sa));

        // Mid-stream checkpoint between epochs; the restored twin keeps
        // the batched parallel config and must track bit-for-bit.
        let ckpt = batched.checkpoint().unwrap();
        let parsed = Checkpoint::from_json(&ckpt.to_json()).unwrap();
        let mut restored = RealTimeSession::restore(schema_db(s.n_people), &parsed).unwrap();
        prop_assert_eq!(restored.now(), batched.now());

        // The tail goes down in ONE tick_epoch call per session; when it
        // is longer than `max_epoch_ticks` the session closes several
        // epochs under the hood.
        let tail = &s.ticks[s.split..];
        let batch = epoch_batch(&batched, &interner, tail);
        let ba = batched.tick_epoch(batch).unwrap();
        let batch = epoch_batch(&restored, &interner, tail);
        let ra = restored.tick_epoch(batch).unwrap();
        let mut sa = Vec::new();
        for row in tail {
            sa.extend(run_tick(&mut seq, &interner, row));
        }
        let bb = bits(&ba);
        prop_assert_eq!(&bb, &bits(&sa));
        prop_assert_eq!(&bb, &bits(&ra));
    }
}

// ---------------------------------------------------------------------------
// Batch mode: independent *and* Markov databases
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct BatchScenario {
    markov: bool,
    query: usize,
    /// `series[person][t]` = raw weights (independent: marginal at `t`;
    /// Markov: row `t` seeds the initial marginal / CPT rows).
    series: Vec<Vec<(f64, f64, f64)>>,
}

fn batch_scenario() -> impl Strategy<Value = BatchScenario> {
    // The possible-worlds oracle is exponential (4^(streams × horizon)
    // worlds), so batch scenarios stay oracle-sized: ≤ 2 streams × 3
    // ticks = 4096 worlds. Per-person series lengths vary independently
    // (unequal stream lengths ⊥-pad to the horizon).
    (
        any::<bool>(),
        0..QUERIES.len(),
        prop::collection::vec(prop::collection::vec(weights(), 2..4), 1..3),
    )
        .prop_map(|(markov, query, series)| BatchScenario {
            markov,
            query,
            series,
        })
}

fn batch_db(s: &BatchScenario) -> Database {
    let mut db = schema_db(0);
    let i = db.interner().clone();
    for (p, rows) in s.series.iter().enumerate() {
        let b = StreamBuilder::new(&i, "At", &[&format!("p{p}")], &DOMAIN);
        let stream = if s.markov {
            // Row 0 seeds the initial marginal; each later row seeds one
            // CPT (every from-outcome gets the same scaled target row,
            // which keeps the chain correlated but trivially valid).
            let init = tick_marginal(&i, p, rows[0]);
            let cpts = rows[1..]
                .iter()
                .map(|&w| {
                    let scale = 1.0 / (w.0 + w.1 + w.2 + 1.0);
                    let mut entries = Vec::new();
                    for from in DOMAIN {
                        entries.push((from, DOMAIN[0], w.0 * scale));
                        entries.push((from, DOMAIN[1], w.1 * scale));
                        entries.push((from, DOMAIN[2], w.2 * scale));
                    }
                    b.cpt(&entries).unwrap()
                })
                .collect();
            b.markov(init, cpts).unwrap()
        } else {
            let ms = rows.iter().map(|&w| tick_marginal(&i, p, w)).collect();
            b.independent(ms).unwrap()
        };
        db.add_stream(stream).unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batch evaluation over independent and Markov databases: the
    /// kernel-backed evaluator, the forced-interpreter evaluator, and
    /// the reference possible-worlds oracle must agree — the first two
    /// bit-for-bit, the oracle within float-reassociation tolerance.
    #[test]
    fn batch_kernel_matches_interpreter_and_oracle(s in batch_scenario()) {
        let db = batch_db(&s);
        let q = parse_query(db.interner(), QUERIES[s.query]).unwrap();
        let nq = NormalQuery::from_query(&q);
        let horizon = db.horizon();

        let kern = ExtendedRegularEvaluator::new(&db, &nq).unwrap()
            .prob_series(&db, horizon);
        let mut forced_eval = ExtendedRegularEvaluator::new(&db, &nq).unwrap();
        forced_eval.force_interpreter(true);
        let forced = forced_eval.prob_series(&db, horizon);
        prop_assert_eq!(kern.len(), forced.len());
        for (t, (k, f)) in kern.iter().zip(&forced).enumerate() {
            prop_assert_eq!(k.to_bits(), f.to_bits(), "t={} kern={} forced={}", t, k, f);
        }

        // The oracle sums worlds in enumeration order, so agreement is up
        // to float reassociation over ≤ 4096 terms, not bit-identity.
        let oracle = lahar_query::prob_series(&db, &q).unwrap();
        prop_assert_eq!(kern.len(), oracle.len());
        for (t, (k, o)) in kern.iter().zip(&oracle).enumerate() {
            prop_assert!((k - o).abs() <= 1e-9, "t={} kern={} oracle={}", t, k, o);
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatch differential: scalar SoA vs SSE2 vs AVX2 vs legacy interpreter
// ---------------------------------------------------------------------------

use lahar_core::simd::{self, Dispatch};

/// Restores runtime CPU detection even when an assertion unwinds
/// mid-case, so a failing test never leaves a forced dispatch behind
/// for the rest of the binary.
struct DispatchGuard;

impl Drop for DispatchGuard {
    fn drop(&mut self) {
        simd::force_dispatch(None);
    }
}

/// Every kernel dispatch this host can execute: the portable scalar
/// loop always, SSE2 on any x86_64, and AVX2 only when runtime
/// detection reports it (forcing AVX2 on a host without it would
/// execute illegal instructions).
fn forced_dispatches() -> Vec<Dispatch> {
    let mut v = vec![Dispatch::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        v.push(Dispatch::Sse2);
        if matches!(simd::dispatch(), Dispatch::Avx2) {
            v.push(Dispatch::Avx2);
        }
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every compiled dispatch (scalar SoA, SSE2, AVX2 where the host
    /// has it) must produce alerts bit-identical to the legacy
    /// interpreter — including across a mid-stream checkpoint, JSON
    /// round-trip, and restore, and regardless of the lane layouts the
    /// batcher picks under each dispatch.
    #[test]
    fn soa_dispatch_paths_agree(s in scenario()) {
        // Reference: the forced interpreter, outside any dispatch
        // forcing (it never touches the SoA kernels).
        let mut intp = build_session(&s, TickMode::Sequential, true);
        let interner = intp.database().interner().clone();
        let mut reference = Vec::with_capacity(s.ticks.len());
        for row in &s.ticks {
            reference.push(bits(&run_tick(&mut intp, &interner, row)));
        }

        let _guard = DispatchGuard;
        let mode = if s.parallel { TickMode::Parallel } else { TickMode::Sequential };
        for d in forced_dispatches() {
            simd::force_dispatch(Some(d));
            let mut kern = build_session(&s, mode, false);

            for (t, row) in s.ticks[..s.split].iter().enumerate() {
                let ka = bits(&run_tick(&mut kern, &interner, row));
                prop_assert_eq!(&ka, &reference[t], "dispatch {:?} tick {}", d, t);
            }

            // Checkpoint under this dispatch, restore, and let the twin
            // finish the stream alongside the original.
            let ckpt = kern.checkpoint().unwrap();
            let parsed = Checkpoint::from_json(&ckpt.to_json()).unwrap();
            let mut restored =
                RealTimeSession::restore(schema_db(s.n_people), &parsed).unwrap();
            prop_assert_eq!(restored.now(), kern.now());

            for (i, row) in s.ticks[s.split..].iter().enumerate() {
                let t = s.split + i;
                let ka = bits(&run_tick(&mut kern, &interner, row));
                let ra = bits(&run_tick(&mut restored, &interner, row));
                prop_assert_eq!(&ka, &reference[t], "dispatch {:?} tick {}", d, t);
                prop_assert_eq!(&ra, &reference[t], "restored {:?} tick {}", d, t);
            }
        }
    }
}
