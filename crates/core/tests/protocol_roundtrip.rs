//! Property tests for the `lahar serve` wire protocol: every command and
//! response must survive encode → arbitrary transport re-chunking →
//! decode losslessly, with probabilities bit-identical, and the decoder
//! must reject malformed frames instead of guessing.

use lahar_core::protocol::{
    encode_command, encode_response, parse_command, parse_response, Command, Response, WireAlert,
    WireCode, WireMarginal, PROTOCOL_VERSION,
};
use lahar_core::EngineError;
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read};

// -- generators -------------------------------------------------------

/// Strings that stress JSON escaping: quotes, backslashes, newlines,
/// unicode, and the empty string. (The vendored proptest has no regex
/// string strategy, so strings come from an indexed pool plus a
/// generated alphanumeric suffix.)
fn wire_string() -> impl Strategy<Value = String> {
    const POOL: [&str; 6] = [
        "plain-name_0",
        "with \"quotes\" and \\backslashes\\",
        "line\nbreak\ttab",
        "ünïcode — λahar",
        "",
        "{\"json\":[looking]}",
    ];
    (0..POOL.len(), 0..1_000_000usize).prop_map(|(i, salt)| {
        if salt % 3 == 0 {
            format!("{}-{salt}", POOL[i])
        } else {
            POOL[i].to_owned()
        }
    })
}

/// Probabilities including awkward but finite values.
fn prob() -> impl Strategy<Value = f64> {
    prop_oneof![
        0.0..1.0f64,
        Just(0.1 + 0.2),
        Just(f64::MIN_POSITIVE),
        Just(1.0 - f64::EPSILON),
        Just(0.0),
        Just(1.0),
    ]
}

fn wire_marginal() -> impl Strategy<Value = WireMarginal> {
    (
        wire_string(),
        prop::collection::vec(wire_string(), 0..3),
        prop::collection::vec(prob(), 1..5),
    )
        .prop_map(|(stream_type, key, probs)| WireMarginal {
            stream_type,
            key,
            probs,
        })
}

fn wire_alert() -> impl Strategy<Value = WireAlert> {
    (0..8usize, wire_string(), 0..1000u32, prob()).prop_map(|(query, name, t, probability)| {
        WireAlert {
            query,
            name,
            t,
            probability,
        }
    })
}

fn command() -> impl Strategy<Value = Command> {
    prop_oneof![
        Just(Command::Ping),
        Just(Command::Shutdown),
        wire_string().prop_map(|session| Command::Open { session }),
        (wire_string(), wire_string(), wire_string()).prop_map(|(session, name, query)| {
            Command::Register {
                session,
                name,
                query,
            }
        }),
        (
            wire_string(),
            prop::collection::vec(wire_marginal(), 0..4),
            any::<bool>()
        )
            .prop_map(|(session, marginals, tick)| Command::Stage {
                session,
                marginals,
                tick
            }),
        wire_string().prop_map(|session| Command::Tick { session }),
        (wire_string(), wire_string())
            .prop_map(|(session, query)| Command::Series { session, query }),
        wire_string().prop_map(|session| Command::Checkpoint { session }),
    ]
}

fn response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Pong {
            version: PROTOCOL_VERSION
        }),
        Just(Response::ShuttingDown),
        (0..100u32, any::<bool>()).prop_map(|(t, restored)| Response::Opened { t, restored }),
        (0..8usize).prop_map(|query| Response::Registered { query }),
        (0..64usize).prop_map(|staged| Response::Staged { staged }),
        (0..100u32, prop::collection::vec(wire_alert(), 0..4))
            .prop_map(|(t, alerts)| Response::Ticked { t, alerts }),
        (wire_string(), prop::collection::vec(prob(), 0..6))
            .prop_map(|(query, series)| Response::Series { query, series }),
        (0..100u32).prop_map(|t| Response::Checkpointed { t }),
        // Arbitrary code strings exercise both the known-variant and
        // `Other` paths of the typed `WireCode` round-trip.
        (wire_string(), wire_string()).prop_map(|(code, message)| Response::Error {
            code: WireCode::from_wire(&code),
            message,
        }),
    ]
}

// -- transport re-chunking --------------------------------------------

/// A reader that hands out the underlying bytes in caller-chosen chunk
/// sizes, mimicking arbitrary TCP segmentation.
struct Chunked {
    data: Vec<u8>,
    pos: usize,
    chunks: Vec<usize>,
    turn: usize,
}

impl Read for Chunked {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let chunk = self.chunks[self.turn % self.chunks.len()].max(1);
        self.turn += 1;
        let n = chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity for commands, and every frame is
    /// a single line (no raw newlines survive escaping).
    #[test]
    fn commands_round_trip(cmd in command()) {
        let line = encode_command(&cmd);
        prop_assert!(!line.contains('\n'), "frame not single-line: {line}");
        prop_assert_eq!(parse_command(&line).unwrap(), cmd);
    }

    /// encode → decode is the identity for responses, including f64
    /// bit patterns.
    #[test]
    fn responses_round_trip(r in response()) {
        let line = encode_response(&r);
        prop_assert!(!line.contains('\n'));
        prop_assert_eq!(parse_response(&line).unwrap(), r);
    }

    /// A pipelined stream of frames split across arbitrary read-chunk
    /// boundaries reassembles into exactly the sent commands — the
    /// framing layer (BufRead::read_line over newline-delimited frames)
    /// is agnostic to TCP segmentation.
    #[test]
    fn frames_survive_arbitrary_chunking(
        cmds in prop::collection::vec(command(), 1..8),
        chunks in prop::collection::vec(1..23usize, 1..6),
    ) {
        let mut wire = Vec::new();
        for cmd in &cmds {
            wire.extend_from_slice(encode_command(cmd).as_bytes());
            wire.push(b'\n');
        }
        let mut reader = BufReader::with_capacity(
            7, // tiny buffer so refills interleave with chunk boundaries
            Chunked { data: wire, pos: 0, chunks, turn: 0 },
        );
        let mut got = Vec::new();
        let mut line = String::new();
        while {
            line.clear();
            reader.read_line(&mut line).unwrap() > 0
        } {
            got.push(parse_command(line.trim_end()).unwrap());
        }
        prop_assert_eq!(got, cmds);
    }

    /// Truncating a frame at any byte boundary never parses as valid —
    /// it is a protocol error, not a silent mis-read. (Truncations that
    /// happen to end on a complete JSON object of the same shape do not
    /// exist because the object closes only at the final brace.)
    #[test]
    fn truncated_frames_are_rejected(cmd in command(), cut in 0.0..1.0f64) {
        let line = encode_command(&cmd);
        let at = 1 + ((line.len() - 1) as f64 * cut) as usize;
        if at < line.len() {
            // Cut on a char boundary at or below `at`.
            let mut at = at;
            while !line.is_char_boundary(at) {
                at -= 1;
            }
            if at > 0 {
                let err = parse_command(&line[..at]);
                prop_assert!(
                    matches!(err, Err(EngineError::Protocol(_))),
                    "truncated frame parsed: {:?} from {}",
                    err,
                    &line[..at]
                );
            }
        }
    }
}

#[test]
fn garbage_frames_are_protocol_errors() {
    for bad in [
        "",
        "not json",
        "42",
        "[]",
        "{}",
        r#"{"cmd":"no_such_command"}"#,
        r#"{"type":"pong"}"#,               // a response is not a command
        r#"{"cmd":"open"}"#,                // missing session
        r#"{"cmd":"stage","session":"s"}"#, // missing marginals
    ] {
        assert!(
            matches!(parse_command(bad), Err(EngineError::Protocol(_))),
            "accepted: {bad}"
        );
        assert!(
            matches!(parse_response(bad), Err(EngineError::Protocol(_))),
            "response parser accepted: {bad}"
        );
    }
}
