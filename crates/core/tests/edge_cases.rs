//! Engine edge cases: degenerate databases, empty streams, deterministic
//! inputs, and boundary conditions around the horizon.

use lahar_core::{CompileOptions, EngineError, Lahar, RegularEvaluator, Sampler, SamplerConfig};
use lahar_model::{Database, StreamBuilder};
use lahar_query::{parse_and_validate, NormalQuery};

fn empty_db() -> Database {
    let mut db = Database::new();
    db.declare_stream("At", &["p"], &["l"]).unwrap();
    db
}

#[test]
fn query_over_database_with_no_streams() {
    let db = empty_db();
    // No stream can ever match: probability 0 everywhere, horizon 0.
    let series = Lahar::prob_series(&db, "At('joe', 'a')").unwrap();
    assert!(series.is_empty());
}

#[test]
fn query_over_empty_stream() {
    let mut db = empty_db();
    let b = StreamBuilder::new(db.interner(), "At", &["joe"], &["a"]);
    db.add_stream(b.independent(vec![]).unwrap()).unwrap();
    let series = Lahar::prob_series(&db, "At('joe', 'a')").unwrap();
    assert!(series.is_empty());
    // Stepping past the end yields all-bottom probabilities.
    let q = parse_and_validate(db.catalog(), db.interner(), "At('joe', 'a')").unwrap();
    let nq = NormalQuery::from_query(&q);
    let mut eval = RegularEvaluator::new(&db, &nq).unwrap();
    for _ in 0..5 {
        assert_eq!(eval.step(&db), 0.0);
    }
}

#[test]
fn deterministic_streams_give_zero_one_answers() {
    let mut db = empty_db();
    let b = StreamBuilder::new(db.interner(), "At", &["joe"], &["a", "b"]);
    db.add_stream(
        b.deterministic(&[Some("a"), None, Some("b"), Some("a")])
            .unwrap(),
    )
    .unwrap();
    let series = Lahar::prob_series(&db, "At('joe','a') ; At('joe','b')").unwrap();
    assert_eq!(series, vec![0.0, 0.0, 1.0, 0.0]);
}

#[test]
fn certain_event_every_step_saturates_kleene() {
    let mut db = empty_db();
    let b = StreamBuilder::new(db.interner(), "At", &["joe"], &["a"]);
    db.add_stream(b.deterministic(&[Some("a"); 5]).unwrap())
        .unwrap();
    let series = Lahar::prob_series(&db, "(At('joe', l))+{}").unwrap();
    assert_eq!(series, vec![1.0; 5]);
}

#[test]
fn probabilities_remain_normalized_under_long_runs() {
    let mut db = empty_db();
    let b = StreamBuilder::new(db.interner(), "At", &["joe"], &["a", "b"]);
    let init = b.marginal(&[("a", 0.5), ("b", 0.5)]).unwrap();
    let cpt = b
        .cpt(&[
            ("a", "a", 0.5),
            ("a", "b", 0.5),
            ("b", "b", 0.5),
            ("b", "a", 0.5),
        ])
        .unwrap();
    db.add_stream(b.markov(init, vec![cpt; 200]).unwrap())
        .unwrap();
    for p in Lahar::prob_series(&db, "At('joe','a') ; At('joe','b')").unwrap() {
        assert!((0.0..=1.0).contains(&p), "{p}");
    }
}

#[test]
fn unknown_stream_type_is_a_validation_error() {
    let db = empty_db();
    match Lahar::compile_with(&db, "Missing('x')", CompileOptions::new()) {
        Err(EngineError::Query(_)) => {}
        other => panic!("expected validation error, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn sampler_on_empty_database_returns_zeroes() {
    let db = empty_db();
    let q = parse_and_validate(db.catalog(), db.interner(), "At(p,'a') ; At(p,'b')").unwrap();
    let nq = NormalQuery::from_query(&q);
    let s = Sampler::with_config(&db, &nq, SamplerConfig::default()).unwrap();
    assert_eq!(s.n_groundings(), 0);
    assert!(s.prob_series(&db, 3).iter().all(|&p| p == 0.0));
}

#[test]
fn queries_at_the_32_subgoal_limit_are_rejected() {
    let mut db = empty_db();
    let b = StreamBuilder::new(db.interner(), "At", &["joe"], &["a"]);
    db.add_stream(b.deterministic(&[Some("a")]).unwrap())
        .unwrap();
    let big = vec!["At('joe','a')"; 33].join(" ; ");
    assert!(Lahar::compile_with(&db, big.as_str(), CompileOptions::new()).is_err());
    let ok = vec!["At('joe','a')"; 32].join(" ; ");
    assert!(Lahar::compile_with(&db, ok.as_str(), CompileOptions::new()).is_ok());
}

#[test]
fn conflicting_simultaneous_streams_combine() {
    // Two people at the same timestep: "someone is at a" unions their
    // independent probabilities.
    let mut db = empty_db();
    for (p, pr) in [("joe", 0.5), ("sue", 0.5)] {
        let b = StreamBuilder::new(db.interner(), "At", &[p], &["a"]);
        db.add_stream(
            b.clone()
                .independent(vec![b.marginal(&[("a", pr)]).unwrap()])
                .unwrap(),
        )
        .unwrap();
    }
    let series = Lahar::prob_series(&db, "At(p, 'a')").unwrap();
    assert!((series[0] - 0.75).abs() < 1e-12);
}

#[test]
fn zero_probability_support_entries_are_harmless() {
    let mut db = empty_db();
    let b = StreamBuilder::new(db.interner(), "At", &["joe"], &["a", "never"]);
    let ms = vec![b.marginal(&[("a", 1.0), ("never", 0.0)]).unwrap()];
    db.add_stream(b.independent(ms).unwrap()).unwrap();
    let series = Lahar::prob_series(&db, "At('joe', 'never')").unwrap();
    assert_eq!(series, vec![0.0]);
}
