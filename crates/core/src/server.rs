//! `lahar serve`: a sharded multi-session network service.
//!
//! [`LaharServer`] binds a [`std::net::TcpListener`] and hosts any
//! number of named [`crate::RealTimeSession`]s over the newline-delimited
//! JSON protocol of [`crate::protocol`] (spec: `PROTOCOL.md`). The
//! threading model is deliberately boring, matching the zero-dependency
//! style of [`crate::expose::MetricsServer`]:
//!
//! * one **acceptor** thread (`lahar-serve`) accepts connections and
//!   spawns a blocking reader thread per client;
//! * `n_shards` **shard worker** threads (`lahar-shard-N`) each own the
//!   sessions that hash to them — a session lives on exactly one shard,
//!   so session state is single-threaded and needs no locking;
//! * connection threads route each command to its session's shard over a
//!   **bounded** [`std::sync::mpsc::sync_channel`]. When a shard's queue
//!   is full the command is rejected *immediately* with an `overloaded`
//!   response — the server never buffers without bound, and the client
//!   decides whether to back off and retry.
//!
//! Integration with the rest of the engine:
//!
//! * staging uses [`crate::RealTimeSession::stage_batch`], so one wire
//!   frame feeds the kernel fast path with a whole tick's marginals;
//! * every hosted session's stats merge into one `/metrics` exposition
//!   (label `session="<name>"`) together with the server's own queue
//!   gauges, served by a [`MetricsServer`] with a custom renderer;
//! * recoverable tick faults (worker panics, tick timeouts, injected
//!   failpoints) trigger [`crate::RealTimeSession::recover`] instead of
//!   killing the server — the interrupted tick completes bit-identically
//!   and its alerts still extend the query series;
//! * graceful shutdown writes a final checkpoint per session into
//!   [`ServerConfig::checkpoint_dir`], and [`Command::Open`] restores
//!   from it on restart, so a serve → shutdown → serve cycle continues
//!   the same series bit-identically;
//! * durability: with `--durability batch|always`
//!   ([`crate::SessionConfig::durability`]), every acknowledged
//!   mutation is appended to a per-session write-ahead log
//!   ([`crate::wal`]) *before* the ack leaves the server, and
//!   checkpoints are persisted as atomic checksummed **generations**
//!   (tmp file + fsync + rename, CRC-carrying envelope). On restart,
//!   `open` restores the newest generation that verifies — torn or
//!   corrupt ones are quarantined as `*.corrupt` and the scan falls
//!   back to the previous generation — and replays the uncovered log
//!   tail on top, so even `kill -9` mid-write loses no acknowledged
//!   tick.

use crate::checkpoint::{self, Checkpoint};
use crate::error::EngineError;
use crate::expose::{to_prometheus_sessions, MetricsServer};
use crate::protocol::{
    encode_response_with_id, parse_request, Command, Response, WireAlert, WireMarginal,
    CODE_OVERLOADED, CODE_SESSION_LIMIT, CODE_UNKNOWN_SESSION, PROTOCOL_VERSION,
};
use crate::session::{Alert, RealTimeSession, SessionConfig};
use crate::stats::{EngineStats, Histogram, StatsSnapshot};
use crate::trace;
use crate::wal::{self, Durability, WalMarginal, WalOp, WalWriter};
use lahar_model::{Database, Marginal, StreamKey, Value};
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of [`LaharServer`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Address to listen on (port 0 picks a free port; see
    /// [`LaharServer::addr`] for the resolved one).
    pub addr: SocketAddr,
    /// Metrics endpoint for the merged per-session exposition (`None`
    /// disables it). Must differ from `addr`.
    pub metrics_addr: Option<SocketAddr>,
    /// Number of shard worker threads (0 = one per available core).
    pub n_shards: usize,
    /// Bound of each shard's command queue; a full queue answers
    /// `overloaded` instead of buffering.
    pub queue_cap: usize,
    /// Maximum number of hosted sessions across all shards; an `open`
    /// beyond this answers a `session_limit` error. Sessions are created
    /// only by `open` (other commands answer `unknown_session`), so
    /// arbitrary wire-supplied names cannot grow server state without
    /// bound.
    pub max_sessions: usize,
    /// Where shutdown checkpoints are written and restarts restore from
    /// (`None` disables persistence).
    pub checkpoint_dir: Option<PathBuf>,
    /// Template configuration for hosted sessions. `metrics_addr` and
    /// `serve_addr` are ignored here — the server owns both endpoints.
    pub session_config: SessionConfig,
    /// Artificial per-command processing delay in every shard worker — a
    /// test/ops knob for driving the backpressure path deterministically.
    pub shard_delay: Option<Duration>,
    /// Threshold of the structured slow-request log: a request whose
    /// phase total (`queue_wait + execute + wal_append + respond`)
    /// reaches this many milliseconds is logged as one JSONL entry.
    /// `None` disables the log.
    pub slow_request_ms: Option<u64>,
    /// Where slow-request entries are appended; `None` writes them to
    /// stderr. Only consulted when `slow_request_ms` is set.
    pub slow_log: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".parse().expect("valid literal"),
            metrics_addr: None,
            n_shards: 0,
            queue_cap: 64,
            max_sessions: 1024,
            checkpoint_dir: None,
            session_config: SessionConfig::default(),
            shard_delay: None,
            slow_request_ms: None,
            slow_log: None,
        }
    }
}

/// Request-scoped context carried with a job from the connection
/// reader to its shard worker.
struct RequestCtx {
    /// Client-supplied correlation id, echoed in the response and
    /// attached (as the `req` span argument) on both threads.
    id: Option<u64>,
    /// Wire-command label (see [`COMMAND_LABELS`]).
    command: &'static str,
    /// When the connection thread enqueued the job; the worker's
    /// dequeue time minus this is the `queue_wait` phase.
    enqueued: Instant,
}

/// A worker's answer: the response plus the phases measured on the
/// worker thread.
struct WorkerReply {
    response: Response,
    queue_wait_ns: u64,
    execute_ns: u64,
    wal_ns: u64,
}

/// One command in flight to a shard worker.
struct Job {
    session: String,
    cmd: Command,
    ctx: RequestCtx,
    reply: SyncSender<WorkerReply>,
}

enum ShardMsg {
    Job(Job),
    /// Checkpoint every hosted session and exit.
    Shutdown,
}

struct Shard {
    sender: SyncSender<ShardMsg>,
    /// Commands currently queued (approximate; the `/metrics` gauge).
    depth: Arc<AtomicUsize>,
}

struct Shared {
    config: ServerConfig,
    /// The *resolved* serve address (never port 0): the self-connect
    /// that unblocks `accept` during shutdown must target this, not
    /// `config.addr`.
    addr: SocketAddr,
    template: Database,
    shards: Vec<Shard>,
    shutting_down: AtomicBool,
    /// Commands rejected with `overloaded`.
    overloaded_total: AtomicU64,
    /// Stats handle per hosted session, for the merged exposition.
    registry: Mutex<Vec<(String, EngineStats)>>,
    /// Per-command phase histograms and outcome counters.
    requests: RequestStats,
    /// The structured slow-request log, when enabled.
    slow_log: Option<SlowLog>,
}

/// The serve-loop handle. Dropping it (or calling
/// [`LaharServer::shutdown`]) stops the service gracefully,
/// checkpointing every hosted session first.
pub struct LaharServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Option<MetricsServer>,
}

impl LaharServer {
    /// Binds the configured address and starts serving sessions created
    /// from (schema-only clones of) `template`.
    pub fn start(config: ServerConfig, template: Database) -> Result<Self, EngineError> {
        if config.queue_cap == 0 {
            return Err(EngineError::InvalidConfig(
                "queue_cap must be non-zero (a zero-capacity queue rejects everything)".to_owned(),
            ));
        }
        if config.max_sessions == 0 {
            return Err(EngineError::InvalidConfig(
                "max_sessions must be non-zero (a zero cap rejects every open)".to_owned(),
            ));
        }
        // Two port-0 addresses never collide — the OS picks distinct
        // free ports for each bind.
        if config.metrics_addr == Some(config.addr) && config.addr.port() != 0 {
            return Err(EngineError::InvalidConfig(
                "metrics_addr collides with the serve addr".to_owned(),
            ));
        }
        if config.session_config.durability != Durability::None && config.checkpoint_dir.is_none() {
            return Err(EngineError::InvalidConfig(
                "durability requires a checkpoint dir (the write-ahead log lives there)".to_owned(),
            ));
        }
        for stream in template.streams() {
            if !stream.is_empty() {
                return Err(EngineError::InvalidConfig(
                    "the server template database must be schema-only (no recorded marginals)"
                        .to_owned(),
                ));
            }
        }
        // The crash harness arms torn-write faults in a *spawned*
        // server through the environment; a plain serve never has the
        // variable set.
        #[cfg(feature = "failpoints")]
        crate::failpoint::configure_from_env();
        let n_shards = if config.n_shards == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.n_shards
        };
        let listener = TcpListener::bind(config.addr)
            .map_err(|e| EngineError::ServerUnavailable(format!("bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| EngineError::ServerUnavailable(format!("local_addr: {e}")))?;

        let mut shards = Vec::with_capacity(n_shards);
        let mut receivers = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let (tx, rx) = sync_channel(config.queue_cap);
            shards.push(Shard {
                sender: tx,
                depth: Arc::new(AtomicUsize::new(0)),
            });
            receivers.push(rx);
        }
        let slow_log = match config.slow_request_ms {
            None => None,
            Some(ms) => Some(
                SlowLog::open(Duration::from_millis(ms), config.slow_log.as_deref())
                    .map_err(|e| EngineError::InvalidConfig(format!("slow log: {e}")))?,
            ),
        };
        let shared = Arc::new(Shared {
            config,
            addr,
            template,
            shards,
            shutting_down: AtomicBool::new(false),
            overloaded_total: AtomicU64::new(0),
            registry: Mutex::new(Vec::new()),
            requests: RequestStats::new(),
            slow_log,
        });

        let mut workers = Vec::with_capacity(n_shards);
        for (i, rx) in receivers.into_iter().enumerate() {
            let shared = shared.clone();
            let depth = shared.shards[i].depth.clone();
            let handle = std::thread::Builder::new()
                .name(format!("lahar-shard-{i}"))
                .spawn(move || shard_worker(&shared, i, rx, &depth))
                .map_err(|e| EngineError::ServerUnavailable(format!("spawn shard {i}: {e}")))?;
            workers.push(handle);
        }

        let metrics = match shared.config.metrics_addr {
            None => None,
            Some(maddr) => {
                let metrics_shared = shared.clone();
                let health_shared = shared.clone();
                Some(MetricsServer::start_with_renderers(
                    maddr,
                    Arc::new(move || render_metrics(&metrics_shared)),
                    Arc::new(move || {
                        let registry = health_shared.registry.lock().expect("registry lock");
                        crate::expose::health_report(
                            registry.iter().map(|(name, stats)| (name.as_str(), stats)),
                        )
                    }),
                )?)
            }
        };

        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("lahar-serve".to_owned())
                .spawn(move || accept_loop(listener, shared))
                .map_err(|e| EngineError::ServerUnavailable(format!("spawn acceptor: {e}")))?
        };

        Ok(Self {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
            metrics,
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The resolved metrics address, when exposition is enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(MetricsServer::addr)
    }

    /// Blocks until the serve loop exits — i.e. until a client sends
    /// `shutdown` (or another thread calls [`LaharServer::shutdown`] via
    /// a clone of the handle's internals). Joins every thread; hosted
    /// sessions have been checkpointed when this returns.
    pub fn join(mut self) -> Result<(), EngineError> {
        self.join_inner();
        Ok(())
    }

    /// Initiates graceful shutdown (idempotent) and waits for it to
    /// finish: every shard checkpoints its sessions, all threads join.
    pub fn shutdown(mut self) -> Result<(), EngineError> {
        initiate_shutdown(&self.shared);
        self.join_inner();
        Ok(())
    }

    fn join_inner(&mut self) {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Drop the metrics endpoint last so `/metrics` stays scrapable
        // while sessions flush their final checkpoints.
        self.metrics = None;
    }
}

impl Drop for LaharServer {
    fn drop(&mut self) {
        initiate_shutdown(&self.shared);
        self.join_inner();
    }
}

/// Starts graceful shutdown: flags the acceptor down, enqueues the
/// checkpoint-and-exit sentinel on every shard, and unblocks `accept`.
fn initiate_shutdown(shared: &Arc<Shared>) {
    if shared.shutting_down.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    for shard in &shared.shards {
        // Blocking send: the sentinel must arrive even when the queue is
        // momentarily full. Workers drain queued commands first, so
        // accepted work is never silently dropped.
        let _ = shard.sender.send(ShardMsg::Shutdown);
    }
    let _ = TcpStream::connect(shared.addr);
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let shared = shared.clone();
        // Connection readers are detached: they exit when the client
        // hangs up or when they observe the shutdown flag (bounded by
        // the read timeout below).
        let _ = std::thread::Builder::new()
            .name("lahar-conn".to_owned())
            .spawn(move || {
                let _ = serve_connection(stream, &shared);
            });
    }
}

// ---------------------------------------------------------------------
// Request observability
// ---------------------------------------------------------------------

/// Wire-command labels in exposition order; `invalid` is the row for
/// frames that never parsed into a command.
const COMMAND_LABELS: [&str; 10] = [
    "ping",
    "open",
    "register",
    "stage",
    "stage_ticks",
    "tick",
    "series",
    "checkpoint",
    "shutdown",
    "invalid",
];

/// Request phases recorded per command (exposition label `phase`).
const PHASE_LABELS: [&str; 4] = ["queue_wait", "execute", "wal_append", "respond"];

/// Cap on distinct outcome codes tracked per command; later novel codes
/// fold into `other` (mirrors the fallback-reason cardinality bound).
const MAX_CODES_PER_COMMAND: usize = 12;

/// Slow-log rate bound: entries past this per-second cap are counted
/// and surfaced as `"suppressed"` on the next logged entry instead of
/// being written — a latency storm must not make the log the next
/// bottleneck.
const SLOW_LOG_MAX_PER_SEC: u32 = 100;

fn command_label(cmd: &Command) -> &'static str {
    match cmd {
        Command::Ping => "ping",
        Command::Open { .. } => "open",
        Command::Register { .. } => "register",
        Command::Stage { .. } => "stage",
        Command::StageTicks { .. } => "stage_ticks",
        Command::Tick { .. } => "tick",
        Command::Series { .. } => "series",
        Command::Checkpoint { .. } => "checkpoint",
        Command::Shutdown => "shutdown",
    }
}

fn label_index(label: &str) -> usize {
    COMMAND_LABELS
        .iter()
        .position(|l| *l == label)
        .expect("known command label")
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A span carrying the request id as its `req` argument when present.
fn req_span(name: &'static str, id: Option<u64>) -> trace::Span {
    let span = trace::span(name);
    match id {
        Some(id) => span.with("req", id),
        None => span,
    }
}

thread_local! {
    /// Nanoseconds spent in write-ahead appends by the worker-thread
    /// command currently executing (the `wal_append` phase): reset per
    /// job by [`shard_worker`], accumulated by [`wal_append`].
    static WAL_NS: Cell<u64> = const { Cell::new(0) };
}

/// Per-command × per-phase duration histograms plus outcome counters,
/// exported as `lahar_server_request_duration_seconds{command,phase}`
/// and `lahar_server_requests_total{command,code}`.
struct RequestStats {
    /// One row per [`COMMAND_LABELS`] entry, one histogram per phase.
    durations: Mutex<Vec<[Histogram; PHASE_LABELS.len()]>>,
    /// One outcome-code map per command, bounded by
    /// [`MAX_CODES_PER_COMMAND`].
    codes: Mutex<Vec<BTreeMap<String, u64>>>,
}

impl RequestStats {
    fn new() -> Self {
        Self {
            durations: Mutex::new(
                (0..COMMAND_LABELS.len())
                    .map(|_| std::array::from_fn(|_| Histogram::default()))
                    .collect(),
            ),
            codes: Mutex::new(vec![BTreeMap::new(); COMMAND_LABELS.len()]),
        }
    }

    /// Records one finished request: all four phase durations (inline
    /// answers record zero worker phases) and its outcome code.
    fn record(&self, label: &'static str, phases_ns: [u64; PHASE_LABELS.len()], code: &str) {
        let idx = label_index(label);
        {
            let mut durations = self.durations.lock().expect("durations lock");
            for (h, ns) in durations[idx].iter_mut().zip(phases_ns) {
                h.record(ns);
            }
        }
        let mut codes = self.codes.lock().expect("codes lock");
        let per = &mut codes[idx];
        if per.len() >= MAX_CODES_PER_COMMAND && !per.contains_key(code) {
            *per.entry("other".to_owned()).or_insert(0) += 1;
        } else {
            *per.entry(code.to_owned()).or_insert(0) += 1;
        }
    }

    /// Renders both request metrics in Prometheus text format. Commands
    /// never seen emit nothing; a seen command emits every phase.
    fn to_prometheus(&self) -> String {
        use crate::expose::{push_header, push_histogram, push_label_value, push_sample};
        let mut out = String::with_capacity(2048);
        push_header(
            &mut out,
            "lahar_server_request_duration_seconds",
            "Server-side request latency by command and phase \
             (queue_wait / execute / wal_append / respond).",
            "histogram",
        );
        {
            let durations = self.durations.lock().expect("durations lock");
            for (ci, row) in durations.iter().enumerate() {
                if row.iter().all(|h| h.count() == 0) {
                    continue;
                }
                for (pi, h) in row.iter().enumerate() {
                    let labels = format!(
                        "command=\"{}\",phase=\"{}\"",
                        COMMAND_LABELS[ci], PHASE_LABELS[pi]
                    );
                    push_histogram(
                        &mut out,
                        "lahar_server_request_duration_seconds",
                        &labels,
                        &h.summarize(),
                    );
                }
            }
        }
        push_header(
            &mut out,
            "lahar_server_requests_total",
            "Requests handled, by command and outcome code (ok, or the error code).",
            "counter",
        );
        {
            let codes = self.codes.lock().expect("codes lock");
            for (ci, per) in codes.iter().enumerate() {
                for (code, count) in per {
                    let mut labels = format!("command=\"{}\",code=", COMMAND_LABELS[ci]);
                    push_label_value(&mut labels, code);
                    push_sample(
                        &mut out,
                        "lahar_server_requests_total",
                        &labels,
                        &count.to_string(),
                    );
                }
            }
        }
        out
    }
}

/// Everything the connection loop needs to answer, meter, and slow-log
/// one request.
struct RequestOutcome {
    /// Command label, or `invalid` when the frame never parsed.
    label: &'static str,
    /// Echoed correlation id.
    id: Option<u64>,
    /// Target session, when the command named one.
    session: Option<String>,
    response: Response,
    queue_wait_ns: u64,
    execute_ns: u64,
    wal_ns: u64,
}

impl RequestOutcome {
    /// An answer produced on the connection thread itself (pings,
    /// protocol errors, backpressure rejections): no worker phases.
    fn inline(
        label: &'static str,
        id: Option<u64>,
        session: Option<String>,
        response: Response,
    ) -> Self {
        Self {
            label,
            id,
            session,
            response,
            queue_wait_ns: 0,
            execute_ns: 0,
            wal_ns: 0,
        }
    }

    /// The outcome code the counters and slow log record: `ok` for
    /// every success shape, the error code otherwise.
    fn code(&self) -> &str {
        match &self.response {
            Response::Error { code, .. } => code,
            _ => "ok",
        }
    }
}

/// Structured, rate-bounded slow-request log: one JSONL entry per
/// request whose phase total meets [`ServerConfig::slow_request_ms`].
struct SlowLog {
    threshold: Duration,
    sink: Mutex<SlowSink>,
}

struct SlowSink {
    out: Box<dyn std::io::Write + Send>,
    /// Start of the current one-second rate window.
    window: Instant,
    /// Entries written in the current window.
    in_window: u32,
    /// Entries dropped by the rate bound since the last written entry.
    suppressed: u64,
}

impl SlowLog {
    fn open(threshold: Duration, path: Option<&Path>) -> std::io::Result<Self> {
        let out: Box<dyn std::io::Write + Send> = match path {
            Some(path) => Box::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            ),
            None => Box::new(std::io::stderr()),
        };
        Ok(Self {
            threshold,
            sink: Mutex::new(SlowSink {
                out,
                window: Instant::now(),
                in_window: 0,
                suppressed: 0,
            }),
        })
    }

    /// Logs `outcome` when its phase total meets the threshold and the
    /// per-second rate bound allows another entry.
    fn observe(&self, outcome: &RequestOutcome, respond_ns: u64) {
        let total = outcome
            .queue_wait_ns
            .saturating_add(outcome.execute_ns)
            .saturating_add(outcome.wal_ns)
            .saturating_add(respond_ns);
        if Duration::from_nanos(total) < self.threshold {
            return;
        }
        let mut sink = self.sink.lock().expect("slow log lock");
        if sink.window.elapsed() >= Duration::from_secs(1) {
            sink.window = Instant::now();
            sink.in_window = 0;
        }
        if sink.in_window >= SLOW_LOG_MAX_PER_SEC {
            sink.suppressed += 1;
            return;
        }
        sink.in_window += 1;
        let suppressed = std::mem::take(&mut sink.suppressed);
        let ts_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX));
        let mut entry = String::with_capacity(192);
        entry.push_str("{\"ts_ms\":");
        entry.push_str(&ts_ms.to_string());
        entry.push_str(",\"id\":");
        match outcome.id {
            Some(id) => entry.push_str(&id.to_string()),
            None => entry.push_str("null"),
        }
        entry.push_str(",\"session\":");
        match &outcome.session {
            Some(session) => crate::json::push_string(&mut entry, session),
            None => entry.push_str("null"),
        }
        entry.push_str(",\"command\":\"");
        entry.push_str(outcome.label);
        entry.push('"');
        for (phase, ns) in [
            ("queue_wait_ns", outcome.queue_wait_ns),
            ("execute_ns", outcome.execute_ns),
            ("wal_append_ns", outcome.wal_ns),
            ("respond_ns", respond_ns),
        ] {
            entry.push_str(",\"");
            entry.push_str(phase);
            entry.push_str("\":");
            entry.push_str(&ns.to_string());
        }
        entry.push_str(",\"outcome\":");
        crate::json::push_string(&mut entry, outcome.code());
        if suppressed > 0 {
            entry.push_str(",\"suppressed\":");
            entry.push_str(&suppressed.to_string());
        }
        entry.push_str("}\n");
        let _ = sink.out.write_all(entry.as_bytes());
        let _ = sink.out.flush();
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    // Responses are one small flushed frame each; without TCP_NODELAY
    // Nagle can hold them for the peer's delayed ACK (~40 ms per round
    // trip on loopback). The client side sets it too.
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client hung up
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // The timeout may fire after read_line already consumed
                // part of a frame into `line` (slow link, frame split
                // across writes). Keep the partial bytes and resume
                // appending — clearing here would corrupt the frame.
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let frame = std::mem::take(&mut line);
        if frame.trim().is_empty() {
            continue;
        }
        let parsed = parse_request(frame.trim_end());
        let span = req_span(
            "serve_request",
            parsed.as_ref().ok().and_then(|(_, id)| *id),
        );
        let outcome = dispatch(shared, parsed);
        let closing = matches!(outcome.response, Response::ShuttingDown);
        let respond_start = Instant::now();
        writer.write_all(encode_response_with_id(&outcome.response, outcome.id).as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let respond_ns = elapsed_ns(respond_start);
        drop(span);
        shared.requests.record(
            outcome.label,
            [
                outcome.queue_wait_ns,
                outcome.execute_ns,
                outcome.wal_ns,
                respond_ns,
            ],
            outcome.code(),
        );
        if let Some(slow) = &shared.slow_log {
            slow.observe(&outcome, respond_ns);
        }
        if closing {
            // Tear down only after the ack is flushed: connection
            // threads are detached, and once shutdown starts the main
            // thread may exit the process before this thread runs again
            // — the client must already hold the response by then.
            initiate_shutdown(shared);
            return Ok(());
        }
    }
}

/// Routes one parsed frame: protocol errors and server-level commands
/// are answered inline (zero worker phases); session commands travel to
/// their shard's bounded queue wrapped in a [`RequestCtx`], and the
/// worker's phase timings come back with the response.
fn dispatch(
    shared: &Arc<Shared>,
    parsed: Result<(Command, Option<u64>), EngineError>,
) -> RequestOutcome {
    let (cmd, id) = match parsed {
        Ok(pair) => pair,
        Err(e) => {
            return RequestOutcome::inline(
                "invalid",
                None,
                None,
                Response::Error {
                    code: "protocol".to_owned(),
                    message: e.to_string(),
                },
            )
        }
    };
    let label = command_label(&cmd);
    let session = match &cmd {
        Command::Ping => {
            return RequestOutcome::inline(
                label,
                id,
                None,
                Response::Pong {
                    version: PROTOCOL_VERSION,
                },
            )
        }
        Command::Shutdown => {
            // No side effects here: the connection loop initiates the
            // teardown after this ack has been written and flushed.
            return RequestOutcome::inline(label, id, None, Response::ShuttingDown);
        }
        other => other.session().expect("session command").to_owned(),
    };
    let shutting_down = || Response::Error {
        code: "shutting_down".to_owned(),
        message: "server is shutting down".to_owned(),
    };
    if shared.shutting_down.load(Ordering::SeqCst) {
        return RequestOutcome::inline(label, id, Some(session), shutting_down());
    }
    let shard = &shared.shards[shard_of(&session, shared.shards.len())];
    let (reply_tx, reply_rx) = sync_channel(1);
    let job = ShardMsg::Job(Job {
        session: session.clone(),
        cmd,
        ctx: RequestCtx {
            id,
            command: label,
            enqueued: Instant::now(),
        },
        reply: reply_tx,
    });
    // Count the enqueue *before* try_send: the worker decrements on
    // dequeue, and incrementing afterwards would let a fast dequeue's
    // fetch_sub land first and wrap the gauge below zero.
    shard.depth.fetch_add(1, Ordering::SeqCst);
    match shard.sender.try_send(job) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            shard.depth.fetch_sub(1, Ordering::SeqCst);
            shared.overloaded_total.fetch_add(1, Ordering::SeqCst);
            return RequestOutcome::inline(
                label,
                id,
                Some(session),
                Response::Error {
                    code: CODE_OVERLOADED.to_owned(),
                    message: format!(
                        "shard queue full ({} pending); back off and retry",
                        shared.config.queue_cap
                    ),
                },
            );
        }
        Err(TrySendError::Disconnected(_)) => {
            shard.depth.fetch_sub(1, Ordering::SeqCst);
            return RequestOutcome::inline(label, id, Some(session), shutting_down());
        }
    }
    match reply_rx.recv() {
        Ok(reply) => RequestOutcome {
            label,
            id,
            session: Some(session),
            response: reply.response,
            queue_wait_ns: reply.queue_wait_ns,
            execute_ns: reply.execute_ns,
            wal_ns: reply.wal_ns,
        },
        Err(_) => RequestOutcome::inline(
            label,
            id,
            Some(session),
            Response::Error {
                code: "shutting_down".to_owned(),
                message: "server shut down before the command was processed".to_owned(),
            },
        ),
    }
}

/// FNV-1a over the session name. Checkpoint filenames (and shard
/// placement) must be a fixed function of the session string across
/// builds — std's `DefaultHasher` algorithm is explicitly unspecified,
/// and a toolchain upgrade changing it would make every existing
/// checkpoint silently unfindable on restart.
fn fnv1a(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in s.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Stable session→shard placement (stable across restarts too, though
/// only checkpoints — not shard placement — need to survive those).
fn shard_of(session: &str, n_shards: usize) -> usize {
    (fnv1a(session) % n_shards as u64) as usize
}

/// The filename stem shared by a session's checkpoint generations
/// (`{stem}.g{gen:08}.ckpt.json`) and WAL segments
/// (`{stem}.g{gen:08}.wal`): a sanitized name for readability plus a
/// stable hash for uniqueness (session names come off the wire and must
/// not traverse paths).
fn session_stem(session: &str) -> String {
    let safe: String = session
        .chars()
        .take(48)
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("{safe}-{:016x}", fnv1a(session))
}

// ---------------------------------------------------------------------
// Shard workers
// ---------------------------------------------------------------------

/// One hosted session plus the live per-query series the `series`
/// command answers from.
struct Hosted {
    session: RealTimeSession,
    /// Query name → index.
    by_name: HashMap<String, usize>,
    /// Per query index: source text (for restore-time backfill).
    sources: Vec<String>,
    /// Per query index: μ(q@t) for t = 0..now, accumulated from alerts.
    series: Vec<Vec<f64>>,
    /// Filename stem of this session's checkpoint generations and WAL
    /// segments (see [`session_stem`]).
    stem: String,
    /// Write-ahead appender; `None` when durability is
    /// [`Durability::None`], no checkpoint dir is configured, or the
    /// log failed (`wal_broken`).
    wal: Option<WalWriter>,
    /// An append failed mid-frame: the segment may end in garbage that
    /// would orphan anything written after it, so mutations are refused
    /// until a restart re-establishes a clean log.
    wal_broken: bool,
    /// Newest persisted checkpoint generation (0 = none yet).
    persisted_gen: u64,
    /// Session time of that generation.
    persisted_t: u32,
}

impl Hosted {
    fn fresh(session: RealTimeSession, stem: String) -> Self {
        Self {
            session,
            by_name: HashMap::new(),
            sources: Vec::new(),
            series: Vec::new(),
            stem,
            wal: None,
            wal_broken: false,
            persisted_gen: 0,
            persisted_t: 0,
        }
    }

    fn record_alerts(&mut self, alerts: &[Alert]) {
        for alert in alerts {
            let idx = alert.query.index();
            if let Some(series) = self.series.get_mut(idx) {
                series.push(alert.probability);
            }
        }
    }
}

fn shard_worker(
    shared: &Arc<Shared>,
    idx: usize,
    rx: Receiver<ShardMsg>,
    depth: &Arc<AtomicUsize>,
) {
    let mut sessions: HashMap<String, Hosted> = HashMap::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Shutdown => break,
            ShardMsg::Job(job) => {
                depth.fetch_sub(1, Ordering::SeqCst);
                let queue_wait_ns = elapsed_ns(job.ctx.enqueued);
                let span = req_span("shard_dequeue", job.ctx.id).with("shard", idx as u64);
                let _ = job.ctx.command; // carried for future routing/logging
                if let Some(delay) = shared.config.shard_delay {
                    std::thread::sleep(delay);
                }
                WAL_NS.set(0);
                let started = Instant::now();
                let response = handle_command(shared, &mut sessions, &job.session, &job.cmd);
                let wal_ns = WAL_NS.get();
                let execute_ns = elapsed_ns(started).saturating_sub(wal_ns);
                drop(span);
                // The client may have hung up; its problem, not ours.
                let _ = job.reply.send(WorkerReply {
                    response,
                    queue_wait_ns,
                    execute_ns,
                    wal_ns,
                });
            }
        }
    }
    // Graceful exit: flush a final checkpoint per hosted session.
    for (name, hosted) in &mut sessions {
        if let Err(e) = write_checkpoint(shared, hosted) {
            eprintln!("lahar-serve: final checkpoint for session '{name}' failed: {e}");
        }
    }
}

/// Takes a checkpoint and persists it as the next generation when a
/// checkpoint dir is set.
fn write_checkpoint(shared: &Shared, hosted: &mut Hosted) -> Result<Checkpoint, EngineError> {
    let ckpt = hosted.session.checkpoint()?;
    if let Some(dir) = &shared.config.checkpoint_dir {
        let Hosted {
            session,
            wal,
            persisted_gen,
            persisted_t,
            stem,
            ..
        } = hosted;
        persist_generation(
            dir,
            stem,
            &ckpt,
            wal,
            persisted_gen,
            persisted_t,
            session.stats(),
        )?;
    }
    Ok(ckpt)
}

/// Persists `ckpt` atomically as generation `persisted_gen + 1`
/// (tmp + fsync + rename), rotates the WAL onto the new generation's
/// segment, and garbage-collects files no longer needed for recovery.
/// The *previous* generation is kept as the fallback for a torn newest
/// one, together with every WAL segment from that fallback onward.
fn persist_generation(
    dir: &Path,
    stem: &str,
    ckpt: &Checkpoint,
    wal: &mut Option<WalWriter>,
    persisted_gen: &mut u64,
    persisted_t: &mut u32,
    stats: &EngineStats,
) -> Result<(), EngineError> {
    let gen = *persisted_gen + 1;
    checkpoint::write_generation(dir, stem, gen, ckpt)
        .map_err(|e| EngineError::DurabilityIo(format!("checkpoint generation {gen}: {e}")))?;
    *persisted_gen = gen;
    *persisted_t = ckpt.t();
    if let Some(w) = wal {
        w.rotate(gen)
            .map_err(|e| EngineError::DurabilityIo(format!("wal rotate to g{gen}: {e}")))?;
    }
    let keep_from = gen.saturating_sub(1);
    checkpoint::gc_generations(dir, stem, keep_from);
    wal::gc_segments(dir, stem, keep_from);
    stats.set_wal_segments(wal::list_segments(dir, stem).len() as u64);
    Ok(())
}

/// Persists the session's newest *auto-captured* checkpoint, if the
/// tick that just closed crossed a
/// [`crate::SessionConfig::checkpoint_interval`] boundary and captured
/// one that is newer than the last persisted generation.
fn persist_auto_checkpoint(shared: &Shared, hosted: &mut Hosted) -> Result<(), EngineError> {
    let Some(dir) = &shared.config.checkpoint_dir else {
        return Ok(());
    };
    let Hosted {
        session,
        wal,
        persisted_gen,
        persisted_t,
        stem,
        ..
    } = hosted;
    let Some(ckpt) = session.last_checkpoint() else {
        return Ok(());
    };
    if *persisted_gen > 0 && ckpt.t() <= *persisted_t {
        return Ok(());
    }
    persist_generation(
        dir,
        stem,
        ckpt,
        wal,
        persisted_gen,
        persisted_t,
        session.stats(),
    )
}

/// The session config hosted sessions actually run under: the template,
/// minus the endpoints the server itself owns.
fn hosted_config(shared: &Shared) -> SessionConfig {
    let mut config = shared.config.session_config;
    config.metrics_addr = None;
    config.serve_addr = None;
    config
}

/// Fetches or creates/restores the named session on this shard. Only
/// the `open` handler calls this; every other command requires the
/// session to already exist.
///
/// Restore is a three-step recovery, not a single file read: (1) scan
/// checkpoint generations newest-first, quarantining any that fail
/// their envelope checksum; (2) replay the uncovered write-ahead tail
/// on top of the restored snapshot; (3) if anything was replayed — or a
/// segment ended torn, or a generation was quarantined — persist a
/// fresh generation so the on-disk state converges again.
fn open_session<'m>(
    shared: &Shared,
    sessions: &'m mut HashMap<String, Hosted>,
    name: &str,
) -> Result<(&'m mut Hosted, bool), EngineError> {
    // Entry-style would borrow `sessions` for the whole call; a plain
    // contains_key keeps the construction path readable.
    if !sessions.contains_key(name) {
        let config = hosted_config(shared);
        let stem = session_stem(name);
        let mut was_restored = false;
        let hosted = match &shared.config.checkpoint_dir {
            None => Hosted::fresh(
                RealTimeSession::with_config(shared.template.clone(), config)?,
                stem,
            ),
            Some(dir) => {
                let loaded = checkpoint::load_newest(dir, &stem)?;
                let quarantined = loaded.as_ref().map_or(0, |l| l.quarantined.len());
                let mut hosted = match loaded {
                    None => Hosted::fresh(
                        RealTimeSession::with_config(shared.template.clone(), config)?,
                        stem,
                    ),
                    Some(l) => {
                        was_restored = true;
                        let session = RealTimeSession::restore_with_config(
                            shared.template.clone(),
                            &l.checkpoint,
                            config,
                        )?;
                        let mut by_name = HashMap::new();
                        let mut sources = Vec::new();
                        let mut series = Vec::new();
                        for (idx, q) in l.checkpoint.queries.iter().enumerate() {
                            by_name.insert(q.name.clone(), idx);
                            // Backfill the pre-restart prefix from the
                            // restored history; post-restart ticks
                            // extend it live.
                            series.push(crate::Lahar::prob_series(session.database(), &q.source)?);
                            sources.push(q.source.clone());
                        }
                        Hosted {
                            session,
                            by_name,
                            sources,
                            series,
                            stem,
                            wal: None,
                            wal_broken: false,
                            persisted_gen: l.gen,
                            persisted_t: l.checkpoint.t(),
                        }
                    }
                };
                if quarantined > 0 {
                    hosted
                        .session
                        .stats()
                        .record_checkpoint_quarantined(quarantined as u64);
                }
                let replay = replay_wal(dir, &mut hosted)?;
                if replay.ticks > 0 {
                    hosted.session.stats().record_wal_replayed(replay.ticks);
                    was_restored = true;
                }
                if config.durability != Durability::None {
                    let writer = WalWriter::open(
                        dir,
                        &hosted.stem,
                        hosted.persisted_gen,
                        replay.next_seq,
                        config.durability,
                    )
                    .map_err(|e| EngineError::DurabilityIo(format!("wal open: {e}")))?
                    .with_stats(hosted.session.stats().clone());
                    hosted.wal = Some(writer);
                }
                // Converge the on-disk state: a replayed tail, a torn
                // segment end, or a quarantined generation all mean the
                // newest good checkpoint lags (or trails garbage) — a
                // fresh generation resets the recovery baseline and
                // rotates the log off any torn segment, so new appends
                // never land after garbage.
                if replay.ticks > 0 || replay.applied > 0 || replay.torn || quarantined > 0 {
                    write_checkpoint(shared, &mut hosted)?;
                } else {
                    hosted
                        .session
                        .stats()
                        .set_wal_segments(wal::list_segments(dir, &hosted.stem).len() as u64);
                }
                hosted
            }
        };
        shared
            .registry
            .lock()
            .expect("registry lock")
            .push((name.to_owned(), hosted.session.stats().clone()));
        sessions.insert(name.to_owned(), hosted);
        return Ok((sessions.get_mut(name).expect("just inserted"), was_restored));
    }
    Ok((sessions.get_mut(name).expect("checked"), false))
}

/// What [`replay_wal`] recovered.
#[derive(Debug, Default)]
struct WalReplay {
    /// Ticks closed during replay.
    ticks: u64,
    /// Non-tick records applied (staging, registration).
    applied: u64,
    /// Whether any segment ended in a torn frame (discarded).
    torn: bool,
    /// One past the highest intact sequence number seen (the opened
    /// writer continues from here).
    next_seq: u64,
}

/// Replays every uncovered write-ahead record onto the restored
/// session, extending the hosted per-query series exactly as the live
/// commands did.
///
/// Coverage: `Staged`/`Register` records in segments *older* than the
/// restored generation are captured by the checkpoint itself and are
/// skipped. `Ticks` records are self-aligning against the session
/// clock — a record spanning `t0 .. t0 + n` replays only the suffix
/// past `now()`, which handles both fully-covered records and the one
/// straddling record an auto-checkpoint can split (the snapshot lands
/// mid-epoch, covering a prefix of the record's ticks).
fn replay_wal(dir: &Path, hosted: &mut Hosted) -> Result<WalReplay, EngineError> {
    let restored_gen = hosted.persisted_gen;
    let mut replay = WalReplay::default();
    for (gen, path) in wal::list_segments(dir, &hosted.stem) {
        let read = wal::read_segment(&path)
            .map_err(|e| EngineError::CheckpointCorrupt(format!("read wal {path:?}: {e}")))?;
        if read.torn {
            eprintln!("lahar-serve: discarding torn tail of wal segment {path:?}");
            replay.torn = true;
        }
        for record in read.records {
            replay.next_seq = replay.next_seq.max(record.seq + 1);
            match record.op {
                WalOp::Staged(ms) => {
                    if gen >= restored_gen {
                        let batch = resolve_wal_marginals(hosted.session.database(), &ms)?;
                        hosted.session.stage_batch(batch)?;
                        replay.applied += 1;
                    }
                }
                WalOp::Register { name, query } => {
                    if gen >= restored_gen && !hosted.by_name.contains_key(&name) {
                        register_query(hosted, &name, &query)?;
                        replay.applied += 1;
                    }
                }
                WalOp::Ticks(ticks) => {
                    let now = u64::from(hosted.session.now());
                    if record.t0 + ticks.len() as u64 <= now {
                        continue; // fully covered by the checkpoint
                    }
                    let skip = now.saturating_sub(record.t0) as usize;
                    let mut resolved = Vec::with_capacity(ticks.len() - skip);
                    for tick in &ticks[skip..] {
                        resolved.push(resolve_wal_marginals(hosted.session.database(), tick)?);
                    }
                    replay.ticks += resolved.len() as u64;
                    tick_epoch_with_recovery(hosted, resolved)?;
                }
            }
        }
    }
    Ok(replay)
}

/// Resolves logged index+probability marginals back into staging pairs.
fn resolve_wal_marginals(
    db: &Database,
    ms: &[WalMarginal],
) -> Result<Vec<(lahar_model::StreamId, Marginal)>, EngineError> {
    ms.iter()
        .map(|m| {
            let id = db.stream_id_at(m.stream).ok_or_else(|| {
                EngineError::CheckpointCorrupt(format!(
                    "wal references stream index {} beyond the database",
                    m.stream
                ))
            })?;
            let marginal = Marginal::new(db.streams()[m.stream].domain(), m.probs.clone())?;
            Ok((id, marginal))
        })
        .collect()
}

/// The staging pairs in the WAL's database-index + probability-vector
/// form, ready to log.
fn to_wal_marginals(pairs: &[(lahar_model::StreamId, Marginal)]) -> Vec<WalMarginal> {
    pairs
        .iter()
        .map(|(id, m)| WalMarginal {
            stream: id.index(),
            probs: m.probs().to_vec(),
        })
        .collect()
}

/// Appends one record to the session's write-ahead log (no-op without
/// one), honouring append-before-ack: an I/O failure returns the error
/// response the caller must send *instead of* the ack, and breaks the
/// log — the segment may now end in a partial frame, and appending past
/// it would silently orphan every later record at recovery time.
fn wal_append(hosted: &mut Hosted, t0: u64, op: WalOp) -> Result<(), Response> {
    let Some(w) = &mut hosted.wal else {
        return Ok(());
    };
    let started = Instant::now();
    let result = w.append(t0, op);
    WAL_NS.with(|ns| ns.set(ns.get().saturating_add(elapsed_ns(started))));
    match result {
        Ok(_) => Ok(()),
        Err(e) => {
            hosted.wal = None;
            hosted.wal_broken = true;
            hosted.session.stats().set_wal_broken(true);
            Err(engine_error(EngineError::DurabilityIo(format!(
                "wal append: {e}"
            ))))
        }
    }
}

/// Registers a query on the hosted session, backfilling the
/// pre-registration series prefix from the batch engine so `series`
/// always starts at t = 0. The prefix is computed *before*
/// `session.register`: if it failed afterwards, the engine would hold a
/// query the by_name/sources/series tables don't, misaligning every
/// later registration's index. Shared by the `register` command and
/// write-ahead replay.
fn register_query(hosted: &mut Hosted, name: &str, query: &str) -> Result<usize, EngineError> {
    let prefix = if hosted.session.now() > 0 {
        crate::Lahar::prob_series(hosted.session.database(), query)?
    } else {
        Vec::new()
    };
    let id = hosted.session.register(name, query)?;
    let idx = id.index();
    debug_assert_eq!(idx, hosted.series.len());
    hosted.by_name.insert(name.to_owned(), idx);
    hosted.sources.push(query.to_owned());
    hosted.series.push(prefix);
    Ok(idx)
}

/// Ticks the session, auto-recovering from recoverable faults (worker
/// panics, tick deadlines, injected failpoints) so one bad tick never
/// takes the server down. Recovery completes the interrupted tick
/// bit-identically, so the returned alerts are the real μ(q@t).
fn tick_with_recovery(hosted: &mut Hosted) -> Result<Vec<Alert>, EngineError> {
    let alerts = match hosted.session.tick() {
        Ok(alerts) => alerts,
        Err(e) if e.is_recoverable() => hosted.session.recover()?,
        Err(e) => return Err(e),
    };
    hosted.record_alerts(&alerts);
    Ok(alerts)
}

/// Closes a whole batch of ticks, one epoch at a time so that a
/// recoverable mid-epoch fault (worker panic, deadline) only ever
/// interrupts the epoch currently in flight: recovery re-completes it
/// bit-identically and the loop carries on with the rest of the batch.
/// Every closed tick's alerts are recorded, so the hosted per-query
/// series stays exact across faults.
fn tick_epoch_with_recovery(
    hosted: &mut Hosted,
    ticks: Vec<Vec<(lahar_model::StreamId, Marginal)>>,
) -> Result<Vec<Alert>, EngineError> {
    let _span = trace::span("tick_epoch").with("ticks", ticks.len() as u64);
    let mut all = Vec::with_capacity(ticks.len());
    let mut queue = ticks.into_iter();
    let mut remaining = queue.len();
    while remaining > 0 {
        let chunk_len = hosted.session.epoch_chunk_len(remaining);
        let chunk: Vec<_> = queue.by_ref().take(chunk_len).collect();
        remaining -= chunk_len;
        let alerts = match hosted.session.tick_epoch(chunk) {
            Ok(alerts) => alerts,
            Err(e) if e.is_recoverable() => hosted.session.recover()?,
            Err(e) => return Err(e),
        };
        hosted.record_alerts(&alerts);
        all.extend(alerts);
    }
    Ok(all)
}

fn wire_alerts(alerts: &[Alert]) -> Vec<WireAlert> {
    alerts
        .iter()
        .map(|a| WireAlert {
            query: a.query.index(),
            name: a.name.to_string(),
            t: a.t,
            probability: a.probability,
        })
        .collect()
}

/// Resolves a wire marginal to a `(StreamId, Marginal)` staging pair.
fn resolve_marginal(
    db: &Database,
    m: &WireMarginal,
) -> Result<(lahar_model::StreamId, Marginal), EngineError> {
    let interner = db.interner();
    let stream_type = interner
        .lookup(&m.stream_type)
        .ok_or_else(|| EngineError::Protocol(format!("unknown stream type '{}'", m.stream_type)))?;
    let key = StreamKey {
        stream_type,
        key: m
            .key
            .iter()
            .map(|k| Value::Str(interner.intern(k)))
            .collect(),
    };
    let id = db.stream_id(&key).ok_or_else(|| {
        EngineError::Protocol(format!("unknown stream {}", key.display(interner)))
    })?;
    let marginal = Marginal::new(db.streams()[id.index()].domain(), m.probs.clone())?;
    Ok((id, marginal))
}

fn engine_error(e: EngineError) -> Response {
    let code = match &e {
        EngineError::Protocol(_) => "bad_request",
        EngineError::SessionPoisoned => "poisoned",
        EngineError::DurabilityIo(_) => "durability",
        _ => "engine",
    };
    Response::Error {
        code: code.to_owned(),
        message: e.to_string(),
    }
}

fn handle_command(
    shared: &Shared,
    sessions: &mut HashMap<String, Hosted>,
    session_name: &str,
    cmd: &Command,
) -> Response {
    // Session ops can panic (they also run user-ish query compilation);
    // a panic must poison one command, not the shard thread.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        handle_command_inner(shared, sessions, session_name, cmd)
    }));
    match result {
        Ok(response) => response,
        Err(payload) => Response::Error {
            code: "engine".to_owned(),
            message: format!(
                "command handler panicked: {}",
                crate::error::panic_message(payload)
            ),
        },
    }
}

fn handle_command_inner(
    shared: &Shared,
    sessions: &mut HashMap<String, Hosted>,
    session_name: &str,
    cmd: &Command,
) -> Response {
    // Only `open` creates (or restores) a session; every other command
    // addressed to an unknown name is rejected, so mistyped or hostile
    // wire-supplied names cannot accumulate server state.
    let (hosted, restored) = if matches!(cmd, Command::Open { .. }) {
        if !sessions.contains_key(session_name)
            && shared.registry.lock().expect("registry lock").len() >= shared.config.max_sessions
        {
            return Response::Error {
                code: CODE_SESSION_LIMIT.to_owned(),
                message: format!(
                    "server already hosts its maximum of {} sessions",
                    shared.config.max_sessions
                ),
            };
        }
        match open_session(shared, sessions, session_name) {
            Ok(pair) => pair,
            Err(e) => return engine_error(e),
        }
    } else {
        match sessions.get_mut(session_name) {
            Some(hosted) => (hosted, false),
            None => {
                return Response::Error {
                    code: CODE_UNKNOWN_SESSION.to_owned(),
                    message: format!(
                        "session '{session_name}' is not open on this server; send open first"
                    ),
                }
            }
        }
    };
    // A session poisoned by an earlier fault heals before the next
    // command; the recovered tick's alerts still extend the series.
    if hosted.session.is_poisoned() {
        match hosted.session.recover() {
            Ok(alerts) => hosted.record_alerts(&alerts),
            Err(e) => return engine_error(e),
        }
    }
    // Once the log has failed, refuse mutations *before* applying them:
    // acking (or even just applying) unlogged mutations would silently
    // widen the gap between memory and disk.
    if hosted.wal_broken
        && matches!(
            cmd,
            Command::Register { .. }
                | Command::Stage { .. }
                | Command::StageTicks { .. }
                | Command::Tick { .. }
        )
    {
        return engine_error(EngineError::DurabilityIo(
            "an earlier write-ahead append failed; restart the server to recover".to_owned(),
        ));
    }
    match cmd {
        Command::Open { .. } => Response::Opened {
            t: hosted.session.now(),
            restored,
        },
        Command::Register { name, query, .. } => {
            if hosted.by_name.contains_key(name) {
                return Response::Error {
                    code: "bad_request".to_owned(),
                    message: format!("query '{name}' is already registered"),
                };
            }
            let idx = match register_query(hosted, name, query) {
                Ok(idx) => idx,
                Err(e) => return engine_error(e),
            };
            let op = WalOp::Register {
                name: name.clone(),
                query: query.clone(),
            };
            if let Err(resp) = wal_append(hosted, u64::from(hosted.session.now()), op) {
                return resp;
            }
            Response::Registered { query: idx }
        }
        Command::Stage {
            marginals, tick, ..
        } => {
            let mut staged = Vec::with_capacity(marginals.len());
            for m in marginals {
                match resolve_marginal(hosted.session.database(), m) {
                    Ok(pair) => staged.push(pair),
                    Err(e) => return engine_error(e),
                }
            }
            let logged = if hosted.wal.is_some() {
                to_wal_marginals(&staged)
            } else {
                Vec::new()
            };
            let n = staged.len();
            let t0 = u64::from(hosted.session.now());
            if let Err(e) = hosted.session.stage_batch(staged) {
                return engine_error(e);
            }
            if !tick {
                if let Err(resp) = wal_append(hosted, t0, WalOp::Staged(logged)) {
                    return resp;
                }
                return Response::Staged { staged: n };
            }
            match tick_with_recovery(hosted) {
                Ok(alerts) => {
                    if let Err(resp) = wal_append(hosted, t0, WalOp::Ticks(vec![logged])) {
                        return resp;
                    }
                    if let Err(e) = persist_auto_checkpoint(shared, hosted) {
                        return engine_error(e);
                    }
                    Response::Ticked {
                        t: hosted.session.now(),
                        alerts: wire_alerts(&alerts),
                    }
                }
                Err(e) => engine_error(e),
            }
        }
        Command::StageTicks { ticks, .. } => {
            let mut resolved = Vec::with_capacity(ticks.len());
            for tick in ticks {
                let mut batch = Vec::with_capacity(tick.len());
                for m in tick {
                    match resolve_marginal(hosted.session.database(), m) {
                        Ok(pair) => batch.push(pair),
                        Err(e) => return engine_error(e),
                    }
                }
                resolved.push(batch);
            }
            if resolved.is_empty() {
                return Response::Error {
                    code: "bad_request".to_owned(),
                    message: "'ticks' must close at least one tick".to_owned(),
                };
            }
            let logged: Vec<Vec<WalMarginal>> = if hosted.wal.is_some() {
                resolved
                    .iter()
                    .map(|batch| to_wal_marginals(batch))
                    .collect()
            } else {
                Vec::new()
            };
            let t0 = u64::from(hosted.session.now());
            match tick_epoch_with_recovery(hosted, resolved) {
                Ok(alerts) => {
                    if let Err(resp) = wal_append(hosted, t0, WalOp::Ticks(logged)) {
                        return resp;
                    }
                    if let Err(e) = persist_auto_checkpoint(shared, hosted) {
                        return engine_error(e);
                    }
                    Response::Ticked {
                        t: hosted.session.now(),
                        alerts: wire_alerts(&alerts),
                    }
                }
                Err(e) => engine_error(e),
            }
        }
        Command::Tick { .. } => {
            let t0 = u64::from(hosted.session.now());
            match tick_with_recovery(hosted) {
                Ok(alerts) => {
                    if let Err(resp) = wal_append(hosted, t0, WalOp::Ticks(vec![Vec::new()])) {
                        return resp;
                    }
                    if let Err(e) = persist_auto_checkpoint(shared, hosted) {
                        return engine_error(e);
                    }
                    Response::Ticked {
                        t: hosted.session.now(),
                        alerts: wire_alerts(&alerts),
                    }
                }
                Err(e) => engine_error(e),
            }
        }
        Command::Series { query, .. } => match hosted.by_name.get(query) {
            None => Response::Error {
                code: "unknown_query".to_owned(),
                message: format!("no query named '{query}' in session '{session_name}'"),
            },
            Some(&idx) => Response::Series {
                query: query.clone(),
                series: hosted.series[idx].clone(),
            },
        },
        Command::Checkpoint { .. } => match write_checkpoint(shared, hosted) {
            Ok(ckpt) => Response::Checkpointed { t: ckpt.t() },
            Err(e) => engine_error(e),
        },
        Command::Ping | Command::Shutdown => Response::Error {
            code: "bad_request".to_owned(),
            message: "server-level command routed to a shard".to_owned(),
        },
    }
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

/// Renders every hosted session's snapshot (label `session="..."`) plus
/// the server's own queue/backpressure gauges.
fn render_metrics(shared: &Shared) -> String {
    let snaps: Vec<(String, StatsSnapshot)> = {
        let registry = shared.registry.lock().expect("registry lock");
        registry
            .iter()
            .map(|(name, stats)| (name.clone(), stats.snapshot()))
            .collect()
    };
    let refs: Vec<(&str, &StatsSnapshot)> = snaps
        .iter()
        .map(|(name, snap)| (name.as_str(), snap))
        .collect();
    let mut out = to_prometheus_sessions(&refs);
    writeln!(
        out,
        "# HELP lahar_server_queue_depth Commands queued per shard.\n\
         # TYPE lahar_server_queue_depth gauge"
    )
    .unwrap();
    for (i, shard) in shared.shards.iter().enumerate() {
        writeln!(
            out,
            "lahar_server_queue_depth{{shard=\"{i}\"}} {}",
            shard.depth.load(Ordering::SeqCst)
        )
        .unwrap();
    }
    writeln!(
        out,
        "# HELP lahar_server_queue_cap Bound of each shard's command queue.\n\
         # TYPE lahar_server_queue_cap gauge\n\
         lahar_server_queue_cap {}",
        shared.config.queue_cap
    )
    .unwrap();
    writeln!(
        out,
        "# HELP lahar_server_overloaded_total Commands rejected with an overloaded response.\n\
         # TYPE lahar_server_overloaded_total counter\n\
         lahar_server_overloaded_total {}",
        shared.overloaded_total.load(Ordering::SeqCst)
    )
    .unwrap();
    writeln!(
        out,
        "# HELP lahar_server_sessions Sessions hosted across all shards.\n\
         # TYPE lahar_server_sessions gauge\n\
         lahar_server_sessions {}",
        shared.registry.lock().expect("registry lock").len()
    )
    .unwrap();
    out.push_str(&shared.requests.to_prometheus());
    out
}
