//! `lahar serve`: a sharded multi-session network service.
//!
//! [`LaharServer`] binds a [`std::net::TcpListener`] and hosts any
//! number of named [`crate::RealTimeSession`]s over the newline-delimited
//! JSON protocol of [`crate::protocol`] (spec: `PROTOCOL.md`). The
//! threading model is deliberately boring, matching the zero-dependency
//! style of [`crate::expose::MetricsServer`]:
//!
//! * one **acceptor** thread (`lahar-serve`) accepts connections and
//!   spawns a blocking reader thread per client;
//! * `n_shards` **shard worker** threads (`lahar-shard-N`) each own the
//!   sessions that hash to them — a session lives on exactly one shard,
//!   so session state is single-threaded and needs no locking;
//! * connection threads route each command to its session's shard over a
//!   **bounded** [`std::sync::mpsc::sync_channel`]. When a shard's queue
//!   is full the command is rejected *immediately* with an `overloaded`
//!   response — the server never buffers without bound, and the client
//!   decides whether to back off and retry.
//!
//! Integration with the rest of the engine:
//!
//! * staging uses [`crate::RealTimeSession::stage_batch`], so one wire
//!   frame feeds the kernel fast path with a whole tick's marginals;
//! * every hosted session's stats merge into one `/metrics` exposition
//!   (label `session="<name>"`) together with the server's own queue
//!   gauges, served by a [`MetricsServer`] with a custom renderer;
//! * recoverable tick faults (worker panics, tick timeouts, injected
//!   failpoints) trigger [`crate::RealTimeSession::recover`] instead of
//!   killing the server — the interrupted tick completes bit-identically
//!   and its alerts still extend the query series;
//! * graceful shutdown writes a final checkpoint per session into
//!   [`ServerConfig::checkpoint_dir`], and [`Command::Open`] restores
//!   from it on restart, so a serve → shutdown → serve cycle continues
//!   the same series bit-identically;
//! * durability: with `--durability batch|always`
//!   ([`crate::SessionConfig::durability`]), every acknowledged
//!   mutation is appended to a per-session write-ahead log
//!   ([`crate::wal`]) *before* the ack leaves the server, and
//!   checkpoints are persisted as atomic checksummed **generations**
//!   (tmp file + fsync + rename, CRC-carrying envelope). On restart,
//!   `open` restores the newest generation that verifies — torn or
//!   corrupt ones are quarantined as `*.corrupt` and the scan falls
//!   back to the previous generation — and replays the uncovered log
//!   tail on top, so even `kill -9` mid-write loses no acknowledged
//!   tick.

use crate::checkpoint::{self, Checkpoint};
use crate::error::EngineError;
use crate::expose::{to_prometheus_sessions, MetricsServer};
use crate::protocol::{Command, Response, WireAlert, WireCode, WireMarginal, PROTOCOL_VERSION};
use crate::session::{Alert, RealTimeSession, SessionConfig};
use crate::stats::{EngineStats, Histogram, StatsSnapshot};
use crate::trace;
use crate::wal::{self, Durability, WalMarginal, WalOp, WalWriter};
use lahar_model::{Database, Marginal, StreamKey, Value};
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of [`LaharServer`].
///
/// Construct it with [`ServerConfig::builder`], which validates at
/// build time (address collisions, zero queue/session caps, an
/// `evict_after` without a checkpoint dir). **Direct field construction
/// and field-by-field mutation are deprecated**: the struct stays
/// `#[non_exhaustive]` with public fields only so existing deployments
/// keep compiling, but new knobs are added builder-first and a mutated
/// config is only re-validated when [`LaharServer::start`] runs.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Address to listen on (port 0 picks a free port; see
    /// [`LaharServer::addr`] for the resolved one).
    pub addr: SocketAddr,
    /// Metrics endpoint for the merged per-session exposition (`None`
    /// disables it). Must differ from `addr`.
    pub metrics_addr: Option<SocketAddr>,
    /// Number of shard worker threads (0 = one per available core).
    pub n_shards: usize,
    /// Bound of each shard's command queue; a full queue answers
    /// `overloaded` instead of buffering.
    pub queue_cap: usize,
    /// Maximum number of hosted sessions across all shards; an `open`
    /// beyond this answers a `session_limit` error. Sessions are created
    /// only by `open` (other commands answer `unknown_session`), so
    /// arbitrary wire-supplied names cannot grow server state without
    /// bound. Evicted sessions still count — eviction bounds memory,
    /// not the namespace.
    pub max_sessions: usize,
    /// Where shutdown checkpoints are written and restarts restore from
    /// (`None` disables persistence).
    pub checkpoint_dir: Option<PathBuf>,
    /// Template configuration for hosted sessions. `metrics_addr` and
    /// `serve_addr` are ignored here — the server owns both endpoints.
    pub session_config: SessionConfig,
    /// Artificial per-command processing delay in every shard worker — a
    /// test/ops knob for driving the backpressure path deterministically.
    pub shard_delay: Option<Duration>,
    /// Threshold of the structured slow-request log: a request whose
    /// phase total (`queue_wait + execute + wal_append + respond`)
    /// reaches this many milliseconds is logged as one JSONL entry.
    /// `None` disables the log.
    pub slow_request_ms: Option<u64>,
    /// Where slow-request entries are appended; `None` writes them to
    /// stderr. Only consulted when `slow_request_ms` is set.
    pub slow_log: Option<PathBuf>,
    /// Cold-session tiering: a hosted session idle for this long is
    /// checkpointed to [`ServerConfig::checkpoint_dir`] and dropped
    /// from memory, then restored bit-identically (checkpoint +
    /// write-ahead tail) by the next command that touches it. `None`
    /// keeps every opened session resident forever. Requires a
    /// checkpoint dir.
    pub evict_after: Option<Duration>,
}

impl ServerConfig {
    /// A builder that validates at build time — the only supported way
    /// to construct a config. See [`ServerConfigBuilder`].
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder::default()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".parse().expect("valid literal"),
            metrics_addr: None,
            n_shards: 0,
            queue_cap: 64,
            max_sessions: 1024,
            checkpoint_dir: None,
            session_config: SessionConfig::default(),
            shard_delay: None,
            slow_request_ms: None,
            slow_log: None,
            evict_after: None,
        }
    }
}

/// Builder for [`ServerConfig`], mirroring
/// [`crate::SessionConfigBuilder`]: every knob is optional, defaults
/// come from [`ServerConfig::default`], and invalid combinations are
/// rejected by [`ServerConfigBuilder::build`] with
/// [`EngineError::InvalidConfig`] instead of surfacing as runtime
/// surprises.
///
/// ```ignore
/// let config = ServerConfig::builder()
///     .addr("127.0.0.1:0".parse().unwrap())
///     .n_shards(2)
///     .evict_after(Duration::from_secs(300))
///     .checkpoint_dir("/var/lib/lahar")
///     .build()?;
/// ```
#[derive(Debug, Clone, Default)]
pub struct ServerConfigBuilder {
    addr: Option<SocketAddr>,
    metrics_addr: Option<SocketAddr>,
    n_shards: Option<usize>,
    queue_cap: Option<usize>,
    max_sessions: Option<usize>,
    checkpoint_dir: Option<PathBuf>,
    session_config: Option<SessionConfig>,
    shard_delay: Option<Duration>,
    slow_request_ms: Option<u64>,
    slow_log: Option<PathBuf>,
    evict_after: Option<Duration>,
}

impl ServerConfigBuilder {
    /// Sets the serve address (port 0 picks a free port).
    #[must_use]
    pub fn addr(mut self, addr: SocketAddr) -> Self {
        self.addr = Some(addr);
        self
    }

    /// Enables the metrics endpoint on `addr` (must differ from the
    /// serve address).
    #[must_use]
    pub fn metrics_addr(mut self, addr: SocketAddr) -> Self {
        self.metrics_addr = Some(addr);
        self
    }

    /// Sets the shard worker count (0 = one per available core).
    #[must_use]
    pub fn n_shards(mut self, n: usize) -> Self {
        self.n_shards = Some(n);
        self
    }

    /// Sets the bound of each shard's command queue (must be non-zero).
    #[must_use]
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = Some(cap);
        self
    }

    /// Sets the hosted-session cap (must be non-zero).
    #[must_use]
    pub fn max_sessions(mut self, cap: usize) -> Self {
        self.max_sessions = Some(cap);
        self
    }

    /// Sets where checkpoints are written and restarts restore from.
    #[must_use]
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Sets the template configuration for hosted sessions.
    #[must_use]
    pub fn session_config(mut self, config: SessionConfig) -> Self {
        self.session_config = Some(config);
        self
    }

    /// Injects an artificial per-command delay in every shard worker (a
    /// test/ops knob for driving backpressure deterministically).
    #[must_use]
    pub fn shard_delay(mut self, delay: Duration) -> Self {
        self.shard_delay = Some(delay);
        self
    }

    /// Enables the slow-request log at the given threshold (ms).
    #[must_use]
    pub fn slow_request_ms(mut self, ms: u64) -> Self {
        self.slow_request_ms = Some(ms);
        self
    }

    /// Appends slow-request entries to `path` instead of stderr.
    #[must_use]
    pub fn slow_log(mut self, path: impl Into<PathBuf>) -> Self {
        self.slow_log = Some(path.into());
        self
    }

    /// Evicts sessions idle for `idle` to checkpoint storage, restoring
    /// them lazily (and bit-identically) on the next touching command.
    /// Requires [`ServerConfigBuilder::checkpoint_dir`]; must be
    /// non-zero.
    #[must_use]
    pub fn evict_after(mut self, idle: Duration) -> Self {
        self.evict_after = Some(idle);
        self
    }

    /// Validates the combination and produces the config.
    ///
    /// Rejected: a zero `queue_cap` or `max_sessions`, a zero
    /// `evict_after`, a `metrics_addr` equal to the serve address (when
    /// neither is port 0), and `evict_after` without a
    /// `checkpoint_dir` (there is nowhere to evict to).
    pub fn build(self) -> Result<ServerConfig, EngineError> {
        let defaults = ServerConfig::default();
        if self.queue_cap == Some(0) {
            return Err(EngineError::InvalidConfig(
                "queue_cap must be non-zero (a zero-capacity queue rejects everything)".to_owned(),
            ));
        }
        if self.max_sessions == Some(0) {
            return Err(EngineError::InvalidConfig(
                "max_sessions must be non-zero (a zero cap rejects every open)".to_owned(),
            ));
        }
        if self.evict_after == Some(Duration::ZERO) {
            return Err(EngineError::InvalidConfig(
                "evict_after must be non-zero (zero would evict a session mid-conversation)"
                    .to_owned(),
            ));
        }
        if self.evict_after.is_some() && self.checkpoint_dir.is_none() {
            return Err(EngineError::InvalidConfig(
                "evict_after requires a checkpoint dir (evicted sessions live there)".to_owned(),
            ));
        }
        let addr = self.addr.unwrap_or(defaults.addr);
        if let Some(maddr) = self.metrics_addr {
            if maddr == addr && addr.port() != 0 {
                return Err(EngineError::InvalidConfig(
                    "metrics_addr collides with the serve addr".to_owned(),
                ));
            }
        }
        Ok(ServerConfig {
            addr,
            metrics_addr: self.metrics_addr,
            n_shards: self.n_shards.unwrap_or(defaults.n_shards),
            queue_cap: self.queue_cap.unwrap_or(defaults.queue_cap),
            max_sessions: self.max_sessions.unwrap_or(defaults.max_sessions),
            checkpoint_dir: self.checkpoint_dir,
            session_config: self.session_config.unwrap_or(defaults.session_config),
            shard_delay: self.shard_delay,
            slow_request_ms: self.slow_request_ms,
            slow_log: self.slow_log,
            evict_after: self.evict_after,
        })
    }
}

/// Request-scoped context carried with a job from the connection
/// reactor to its shard worker.
struct RequestCtx {
    /// Client-supplied correlation id, echoed in the response and
    /// attached (as the `req` span argument) on both threads.
    id: Option<u64>,
    /// Wire-command label (see [`COMMAND_LABELS`]).
    command: &'static str,
    /// When the reactor enqueued the job; the worker's dequeue time
    /// minus this is the `queue_wait` phase.
    enqueued: Instant,
}

/// A worker's answer: the response plus the phases measured on the
/// worker thread.
pub(crate) struct WorkerReply {
    pub(crate) response: Response,
    pub(crate) queue_wait_ns: u64,
    pub(crate) execute_ns: u64,
    pub(crate) wal_ns: u64,
}

/// Where a worker's answer goes: back to the reactor's completion
/// queue, addressed by (connection, response slot). The reactor matches
/// it to the connection's ordered output queue, so responses flush in
/// request order even when shards finish out of order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReplyTo {
    pub(crate) conn_id: u64,
    pub(crate) seq: u64,
}

/// A finished worker job travelling back to the reactor.
pub(crate) struct Completion {
    pub(crate) to: ReplyTo,
    pub(crate) reply: WorkerReply,
}

/// One command in flight to a shard worker.
struct Job {
    session: String,
    cmd: Command,
    ctx: RequestCtx,
    reply: ReplyTo,
}

enum ShardMsg {
    Job(Job),
    /// Checkpoint every hosted session and exit.
    Shutdown,
}

struct Shard {
    sender: SyncSender<ShardMsg>,
    /// Commands currently queued (approximate; the `/metrics` gauge).
    depth: Arc<AtomicUsize>,
}

/// One hosted session's registry entry: the stats handle that feeds the
/// merged `/metrics` exposition, plus whether the session is currently
/// evicted to checkpoint storage (resident memory freed; the next
/// touching command restores it).
pub(crate) struct SessionEntry {
    pub(crate) name: String,
    pub(crate) stats: EngineStats,
    pub(crate) evicted: bool,
}

pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    /// The *resolved* serve address (never port 0).
    #[allow(dead_code)] // kept for diagnostics; the reactor owns the listener
    pub(crate) addr: SocketAddr,
    template: Database,
    shards: Vec<Shard>,
    pub(crate) shutting_down: AtomicBool,
    /// Commands rejected with `overloaded`.
    overloaded_total: AtomicU64,
    /// One entry per session ever opened (evicted ones included — the
    /// session *namespace* is bounded by `max_sessions`, resident
    /// memory by eviction).
    registry: Mutex<Vec<SessionEntry>>,
    /// Sessions evicted to checkpoint storage since start.
    evictions_total: AtomicU64,
    /// Evicted sessions restored by a touching command since start.
    restores_total: AtomicU64,
    /// Per-command phase histograms and outcome counters.
    pub(crate) requests: RequestStats,
    /// The structured slow-request log, when enabled.
    pub(crate) slow_log: Option<SlowLog>,
    /// Finished worker jobs waiting for the reactor to flush them.
    pub(crate) completions: Mutex<Vec<Completion>>,
    /// Write end of the reactor's wake pipe (a loopback socket pair):
    /// one byte here pulls the reactor out of `poll` so it notices new
    /// completions or the shutdown flag. Non-blocking; a full buffer
    /// means a wake is already pending, so the failed write is fine.
    wake: TcpStream,
}

impl Shared {
    /// Wakes the reactor out of `poll`. Called by shard workers after
    /// pushing a completion and by [`initiate_shutdown`].
    pub(crate) fn wake_reactor(&self) {
        // &TcpStream implements Write; WouldBlock means wakes are
        // already pending and the reactor will drain them.
        let _ = (&self.wake).write(&[1]);
    }
}

/// The serve-loop handle. Dropping it (or calling
/// [`LaharServer::shutdown`]) stops the service gracefully,
/// checkpointing every hosted session first.
pub struct LaharServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Option<MetricsServer>,
}

/// Builds the reactor's wake channel: a connected loopback TCP pair
/// (bind an ephemeral listener, connect, accept, drop the listener).
/// std offers no `pipe(2)`, and a socket pair polls identically. Both
/// ends are non-blocking: the writer never stalls a worker, the reader
/// drains whatever is buffered.
fn wake_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let writer = TcpStream::connect(listener.local_addr()?)?;
    let (reader, _) = listener.accept()?;
    writer.set_nonblocking(true)?;
    reader.set_nonblocking(true)?;
    Ok((writer, reader))
}

impl LaharServer {
    /// Binds the configured address and starts serving sessions created
    /// from (schema-only clones of) `template`.
    pub fn start(config: ServerConfig, template: Database) -> Result<Self, EngineError> {
        if config.queue_cap == 0 {
            return Err(EngineError::InvalidConfig(
                "queue_cap must be non-zero (a zero-capacity queue rejects everything)".to_owned(),
            ));
        }
        if config.max_sessions == 0 {
            return Err(EngineError::InvalidConfig(
                "max_sessions must be non-zero (a zero cap rejects every open)".to_owned(),
            ));
        }
        // Two port-0 addresses never collide — the OS picks distinct
        // free ports for each bind.
        if config.metrics_addr == Some(config.addr) && config.addr.port() != 0 {
            return Err(EngineError::InvalidConfig(
                "metrics_addr collides with the serve addr".to_owned(),
            ));
        }
        if config.session_config.durability != Durability::None && config.checkpoint_dir.is_none() {
            return Err(EngineError::InvalidConfig(
                "durability requires a checkpoint dir (the write-ahead log lives there)".to_owned(),
            ));
        }
        if config.evict_after == Some(Duration::ZERO) {
            return Err(EngineError::InvalidConfig(
                "evict_after must be non-zero (zero would evict a session mid-conversation)"
                    .to_owned(),
            ));
        }
        if config.evict_after.is_some() && config.checkpoint_dir.is_none() {
            return Err(EngineError::InvalidConfig(
                "evict_after requires a checkpoint dir (evicted sessions live there)".to_owned(),
            ));
        }
        for stream in template.streams() {
            if !stream.is_empty() {
                return Err(EngineError::InvalidConfig(
                    "the server template database must be schema-only (no recorded marginals)"
                        .to_owned(),
                ));
            }
        }
        // The crash harness arms torn-write faults in a *spawned*
        // server through the environment; a plain serve never has the
        // variable set.
        #[cfg(feature = "failpoints")]
        crate::failpoint::configure_from_env();
        let n_shards = if config.n_shards == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.n_shards
        };
        let listener = TcpListener::bind(config.addr)
            .map_err(|e| EngineError::ServerUnavailable(format!("bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| EngineError::ServerUnavailable(format!("local_addr: {e}")))?;

        let mut shards = Vec::with_capacity(n_shards);
        let mut receivers = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let (tx, rx) = sync_channel(config.queue_cap);
            shards.push(Shard {
                sender: tx,
                depth: Arc::new(AtomicUsize::new(0)),
            });
            receivers.push(rx);
        }
        let slow_log = match config.slow_request_ms {
            None => None,
            Some(ms) => Some(
                SlowLog::open(Duration::from_millis(ms), config.slow_log.as_deref())
                    .map_err(|e| EngineError::InvalidConfig(format!("slow log: {e}")))?,
            ),
        };
        let (wake_writer, wake_reader) = wake_pair()
            .map_err(|e| EngineError::ServerUnavailable(format!("reactor wake pipe: {e}")))?;
        let shared = Arc::new(Shared {
            config,
            addr,
            template,
            shards,
            shutting_down: AtomicBool::new(false),
            overloaded_total: AtomicU64::new(0),
            registry: Mutex::new(Vec::new()),
            evictions_total: AtomicU64::new(0),
            restores_total: AtomicU64::new(0),
            requests: RequestStats::new(),
            slow_log,
            completions: Mutex::new(Vec::new()),
            wake: wake_writer,
        });

        let mut workers = Vec::with_capacity(n_shards);
        for (i, rx) in receivers.into_iter().enumerate() {
            let shared = shared.clone();
            let depth = shared.shards[i].depth.clone();
            let handle = std::thread::Builder::new()
                .name(format!("lahar-shard-{i}"))
                .spawn(move || shard_worker(&shared, i, rx, &depth))
                .map_err(|e| EngineError::ServerUnavailable(format!("spawn shard {i}: {e}")))?;
            workers.push(handle);
        }

        let metrics = match shared.config.metrics_addr {
            None => None,
            Some(maddr) => {
                let metrics_shared = shared.clone();
                let health_shared = shared.clone();
                Some(MetricsServer::start_with_renderers(
                    maddr,
                    Arc::new(move || render_metrics(&metrics_shared)),
                    Arc::new(move || {
                        let registry = health_shared.registry.lock().expect("registry lock");
                        crate::expose::health_report(
                            registry.iter().map(|e| (e.name.as_str(), &e.stats)),
                        )
                    }),
                )?)
            }
        };

        // One readiness-driven reactor owns the listener and every
        // client socket: thousands of idle connections cost file
        // descriptors, not threads. The name keeps the `lahar-conn`
        // prefix so request traces still attribute `serve_request`
        // spans to the connection layer.
        let reactor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("lahar-conn-reactor".to_owned())
                .spawn(move || crate::reactor::run(listener, wake_reader, &shared))
                .map_err(|e| EngineError::ServerUnavailable(format!("spawn reactor: {e}")))?
        };

        Ok(Self {
            shared,
            addr,
            reactor: Some(reactor),
            workers,
            metrics,
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The resolved metrics address, when exposition is enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(MetricsServer::addr)
    }

    /// Blocks until the serve loop exits — i.e. until a client sends
    /// `shutdown` (or another thread calls [`LaharServer::shutdown`] via
    /// a clone of the handle's internals). Joins every thread; hosted
    /// sessions have been checkpointed when this returns.
    pub fn join(mut self) -> Result<(), EngineError> {
        self.join_inner();
        Ok(())
    }

    /// Initiates graceful shutdown (idempotent) and waits for it to
    /// finish: every shard checkpoints its sessions, all threads join.
    pub fn shutdown(mut self) -> Result<(), EngineError> {
        initiate_shutdown(&self.shared);
        self.join_inner();
        Ok(())
    }

    fn join_inner(&mut self) {
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Drop the metrics endpoint last so `/metrics` stays scrapable
        // while sessions flush their final checkpoints.
        self.metrics = None;
    }
}

impl Drop for LaharServer {
    fn drop(&mut self) {
        initiate_shutdown(&self.shared);
        self.join_inner();
    }
}

/// Starts graceful shutdown: flags the service down, enqueues the
/// checkpoint-and-exit sentinel on every shard, and wakes the reactor
/// so it stops accepting and drains in-flight responses.
pub(crate) fn initiate_shutdown(shared: &Shared) {
    if shared.shutting_down.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    for shard in &shared.shards {
        // Blocking send: the sentinel must arrive even when the queue is
        // momentarily full. Workers drain queued commands first, so
        // accepted work is never silently dropped.
        let _ = shard.sender.send(ShardMsg::Shutdown);
    }
    shared.wake_reactor();
}

// ---------------------------------------------------------------------
// Request observability
// ---------------------------------------------------------------------

/// Wire-command labels in exposition order; `invalid` is the row for
/// frames that never parsed into a command.
const COMMAND_LABELS: [&str; 10] = [
    "ping",
    "open",
    "register",
    "stage",
    "stage_ticks",
    "tick",
    "series",
    "checkpoint",
    "shutdown",
    "invalid",
];

/// Request phases recorded per command (exposition label `phase`).
const PHASE_LABELS: [&str; 4] = ["queue_wait", "execute", "wal_append", "respond"];

/// Cap on distinct outcome codes tracked per command; later novel codes
/// fold into `other` (mirrors the fallback-reason cardinality bound).
const MAX_CODES_PER_COMMAND: usize = 12;

/// Slow-log rate bound: entries past this per-second cap are counted
/// and surfaced as `"suppressed"` on the next logged entry instead of
/// being written — a latency storm must not make the log the next
/// bottleneck.
const SLOW_LOG_MAX_PER_SEC: u32 = 100;

pub(crate) fn command_label(cmd: &Command) -> &'static str {
    match cmd {
        Command::Ping => "ping",
        Command::Open { .. } => "open",
        Command::Register { .. } => "register",
        Command::Stage { .. } => "stage",
        Command::StageTicks { .. } => "stage_ticks",
        Command::Tick { .. } => "tick",
        Command::Series { .. } => "series",
        Command::Checkpoint { .. } => "checkpoint",
        Command::Shutdown => "shutdown",
    }
}

fn label_index(label: &str) -> usize {
    COMMAND_LABELS
        .iter()
        .position(|l| *l == label)
        .expect("known command label")
}

pub(crate) fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A span carrying the request id as its `req` argument when present.
pub(crate) fn req_span(name: &'static str, id: Option<u64>) -> trace::Span {
    let span = trace::span(name);
    match id {
        Some(id) => span.with("req", id),
        None => span,
    }
}

thread_local! {
    /// Nanoseconds spent in write-ahead appends by the worker-thread
    /// command currently executing (the `wal_append` phase): reset per
    /// job by [`shard_worker`], accumulated by [`wal_append`].
    static WAL_NS: Cell<u64> = const { Cell::new(0) };
}

/// Per-command × per-phase duration histograms plus outcome counters,
/// exported as `lahar_server_request_duration_seconds{command,phase}`
/// and `lahar_server_requests_total{command,code}`.
pub(crate) struct RequestStats {
    /// One row per [`COMMAND_LABELS`] entry, one histogram per phase.
    durations: Mutex<Vec<[Histogram; PHASE_LABELS.len()]>>,
    /// One outcome-code map per command, bounded by
    /// [`MAX_CODES_PER_COMMAND`].
    codes: Mutex<Vec<BTreeMap<String, u64>>>,
}

impl RequestStats {
    fn new() -> Self {
        Self {
            durations: Mutex::new(
                (0..COMMAND_LABELS.len())
                    .map(|_| std::array::from_fn(|_| Histogram::default()))
                    .collect(),
            ),
            codes: Mutex::new(vec![BTreeMap::new(); COMMAND_LABELS.len()]),
        }
    }

    /// Records one finished request: all four phase durations (inline
    /// answers record zero worker phases) and its outcome code.
    pub(crate) fn record(
        &self,
        label: &'static str,
        phases_ns: [u64; PHASE_LABELS.len()],
        code: &str,
    ) {
        let idx = label_index(label);
        {
            let mut durations = self.durations.lock().expect("durations lock");
            for (h, ns) in durations[idx].iter_mut().zip(phases_ns) {
                h.record(ns);
            }
        }
        let mut codes = self.codes.lock().expect("codes lock");
        let per = &mut codes[idx];
        if per.len() >= MAX_CODES_PER_COMMAND && !per.contains_key(code) {
            *per.entry("other".to_owned()).or_insert(0) += 1;
        } else {
            *per.entry(code.to_owned()).or_insert(0) += 1;
        }
    }

    /// Renders both request metrics in Prometheus text format. Commands
    /// never seen emit nothing; a seen command emits every phase.
    fn to_prometheus(&self) -> String {
        use crate::expose::{push_header, push_histogram, push_label_value, push_sample};
        let mut out = String::with_capacity(2048);
        push_header(
            &mut out,
            "lahar_server_request_duration_seconds",
            "Server-side request latency by command and phase \
             (queue_wait / execute / wal_append / respond).",
            "histogram",
        );
        {
            let durations = self.durations.lock().expect("durations lock");
            for (ci, row) in durations.iter().enumerate() {
                if row.iter().all(|h| h.count() == 0) {
                    continue;
                }
                for (pi, h) in row.iter().enumerate() {
                    let labels = format!(
                        "command=\"{}\",phase=\"{}\"",
                        COMMAND_LABELS[ci], PHASE_LABELS[pi]
                    );
                    push_histogram(
                        &mut out,
                        "lahar_server_request_duration_seconds",
                        &labels,
                        &h.summarize(),
                    );
                }
            }
        }
        push_header(
            &mut out,
            "lahar_server_requests_total",
            "Requests handled, by command and outcome code (ok, or the error code).",
            "counter",
        );
        {
            let codes = self.codes.lock().expect("codes lock");
            for (ci, per) in codes.iter().enumerate() {
                for (code, count) in per {
                    let mut labels = format!("command=\"{}\",code=", COMMAND_LABELS[ci]);
                    push_label_value(&mut labels, code);
                    push_sample(
                        &mut out,
                        "lahar_server_requests_total",
                        &labels,
                        &count.to_string(),
                    );
                }
            }
        }
        out
    }
}

/// Everything the reactor needs to answer, meter, and slow-log one
/// request.
pub(crate) struct RequestOutcome {
    /// Command label, or `invalid` when the frame never parsed.
    pub(crate) label: &'static str,
    /// Echoed correlation id.
    pub(crate) id: Option<u64>,
    /// Target session, when the command named one.
    pub(crate) session: Option<String>,
    pub(crate) response: Response,
    pub(crate) queue_wait_ns: u64,
    pub(crate) execute_ns: u64,
    pub(crate) wal_ns: u64,
}

impl RequestOutcome {
    /// An answer produced on the reactor thread itself (pings, protocol
    /// errors, backpressure rejections): no worker phases.
    pub(crate) fn inline(
        label: &'static str,
        id: Option<u64>,
        session: Option<String>,
        response: Response,
    ) -> Self {
        Self {
            label,
            id,
            session,
            response,
            queue_wait_ns: 0,
            execute_ns: 0,
            wal_ns: 0,
        }
    }

    /// The outcome code the counters and slow log record: `ok` for
    /// every success shape, the error code otherwise.
    pub(crate) fn code(&self) -> &str {
        match &self.response {
            Response::Error { code, .. } => code.as_str(),
            _ => "ok",
        }
    }
}

/// Structured, rate-bounded slow-request log: one JSONL entry per
/// request whose phase total meets [`ServerConfig::slow_request_ms`].
pub(crate) struct SlowLog {
    threshold: Duration,
    sink: Mutex<SlowSink>,
}

struct SlowSink {
    out: Box<dyn std::io::Write + Send>,
    /// Start of the current one-second rate window.
    window: Instant,
    /// Entries written in the current window.
    in_window: u32,
    /// Entries dropped by the rate bound since the last written entry.
    suppressed: u64,
}

impl SlowLog {
    fn open(threshold: Duration, path: Option<&Path>) -> std::io::Result<Self> {
        let out: Box<dyn std::io::Write + Send> = match path {
            Some(path) => Box::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            ),
            None => Box::new(std::io::stderr()),
        };
        Ok(Self {
            threshold,
            sink: Mutex::new(SlowSink {
                out,
                window: Instant::now(),
                in_window: 0,
                suppressed: 0,
            }),
        })
    }

    /// Logs `outcome` when its phase total meets the threshold and the
    /// per-second rate bound allows another entry.
    pub(crate) fn observe(&self, outcome: &RequestOutcome, respond_ns: u64) {
        let total = outcome
            .queue_wait_ns
            .saturating_add(outcome.execute_ns)
            .saturating_add(outcome.wal_ns)
            .saturating_add(respond_ns);
        if Duration::from_nanos(total) < self.threshold {
            return;
        }
        let mut sink = self.sink.lock().expect("slow log lock");
        if sink.window.elapsed() >= Duration::from_secs(1) {
            sink.window = Instant::now();
            sink.in_window = 0;
        }
        if sink.in_window >= SLOW_LOG_MAX_PER_SEC {
            sink.suppressed += 1;
            return;
        }
        sink.in_window += 1;
        let suppressed = std::mem::take(&mut sink.suppressed);
        let ts_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX));
        let mut entry = String::with_capacity(192);
        entry.push_str("{\"ts_ms\":");
        entry.push_str(&ts_ms.to_string());
        entry.push_str(",\"id\":");
        match outcome.id {
            Some(id) => entry.push_str(&id.to_string()),
            None => entry.push_str("null"),
        }
        entry.push_str(",\"session\":");
        match &outcome.session {
            Some(session) => crate::json::push_string(&mut entry, session),
            None => entry.push_str("null"),
        }
        entry.push_str(",\"command\":\"");
        entry.push_str(outcome.label);
        entry.push('"');
        for (phase, ns) in [
            ("queue_wait_ns", outcome.queue_wait_ns),
            ("execute_ns", outcome.execute_ns),
            ("wal_append_ns", outcome.wal_ns),
            ("respond_ns", respond_ns),
        ] {
            entry.push_str(",\"");
            entry.push_str(phase);
            entry.push_str("\":");
            entry.push_str(&ns.to_string());
        }
        entry.push_str(",\"outcome\":");
        crate::json::push_string(&mut entry, outcome.code());
        if suppressed > 0 {
            entry.push_str(",\"suppressed\":");
            entry.push_str(&suppressed.to_string());
        }
        entry.push_str("}\n");
        let _ = sink.out.write_all(entry.as_bytes());
        let _ = sink.out.flush();
    }
}

/// What [`dispatch`] did with one parsed frame.
pub(crate) enum Dispatched {
    /// Answered on the reactor thread itself (protocol errors, pings,
    /// shutdown acks, backpressure rejections): flush as-is, zero
    /// worker phases.
    Inline(RequestOutcome),
    /// Enqueued to the session's shard, addressed back to
    /// `(conn_id, seq)`; the worker's [`Completion`] closes the slot.
    /// The metadata here is what the reactor needs to meter and
    /// slow-log the answer when it arrives.
    Enqueued {
        label: &'static str,
        id: Option<u64>,
        session: String,
    },
}

/// Routes one parsed frame on the reactor thread: protocol errors and
/// server-level commands are answered inline; session commands travel
/// to their shard's bounded queue wrapped in a [`RequestCtx`], and the
/// worker's phase timings come back as a [`Completion`] addressed to
/// `(conn_id, seq)`. Never blocks.
pub(crate) fn dispatch(
    shared: &Shared,
    parsed: Result<(Command, Option<u64>), EngineError>,
    conn_id: u64,
    seq: u64,
) -> Dispatched {
    let (cmd, id) = match parsed {
        Ok(pair) => pair,
        Err(e) => {
            return Dispatched::Inline(RequestOutcome::inline(
                "invalid",
                None,
                None,
                Response::Error {
                    code: WireCode::Protocol,
                    message: e.to_string(),
                },
            ))
        }
    };
    let label = command_label(&cmd);
    let session = match &cmd {
        Command::Ping => {
            return Dispatched::Inline(RequestOutcome::inline(
                label,
                id,
                None,
                Response::Pong {
                    version: PROTOCOL_VERSION,
                },
            ))
        }
        Command::Shutdown => {
            // No side effects here: the reactor initiates the teardown
            // only after this ack has been written and flushed.
            return Dispatched::Inline(RequestOutcome::inline(
                label,
                id,
                None,
                Response::ShuttingDown,
            ));
        }
        other => other.session().expect("session command").to_owned(),
    };
    let shutting_down = || Response::Error {
        code: WireCode::ShuttingDown,
        message: "server is shutting down".to_owned(),
    };
    if shared.shutting_down.load(Ordering::SeqCst) {
        return Dispatched::Inline(RequestOutcome::inline(
            label,
            id,
            Some(session),
            shutting_down(),
        ));
    }
    let shard = &shared.shards[shard_of(&session, shared.shards.len())];
    let job = ShardMsg::Job(Job {
        session: session.clone(),
        cmd,
        ctx: RequestCtx {
            id,
            command: label,
            enqueued: Instant::now(),
        },
        reply: ReplyTo { conn_id, seq },
    });
    // Count the enqueue *before* try_send: the worker decrements on
    // dequeue, and incrementing afterwards would let a fast dequeue's
    // fetch_sub land first and wrap the gauge below zero.
    shard.depth.fetch_add(1, Ordering::SeqCst);
    match shard.sender.try_send(job) {
        Ok(()) => Dispatched::Enqueued { label, id, session },
        Err(TrySendError::Full(_)) => {
            shard.depth.fetch_sub(1, Ordering::SeqCst);
            shared.overloaded_total.fetch_add(1, Ordering::SeqCst);
            Dispatched::Inline(RequestOutcome::inline(
                label,
                id,
                Some(session),
                Response::Error {
                    code: WireCode::Overloaded,
                    message: format!(
                        "shard queue full ({} pending); back off and retry",
                        shared.config.queue_cap
                    ),
                },
            ))
        }
        Err(TrySendError::Disconnected(_)) => {
            shard.depth.fetch_sub(1, Ordering::SeqCst);
            Dispatched::Inline(RequestOutcome::inline(
                label,
                id,
                Some(session),
                shutting_down(),
            ))
        }
    }
}

/// FNV-1a over the session name. Checkpoint filenames (and shard
/// placement) must be a fixed function of the session string across
/// builds — std's `DefaultHasher` algorithm is explicitly unspecified,
/// and a toolchain upgrade changing it would make every existing
/// checkpoint silently unfindable on restart.
fn fnv1a(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in s.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Stable session→shard placement (stable across restarts too, though
/// only checkpoints — not shard placement — need to survive those).
fn shard_of(session: &str, n_shards: usize) -> usize {
    (fnv1a(session) % n_shards as u64) as usize
}

/// The filename stem shared by a session's checkpoint generations
/// (`{stem}.g{gen:08}.ckpt.json`) and WAL segments
/// (`{stem}.g{gen:08}.wal`): a sanitized name for readability plus a
/// stable hash for uniqueness (session names come off the wire and must
/// not traverse paths).
fn session_stem(session: &str) -> String {
    let safe: String = session
        .chars()
        .take(48)
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("{safe}-{:016x}", fnv1a(session))
}

// ---------------------------------------------------------------------
// Shard workers
// ---------------------------------------------------------------------

/// One hosted session plus the live per-query series the `series`
/// command answers from.
struct Hosted {
    session: RealTimeSession,
    /// Query name → index.
    by_name: HashMap<String, usize>,
    /// Per query index: source text (for restore-time backfill).
    sources: Vec<String>,
    /// Per query index: μ(q@t) for t = 0..now, accumulated from alerts.
    series: Vec<Vec<f64>>,
    /// Filename stem of this session's checkpoint generations and WAL
    /// segments (see [`session_stem`]).
    stem: String,
    /// Write-ahead appender; `None` when durability is
    /// [`Durability::None`], no checkpoint dir is configured, or the
    /// log failed (`wal_broken`).
    wal: Option<WalWriter>,
    /// An append failed mid-frame: the segment may end in garbage that
    /// would orphan anything written after it, so mutations are refused
    /// until a restart re-establishes a clean log.
    wal_broken: bool,
    /// Newest persisted checkpoint generation (0 = none yet).
    persisted_gen: u64,
    /// Session time of that generation.
    persisted_t: u32,
    /// When a command last touched this session; the eviction sweep
    /// compares this against [`ServerConfig::evict_after`].
    last_touched: Instant,
}

impl Hosted {
    fn fresh(session: RealTimeSession, stem: String) -> Self {
        Self {
            session,
            by_name: HashMap::new(),
            sources: Vec::new(),
            series: Vec::new(),
            stem,
            wal: None,
            wal_broken: false,
            persisted_gen: 0,
            persisted_t: 0,
            last_touched: Instant::now(),
        }
    }

    fn record_alerts(&mut self, alerts: &[Alert]) {
        for alert in alerts {
            let idx = alert.query.index();
            if let Some(series) = self.series.get_mut(idx) {
                series.push(alert.probability);
            }
        }
    }
}

fn shard_worker(
    shared: &Arc<Shared>,
    idx: usize,
    rx: Receiver<ShardMsg>,
    depth: &Arc<AtomicUsize>,
) {
    let mut sessions: HashMap<String, Hosted> = HashMap::new();
    // With tiering enabled the blocking recv gains a timeout so an idle
    // shard still wakes to sweep; a busy shard sweeps between jobs
    // instead (recv_timeout never times out under sustained load). The
    // sweep interval is a quarter of the idle threshold, clamped so it
    // neither spins nor lets a session overstay by much.
    let sweep = shared
        .config
        .evict_after
        .map(|idle| (idle / 4).clamp(Duration::from_millis(50), Duration::from_secs(1)));
    let mut last_sweep = Instant::now();
    loop {
        let msg = match sweep {
            None => match rx.recv() {
                Ok(msg) => msg,
                Err(_) => break,
            },
            Some(interval) => match rx.recv_timeout(interval) {
                Ok(msg) => msg,
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    evict_idle_sessions(shared, &mut sessions);
                    last_sweep = Instant::now();
                    continue;
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
            },
        };
        match msg {
            ShardMsg::Shutdown => break,
            ShardMsg::Job(job) => {
                depth.fetch_sub(1, Ordering::SeqCst);
                let queue_wait_ns = elapsed_ns(job.ctx.enqueued);
                let span = req_span("shard_dequeue", job.ctx.id).with("shard", idx as u64);
                let _ = job.ctx.command; // carried for future routing/logging
                if let Some(delay) = shared.config.shard_delay {
                    std::thread::sleep(delay);
                }
                WAL_NS.set(0);
                let started = Instant::now();
                let response = handle_command(shared, &mut sessions, &job.session, &job.cmd);
                let wal_ns = WAL_NS.get();
                let execute_ns = elapsed_ns(started).saturating_sub(wal_ns);
                drop(span);
                shared
                    .completions
                    .lock()
                    .expect("completions lock")
                    .push(Completion {
                        to: job.reply,
                        reply: WorkerReply {
                            response,
                            queue_wait_ns,
                            execute_ns,
                            wal_ns,
                        },
                    });
                shared.wake_reactor();
                if let Some(interval) = sweep {
                    if last_sweep.elapsed() >= interval {
                        evict_idle_sessions(shared, &mut sessions);
                        last_sweep = Instant::now();
                    }
                }
            }
        }
    }
    // Graceful exit: flush a final checkpoint per hosted session.
    for (name, hosted) in &mut sessions {
        if let Err(e) = write_checkpoint(shared, hosted) {
            eprintln!("lahar-serve: final checkpoint for session '{name}' failed: {e}");
        }
    }
}

/// Checkpoints-and-drops every hosted session on this shard idle past
/// [`ServerConfig::evict_after`], freeing its resident memory.
///
/// With an active write-ahead log the drop alone suffices: the newest
/// persisted generation plus the uncovered log tail already reconstruct
/// the session bit-identically (the restore is exactly `open`'s proven
/// recovery path). Without one, a fresh checkpoint generation is
/// written first, and a write failure aborts the eviction — dropping
/// state that exists nowhere else would not be tiering, it would be
/// data loss. Poisoned and log-broken sessions stay resident: their
/// recovery needs the live state.
fn evict_idle_sessions(shared: &Shared, sessions: &mut HashMap<String, Hosted>) {
    let Some(idle) = shared.config.evict_after else {
        return;
    };
    let due: Vec<String> = sessions
        .iter()
        .filter(|(_, h)| {
            h.last_touched.elapsed() >= idle && !h.wal_broken && !h.session.is_poisoned()
        })
        .map(|(name, _)| name.clone())
        .collect();
    for name in due {
        let mut hosted = sessions.remove(&name).expect("listed above");
        if hosted.wal.is_none() {
            if let Err(e) = write_checkpoint(shared, &mut hosted) {
                eprintln!("lahar-serve: eviction checkpoint for session '{name}' failed: {e}");
                sessions.insert(name, hosted);
                continue;
            }
        }
        {
            let mut registry = shared.registry.lock().expect("registry lock");
            if let Some(entry) = registry.iter_mut().find(|e| e.name == name) {
                entry.evicted = true;
            }
        }
        shared.evictions_total.fetch_add(1, Ordering::SeqCst);
    }
}

/// Takes a checkpoint and persists it as the next generation when a
/// checkpoint dir is set.
fn write_checkpoint(shared: &Shared, hosted: &mut Hosted) -> Result<Checkpoint, EngineError> {
    let ckpt = hosted.session.checkpoint()?;
    if let Some(dir) = &shared.config.checkpoint_dir {
        let Hosted {
            session,
            wal,
            persisted_gen,
            persisted_t,
            stem,
            ..
        } = hosted;
        persist_generation(
            dir,
            stem,
            &ckpt,
            wal,
            persisted_gen,
            persisted_t,
            session.stats(),
        )?;
    }
    Ok(ckpt)
}

/// Persists `ckpt` atomically as generation `persisted_gen + 1`
/// (tmp + fsync + rename), rotates the WAL onto the new generation's
/// segment, and garbage-collects files no longer needed for recovery.
/// The *previous* generation is kept as the fallback for a torn newest
/// one, together with every WAL segment from that fallback onward.
fn persist_generation(
    dir: &Path,
    stem: &str,
    ckpt: &Checkpoint,
    wal: &mut Option<WalWriter>,
    persisted_gen: &mut u64,
    persisted_t: &mut u32,
    stats: &EngineStats,
) -> Result<(), EngineError> {
    let gen = *persisted_gen + 1;
    checkpoint::write_generation(dir, stem, gen, ckpt)
        .map_err(|e| EngineError::DurabilityIo(format!("checkpoint generation {gen}: {e}")))?;
    *persisted_gen = gen;
    *persisted_t = ckpt.t();
    if let Some(w) = wal {
        w.rotate(gen)
            .map_err(|e| EngineError::DurabilityIo(format!("wal rotate to g{gen}: {e}")))?;
    }
    let keep_from = gen.saturating_sub(1);
    checkpoint::gc_generations(dir, stem, keep_from);
    wal::gc_segments(dir, stem, keep_from);
    stats.set_wal_segments(wal::list_segments(dir, stem).len() as u64);
    Ok(())
}

/// Persists the session's newest *auto-captured* checkpoint, if the
/// tick that just closed crossed a
/// [`crate::SessionConfig::checkpoint_interval`] boundary and captured
/// one that is newer than the last persisted generation.
fn persist_auto_checkpoint(shared: &Shared, hosted: &mut Hosted) -> Result<(), EngineError> {
    let Some(dir) = &shared.config.checkpoint_dir else {
        return Ok(());
    };
    let Hosted {
        session,
        wal,
        persisted_gen,
        persisted_t,
        stem,
        ..
    } = hosted;
    let Some(ckpt) = session.last_checkpoint() else {
        return Ok(());
    };
    if *persisted_gen > 0 && ckpt.t() <= *persisted_t {
        return Ok(());
    }
    persist_generation(
        dir,
        stem,
        ckpt,
        wal,
        persisted_gen,
        persisted_t,
        session.stats(),
    )
}

/// The session config hosted sessions actually run under: the template,
/// minus the endpoints the server itself owns.
fn hosted_config(shared: &Shared) -> SessionConfig {
    let mut config = shared.config.session_config;
    config.metrics_addr = None;
    config.serve_addr = None;
    config
}

/// Fetches or creates/restores the named session on this shard. Only
/// the `open` handler calls this; every other command requires the
/// session to already exist.
///
/// Restore is a three-step recovery, not a single file read: (1) scan
/// checkpoint generations newest-first, quarantining any that fail
/// their envelope checksum; (2) replay the uncovered write-ahead tail
/// on top of the restored snapshot; (3) if anything was replayed — or a
/// segment ended torn, or a generation was quarantined — persist a
/// fresh generation so the on-disk state converges again.
fn open_session<'m>(
    shared: &Shared,
    sessions: &'m mut HashMap<String, Hosted>,
    name: &str,
) -> Result<(&'m mut Hosted, bool), EngineError> {
    // Entry-style would borrow `sessions` for the whole call; a plain
    // contains_key keeps the construction path readable.
    if !sessions.contains_key(name) {
        let config = hosted_config(shared);
        let stem = session_stem(name);
        let mut was_restored = false;
        let hosted = match &shared.config.checkpoint_dir {
            None => Hosted::fresh(
                RealTimeSession::with_config(shared.template.clone(), config)?,
                stem,
            ),
            Some(dir) => {
                let loaded = checkpoint::load_newest(dir, &stem)?;
                let quarantined = loaded.as_ref().map_or(0, |l| l.quarantined.len());
                let mut hosted = match loaded {
                    None => Hosted::fresh(
                        RealTimeSession::with_config(shared.template.clone(), config)?,
                        stem,
                    ),
                    Some(l) => {
                        was_restored = true;
                        let session = RealTimeSession::restore_with_config(
                            shared.template.clone(),
                            &l.checkpoint,
                            config,
                        )?;
                        let mut by_name = HashMap::new();
                        let mut sources = Vec::new();
                        let mut series = Vec::new();
                        for (idx, q) in l.checkpoint.queries.iter().enumerate() {
                            by_name.insert(q.name.clone(), idx);
                            // Backfill the pre-restart prefix from the
                            // restored history; post-restart ticks
                            // extend it live.
                            series.push(crate::Lahar::prob_series(session.database(), &q.source)?);
                            sources.push(q.source.clone());
                        }
                        Hosted {
                            session,
                            by_name,
                            sources,
                            series,
                            stem,
                            wal: None,
                            wal_broken: false,
                            persisted_gen: l.gen,
                            persisted_t: l.checkpoint.t(),
                            last_touched: Instant::now(),
                        }
                    }
                };
                if quarantined > 0 {
                    hosted
                        .session
                        .stats()
                        .record_checkpoint_quarantined(quarantined as u64);
                }
                let replay = replay_wal(dir, &mut hosted)?;
                if replay.ticks > 0 {
                    hosted.session.stats().record_wal_replayed(replay.ticks);
                    was_restored = true;
                }
                if config.durability != Durability::None {
                    let writer = WalWriter::open(
                        dir,
                        &hosted.stem,
                        hosted.persisted_gen,
                        replay.next_seq,
                        config.durability,
                    )
                    .map_err(|e| EngineError::DurabilityIo(format!("wal open: {e}")))?
                    .with_stats(hosted.session.stats().clone());
                    hosted.wal = Some(writer);
                }
                // Converge the on-disk state: a replayed tail, a torn
                // segment end, or a quarantined generation all mean the
                // newest good checkpoint lags (or trails garbage) — a
                // fresh generation resets the recovery baseline and
                // rotates the log off any torn segment, so new appends
                // never land after garbage.
                if replay.ticks > 0 || replay.applied > 0 || replay.torn || quarantined > 0 {
                    write_checkpoint(shared, &mut hosted)?;
                } else {
                    hosted
                        .session
                        .stats()
                        .set_wal_segments(wal::list_segments(dir, &hosted.stem).len() as u64);
                }
                hosted
            }
        };
        {
            let mut registry = shared.registry.lock().expect("registry lock");
            match registry.iter_mut().find(|e| e.name == name) {
                Some(entry) => {
                    // Re-materializing an evicted session: swap in the
                    // fresh stats handle (the old session's is gone)
                    // and count the restore.
                    entry.stats = hosted.session.stats().clone();
                    if std::mem::take(&mut entry.evicted) {
                        shared.restores_total.fetch_add(1, Ordering::SeqCst);
                    }
                }
                None => registry.push(SessionEntry {
                    name: name.to_owned(),
                    stats: hosted.session.stats().clone(),
                    evicted: false,
                }),
            }
        }
        sessions.insert(name.to_owned(), hosted);
        return Ok((sessions.get_mut(name).expect("just inserted"), was_restored));
    }
    Ok((sessions.get_mut(name).expect("checked"), false))
}

/// What [`replay_wal`] recovered.
#[derive(Debug, Default)]
struct WalReplay {
    /// Ticks closed during replay.
    ticks: u64,
    /// Non-tick records applied (staging, registration).
    applied: u64,
    /// Whether any segment ended in a torn frame (discarded).
    torn: bool,
    /// One past the highest intact sequence number seen (the opened
    /// writer continues from here).
    next_seq: u64,
}

/// Replays every uncovered write-ahead record onto the restored
/// session, extending the hosted per-query series exactly as the live
/// commands did.
///
/// Coverage: `Staged`/`Register` records in segments *older* than the
/// restored generation are captured by the checkpoint itself and are
/// skipped. `Ticks` records are self-aligning against the session
/// clock — a record spanning `t0 .. t0 + n` replays only the suffix
/// past `now()`, which handles both fully-covered records and the one
/// straddling record an auto-checkpoint can split (the snapshot lands
/// mid-epoch, covering a prefix of the record's ticks).
fn replay_wal(dir: &Path, hosted: &mut Hosted) -> Result<WalReplay, EngineError> {
    let restored_gen = hosted.persisted_gen;
    let mut replay = WalReplay::default();
    for (gen, path) in wal::list_segments(dir, &hosted.stem) {
        let read = wal::read_segment(&path)
            .map_err(|e| EngineError::CheckpointCorrupt(format!("read wal {path:?}: {e}")))?;
        if read.torn {
            eprintln!("lahar-serve: discarding torn tail of wal segment {path:?}");
            replay.torn = true;
        }
        for record in read.records {
            replay.next_seq = replay.next_seq.max(record.seq + 1);
            match record.op {
                WalOp::Staged(ms) => {
                    if gen >= restored_gen {
                        let batch = resolve_wal_marginals(hosted.session.database(), &ms)?;
                        hosted.session.stage_batch(batch)?;
                        replay.applied += 1;
                    }
                }
                WalOp::Register { name, query } => {
                    if gen >= restored_gen && !hosted.by_name.contains_key(&name) {
                        register_query(hosted, &name, &query)?;
                        replay.applied += 1;
                    }
                }
                WalOp::Ticks(ticks) => {
                    let now = u64::from(hosted.session.now());
                    if record.t0 + ticks.len() as u64 <= now {
                        continue; // fully covered by the checkpoint
                    }
                    let skip = now.saturating_sub(record.t0) as usize;
                    let mut resolved = Vec::with_capacity(ticks.len() - skip);
                    for tick in &ticks[skip..] {
                        resolved.push(resolve_wal_marginals(hosted.session.database(), tick)?);
                    }
                    replay.ticks += resolved.len() as u64;
                    tick_epoch_with_recovery(hosted, resolved)?;
                }
            }
        }
    }
    Ok(replay)
}

/// Resolves logged index+probability marginals back into staging pairs.
fn resolve_wal_marginals(
    db: &Database,
    ms: &[WalMarginal],
) -> Result<Vec<(lahar_model::StreamId, Marginal)>, EngineError> {
    ms.iter()
        .map(|m| {
            let id = db.stream_id_at(m.stream).ok_or_else(|| {
                EngineError::CheckpointCorrupt(format!(
                    "wal references stream index {} beyond the database",
                    m.stream
                ))
            })?;
            let marginal = Marginal::new(db.streams()[m.stream].domain(), m.probs.clone())?;
            Ok((id, marginal))
        })
        .collect()
}

/// The staging pairs in the WAL's database-index + probability-vector
/// form, ready to log.
fn to_wal_marginals(pairs: &[(lahar_model::StreamId, Marginal)]) -> Vec<WalMarginal> {
    pairs
        .iter()
        .map(|(id, m)| WalMarginal {
            stream: id.index(),
            probs: m.probs().to_vec(),
        })
        .collect()
}

/// Appends one record to the session's write-ahead log (no-op without
/// one), honouring append-before-ack: an I/O failure returns the error
/// response the caller must send *instead of* the ack, and breaks the
/// log — the segment may now end in a partial frame, and appending past
/// it would silently orphan every later record at recovery time.
fn wal_append(hosted: &mut Hosted, t0: u64, op: WalOp) -> Result<(), Response> {
    let Some(w) = &mut hosted.wal else {
        return Ok(());
    };
    let started = Instant::now();
    let result = w.append(t0, op);
    WAL_NS.with(|ns| ns.set(ns.get().saturating_add(elapsed_ns(started))));
    match result {
        Ok(_) => Ok(()),
        Err(e) => {
            hosted.wal = None;
            hosted.wal_broken = true;
            hosted.session.stats().set_wal_broken(true);
            Err(engine_error(EngineError::DurabilityIo(format!(
                "wal append: {e}"
            ))))
        }
    }
}

/// Registers a query on the hosted session, backfilling the
/// pre-registration series prefix from the batch engine so `series`
/// always starts at t = 0. The prefix is computed *before*
/// `session.register`: if it failed afterwards, the engine would hold a
/// query the by_name/sources/series tables don't, misaligning every
/// later registration's index. Shared by the `register` command and
/// write-ahead replay.
fn register_query(hosted: &mut Hosted, name: &str, query: &str) -> Result<usize, EngineError> {
    let prefix = if hosted.session.now() > 0 {
        crate::Lahar::prob_series(hosted.session.database(), query)?
    } else {
        Vec::new()
    };
    let id = hosted.session.register(name, query)?;
    let idx = id.index();
    debug_assert_eq!(idx, hosted.series.len());
    hosted.by_name.insert(name.to_owned(), idx);
    hosted.sources.push(query.to_owned());
    hosted.series.push(prefix);
    Ok(idx)
}

/// Ticks the session, auto-recovering from recoverable faults (worker
/// panics, tick deadlines, injected failpoints) so one bad tick never
/// takes the server down. Recovery completes the interrupted tick
/// bit-identically, so the returned alerts are the real μ(q@t).
fn tick_with_recovery(hosted: &mut Hosted) -> Result<Vec<Alert>, EngineError> {
    let alerts = match hosted.session.tick() {
        Ok(alerts) => alerts,
        Err(e) if e.is_recoverable() => hosted.session.recover()?,
        Err(e) => return Err(e),
    };
    hosted.record_alerts(&alerts);
    Ok(alerts)
}

/// Closes a whole batch of ticks, one epoch at a time so that a
/// recoverable mid-epoch fault (worker panic, deadline) only ever
/// interrupts the epoch currently in flight: recovery re-completes it
/// bit-identically and the loop carries on with the rest of the batch.
/// Every closed tick's alerts are recorded, so the hosted per-query
/// series stays exact across faults.
fn tick_epoch_with_recovery(
    hosted: &mut Hosted,
    ticks: Vec<Vec<(lahar_model::StreamId, Marginal)>>,
) -> Result<Vec<Alert>, EngineError> {
    let _span = trace::span("tick_epoch").with("ticks", ticks.len() as u64);
    let mut all = Vec::with_capacity(ticks.len());
    let mut queue = ticks.into_iter();
    let mut remaining = queue.len();
    while remaining > 0 {
        let chunk_len = hosted.session.epoch_chunk_len(remaining);
        let chunk: Vec<_> = queue.by_ref().take(chunk_len).collect();
        remaining -= chunk_len;
        let alerts = match hosted.session.tick_epoch(chunk) {
            Ok(alerts) => alerts,
            Err(e) if e.is_recoverable() => hosted.session.recover()?,
            Err(e) => return Err(e),
        };
        hosted.record_alerts(&alerts);
        all.extend(alerts);
    }
    Ok(all)
}

fn wire_alerts(alerts: &[Alert]) -> Vec<WireAlert> {
    alerts
        .iter()
        .map(|a| WireAlert {
            query: a.query.index(),
            name: a.name.to_string(),
            t: a.t,
            probability: a.probability,
        })
        .collect()
}

/// Resolves a wire marginal to a `(StreamId, Marginal)` staging pair.
fn resolve_marginal(
    db: &Database,
    m: &WireMarginal,
) -> Result<(lahar_model::StreamId, Marginal), EngineError> {
    let interner = db.interner();
    let stream_type = interner
        .lookup(&m.stream_type)
        .ok_or_else(|| EngineError::Protocol(format!("unknown stream type '{}'", m.stream_type)))?;
    let key = StreamKey {
        stream_type,
        key: m
            .key
            .iter()
            .map(|k| Value::Str(interner.intern(k)))
            .collect(),
    };
    let id = db.stream_id(&key).ok_or_else(|| {
        EngineError::Protocol(format!("unknown stream {}", key.display(interner)))
    })?;
    let marginal = Marginal::new(db.streams()[id.index()].domain(), m.probs.clone())?;
    Ok((id, marginal))
}

fn engine_error(e: EngineError) -> Response {
    let code = match &e {
        EngineError::Protocol(_) => WireCode::BadRequest,
        EngineError::SessionPoisoned => WireCode::Poisoned,
        EngineError::DurabilityIo(_) => WireCode::Durability,
        _ => WireCode::Engine,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

fn handle_command(
    shared: &Shared,
    sessions: &mut HashMap<String, Hosted>,
    session_name: &str,
    cmd: &Command,
) -> Response {
    // Session ops can panic (they also run user-ish query compilation);
    // a panic must poison one command, not the shard thread.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        handle_command_inner(shared, sessions, session_name, cmd)
    }));
    match result {
        Ok(response) => response,
        Err(payload) => Response::Error {
            code: WireCode::Engine,
            message: format!(
                "command handler panicked: {}",
                crate::error::panic_message(payload)
            ),
        },
    }
}

fn handle_command_inner(
    shared: &Shared,
    sessions: &mut HashMap<String, Hosted>,
    session_name: &str,
    cmd: &Command,
) -> Response {
    // Only `open` creates a *new* session; every other command
    // addressed to a name never opened is rejected, so mistyped or
    // hostile wire-supplied names cannot accumulate server state. A
    // name that is in the registry but evicted is different: any
    // command touching it restores it lazily through `open`'s recovery
    // path, so tiering stays invisible on the wire.
    let is_open = matches!(cmd, Command::Open { .. });
    let (hosted, restored) = if sessions.contains_key(session_name) {
        (sessions.get_mut(session_name).expect("checked"), false)
    } else {
        // Not resident: consult the registry for the name's status.
        let known = {
            let registry = shared.registry.lock().expect("registry lock");
            registry.iter().any(|e| e.name == session_name)
        };
        if !known && !is_open {
            return Response::Error {
                code: WireCode::UnknownSession,
                message: format!(
                    "session '{session_name}' is not open on this server; send open first"
                ),
            };
        }
        // The namespace cap applies to genuinely new names only:
        // evicted sessions already hold a registry slot and must stay
        // reopenable even at the cap.
        if !known
            && shared.registry.lock().expect("registry lock").len() >= shared.config.max_sessions
        {
            return Response::Error {
                code: WireCode::SessionLimit,
                message: format!(
                    "server already hosts its maximum of {} sessions",
                    shared.config.max_sessions
                ),
            };
        }
        match open_session(shared, sessions, session_name) {
            Ok(pair) => pair,
            Err(e) => return engine_error(e),
        }
    };
    hosted.last_touched = Instant::now();
    // A session poisoned by an earlier fault heals before the next
    // command; the recovered tick's alerts still extend the series.
    if hosted.session.is_poisoned() {
        match hosted.session.recover() {
            Ok(alerts) => hosted.record_alerts(&alerts),
            Err(e) => return engine_error(e),
        }
    }
    // Once the log has failed, refuse mutations *before* applying them:
    // acking (or even just applying) unlogged mutations would silently
    // widen the gap between memory and disk.
    if hosted.wal_broken
        && matches!(
            cmd,
            Command::Register { .. }
                | Command::Stage { .. }
                | Command::StageTicks { .. }
                | Command::Tick { .. }
        )
    {
        return engine_error(EngineError::DurabilityIo(
            "an earlier write-ahead append failed; restart the server to recover".to_owned(),
        ));
    }
    match cmd {
        Command::Open { .. } => Response::Opened {
            t: hosted.session.now(),
            restored,
        },
        Command::Register { name, query, .. } => {
            if hosted.by_name.contains_key(name) {
                return Response::Error {
                    code: WireCode::BadRequest,
                    message: format!("query '{name}' is already registered"),
                };
            }
            let idx = match register_query(hosted, name, query) {
                Ok(idx) => idx,
                Err(e) => return engine_error(e),
            };
            let op = WalOp::Register {
                name: name.clone(),
                query: query.clone(),
            };
            if let Err(resp) = wal_append(hosted, u64::from(hosted.session.now()), op) {
                return resp;
            }
            Response::Registered { query: idx }
        }
        Command::Stage {
            marginals, tick, ..
        } => {
            let mut staged = Vec::with_capacity(marginals.len());
            for m in marginals {
                match resolve_marginal(hosted.session.database(), m) {
                    Ok(pair) => staged.push(pair),
                    Err(e) => return engine_error(e),
                }
            }
            let logged = if hosted.wal.is_some() {
                to_wal_marginals(&staged)
            } else {
                Vec::new()
            };
            let n = staged.len();
            let t0 = u64::from(hosted.session.now());
            if let Err(e) = hosted.session.stage_batch(staged) {
                return engine_error(e);
            }
            if !tick {
                if let Err(resp) = wal_append(hosted, t0, WalOp::Staged(logged)) {
                    return resp;
                }
                return Response::Staged { staged: n };
            }
            match tick_with_recovery(hosted) {
                Ok(alerts) => {
                    if let Err(resp) = wal_append(hosted, t0, WalOp::Ticks(vec![logged])) {
                        return resp;
                    }
                    if let Err(e) = persist_auto_checkpoint(shared, hosted) {
                        return engine_error(e);
                    }
                    Response::Ticked {
                        t: hosted.session.now(),
                        alerts: wire_alerts(&alerts),
                    }
                }
                Err(e) => engine_error(e),
            }
        }
        Command::StageTicks { ticks, .. } => {
            let mut resolved = Vec::with_capacity(ticks.len());
            for tick in ticks {
                let mut batch = Vec::with_capacity(tick.len());
                for m in tick {
                    match resolve_marginal(hosted.session.database(), m) {
                        Ok(pair) => batch.push(pair),
                        Err(e) => return engine_error(e),
                    }
                }
                resolved.push(batch);
            }
            if resolved.is_empty() {
                return Response::Error {
                    code: WireCode::BadRequest,
                    message: "'ticks' must close at least one tick".to_owned(),
                };
            }
            let logged: Vec<Vec<WalMarginal>> = if hosted.wal.is_some() {
                resolved
                    .iter()
                    .map(|batch| to_wal_marginals(batch))
                    .collect()
            } else {
                Vec::new()
            };
            let t0 = u64::from(hosted.session.now());
            match tick_epoch_with_recovery(hosted, resolved) {
                Ok(alerts) => {
                    if let Err(resp) = wal_append(hosted, t0, WalOp::Ticks(logged)) {
                        return resp;
                    }
                    if let Err(e) = persist_auto_checkpoint(shared, hosted) {
                        return engine_error(e);
                    }
                    Response::Ticked {
                        t: hosted.session.now(),
                        alerts: wire_alerts(&alerts),
                    }
                }
                Err(e) => engine_error(e),
            }
        }
        Command::Tick { .. } => {
            let t0 = u64::from(hosted.session.now());
            match tick_with_recovery(hosted) {
                Ok(alerts) => {
                    if let Err(resp) = wal_append(hosted, t0, WalOp::Ticks(vec![Vec::new()])) {
                        return resp;
                    }
                    if let Err(e) = persist_auto_checkpoint(shared, hosted) {
                        return engine_error(e);
                    }
                    Response::Ticked {
                        t: hosted.session.now(),
                        alerts: wire_alerts(&alerts),
                    }
                }
                Err(e) => engine_error(e),
            }
        }
        Command::Series { query, .. } => match hosted.by_name.get(query) {
            None => Response::Error {
                code: WireCode::UnknownQuery,
                message: format!("no query named '{query}' in session '{session_name}'"),
            },
            Some(&idx) => Response::Series {
                query: query.clone(),
                series: hosted.series[idx].clone(),
            },
        },
        Command::Checkpoint { .. } => match write_checkpoint(shared, hosted) {
            Ok(ckpt) => Response::Checkpointed { t: ckpt.t() },
            Err(e) => engine_error(e),
        },
        Command::Ping | Command::Shutdown => Response::Error {
            code: WireCode::BadRequest,
            message: "server-level command routed to a shard".to_owned(),
        },
    }
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

/// Renders every hosted session's snapshot (label `session="..."`) plus
/// the server's own queue/backpressure gauges.
fn render_metrics(shared: &Shared) -> String {
    let (snaps, resident, evicted) = {
        let registry = shared.registry.lock().expect("registry lock");
        let snaps: Vec<(String, StatsSnapshot)> = registry
            .iter()
            .map(|e| (e.name.clone(), e.stats.snapshot()))
            .collect();
        let evicted = registry.iter().filter(|e| e.evicted).count();
        (snaps, registry.len() - evicted, evicted)
    };
    let refs: Vec<(&str, &StatsSnapshot)> = snaps
        .iter()
        .map(|(name, snap)| (name.as_str(), snap))
        .collect();
    let mut out = to_prometheus_sessions(&refs);
    writeln!(
        out,
        "# HELP lahar_server_queue_depth Commands queued per shard.\n\
         # TYPE lahar_server_queue_depth gauge"
    )
    .unwrap();
    for (i, shard) in shared.shards.iter().enumerate() {
        writeln!(
            out,
            "lahar_server_queue_depth{{shard=\"{i}\"}} {}",
            shard.depth.load(Ordering::SeqCst)
        )
        .unwrap();
    }
    writeln!(
        out,
        "# HELP lahar_server_queue_cap Bound of each shard's command queue.\n\
         # TYPE lahar_server_queue_cap gauge\n\
         lahar_server_queue_cap {}",
        shared.config.queue_cap
    )
    .unwrap();
    writeln!(
        out,
        "# HELP lahar_server_overloaded_total Commands rejected with an overloaded response.\n\
         # TYPE lahar_server_overloaded_total counter\n\
         lahar_server_overloaded_total {}",
        shared.overloaded_total.load(Ordering::SeqCst)
    )
    .unwrap();
    writeln!(
        out,
        "# HELP lahar_server_sessions Sessions hosted across all shards (resident + evicted).\n\
         # TYPE lahar_server_sessions gauge\n\
         lahar_server_sessions {}",
        resident + evicted
    )
    .unwrap();
    writeln!(
        out,
        "# HELP lahar_server_sessions_resident Hosted sessions currently held in memory.\n\
         # TYPE lahar_server_sessions_resident gauge\n\
         lahar_server_sessions_resident {resident}"
    )
    .unwrap();
    writeln!(
        out,
        "# HELP lahar_server_sessions_evicted Hosted sessions tiered out to checkpoint storage.\n\
         # TYPE lahar_server_sessions_evicted gauge\n\
         lahar_server_sessions_evicted {evicted}"
    )
    .unwrap();
    writeln!(
        out,
        "# HELP lahar_server_evictions_total Idle sessions evicted to checkpoint storage.\n\
         # TYPE lahar_server_evictions_total counter\n\
         lahar_server_evictions_total {}",
        shared.evictions_total.load(Ordering::SeqCst)
    )
    .unwrap();
    writeln!(
        out,
        "# HELP lahar_server_restores_total Evicted sessions restored by a touching command.\n\
         # TYPE lahar_server_restores_total counter\n\
         lahar_server_restores_total {}",
        shared.restores_total.load(Ordering::SeqCst)
    )
    .unwrap();
    out.push_str(&shared.requests.to_prometheus());
    out
}
