//! `lahar serve`: a sharded multi-session network service.
//!
//! [`LaharServer`] binds a [`std::net::TcpListener`] and hosts any
//! number of named [`crate::RealTimeSession`]s over the newline-delimited
//! JSON protocol of [`crate::protocol`] (spec: `PROTOCOL.md`). The
//! threading model is deliberately boring, matching the zero-dependency
//! style of [`crate::expose::MetricsServer`]:
//!
//! * one **acceptor** thread (`lahar-serve`) accepts connections and
//!   spawns a blocking reader thread per client;
//! * `n_shards` **shard worker** threads (`lahar-shard-N`) each own the
//!   sessions that hash to them — a session lives on exactly one shard,
//!   so session state is single-threaded and needs no locking;
//! * connection threads route each command to its session's shard over a
//!   **bounded** [`std::sync::mpsc::sync_channel`]. When a shard's queue
//!   is full the command is rejected *immediately* with an `overloaded`
//!   response — the server never buffers without bound, and the client
//!   decides whether to back off and retry.
//!
//! Integration with the rest of the engine:
//!
//! * staging uses [`crate::RealTimeSession::stage_batch`], so one wire
//!   frame feeds the kernel fast path with a whole tick's marginals;
//! * every hosted session's stats merge into one `/metrics` exposition
//!   (label `session="<name>"`) together with the server's own queue
//!   gauges, served by a [`MetricsServer`] with a custom renderer;
//! * recoverable tick faults (worker panics, tick timeouts, injected
//!   failpoints) trigger [`crate::RealTimeSession::recover`] instead of
//!   killing the server — the interrupted tick completes bit-identically
//!   and its alerts still extend the query series;
//! * graceful shutdown writes a final checkpoint per session into
//!   [`ServerConfig::checkpoint_dir`], and [`Command::Open`] restores
//!   from that file on restart, so a serve → shutdown → serve cycle
//!   continues the same series bit-identically.

use crate::checkpoint::Checkpoint;
use crate::error::EngineError;
use crate::expose::{to_prometheus_sessions, MetricsServer};
use crate::protocol::{
    encode_response, parse_command, Command, Response, WireAlert, WireMarginal, CODE_OVERLOADED,
    CODE_SESSION_LIMIT, CODE_UNKNOWN_SESSION, PROTOCOL_VERSION,
};
use crate::session::{Alert, RealTimeSession, SessionConfig};
use crate::stats::{EngineStats, StatsSnapshot};
use lahar_model::{Database, Marginal, StreamKey, Value};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of [`LaharServer`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Address to listen on (port 0 picks a free port; see
    /// [`LaharServer::addr`] for the resolved one).
    pub addr: SocketAddr,
    /// Metrics endpoint for the merged per-session exposition (`None`
    /// disables it). Must differ from `addr`.
    pub metrics_addr: Option<SocketAddr>,
    /// Number of shard worker threads (0 = one per available core).
    pub n_shards: usize,
    /// Bound of each shard's command queue; a full queue answers
    /// `overloaded` instead of buffering.
    pub queue_cap: usize,
    /// Maximum number of hosted sessions across all shards; an `open`
    /// beyond this answers a `session_limit` error. Sessions are created
    /// only by `open` (other commands answer `unknown_session`), so
    /// arbitrary wire-supplied names cannot grow server state without
    /// bound.
    pub max_sessions: usize,
    /// Where shutdown checkpoints are written and restarts restore from
    /// (`None` disables persistence).
    pub checkpoint_dir: Option<PathBuf>,
    /// Template configuration for hosted sessions. `metrics_addr` and
    /// `serve_addr` are ignored here — the server owns both endpoints.
    pub session_config: SessionConfig,
    /// Artificial per-command processing delay in every shard worker — a
    /// test/ops knob for driving the backpressure path deterministically.
    pub shard_delay: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".parse().expect("valid literal"),
            metrics_addr: None,
            n_shards: 0,
            queue_cap: 64,
            max_sessions: 1024,
            checkpoint_dir: None,
            session_config: SessionConfig::default(),
            shard_delay: None,
        }
    }
}

/// One command in flight to a shard worker.
struct Job {
    session: String,
    cmd: Command,
    reply: SyncSender<Response>,
}

enum ShardMsg {
    Job(Job),
    /// Checkpoint every hosted session and exit.
    Shutdown,
}

struct Shard {
    sender: SyncSender<ShardMsg>,
    /// Commands currently queued (approximate; the `/metrics` gauge).
    depth: Arc<AtomicUsize>,
}

struct Shared {
    config: ServerConfig,
    /// The *resolved* serve address (never port 0): the self-connect
    /// that unblocks `accept` during shutdown must target this, not
    /// `config.addr`.
    addr: SocketAddr,
    template: Database,
    shards: Vec<Shard>,
    shutting_down: AtomicBool,
    /// Commands rejected with `overloaded`.
    overloaded_total: AtomicU64,
    /// Stats handle per hosted session, for the merged exposition.
    registry: Mutex<Vec<(String, EngineStats)>>,
}

/// The serve-loop handle. Dropping it (or calling
/// [`LaharServer::shutdown`]) stops the service gracefully,
/// checkpointing every hosted session first.
pub struct LaharServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Option<MetricsServer>,
}

impl LaharServer {
    /// Binds the configured address and starts serving sessions created
    /// from (schema-only clones of) `template`.
    pub fn start(config: ServerConfig, template: Database) -> Result<Self, EngineError> {
        if config.queue_cap == 0 {
            return Err(EngineError::InvalidConfig(
                "queue_cap must be non-zero (a zero-capacity queue rejects everything)".to_owned(),
            ));
        }
        if config.max_sessions == 0 {
            return Err(EngineError::InvalidConfig(
                "max_sessions must be non-zero (a zero cap rejects every open)".to_owned(),
            ));
        }
        // Two port-0 addresses never collide — the OS picks distinct
        // free ports for each bind.
        if config.metrics_addr == Some(config.addr) && config.addr.port() != 0 {
            return Err(EngineError::InvalidConfig(
                "metrics_addr collides with the serve addr".to_owned(),
            ));
        }
        for stream in template.streams() {
            if !stream.is_empty() {
                return Err(EngineError::InvalidConfig(
                    "the server template database must be schema-only (no recorded marginals)"
                        .to_owned(),
                ));
            }
        }
        let n_shards = if config.n_shards == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.n_shards
        };
        let listener = TcpListener::bind(config.addr)
            .map_err(|e| EngineError::ServerUnavailable(format!("bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| EngineError::ServerUnavailable(format!("local_addr: {e}")))?;

        let mut shards = Vec::with_capacity(n_shards);
        let mut receivers = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let (tx, rx) = sync_channel(config.queue_cap);
            shards.push(Shard {
                sender: tx,
                depth: Arc::new(AtomicUsize::new(0)),
            });
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            config,
            addr,
            template,
            shards,
            shutting_down: AtomicBool::new(false),
            overloaded_total: AtomicU64::new(0),
            registry: Mutex::new(Vec::new()),
        });

        let mut workers = Vec::with_capacity(n_shards);
        for (i, rx) in receivers.into_iter().enumerate() {
            let shared = shared.clone();
            let depth = shared.shards[i].depth.clone();
            let handle = std::thread::Builder::new()
                .name(format!("lahar-shard-{i}"))
                .spawn(move || shard_worker(&shared, rx, &depth))
                .map_err(|e| EngineError::ServerUnavailable(format!("spawn shard {i}: {e}")))?;
            workers.push(handle);
        }

        let metrics = match shared.config.metrics_addr {
            None => None,
            Some(maddr) => {
                let shared = shared.clone();
                Some(MetricsServer::start_with_renderer(
                    maddr,
                    Arc::new(move || render_metrics(&shared)),
                )?)
            }
        };

        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("lahar-serve".to_owned())
                .spawn(move || accept_loop(listener, shared))
                .map_err(|e| EngineError::ServerUnavailable(format!("spawn acceptor: {e}")))?
        };

        Ok(Self {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
            metrics,
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The resolved metrics address, when exposition is enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(MetricsServer::addr)
    }

    /// Blocks until the serve loop exits — i.e. until a client sends
    /// `shutdown` (or another thread calls [`LaharServer::shutdown`] via
    /// a clone of the handle's internals). Joins every thread; hosted
    /// sessions have been checkpointed when this returns.
    pub fn join(mut self) -> Result<(), EngineError> {
        self.join_inner();
        Ok(())
    }

    /// Initiates graceful shutdown (idempotent) and waits for it to
    /// finish: every shard checkpoints its sessions, all threads join.
    pub fn shutdown(mut self) -> Result<(), EngineError> {
        initiate_shutdown(&self.shared);
        self.join_inner();
        Ok(())
    }

    fn join_inner(&mut self) {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Drop the metrics endpoint last so `/metrics` stays scrapable
        // while sessions flush their final checkpoints.
        self.metrics = None;
    }
}

impl Drop for LaharServer {
    fn drop(&mut self) {
        initiate_shutdown(&self.shared);
        self.join_inner();
    }
}

/// Starts graceful shutdown: flags the acceptor down, enqueues the
/// checkpoint-and-exit sentinel on every shard, and unblocks `accept`.
fn initiate_shutdown(shared: &Arc<Shared>) {
    if shared.shutting_down.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    for shard in &shared.shards {
        // Blocking send: the sentinel must arrive even when the queue is
        // momentarily full. Workers drain queued commands first, so
        // accepted work is never silently dropped.
        let _ = shard.sender.send(ShardMsg::Shutdown);
    }
    let _ = TcpStream::connect(shared.addr);
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let shared = shared.clone();
        // Connection readers are detached: they exit when the client
        // hangs up or when they observe the shutdown flag (bounded by
        // the read timeout below).
        let _ = std::thread::Builder::new()
            .name("lahar-conn".to_owned())
            .spawn(move || {
                let _ = serve_connection(stream, &shared);
            });
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client hung up
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // The timeout may fire after read_line already consumed
                // part of a frame into `line` (slow link, frame split
                // across writes). Keep the partial bytes and resume
                // appending — clearing here would corrupt the frame.
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let frame = std::mem::take(&mut line);
        if frame.trim().is_empty() {
            continue;
        }
        let response = dispatch(shared, frame.trim_end());
        let closing = matches!(response, Response::ShuttingDown);
        writer.write_all(encode_response(&response).as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if closing {
            // Tear down only after the ack is flushed: connection
            // threads are detached, and once shutdown starts the main
            // thread may exit the process before this thread runs again
            // — the client must already hold the response by then.
            initiate_shutdown(shared);
            return Ok(());
        }
    }
}

/// Routes one frame: protocol errors and server-level commands are
/// answered inline; session commands go to their shard's bounded queue.
fn dispatch(shared: &Arc<Shared>, line: &str) -> Response {
    let cmd = match parse_command(line) {
        Ok(cmd) => cmd,
        Err(e) => {
            return Response::Error {
                code: "protocol".to_owned(),
                message: e.to_string(),
            }
        }
    };
    let session = match &cmd {
        Command::Ping => {
            return Response::Pong {
                version: PROTOCOL_VERSION,
            }
        }
        Command::Shutdown => {
            // No side effects here: the connection loop initiates the
            // teardown after this ack has been written and flushed.
            return Response::ShuttingDown;
        }
        other => other.session().expect("session command").to_owned(),
    };
    if shared.shutting_down.load(Ordering::SeqCst) {
        return Response::Error {
            code: "shutting_down".to_owned(),
            message: "server is shutting down".to_owned(),
        };
    }
    let shard = &shared.shards[shard_of(&session, shared.shards.len())];
    let (reply_tx, reply_rx) = sync_channel(1);
    let job = ShardMsg::Job(Job {
        session,
        cmd,
        reply: reply_tx,
    });
    // Count the enqueue *before* try_send: the worker decrements on
    // dequeue, and incrementing afterwards would let a fast dequeue's
    // fetch_sub land first and wrap the gauge below zero.
    shard.depth.fetch_add(1, Ordering::SeqCst);
    match shard.sender.try_send(job) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            shard.depth.fetch_sub(1, Ordering::SeqCst);
            shared.overloaded_total.fetch_add(1, Ordering::SeqCst);
            return Response::Error {
                code: CODE_OVERLOADED.to_owned(),
                message: format!(
                    "shard queue full ({} pending); back off and retry",
                    shared.config.queue_cap
                ),
            };
        }
        Err(TrySendError::Disconnected(_)) => {
            shard.depth.fetch_sub(1, Ordering::SeqCst);
            return Response::Error {
                code: "shutting_down".to_owned(),
                message: "server is shutting down".to_owned(),
            };
        }
    }
    reply_rx.recv().unwrap_or(Response::Error {
        code: "shutting_down".to_owned(),
        message: "server shut down before the command was processed".to_owned(),
    })
}

/// FNV-1a over the session name. Checkpoint filenames (and shard
/// placement) must be a fixed function of the session string across
/// builds — std's `DefaultHasher` algorithm is explicitly unspecified,
/// and a toolchain upgrade changing it would make every existing
/// checkpoint silently unfindable on restart.
fn fnv1a(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in s.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Stable session→shard placement (stable across restarts too, though
/// only checkpoints — not shard placement — need to survive those).
fn shard_of(session: &str, n_shards: usize) -> usize {
    (fnv1a(session) % n_shards as u64) as usize
}

/// The checkpoint file for a session: a sanitized name for readability
/// plus a stable hash for uniqueness (session names come off the wire
/// and must not traverse paths).
fn checkpoint_filename(session: &str) -> String {
    let safe: String = session
        .chars()
        .take(48)
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("{safe}-{:016x}.ckpt.json", fnv1a(session))
}

// ---------------------------------------------------------------------
// Shard workers
// ---------------------------------------------------------------------

/// One hosted session plus the live per-query series the `series`
/// command answers from.
struct Hosted {
    session: RealTimeSession,
    /// Query name → index.
    by_name: HashMap<String, usize>,
    /// Per query index: source text (for restore-time backfill).
    sources: Vec<String>,
    /// Per query index: μ(q@t) for t = 0..now, accumulated from alerts.
    series: Vec<Vec<f64>>,
}

impl Hosted {
    fn record_alerts(&mut self, alerts: &[Alert]) {
        for alert in alerts {
            let idx = alert.query.index();
            if let Some(series) = self.series.get_mut(idx) {
                series.push(alert.probability);
            }
        }
    }
}

fn shard_worker(shared: &Arc<Shared>, rx: Receiver<ShardMsg>, depth: &Arc<AtomicUsize>) {
    let mut sessions: HashMap<String, Hosted> = HashMap::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Shutdown => break,
            ShardMsg::Job(job) => {
                depth.fetch_sub(1, Ordering::SeqCst);
                if let Some(delay) = shared.config.shard_delay {
                    std::thread::sleep(delay);
                }
                let response = handle_command(shared, &mut sessions, &job.session, &job.cmd);
                // The client may have hung up; its problem, not ours.
                let _ = job.reply.send(response);
            }
        }
    }
    // Graceful exit: flush a final checkpoint per hosted session.
    for (name, hosted) in &mut sessions {
        if let Err(e) = write_checkpoint(shared, name, hosted) {
            eprintln!("lahar-serve: final checkpoint for session '{name}' failed: {e}");
        }
    }
}

/// Takes a checkpoint and persists it when a checkpoint dir is set.
fn write_checkpoint(
    shared: &Shared,
    name: &str,
    hosted: &mut Hosted,
) -> Result<Checkpoint, EngineError> {
    let ckpt = hosted.session.checkpoint()?;
    if let Some(dir) = &shared.config.checkpoint_dir {
        std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(dir.join(checkpoint_filename(name)), ckpt.to_json()))
            .map_err(|e| EngineError::CheckpointUnsupported(format!("persist: {e}")))?;
    }
    Ok(ckpt)
}

/// The session config hosted sessions actually run under: the template,
/// minus the endpoints the server itself owns.
fn hosted_config(shared: &Shared) -> SessionConfig {
    let mut config = shared.config.session_config;
    config.metrics_addr = None;
    config.serve_addr = None;
    config
}

/// Fetches or creates/restores the named session on this shard. Only
/// the `open` handler calls this; every other command requires the
/// session to already exist.
fn open_session<'m>(
    shared: &Shared,
    sessions: &'m mut HashMap<String, Hosted>,
    name: &str,
) -> Result<(&'m mut Hosted, bool), EngineError> {
    // Entry-style would borrow `sessions` for the whole call; a plain
    // contains_key keeps the construction path readable.
    if !sessions.contains_key(name) {
        let config = hosted_config(shared);
        let ckpt_path = shared
            .config
            .checkpoint_dir
            .as_ref()
            .map(|dir| dir.join(checkpoint_filename(name)));
        let restored = match ckpt_path.as_ref().filter(|p| p.exists()) {
            None => None,
            Some(path) => {
                let doc = std::fs::read_to_string(path)
                    .map_err(|e| EngineError::CheckpointCorrupt(format!("read {path:?}: {e}")))?;
                let ckpt = Checkpoint::from_json(&doc)?;
                let session =
                    RealTimeSession::restore_with_config(shared.template.clone(), &ckpt, config)?;
                let mut by_name = HashMap::new();
                let mut sources = Vec::new();
                let mut series = Vec::new();
                for (idx, q) in ckpt.queries.iter().enumerate() {
                    by_name.insert(q.name.clone(), idx);
                    // Backfill the pre-restart prefix from the restored
                    // history; post-restart ticks extend it live.
                    series.push(crate::Lahar::prob_series(session.database(), &q.source)?);
                    sources.push(q.source.clone());
                }
                Some(Hosted {
                    session,
                    by_name,
                    sources,
                    series,
                })
            }
        };
        let (hosted, was_restored) = match restored {
            Some(hosted) => (hosted, true),
            None => (
                Hosted {
                    session: RealTimeSession::with_config(shared.template.clone(), config)?,
                    by_name: HashMap::new(),
                    sources: Vec::new(),
                    series: Vec::new(),
                },
                false,
            ),
        };
        shared
            .registry
            .lock()
            .expect("registry lock")
            .push((name.to_owned(), hosted.session.stats().clone()));
        sessions.insert(name.to_owned(), hosted);
        return Ok((sessions.get_mut(name).expect("just inserted"), was_restored));
    }
    Ok((sessions.get_mut(name).expect("checked"), false))
}

/// Ticks the session, auto-recovering from recoverable faults (worker
/// panics, tick deadlines, injected failpoints) so one bad tick never
/// takes the server down. Recovery completes the interrupted tick
/// bit-identically, so the returned alerts are the real μ(q@t).
fn tick_with_recovery(hosted: &mut Hosted) -> Result<Vec<Alert>, EngineError> {
    let alerts = match hosted.session.tick() {
        Ok(alerts) => alerts,
        Err(e) if e.is_recoverable() => hosted.session.recover()?,
        Err(e) => return Err(e),
    };
    hosted.record_alerts(&alerts);
    Ok(alerts)
}

/// Closes a whole batch of ticks, one epoch at a time so that a
/// recoverable mid-epoch fault (worker panic, deadline) only ever
/// interrupts the epoch currently in flight: recovery re-completes it
/// bit-identically and the loop carries on with the rest of the batch.
/// Every closed tick's alerts are recorded, so the hosted per-query
/// series stays exact across faults.
fn tick_epoch_with_recovery(
    hosted: &mut Hosted,
    ticks: Vec<Vec<(lahar_model::StreamId, Marginal)>>,
) -> Result<Vec<Alert>, EngineError> {
    let mut all = Vec::with_capacity(ticks.len());
    let mut queue = ticks.into_iter();
    let mut remaining = queue.len();
    while remaining > 0 {
        let chunk_len = hosted.session.epoch_chunk_len(remaining);
        let chunk: Vec<_> = queue.by_ref().take(chunk_len).collect();
        remaining -= chunk_len;
        let alerts = match hosted.session.tick_epoch(chunk) {
            Ok(alerts) => alerts,
            Err(e) if e.is_recoverable() => hosted.session.recover()?,
            Err(e) => return Err(e),
        };
        hosted.record_alerts(&alerts);
        all.extend(alerts);
    }
    Ok(all)
}

fn wire_alerts(alerts: &[Alert]) -> Vec<WireAlert> {
    alerts
        .iter()
        .map(|a| WireAlert {
            query: a.query.index(),
            name: a.name.to_string(),
            t: a.t,
            probability: a.probability,
        })
        .collect()
}

/// Resolves a wire marginal to a `(StreamId, Marginal)` staging pair.
fn resolve_marginal(
    db: &Database,
    m: &WireMarginal,
) -> Result<(lahar_model::StreamId, Marginal), EngineError> {
    let interner = db.interner();
    let stream_type = interner
        .lookup(&m.stream_type)
        .ok_or_else(|| EngineError::Protocol(format!("unknown stream type '{}'", m.stream_type)))?;
    let key = StreamKey {
        stream_type,
        key: m
            .key
            .iter()
            .map(|k| Value::Str(interner.intern(k)))
            .collect(),
    };
    let id = db.stream_id(&key).ok_or_else(|| {
        EngineError::Protocol(format!("unknown stream {}", key.display(interner)))
    })?;
    let marginal = Marginal::new(db.streams()[id.index()].domain(), m.probs.clone())?;
    Ok((id, marginal))
}

fn engine_error(e: EngineError) -> Response {
    let code = match &e {
        EngineError::Protocol(_) => "bad_request",
        EngineError::SessionPoisoned => "poisoned",
        _ => "engine",
    };
    Response::Error {
        code: code.to_owned(),
        message: e.to_string(),
    }
}

fn handle_command(
    shared: &Shared,
    sessions: &mut HashMap<String, Hosted>,
    session_name: &str,
    cmd: &Command,
) -> Response {
    // Session ops can panic (they also run user-ish query compilation);
    // a panic must poison one command, not the shard thread.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        handle_command_inner(shared, sessions, session_name, cmd)
    }));
    match result {
        Ok(response) => response,
        Err(payload) => Response::Error {
            code: "engine".to_owned(),
            message: format!(
                "command handler panicked: {}",
                crate::error::panic_message(payload)
            ),
        },
    }
}

fn handle_command_inner(
    shared: &Shared,
    sessions: &mut HashMap<String, Hosted>,
    session_name: &str,
    cmd: &Command,
) -> Response {
    // Only `open` creates (or restores) a session; every other command
    // addressed to an unknown name is rejected, so mistyped or hostile
    // wire-supplied names cannot accumulate server state.
    let (hosted, restored) = if matches!(cmd, Command::Open { .. }) {
        if !sessions.contains_key(session_name)
            && shared.registry.lock().expect("registry lock").len() >= shared.config.max_sessions
        {
            return Response::Error {
                code: CODE_SESSION_LIMIT.to_owned(),
                message: format!(
                    "server already hosts its maximum of {} sessions",
                    shared.config.max_sessions
                ),
            };
        }
        match open_session(shared, sessions, session_name) {
            Ok(pair) => pair,
            Err(e) => return engine_error(e),
        }
    } else {
        match sessions.get_mut(session_name) {
            Some(hosted) => (hosted, false),
            None => {
                return Response::Error {
                    code: CODE_UNKNOWN_SESSION.to_owned(),
                    message: format!(
                        "session '{session_name}' is not open on this server; send open first"
                    ),
                }
            }
        }
    };
    // A session poisoned by an earlier fault heals before the next
    // command; the recovered tick's alerts still extend the series.
    if hosted.session.is_poisoned() {
        match hosted.session.recover() {
            Ok(alerts) => hosted.record_alerts(&alerts),
            Err(e) => return engine_error(e),
        }
    }
    match cmd {
        Command::Open { .. } => Response::Opened {
            t: hosted.session.now(),
            restored,
        },
        Command::Register { name, query, .. } => {
            if hosted.by_name.contains_key(name) {
                return Response::Error {
                    code: "bad_request".to_owned(),
                    message: format!("query '{name}' is already registered"),
                };
            }
            // Late registration fast-forwards through history; the
            // pre-registration prefix comes from the batch engine so
            // `series` always starts at t = 0. Computed *before*
            // session.register: if it failed afterwards, the engine
            // would hold a query the by_name/sources/series tables
            // don't, misaligning every later registration's index.
            let prefix = if hosted.session.now() > 0 {
                match crate::Lahar::prob_series(hosted.session.database(), query) {
                    Ok(series) => series,
                    Err(e) => return engine_error(e),
                }
            } else {
                Vec::new()
            };
            let id = match hosted.session.register(name, query) {
                Ok(id) => id,
                Err(e) => return engine_error(e),
            };
            let idx = id.index();
            debug_assert_eq!(idx, hosted.series.len());
            hosted.by_name.insert(name.clone(), idx);
            hosted.sources.push(query.clone());
            hosted.series.push(prefix);
            Response::Registered { query: idx }
        }
        Command::Stage {
            marginals, tick, ..
        } => {
            let mut staged = Vec::with_capacity(marginals.len());
            for m in marginals {
                match resolve_marginal(hosted.session.database(), m) {
                    Ok(pair) => staged.push(pair),
                    Err(e) => return engine_error(e),
                }
            }
            let n = staged.len();
            if let Err(e) = hosted.session.stage_batch(staged) {
                return engine_error(e);
            }
            if !tick {
                return Response::Staged { staged: n };
            }
            match tick_with_recovery(hosted) {
                Ok(alerts) => Response::Ticked {
                    t: hosted.session.now(),
                    alerts: wire_alerts(&alerts),
                },
                Err(e) => engine_error(e),
            }
        }
        Command::StageTicks { ticks, .. } => {
            let mut resolved = Vec::with_capacity(ticks.len());
            for tick in ticks {
                let mut batch = Vec::with_capacity(tick.len());
                for m in tick {
                    match resolve_marginal(hosted.session.database(), m) {
                        Ok(pair) => batch.push(pair),
                        Err(e) => return engine_error(e),
                    }
                }
                resolved.push(batch);
            }
            if resolved.is_empty() {
                return Response::Error {
                    code: "bad_request".to_owned(),
                    message: "'ticks' must close at least one tick".to_owned(),
                };
            }
            match tick_epoch_with_recovery(hosted, resolved) {
                Ok(alerts) => Response::Ticked {
                    t: hosted.session.now(),
                    alerts: wire_alerts(&alerts),
                },
                Err(e) => engine_error(e),
            }
        }
        Command::Tick { .. } => match tick_with_recovery(hosted) {
            Ok(alerts) => Response::Ticked {
                t: hosted.session.now(),
                alerts: wire_alerts(&alerts),
            },
            Err(e) => engine_error(e),
        },
        Command::Series { query, .. } => match hosted.by_name.get(query) {
            None => Response::Error {
                code: "unknown_query".to_owned(),
                message: format!("no query named '{query}' in session '{session_name}'"),
            },
            Some(&idx) => Response::Series {
                query: query.clone(),
                series: hosted.series[idx].clone(),
            },
        },
        Command::Checkpoint { .. } => match write_checkpoint(shared, session_name, hosted) {
            Ok(ckpt) => Response::Checkpointed { t: ckpt.t() },
            Err(e) => engine_error(e),
        },
        Command::Ping | Command::Shutdown => Response::Error {
            code: "bad_request".to_owned(),
            message: "server-level command routed to a shard".to_owned(),
        },
    }
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

/// Renders every hosted session's snapshot (label `session="..."`) plus
/// the server's own queue/backpressure gauges.
fn render_metrics(shared: &Shared) -> String {
    let snaps: Vec<(String, StatsSnapshot)> = {
        let registry = shared.registry.lock().expect("registry lock");
        registry
            .iter()
            .map(|(name, stats)| (name.clone(), stats.snapshot()))
            .collect()
    };
    let refs: Vec<(&str, &StatsSnapshot)> = snaps
        .iter()
        .map(|(name, snap)| (name.as_str(), snap))
        .collect();
    let mut out = to_prometheus_sessions(&refs);
    writeln!(
        out,
        "# HELP lahar_server_queue_depth Commands queued per shard.\n\
         # TYPE lahar_server_queue_depth gauge"
    )
    .unwrap();
    for (i, shard) in shared.shards.iter().enumerate() {
        writeln!(
            out,
            "lahar_server_queue_depth{{shard=\"{i}\"}} {}",
            shard.depth.load(Ordering::SeqCst)
        )
        .unwrap();
    }
    writeln!(
        out,
        "# HELP lahar_server_queue_cap Bound of each shard's command queue.\n\
         # TYPE lahar_server_queue_cap gauge\n\
         lahar_server_queue_cap {}",
        shared.config.queue_cap
    )
    .unwrap();
    writeln!(
        out,
        "# HELP lahar_server_overloaded_total Commands rejected with an overloaded response.\n\
         # TYPE lahar_server_overloaded_total counter\n\
         lahar_server_overloaded_total {}",
        shared.overloaded_total.load(Ordering::SeqCst)
    )
    .unwrap();
    writeln!(
        out,
        "# HELP lahar_server_sessions Sessions hosted across all shards.\n\
         # TYPE lahar_server_sessions gauge\n\
         lahar_server_sessions {}",
        shared.registry.lock().expect("registry lock").len()
    )
    .unwrap();
    out
}
