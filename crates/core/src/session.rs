//! Push-based real-time processing sessions.
//!
//! The batch API ([`crate::Lahar`]) evaluates over a finished database;
//! a [`RealTimeSession`] is the *streaming* deployment mode of the paper's
//! real-time scenario (§2.4): the inference layer pushes one marginal per
//! declared stream per tick, and every registered (regular or extended
//! regular — the streaming classes of Theorems 3.3/3.7) query advances by
//! exactly one step, emitting `μ(q@t)` as the tick closes.
//!
//! # Sharded parallel ticks
//!
//! Internally the session owns every registered query's per-key chains
//! directly, partitioned into contiguous, balanced *shards*. A tick can
//! advance the shards either in place (sequential) or on a persistent
//! pool of worker threads (parallel), one shard per worker: the tick's
//! marginals are shared with the workers behind an `Arc`, each worker
//! steps its owned shard through [`crate::ChainEvaluator`] and sends it
//! back with the per-chain probabilities, and the session recombines
//! per-query answers on the caller's thread in canonical binding order
//! (`1 − Π(1 − pᵢ)` for extended regular queries — Theorem 3.7's
//! combination, applied identically on both paths, so parallel ticks
//! reproduce sequential answers). [`SessionConfig`] picks the path:
//! [`TickMode::Auto`] engages the pool once the session tracks at least
//! `parallel_threshold` chains and more than one worker is available.
//!
//! Sessions also keep [`EngineStats`]: per-tick latency histograms,
//! chains-stepped/bindings-grounded counters, and alert counts, all
//! snapshotable as JSON via [`crate::StatsSnapshot::to_json`].
//!
//! ```
//! use lahar_core::RealTimeSession;
//! use lahar_model::{Database, StreamBuilder};
//!
//! let mut db = Database::new();
//! db.declare_stream("At", &["person"], &["loc"]).unwrap();
//! let b = StreamBuilder::new(db.interner(), "At", &["joe"], &["office", "coffee"]);
//! db.add_stream(b.clone().independent(vec![]).unwrap()).unwrap();
//!
//! let mut session = RealTimeSession::new(db).unwrap();
//! let q = session
//!     .register("coffee", "At('joe','office') ; At('joe','coffee')")
//!     .unwrap();
//! session.stage(0, b.marginal(&[("office", 0.9)]).unwrap()).unwrap();
//! let alerts = session.tick().unwrap();
//! assert_eq!(alerts[0].query, q);
//! session.stage(0, b.marginal(&[("coffee", 0.6)]).unwrap()).unwrap();
//! let alerts = session.tick().unwrap();
//! assert!((alerts[0].probability - 0.54).abs() < 1e-9);
//! ```

use crate::chain::ChainEvaluator;
use crate::error::{panic_message, EngineError};
use crate::extended::ExtendedRegularEvaluator;
use crate::regular::RegularEvaluator;
use crate::stats::EngineStats;
use lahar_model::{Database, Marginal, StreamData};
use lahar_query::{classify, parse_and_validate, NormalQuery, Query, QueryClass, QueryError};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

/// Identifier of a registered query within a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryId(pub usize);

/// One query's answer for the tick that just closed.
#[derive(Debug, Clone)]
pub struct Alert {
    /// Which query.
    pub query: QueryId,
    /// The registered name.
    pub name: String,
    /// The closed timestep.
    pub t: u32,
    /// `μ(q@t)`.
    pub probability: f64,
}

/// Which tick path a session uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TickMode {
    /// Parallel once the session tracks at least
    /// [`SessionConfig::parallel_threshold`] chains and more than one
    /// worker is available; sequential below that.
    #[default]
    Auto,
    /// Always step chains in place on the caller's thread.
    Sequential,
    /// Always step shards on the worker pool.
    Parallel,
}

/// Tuning knobs for [`RealTimeSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Which tick path to use.
    pub tick_mode: TickMode,
    /// Worker threads for the parallel path; `0` means one per
    /// available core.
    pub n_workers: usize,
    /// Minimum total chain count for [`TickMode::Auto`] to engage the
    /// parallel path. Below it, per-tick work is too small to amortize
    /// the cross-thread handoff.
    pub parallel_threshold: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            tick_mode: TickMode::Auto,
            n_workers: 0,
            parallel_threshold: 256,
        }
    }
}

/// How a registered query recombines its chains' probabilities.
enum QueryKind {
    /// Single chain; its accept probability is the answer.
    Regular,
    /// Per-key chains combined as `1 − Π(1 − pᵢ)` (Thm 3.7).
    Extended,
}

struct Registered {
    name: String,
    kind: QueryKind,
    /// Global chain-sequence index of this query's first chain.
    first_chain: usize,
    n_chains: usize,
}

/// A contiguous run of chains, owned by the session between ticks and
/// shipped to a worker during a parallel tick.
struct Shard {
    /// Global sequence index of `chains[0]`.
    start: usize,
    /// `(query index, evaluator)` in global sequence order.
    chains: Vec<(usize, ChainEvaluator)>,
}

/// One parallel tick's work order for a worker.
struct Job {
    shard: Shard,
    marginals: Arc<Vec<Marginal>>,
}

/// `(worker index, stepped shard + per-chain probabilities | panic message)`.
type Reply = (usize, Result<(Shard, Vec<f64>), String>);

fn worker_loop(index: usize, jobs: Receiver<Job>, replies: Sender<Reply>) {
    while let Ok(job) = jobs.recv() {
        let Job { shard, marginals } = job;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let mut shard = shard;
            let mut probs = Vec::with_capacity(shard.chains.len());
            for (_, chain) in &mut shard.chains {
                probs.push(chain.step_with_marginals(&marginals)?);
            }
            Ok::<_, EngineError>((shard, probs))
        }));
        let reply = match outcome {
            Ok(Ok(done)) => Ok(done),
            Ok(Err(e)) => Err(e.to_string()),
            Err(payload) => Err(panic_message(payload)),
        };
        if replies.send((index, reply)).is_err() {
            return;
        }
    }
}

/// Persistent worker threads, one per shard. Dropping the pool closes
/// the job channels, which ends every worker loop.
struct WorkerPool {
    jobs: Vec<Sender<Job>>,
    replies: Receiver<Reply>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn spawn(n_workers: usize) -> Self {
        let (reply_tx, replies) = channel();
        let mut jobs = Vec::with_capacity(n_workers);
        let mut handles = Vec::with_capacity(n_workers);
        for index in 0..n_workers {
            let (job_tx, job_rx) = channel();
            let reply_tx = reply_tx.clone();
            jobs.push(job_tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("lahar-tick-{index}"))
                    .spawn(move || worker_loop(index, job_rx, reply_tx))
                    .expect("spawning a session worker thread"),
            );
        }
        Self {
            jobs,
            replies,
            handles,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.jobs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A push-based session over independent (real-time) streams.
///
/// Streams (with their keys and domains) must be declared up front —
/// matching the paper's architecture where "each query is run in a
/// separate process which receives one stream from the particle filter
/// per ... key" — because the streaming evaluators size their per-key
/// state at registration (Thm 3.7's `O(m)`).
pub struct RealTimeSession {
    db: Database,
    staged: Vec<Option<Marginal>>,
    queries: Vec<Registered>,
    /// All chains of all queries, contiguous in global sequence order.
    shards: Vec<Option<Shard>>,
    total_chains: usize,
    config: SessionConfig,
    pool: Option<WorkerPool>,
    /// Set when a worker panicked mid-tick: its shard is lost, so the
    /// session can no longer advance.
    poisoned: bool,
    stats: EngineStats,
    t: u32,
}

impl RealTimeSession {
    /// Creates a session over a database whose streams are all independent
    /// and empty (relations and catalog are used as-is).
    pub fn new(db: Database) -> Result<Self, EngineError> {
        Self::with_config(db, SessionConfig::default())
    }

    /// Creates a session with explicit tick-path tuning.
    pub fn with_config(db: Database, config: SessionConfig) -> Result<Self, EngineError> {
        for s in db.streams() {
            if !matches!(s.data(), StreamData::Independent(ms) if ms.is_empty()) {
                return Err(EngineError::Query(QueryError::NotInClass(
                    "real-time session requires empty independent streams".to_owned(),
                )));
            }
        }
        let staged = vec![None; db.streams().len()];
        Ok(Self {
            db,
            staged,
            queries: Vec::new(),
            shards: vec![Some(Shard {
                start: 0,
                chains: Vec::new(),
            })],
            total_chains: 0,
            config,
            pool: None,
            poisoned: false,
            stats: EngineStats::new(),
            t: 0,
        })
    }

    /// The number of ticks closed so far.
    pub fn now(&self) -> u32 {
        self.t
    }

    /// Read access to the underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The session's metrics handle (cloneable; see
    /// [`EngineStats::snapshot`]).
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Total per-key chains across all registered queries.
    pub fn n_chains(&self) -> usize {
        self.total_chains
    }

    /// Worker count the parallel path would use.
    fn effective_workers(&self) -> usize {
        if self.config.n_workers > 0 {
            self.config.n_workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Whether the next tick runs on the worker pool.
    fn parallel_tick(&self) -> bool {
        match self.config.tick_mode {
            TickMode::Sequential => false,
            TickMode::Parallel => true,
            TickMode::Auto => {
                self.effective_workers() > 1 && self.total_chains >= self.config.parallel_threshold
            }
        }
    }

    /// Registers a textual query; it must be in one of the streaming
    /// classes (regular or extended regular). Queries registered after
    /// ticks have closed are fast-forwarded through the recorded history
    /// so their answers stay aligned with the session clock.
    pub fn register(&mut self, name: &str, src: &str) -> Result<QueryId, EngineError> {
        let q = parse_and_validate(self.db.catalog(), self.db.interner(), src)?;
        self.register_query(name, &q)
    }

    /// Registers an AST query.
    pub fn register_query(&mut self, name: &str, q: &Query) -> Result<QueryId, EngineError> {
        self.ensure_live()?;
        let nq = NormalQuery::from_query(q);
        let (kind, mut new_chains): (QueryKind, Vec<ChainEvaluator>) =
            match classify(self.db.catalog(), &nq) {
                QueryClass::Regular => (
                    QueryKind::Regular,
                    vec![RegularEvaluator::new(&self.db, &nq)?.into_chain()],
                ),
                QueryClass::ExtendedRegular => (
                    QueryKind::Extended,
                    ExtendedRegularEvaluator::new(&self.db, &nq)?
                        .into_chains()
                        .into_iter()
                        .map(|(_, chain)| chain)
                        .collect(),
                ),
                other => {
                    return Err(EngineError::Query(QueryError::NotInClass(format!(
                        "streaming (regular or extended regular); query is {other}"
                    ))))
                }
            };
        // Fast-forward through already-closed ticks so the new query's
        // clock matches the session's.
        for chain in &mut new_chains {
            for _ in 0..self.t {
                chain.step(&self.db);
            }
        }
        let query_index = self.queries.len();
        self.queries.push(Registered {
            name: name.to_owned(),
            kind,
            first_chain: self.total_chains,
            n_chains: new_chains.len(),
        });
        self.total_chains += new_chains.len();
        self.stats.record_grounding(new_chains.len() as u64);
        self.repartition(new_chains.into_iter().map(|c| (query_index, c)).collect());
        Ok(QueryId(query_index))
    }

    /// Rebalances all chains (plus `appended`, which go at the end of the
    /// global order) into contiguous shards, one per slot.
    fn repartition(&mut self, appended: Vec<(usize, ChainEvaluator)>) {
        let n_shards = self.shards.len();
        let mut all: Vec<(usize, ChainEvaluator)> = Vec::with_capacity(self.total_chains);
        for slot in &mut self.shards {
            let shard = slot.take().expect("repartition requires all shards home");
            all.extend(shard.chains);
        }
        all.extend(appended);
        debug_assert_eq!(all.len(), self.total_chains);
        let base = all.len() / n_shards;
        let extra = all.len() % n_shards;
        let mut rest = all;
        let mut start = 0;
        for (i, slot) in self.shards.iter_mut().enumerate() {
            let take = base + usize::from(i < extra);
            let tail = rest.split_off(take);
            *slot = Some(Shard {
                start,
                chains: rest,
            });
            start += take;
            rest = tail;
        }
    }

    /// Grows the shard count to match the worker pool, spawning it on
    /// first use.
    fn ensure_pool(&mut self) {
        if self.pool.is_some() {
            return;
        }
        let n_workers = self.effective_workers();
        if self.shards.len() != n_workers {
            // Re-home every chain across the new shard count.
            let have: usize = self.shards.len();
            self.shards.extend((have..n_workers).map(|_| None));
            for slot in &mut self.shards {
                if slot.is_none() {
                    *slot = Some(Shard {
                        start: 0,
                        chains: Vec::new(),
                    });
                }
            }
            self.shards.truncate(n_workers);
            self.repartition(Vec::new());
        }
        self.pool = Some(WorkerPool::spawn(n_workers));
    }

    fn ensure_live(&self) -> Result<(), EngineError> {
        if self.poisoned {
            return Err(EngineError::WorkerPanicked(
                "session poisoned by an earlier worker panic".to_owned(),
            ));
        }
        Ok(())
    }

    /// Stages the current tick's marginal for stream `stream_index`
    /// (the index into `database().streams()`). Unstaged streams default
    /// to all-⊥ ("no event") when the tick closes.
    pub fn stage(&mut self, stream_index: usize, marginal: Marginal) -> Result<(), EngineError> {
        if stream_index >= self.staged.len() {
            return Err(EngineError::NoRelevantStreams);
        }
        let domain = self.db.streams()[stream_index].domain().clone();
        if marginal.probs().len() != domain.len() {
            return Err(EngineError::Model(
                lahar_model::ModelError::DimensionMismatch {
                    expected: domain.len(),
                    got: marginal.probs().len(),
                },
            ));
        }
        self.staged[stream_index] = Some(marginal);
        Ok(())
    }

    /// Closes the tick: appends every staged marginal (⊥ for unstaged
    /// streams), advances all registered queries one step — in place or
    /// across the worker pool, per [`SessionConfig`] — and returns their
    /// alerts for the closed timestep.
    pub fn tick(&mut self) -> Result<Vec<Alert>, EngineError> {
        self.ensure_live()?;
        let started = Instant::now();
        let mut tick_marginals = Vec::with_capacity(self.staged.len());
        for idx in 0..self.staged.len() {
            let marginal = self.staged[idx]
                .take()
                .unwrap_or_else(|| Marginal::all_bottom(self.db.streams()[idx].domain()));
            let id = self.db.streams()[idx].id().clone();
            self.db.push_marginal(&id, marginal.clone())?;
            tick_marginals.push(marginal);
        }
        let parallel = self.parallel_tick();
        let probs = if parallel {
            self.step_chains_parallel(tick_marginals)?
        } else {
            self.step_chains_sequential()
        };
        let t = self.t;
        let alerts: Vec<Alert> = self
            .queries
            .iter()
            .enumerate()
            .map(|(i, reg)| {
                let chains = &probs[reg.first_chain..reg.first_chain + reg.n_chains];
                let probability = match reg.kind {
                    QueryKind::Regular => chains[0],
                    // Thm 3.7: per-key instances are independent, so
                    // their combination is 1 − Π(1 − pᵢ), multiplied in
                    // canonical binding order for reproducibility.
                    QueryKind::Extended => {
                        1.0 - chains.iter().fold(1.0, |none, p| none * (1.0 - p))
                    }
                };
                Alert {
                    query: QueryId(i),
                    name: reg.name.clone(),
                    t,
                    probability,
                }
            })
            .collect();
        self.t += 1;
        self.stats
            .record_tick(started.elapsed(), self.total_chains as u64, parallel);
        self.stats.record_alerts(alerts.len() as u64);
        Ok(alerts)
    }

    /// Steps every chain in place, returning per-chain probabilities in
    /// global sequence order.
    fn step_chains_sequential(&mut self) -> Vec<f64> {
        let mut probs = vec![0.0; self.total_chains];
        for slot in &mut self.shards {
            let shard = slot.as_mut().expect("all shards home between ticks");
            for (offset, (_, chain)) in shard.chains.iter_mut().enumerate() {
                probs[shard.start + offset] = chain.step(&self.db);
            }
        }
        probs
    }

    /// Ships each shard to its worker with this tick's marginals and
    /// reassembles the per-chain probabilities in global sequence order.
    fn step_chains_parallel(
        &mut self,
        tick_marginals: Vec<Marginal>,
    ) -> Result<Vec<f64>, EngineError> {
        self.ensure_pool();
        let marginals = Arc::new(tick_marginals);
        let pool = self.pool.as_ref().expect("pool just ensured");
        let mut in_flight = 0usize;
        for (w, slot) in self.shards.iter_mut().enumerate() {
            let shard = slot.take().expect("all shards home between ticks");
            if shard.chains.is_empty() {
                *slot = Some(shard);
                continue;
            }
            if pool.jobs[w]
                .send(Job {
                    shard,
                    marginals: marginals.clone(),
                })
                .is_err()
            {
                // The worker is gone; its channel only closes when the
                // thread exited, which the reply loop below reports.
                self.poisoned = true;
                return Err(EngineError::WorkerPanicked(format!(
                    "session worker {w} exited before the tick"
                )));
            }
            in_flight += 1;
        }
        let mut probs = vec![0.0; self.total_chains];
        let mut first_error: Option<EngineError> = None;
        for _ in 0..in_flight {
            match pool.replies.recv() {
                Ok((w, Ok((shard, shard_probs)))) => {
                    probs[shard.start..shard.start + shard_probs.len()]
                        .copy_from_slice(&shard_probs);
                    self.shards[w] = Some(shard);
                }
                Ok((_, Err(msg))) => {
                    first_error.get_or_insert(EngineError::WorkerPanicked(msg));
                }
                Err(_) => {
                    first_error.get_or_insert_with(|| {
                        EngineError::WorkerPanicked("session worker pool disconnected".to_owned())
                    });
                    break;
                }
            }
        }
        if let Some(e) = first_error {
            // A lost shard means lost chain state: refuse further ticks
            // instead of silently answering from half the chains.
            self.poisoned = true;
            return Err(e);
        }
        Ok(probs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Lahar;
    use lahar_model::StreamBuilder;

    fn schema_db() -> (Database, StreamBuilder, StreamBuilder) {
        let mut db = Database::new();
        db.declare_stream("At", &["person"], &["loc"]).unwrap();
        db.declare_relation("Hallway", 1).unwrap();
        let i = db.interner().clone();
        db.insert_relation_tuple("Hallway", lahar_model::tuple([i.intern("h")]))
            .unwrap();
        let joe = StreamBuilder::new(&i, "At", &["joe"], &["a", "h", "c"]);
        let sue = StreamBuilder::new(&i, "At", &["sue"], &["a", "h", "c"]);
        db.add_stream(joe.clone().independent(vec![]).unwrap())
            .unwrap();
        db.add_stream(sue.clone().independent(vec![]).unwrap())
            .unwrap();
        (db, joe, sue)
    }

    /// The streaming session must produce exactly the batch answers.
    #[test]
    fn incremental_equals_batch() {
        let (db, joe, sue) = schema_db();
        let mut session = RealTimeSession::new(db).unwrap();
        session
            .register("regular", "At('joe','a') ; At('joe','c')")
            .unwrap();
        session
            .register("extended", "At(p,'a') ; At(p,'c')")
            .unwrap();

        let joe_ticks = [
            joe.marginal(&[("a", 0.6), ("h", 0.3)]).unwrap(),
            joe.marginal(&[("h", 0.5)]).unwrap(),
            joe.marginal(&[("c", 0.7)]).unwrap(),
        ];
        let sue_ticks = [
            sue.marginal(&[("a", 0.9)]).unwrap(),
            sue.marginal(&[("c", 0.4)]).unwrap(),
            sue.marginal(&[("c", 0.2), ("h", 0.3)]).unwrap(),
        ];
        let mut streamed: Vec<Vec<f64>> = vec![Vec::new(); 2];
        for t in 0..3 {
            session.stage(0, joe_ticks[t].clone()).unwrap();
            session.stage(1, sue_ticks[t].clone()).unwrap();
            for alert in session.tick().unwrap() {
                assert_eq!(alert.t, t as u32);
                streamed[alert.query.0].push(alert.probability);
            }
        }

        // Batch reference over the session's accumulated database.
        let batch_db = session.database();
        for (qi, src) in [
            (0, "At('joe','a') ; At('joe','c')"),
            (1, "At(p,'a') ; At(p,'c')"),
        ] {
            let batch = Lahar::prob_series(batch_db, src).unwrap();
            for (t, (s, b)) in streamed[qi].iter().zip(&batch).enumerate() {
                assert!((s - b).abs() < 1e-12, "query {qi} t={t}: {s} vs {b}");
            }
        }
    }

    #[test]
    fn unstaged_streams_default_to_bottom() {
        let (db, joe, _) = schema_db();
        let mut session = RealTimeSession::new(db).unwrap();
        let q = session.register("q", "At('joe','a')").unwrap();
        session
            .stage(0, joe.marginal(&[("a", 0.5)]).unwrap())
            .unwrap();
        let alerts = session.tick().unwrap();
        assert!((alerts[q.0].probability - 0.5).abs() < 1e-12);
        // Nothing staged: the tick closes with no events anywhere.
        let alerts = session.tick().unwrap();
        assert_eq!(alerts[q.0].probability, 0.0);
    }

    #[test]
    fn rejects_non_streaming_queries_and_bad_input() {
        let (db, joe, _) = schema_db();
        let mut session = RealTimeSession::new(db).unwrap();
        // Unsafe query: not streamable.
        assert!(session
            .register("bad", "sigma[x = y](At(x,'a') ; At(y,'c'))")
            .is_err());
        // Wrong-dimension marginal.
        let other = StreamBuilder::new(session.database().interner(), "At", &["zz"], &["only"]);
        assert!(session
            .stage(0, other.marginal(&[("only", 1.0)]).unwrap())
            .is_err());
        // Out-of-range stream index.
        assert!(session.stage(9, joe.marginal(&[]).unwrap()).is_err());
    }

    #[test]
    fn session_requires_empty_independent_streams() {
        let (_, joe, _) = schema_db();
        let mut db = Database::new();
        db.declare_stream("At", &["person"], &["loc"]).unwrap();
        let i = db.interner().clone();
        let b = StreamBuilder::new(&i, "At", &["joe"], &["a"]);
        db.add_stream(
            b.clone()
                .independent(vec![b.marginal(&[]).unwrap()])
                .unwrap(),
        )
        .unwrap();
        assert!(RealTimeSession::new(db).is_err());
        let _ = joe;
    }

    #[test]
    fn late_registration_fast_forwards_through_history() {
        let (db, joe, _) = schema_db();
        let mut session = RealTimeSession::new(db).unwrap();
        session
            .stage(0, joe.marginal(&[("a", 1.0)]).unwrap())
            .unwrap();
        session.tick().unwrap();
        // Registered after one tick: replays the recorded history so its
        // first alert is the true μ(q@1) over the full stream.
        let q = session
            .register("late", "At('joe','a') ; At('joe','c')")
            .unwrap();
        session
            .stage(0, joe.marginal(&[("c", 0.8)]).unwrap())
            .unwrap();
        let alerts = session.tick().unwrap();
        assert_eq!(alerts[q.0].t, 1);
        assert!((alerts[q.0].probability - 0.8).abs() < 1e-12);
    }

    /// Forced-parallel ticks answer exactly like a forced-sequential
    /// session fed the same marginals.
    #[test]
    fn parallel_ticks_match_sequential() {
        let mk = |mode| {
            let (db, joe, sue) = schema_db();
            let session = RealTimeSession::with_config(
                db,
                SessionConfig {
                    tick_mode: mode,
                    n_workers: 3,
                    ..SessionConfig::default()
                },
            )
            .unwrap();
            (session, joe, sue)
        };
        let (mut seq, joe, sue) = mk(TickMode::Sequential);
        let (mut par, _, _) = mk(TickMode::Parallel);
        for s in [&mut seq, &mut par] {
            s.register("r", "At('joe','a') ; At('joe','c')").unwrap();
            s.register("x", "At(p,'a') ; At(p,'c')").unwrap();
            s.register("h", "At(p, l)[Hallway(l)]").unwrap();
        }
        let ticks = [
            vec![(0, joe.marginal(&[("a", 0.6), ("h", 0.3)]).unwrap())],
            vec![
                (0, joe.marginal(&[("c", 0.5)]).unwrap()),
                (1, sue.marginal(&[("a", 0.8)]).unwrap()),
            ],
            vec![(1, sue.marginal(&[("c", 0.9), ("h", 0.05)]).unwrap())],
        ];
        for staged in &ticks {
            for (idx, m) in staged {
                seq.stage(*idx, m.clone()).unwrap();
                par.stage(*idx, m.clone()).unwrap();
            }
            let a = seq.tick().unwrap();
            let b = par.tick().unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.t, y.t);
                assert!(
                    (x.probability - y.probability).abs() < 1e-12,
                    "{}: {} vs {}",
                    x.name,
                    x.probability,
                    y.probability
                );
            }
        }
        let snap = par.stats().snapshot();
        assert_eq!(snap.ticks, 3);
        assert_eq!(snap.parallel_ticks, 3);
        assert_eq!(seq.stats().snapshot().parallel_ticks, 0);
    }

    /// Chains partition into contiguous balanced shards covering every
    /// registered chain exactly once.
    #[test]
    fn shards_stay_contiguous_and_balanced() {
        let (db, _, _) = schema_db();
        let mut session = RealTimeSession::with_config(
            db,
            SessionConfig {
                tick_mode: TickMode::Parallel,
                n_workers: 3,
                ..SessionConfig::default()
            },
        )
        .unwrap();
        session.register("a", "At(p,'h') ; At(p,'a')").unwrap(); // 2 chains
        session.register("b", "At('joe','a')").unwrap(); // 1 chain
        session.register("c", "At(p,'a') ; At(p,'c')").unwrap(); // 2 chains
        session.tick().unwrap(); // forces the pool + repartition
        assert_eq!(session.n_chains(), 5);
        let shards = &session.shards;
        assert_eq!(shards.len(), 3);
        let mut covered = 0;
        for slot in shards {
            let shard = slot.as_ref().unwrap();
            assert_eq!(shard.start, covered);
            covered += shard.chains.len();
            assert!((1..=2).contains(&shard.chains.len()));
        }
        assert_eq!(covered, 5);
    }

    #[test]
    fn stats_record_ticks_and_groundings() {
        let (db, joe, _) = schema_db();
        let mut session = RealTimeSession::new(db).unwrap();
        session.register("x", "At(p,'a') ; At(p,'c')").unwrap();
        session
            .stage(0, joe.marginal(&[("a", 0.4)]).unwrap())
            .unwrap();
        session.tick().unwrap();
        session.tick().unwrap();
        let snap = session.stats().snapshot();
        assert_eq!(snap.ticks, 2);
        assert_eq!(snap.bindings_grounded, 2);
        assert_eq!(snap.chains_stepped, 4);
        assert_eq!(snap.alerts_emitted, 2);
        assert_eq!(snap.tick_latency.count, 2);
        let json = snap.to_json();
        assert!(json.contains("\"ticks\":2"));
    }
}
