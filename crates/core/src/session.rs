//! Push-based real-time processing sessions.
//!
//! The batch API ([`crate::Lahar`]) evaluates over a finished database;
//! a [`RealTimeSession`] is the *streaming* deployment mode of the paper's
//! real-time scenario (§2.4): the inference layer pushes one marginal per
//! declared stream per tick, and every registered (regular or extended
//! regular — the streaming classes of Theorems 3.3/3.7) query advances by
//! exactly one step, emitting `μ(q@t)` as the tick closes.
//!
//! # Sharded, epoch-batched parallel ticks
//!
//! Internally the session owns every registered query's per-key chains
//! directly, partitioned into contiguous, balanced *shards*. A tick can
//! advance the shards either in place (sequential) or on the
//! process-shared worker pool ([`crate::pool`]): the tick's marginals
//! are shared with the workers behind an `Arc`, each worker steps its
//! shard through [`crate::ChainEvaluator`] and sends it back with the
//! per-chain probabilities, and the session recombines per-query
//! answers on the caller's thread in canonical binding order
//! (`1 − Π(1 − pᵢ)` for extended regular queries — Theorem 3.7's
//! combination, applied identically on both paths, so parallel ticks
//! reproduce sequential answers). [`SessionConfig`] picks the path:
//! [`TickMode::Auto`] engages the pool once the session tracks at least
//! `parallel_threshold` chains and more than one worker is available.
//!
//! When the caller can stage several ticks at once
//! ([`RealTimeSession::tick_epoch`] — the path `stage_batch` ingest,
//! replays, and history backfills use), the session ships all of them
//! to each shard in one *epoch* job: workers advance their chains
//! through every tick of the epoch before the single epoch join,
//! turning `k` cross-thread barriers into one while alert emission,
//! stats, auto-checkpoint cadence, and watchdog/poison/recover
//! semantics stay tick-accurate. [`SessionConfig::max_epoch_ticks`]
//! bounds how many ticks one join may cover.
//!
//! Sessions also keep [`EngineStats`]: per-tick latency histograms,
//! chains-stepped/bindings-grounded counters, and alert counts, all
//! snapshotable as JSON via [`crate::StatsSnapshot::to_json`].
//!
//! ```
//! use lahar_core::RealTimeSession;
//! use lahar_model::{Database, StreamBuilder};
//!
//! let mut db = Database::new();
//! db.declare_stream("At", &["person"], &["loc"]).unwrap();
//! let b = StreamBuilder::new(db.interner(), "At", &["joe"], &["office", "coffee"]);
//! db.add_stream(b.clone().independent(vec![]).unwrap()).unwrap();
//!
//! let mut session = RealTimeSession::new(db).unwrap();
//! let q = session
//!     .register("coffee", "At('joe','office') ; At('joe','coffee')")
//!     .unwrap();
//! let at_joe = session.stream_id(b.key()).unwrap();
//! session.stage(at_joe, b.marginal(&[("office", 0.9)]).unwrap()).unwrap();
//! let alerts = session.tick().unwrap();
//! assert_eq!(alerts[0].query, q);
//! session.stage(at_joe, b.marginal(&[("coffee", 0.6)]).unwrap()).unwrap();
//! let alerts = session.tick().unwrap();
//! assert!((alerts[0].probability - 0.54).abs() < 1e-9);
//! ```

use crate::chain::ChainEvaluator;
use crate::checkpoint::{Checkpoint, QueryMeta, CHECKPOINT_VERSION};
use crate::error::{panic_message, EngineError};
use crate::extended::ExtendedRegularEvaluator;
use crate::kernel::{KernelTickStats, SymCache};
use crate::regular::RegularEvaluator;
use crate::stats::EngineStats;
use lahar_model::{Database, Marginal, StreamData, StreamId, StreamKey};
use lahar_query::{classify, parse_and_validate, NormalQuery, Query, QueryClass, QueryError};
use std::net::SocketAddr;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Opaque identifier of a registered query within a session.
///
/// Produced by [`RealTimeSession::register`]; the only thing callers can
/// do with it is compare it, hash it, or read its registration order via
/// [`QueryId::index`] (queries are numbered `0, 1, …` in registration
/// order, which is also the order of [`Alert`]s within a tick).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryId(pub(crate) usize);

impl QueryId {
    /// The query's registration index (0-based, registration order).
    pub fn index(self) -> usize {
        self.0
    }
}

/// One query's answer for the tick that just closed.
#[derive(Debug, Clone)]
pub struct Alert {
    /// Which query.
    pub query: QueryId,
    /// The registered name. Shared (`Arc<str>`) so emitting an alert per
    /// query per tick never allocates.
    pub name: Arc<str>,
    /// The closed timestep.
    pub t: u32,
    /// `μ(q@t)`.
    pub probability: f64,
}

/// Which tick path a session uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TickMode {
    /// Parallel once the session tracks at least
    /// [`SessionConfig::parallel_threshold`] chains and more than one
    /// worker is available; sequential below that.
    #[default]
    Auto,
    /// Always step chains in place on the caller's thread.
    Sequential,
    /// Always step shards on the worker pool.
    Parallel,
}

/// Tuning knobs for [`RealTimeSession`].
///
/// Construct via [`SessionConfig::builder`] (validated) or start from
/// [`SessionConfig::default`] and adjust fields. The struct is
/// `#[non_exhaustive]`: downstream code cannot use struct-literal
/// construction, so fields can be added without breaking callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct SessionConfig {
    /// Which tick path to use.
    pub tick_mode: TickMode,
    /// Worker threads for the parallel path; `0` means one per
    /// available core.
    pub n_workers: usize,
    /// Minimum total chain count for [`TickMode::Auto`] to engage the
    /// parallel path. Below it, per-tick work is too small to amortize
    /// the cross-thread handoff.
    pub parallel_threshold: usize,
    /// Upper bound on how many staged ticks one epoch join may cover
    /// (see [`RealTimeSession::tick_epoch`]). Larger epochs amortize
    /// the shard handoff over more chain-steps; the watchdog deadline
    /// scales with the actual epoch length, so the knob trades handoff
    /// overhead against fault-detection latency. `1` degenerates to a
    /// join per tick.
    pub max_epoch_ticks: usize,
    /// Take an automatic [`RealTimeSession::checkpoint`] every this many
    /// closed ticks (`0` disables auto-checkpointing). Auto-checkpoints
    /// bound the recovery replay log to at most this many ticks.
    pub checkpoint_interval: usize,
    /// Watchdog deadline for a parallel tick. When the worker pool takes
    /// longer than this to return every shard, the tick fails with
    /// [`EngineError::TickTimeout`] and — after
    /// [`RealTimeSession::recover`] — the session runs *degraded*,
    /// forcing the sequential path until
    /// [`RealTimeSession::clear_degraded`]. `None` disables the
    /// watchdog.
    pub tick_deadline: Option<Duration>,
    /// Serve live metrics over HTTP from this address (see
    /// [`crate::MetricsServer`]): `GET /metrics` (Prometheus text
    /// format), `GET /healthz`, `GET /trace`. Port `0` picks a free
    /// port; [`RealTimeSession::metrics_addr`] reports the bound one.
    /// `None` (the default) serves nothing.
    pub metrics_addr: Option<SocketAddr>,
    /// Enable structured span tracing ([`crate::trace`]) when the
    /// session is created. The tracer is process-global, so this is a
    /// convenience for [`crate::trace::enable`]; spans export via
    /// [`crate::trace::chrome_trace_json`] or the `/trace` endpoint.
    pub trace: bool,
    /// Address the serving layer (`lahar serve`, see
    /// [`crate::LaharServer`]) listens on when this configuration is
    /// used as a server's per-session template. A standalone
    /// [`RealTimeSession`] ignores it. `None` (the default) means "not
    /// served".
    pub serve_addr: Option<SocketAddr>,
    /// Write-ahead-log fsync policy for served sessions (see
    /// [`crate::Durability`]): what an acknowledged `stage`/`tick`
    /// batch is guaranteed to survive. Applied by [`crate::LaharServer`]
    /// when a checkpoint directory is configured; a standalone
    /// [`RealTimeSession`] keeps no log. Defaults to
    /// [`crate::Durability::None`] (acks promise only the in-memory
    /// apply).
    pub durability: crate::wal::Durability,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            tick_mode: TickMode::Auto,
            n_workers: 0,
            parallel_threshold: 256,
            max_epoch_ticks: 32,
            checkpoint_interval: 0,
            tick_deadline: None,
            metrics_addr: None,
            trace: false,
            serve_addr: None,
            durability: crate::wal::Durability::None,
        }
    }
}

impl SessionConfig {
    /// A validating builder — the recommended way to construct a config.
    ///
    /// ```
    /// use lahar_core::{SessionConfig, TickMode};
    /// let config = SessionConfig::builder()
    ///     .tick_mode(TickMode::Parallel)
    ///     .n_workers(4)
    ///     .checkpoint_interval(64)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(config.n_workers, 4);
    /// ```
    pub fn builder() -> SessionConfigBuilder {
        SessionConfigBuilder::default()
    }
}

/// Builder for [`SessionConfig`] with build-time validation.
///
/// Setters record *explicit* choices; fields left unset keep their
/// [`SessionConfig::default`] values. [`SessionConfigBuilder::build`]
/// rejects contradictions a raw struct would silently accept:
///
/// * an explicit `checkpoint_interval(0)` — `0` is the "disabled"
///   sentinel, which you get by not calling the setter;
/// * an explicit `n_workers(0)` — `0` is the "one per core" sentinel,
///   which you get by not calling the setter;
/// * a metrics address equal to the serve address — the scrape endpoint
///   and the ingestion service cannot share one socket.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionConfigBuilder {
    tick_mode: Option<TickMode>,
    n_workers: Option<usize>,
    parallel_threshold: Option<usize>,
    max_epoch_ticks: Option<usize>,
    checkpoint_interval: Option<usize>,
    tick_deadline: Option<Duration>,
    metrics_addr: Option<SocketAddr>,
    trace: Option<bool>,
    serve_addr: Option<SocketAddr>,
    durability: Option<crate::wal::Durability>,
}

impl SessionConfigBuilder {
    /// Sets [`SessionConfig::tick_mode`].
    pub fn tick_mode(mut self, mode: TickMode) -> Self {
        self.tick_mode = Some(mode);
        self
    }

    /// Sets [`SessionConfig::n_workers`]. Must be non-zero: the "one
    /// worker per core" default is chosen by *not* calling this.
    pub fn n_workers(mut self, n: usize) -> Self {
        self.n_workers = Some(n);
        self
    }

    /// Sets [`SessionConfig::parallel_threshold`].
    pub fn parallel_threshold(mut self, chains: usize) -> Self {
        self.parallel_threshold = Some(chains);
        self
    }

    /// Sets [`SessionConfig::max_epoch_ticks`]. Must be non-zero: an
    /// epoch covers at least one tick.
    pub fn max_epoch_ticks(mut self, ticks: usize) -> Self {
        self.max_epoch_ticks = Some(ticks);
        self
    }

    /// Sets [`SessionConfig::checkpoint_interval`]. Must be non-zero:
    /// auto-checkpointing is disabled by *not* calling this.
    pub fn checkpoint_interval(mut self, ticks: usize) -> Self {
        self.checkpoint_interval = Some(ticks);
        self
    }

    /// Sets [`SessionConfig::tick_deadline`].
    pub fn tick_deadline(mut self, deadline: Duration) -> Self {
        self.tick_deadline = Some(deadline);
        self
    }

    /// Sets [`SessionConfig::metrics_addr`].
    pub fn metrics_addr(mut self, addr: SocketAddr) -> Self {
        self.metrics_addr = Some(addr);
        self
    }

    /// Sets [`SessionConfig::trace`].
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = Some(on);
        self
    }

    /// Sets [`SessionConfig::serve_addr`].
    pub fn serve_addr(mut self, addr: SocketAddr) -> Self {
        self.serve_addr = Some(addr);
        self
    }

    /// Sets [`SessionConfig::durability`].
    pub fn durability(mut self, level: crate::wal::Durability) -> Self {
        self.durability = Some(level);
        self
    }

    /// Validates the explicit choices and produces the config.
    pub fn build(self) -> Result<SessionConfig, EngineError> {
        if self.checkpoint_interval == Some(0) {
            return Err(EngineError::InvalidConfig(
                "checkpoint_interval must be non-zero (omit the setter to \
                 disable auto-checkpointing)"
                    .to_owned(),
            ));
        }
        if self.n_workers == Some(0) {
            return Err(EngineError::InvalidConfig(
                "n_workers must be non-zero (omit the setter for one worker \
                 per core)"
                    .to_owned(),
            ));
        }
        if self.max_epoch_ticks == Some(0) {
            return Err(EngineError::InvalidConfig(
                "max_epoch_ticks must be non-zero (an epoch covers at least \
                 one tick)"
                    .to_owned(),
            ));
        }
        if let (Some(metrics), Some(serve)) = (self.metrics_addr, self.serve_addr) {
            if metrics == serve {
                return Err(EngineError::InvalidConfig(format!(
                    "metrics_addr and serve_addr both bind {metrics}; the \
                     scrape endpoint and the ingestion service need distinct \
                     sockets"
                )));
            }
        }
        let defaults = SessionConfig::default();
        Ok(SessionConfig {
            tick_mode: self.tick_mode.unwrap_or(defaults.tick_mode),
            n_workers: self.n_workers.unwrap_or(defaults.n_workers),
            parallel_threshold: self
                .parallel_threshold
                .unwrap_or(defaults.parallel_threshold),
            max_epoch_ticks: self.max_epoch_ticks.unwrap_or(defaults.max_epoch_ticks),
            checkpoint_interval: self
                .checkpoint_interval
                .unwrap_or(defaults.checkpoint_interval),
            tick_deadline: self.tick_deadline,
            metrics_addr: self.metrics_addr,
            trace: self.trace.unwrap_or(defaults.trace),
            serve_addr: self.serve_addr,
            durability: self.durability.unwrap_or(defaults.durability),
        })
    }
}

/// How a registered query recombines its chains' probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueryKind {
    /// Single chain; its accept probability is the answer.
    Regular,
    /// Per-key chains combined as `1 − Π(1 − pᵢ)` (Thm 3.7).
    Extended,
}

struct Registered {
    name: Arc<str>,
    kind: QueryKind,
    /// The query's source text, kept for structural rebuilds during
    /// [`RealTimeSession::recover`] and for checkpoints. `None` when the
    /// query was registered from an AST
    /// ([`RealTimeSession::register_query`]), which makes the session
    /// non-checkpointable and the query non-recoverable.
    source: Option<String>,
    /// Global chain-sequence index of this query's first chain.
    first_chain: usize,
    n_chains: usize,
}

/// A contiguous run of chains, owned by the session between ticks and
/// shipped to a worker during a parallel tick.
struct Shard {
    /// Global sequence index of `chains[0]`.
    start: usize,
    /// `(query index, evaluator)` in global sequence order.
    chains: Vec<(usize, ChainEvaluator)>,
    /// Reusable SoA batch scratch ([`crate::soa`]); holds no chain
    /// state, travels with the shard to worker threads.
    scratch: crate::soa::SoaScratch,
}

/// One epoch's work order for a shard: advance every chain through all
/// `ticks` before reporting back — one join per epoch, not per tick.
struct EpochJob {
    shard: Shard,
    ticks: Vec<Arc<Vec<Marginal>>>,
}

/// Per-chain probabilities (shard order) plus wall-clock nanoseconds
/// attributed to each query index plus kernel-path telemetry, as
/// produced by [`step_shard`].
type SteppedShard = (Vec<f64>, Vec<(usize, u64)>, KernelTickStats);

/// [`SteppedShard`] over a whole epoch: per-tick probability rows
/// (epoch order, then shard order) with the nanoseconds and kernel
/// telemetry summed across the epoch's ticks.
type SteppedEpoch = (Vec<Vec<f64>>, Vec<(usize, u64)>, KernelTickStats);

/// `(shard index, stepped shard + per-tick probabilities + per-query
/// nanoseconds + kernel telemetry | fault)`.
type Reply = (usize, Result<(Shard, SteppedEpoch), EngineError>);

/// [`SteppedEpoch`] recombined across every shard: per-tick rows over
/// the *global* chain sequence, per-query (dense, indexed) nanosecond
/// totals, and summed kernel telemetry — what a whole-session stepping
/// path returns.
type SteppedSession = (Vec<Vec<f64>>, Vec<u64>, KernelTickStats);

/// Steps every chain in `shard` against the tick's marginals, returning
/// the per-chain probabilities (shard order), the wall-clock
/// nanoseconds attributed to each query index (one entry per contiguous
/// run of a query's chains — shards hold chains in global sequence
/// order, so a query appears in at most one run per shard), and the
/// kernel-path counters accumulated while stepping.
///
/// `cache` is this tick's symbol-distribution cache: chains with equal
/// `(streams, syms)` signatures share one union-convolution per tick.
/// The caller clears it once per tick ([`SymCache::begin_tick`]); the
/// sequential path threads one cache across all shards, each worker
/// owns one.
///
/// This is the single stepping kernel shared by the worker and
/// sequential paths, so both produce bit-identical arithmetic.
fn step_shard(
    shard: &mut Shard,
    marginals: &[Marginal],
    cache: &mut SymCache,
    failpoint: &'static str,
) -> Result<SteppedShard, EngineError> {
    // The batched SoA path produces bit-identical probabilities but
    // collapses per-chain work into lane loops, so it has no natural
    // place for the legacy per-chain `chain_step` spans. When tracing
    // is live, step scalar so the trace shape stays exactly as
    // documented; otherwise take the batched path.
    if !crate::trace::is_enabled() {
        return crate::soa::step_shard_chains(
            &mut shard.chains,
            marginals,
            cache,
            failpoint,
            &mut shard.scratch,
        );
    }
    // This scalar loop advances chain masses behind the batched path's
    // back; tell its scratch so no stale `next` matrix is swapped in as
    // a later tick's mass.
    shard.scratch.invalidate_residency();
    fn elapsed_ns(since: Instant) -> u64 {
        u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
    let mut probs = Vec::with_capacity(shard.chains.len());
    let mut query_ns: Vec<(usize, u64)> = Vec::new();
    let mut kernel = KernelTickStats::default();
    let mut run: Option<(usize, Instant)> = None;
    for (qi, chain) in &mut shard.chains {
        crate::failpoint::check(failpoint)?;
        match run {
            Some((q, started)) if q != *qi => {
                query_ns.push((q, elapsed_ns(started)));
                run = Some((*qi, Instant::now()));
            }
            None => run = Some((*qi, Instant::now())),
            _ => {}
        }
        let _span = crate::trace::span("chain_step")
            .with("query", *qi as u64)
            .with("t", u64::from(chain.next_t()));
        probs.push(chain.step_with_cache(marginals, Some(cache))?);
        kernel.steps.add(chain.take_kernel_counters());
    }
    if let Some((q, started)) = run {
        query_ns.push((q, elapsed_ns(started)));
    }
    let (sym_hits, sym_misses) = cache.take_counters();
    kernel.sym_hits += sym_hits;
    kernel.sym_misses += sym_misses;
    Ok((probs, query_ns, kernel))
}

/// Steps every chain in `shard` through every tick of an epoch —
/// shard-major, so one chain's working set stays hot across its `k`
/// steps. Each tick still gets its own cache generation
/// ([`SymCache::begin_tick`]): within one tick all chains step against
/// the same marginals, across ticks they never share distributions.
fn step_shard_epoch(
    shard: &mut Shard,
    ticks: &[Arc<Vec<Marginal>>],
    cache: &mut SymCache,
    failpoint: &'static str,
) -> Result<SteppedEpoch, EngineError> {
    let mut probs = Vec::with_capacity(ticks.len());
    let mut query_ns: Vec<(usize, u64)> = Vec::new();
    let mut kernel = KernelTickStats::default();
    for tick_marginals in ticks {
        cache.begin_tick();
        let (tick_probs, tick_ns, tick_kernel) =
            step_shard(shard, tick_marginals, cache, failpoint)?;
        probs.push(tick_probs);
        query_ns.extend(tick_ns);
        kernel.add(&tick_kernel);
    }
    Ok((probs, query_ns, kernel))
}

/// Runs one shard's epoch on the shared pool thread that picked it up,
/// always answering on the epoch's reply channel. Panics are caught and
/// reported as [`EngineError::WorkerPanicked`]; if the session already
/// abandoned the epoch (watchdog trip), the send lands on a dropped
/// receiver and is discarded here.
fn run_epoch_job(index: usize, job: EpochJob, replies: &Sender<Reply>) {
    let EpochJob { shard, ticks } = job;
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let mut shard = shard;
        let _span = crate::trace::span("worker_step")
            .with("worker", index as u64)
            .with("chains", shard.chains.len() as u64)
            .with("ticks", ticks.len() as u64);
        let stepped = crate::pool::with_sym_cache(|cache| {
            step_shard_epoch(&mut shard, &ticks, cache, "worker_step")
        })?;
        Ok::<_, EngineError>((shard, stepped))
    }));
    let reply = match outcome {
        Ok(Ok(done)) => Ok(done),
        Ok(Err(e)) => Err(e),
        Err(payload) => Err(EngineError::WorkerPanicked {
            worker: Some(index),
            message: panic_message(payload),
        }),
    };
    let _ = replies.send((index, reply));
}

/// A push-based session over independent (real-time) streams.
///
/// Streams (with their keys and domains) must be declared up front —
/// matching the paper's architecture where "each query is run in a
/// separate process which receives one stream from the particle filter
/// per ... key" — because the streaming evaluators size their per-key
/// state at registration (Thm 3.7's `O(m)`).
pub struct RealTimeSession {
    db: Database,
    staged: Vec<Option<Marginal>>,
    queries: Vec<Registered>,
    /// All chains of all queries, contiguous in global sequence order.
    shards: Vec<Option<Shard>>,
    total_chains: usize,
    config: SessionConfig,
    /// Set when a tick fault lost chain state (worker panic, injected
    /// error, watchdog timeout, or sequential-path panic). A poisoned
    /// session refuses every mutating entry point until
    /// [`RealTimeSession::recover`] repairs it.
    poisoned: bool,
    /// How many ticks the epoch being stepped right now covers; `0`
    /// between epochs. A fault mid-epoch leaves it set, telling
    /// [`RealTimeSession::recover`] how far past `t` the already
    /// recorded marginals reach.
    epoch_in_flight: u32,
    /// Set by a watchdog timeout: the pool is considered unreliable, so
    /// every future tick takes the sequential path (and is counted as a
    /// degraded tick) until [`RealTimeSession::clear_degraded`].
    degraded: bool,
    /// Reply channel of an epoch abandoned by the watchdog. Its jobs may
    /// still occupy shared-pool threads; [`RealTimeSession::recover`]
    /// drains it (discarding the stale replies) so the rebuilt session
    /// doesn't queue behind its own stragglers.
    stalled_epoch: Option<Receiver<Reply>>,
    /// The most recent checkpoint (manual or automatic); the fast
    /// restore base for [`RealTimeSession::recover`].
    last_checkpoint: Option<Checkpoint>,
    /// Marginals of every tick closed since `last_checkpoint`
    /// (`replay_log[i]` belongs to tick `replay_base + i`, including the
    /// currently failed tick when poisoned). Truncated at each
    /// checkpoint, so auto-checkpointing bounds it to
    /// [`SessionConfig::checkpoint_interval`] entries. Only maintained
    /// once a checkpoint exists: before that, recovery replays from the
    /// database's recorded history instead.
    replay_log: Vec<Arc<Vec<Marginal>>>,
    /// Tick index of `replay_log[0]`.
    replay_base: u32,
    stats: EngineStats,
    /// Live scrape endpoint, running while the session exists (see
    /// [`SessionConfig::metrics_addr`]). Holds a clone of `stats`, which
    /// is why restores load counter state in place rather than swapping
    /// the handle.
    metrics_server: Option<crate::expose::MetricsServer>,
    /// Symbol-distribution cache for the sequential tick path (workers
    /// own their own); cleared once per tick, arena reused across ticks.
    sym_cache: SymCache,
    t: u32,
}

impl RealTimeSession {
    /// Creates a session over a database whose streams are all independent
    /// and empty (relations and catalog are used as-is).
    pub fn new(db: Database) -> Result<Self, EngineError> {
        Self::with_config(db, SessionConfig::default())
    }

    /// Creates a session with explicit tick-path tuning.
    pub fn with_config(db: Database, config: SessionConfig) -> Result<Self, EngineError> {
        for s in db.streams() {
            if !matches!(s.data(), StreamData::Independent(ms) if ms.is_empty()) {
                return Err(EngineError::Query(QueryError::NotInClass(
                    "real-time session requires empty independent streams".to_owned(),
                )));
            }
        }
        let staged = vec![None; db.streams().len()];
        if config.trace {
            crate::trace::enable();
        }
        let stats = EngineStats::new();
        let metrics_server = match config.metrics_addr {
            Some(addr) => Some(crate::expose::MetricsServer::start(addr, stats.clone())?),
            None => None,
        };
        Ok(Self {
            db,
            staged,
            queries: Vec::new(),
            shards: vec![Some(Shard {
                start: 0,
                chains: Vec::new(),
                scratch: crate::soa::SoaScratch::default(),
            })],
            total_chains: 0,
            config,
            poisoned: false,
            epoch_in_flight: 0,
            degraded: false,
            stalled_epoch: None,
            last_checkpoint: None,
            replay_log: Vec::new(),
            replay_base: 0,
            stats,
            metrics_server,
            sym_cache: SymCache::new(),
            t: 0,
        })
    }

    /// The number of ticks closed so far.
    pub fn now(&self) -> u32 {
        self.t
    }

    /// Read access to the underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The session's metrics handle (cloneable; see
    /// [`EngineStats::snapshot`]).
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The address the metrics endpoint actually bound (resolves a
    /// requested port `0`), or `None` when
    /// [`SessionConfig::metrics_addr`] was unset.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_server.as_ref().map(|s| s.addr())
    }

    /// Total per-key chains across all registered queries.
    pub fn n_chains(&self) -> usize {
        self.total_chains
    }

    /// True when a tick fault has poisoned the session. Every mutating
    /// entry point ([`RealTimeSession::stage`],
    /// [`RealTimeSession::register`], [`RealTimeSession::tick`],
    /// [`RealTimeSession::checkpoint`]) fails with
    /// [`EngineError::SessionPoisoned`] until
    /// [`RealTimeSession::recover`] succeeds.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// True when a watchdog timeout has forced the session onto the
    /// sequential path (see [`SessionConfig::tick_deadline`]).
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Re-enables the parallel path after degraded mode (e.g. once the
    /// load spike that tripped the watchdog has passed).
    pub fn clear_degraded(&mut self) {
        self.degraded = false;
        self.stats.set_degraded(false);
    }

    /// The most recent checkpoint taken (manually or automatically), if
    /// any.
    pub fn last_checkpoint(&self) -> Option<&Checkpoint> {
        self.last_checkpoint.as_ref()
    }

    /// Forces every chain onto the interpreted (mutex) transition path,
    /// bypassing the dense compiled tables. Answers are bit-identical
    /// either way; this exists so benchmarks and differential tests can
    /// measure/verify the compiled kernels against the interpreter.
    pub fn force_interpreter(&mut self, on: bool) {
        for slot in &mut self.shards {
            if let Some(shard) = slot.as_mut() {
                for (_, chain) in &mut shard.chains {
                    chain.force_interpreter(on);
                }
            }
        }
    }

    /// Shard count the parallel path would use. Decoupled from the
    /// shared pool's thread count: shards are a per-session partition,
    /// threads a per-process budget.
    fn effective_workers(&self) -> usize {
        effective_workers_of(&self.config)
    }

    /// Whether the configured [`TickMode`] asks for the parallel path,
    /// before the degraded-mode override. An epoch actually runs
    /// parallel only when this holds *and* the session is not degraded;
    /// the distinction is what `lahar_degraded_ticks` counts — ticks
    /// genuinely diverted off the pool, not ticks that never wanted it.
    fn wants_parallel(&self) -> bool {
        match self.config.tick_mode {
            TickMode::Sequential => false,
            TickMode::Parallel => true,
            TickMode::Auto => {
                self.effective_workers() > 1 && self.total_chains >= self.config.parallel_threshold
            }
        }
    }

    /// Registers a textual query; it must be in one of the streaming
    /// classes (regular or extended regular). Queries registered after
    /// ticks have closed are fast-forwarded through the recorded history
    /// so their answers stay aligned with the session clock.
    pub fn register(&mut self, name: &str, src: &str) -> Result<QueryId, EngineError> {
        self.ensure_live()?;
        let q = parse_and_validate(self.db.catalog(), self.db.interner(), src)?;
        self.register_impl(name, &q, Some(src.to_owned()))
    }

    /// Registers an AST query. Because the source text is not available,
    /// a session holding AST-registered queries cannot be checkpointed
    /// or structurally recovered — prefer [`RealTimeSession::register`]
    /// when resilience matters.
    pub fn register_query(&mut self, name: &str, q: &Query) -> Result<QueryId, EngineError> {
        self.ensure_live()?;
        self.register_impl(name, q, None)
    }

    fn register_impl(
        &mut self,
        name: &str,
        q: &Query,
        source: Option<String>,
    ) -> Result<QueryId, EngineError> {
        let (kind, mut new_chains) = compile_chains(&self.db, q)?;
        // Fast-forward through already-closed ticks so the new query's
        // clock matches the session's.
        for chain in &mut new_chains {
            for _ in 0..self.t {
                chain.step(&self.db);
            }
        }
        let query_index = self.queries.len();
        self.queries.push(Registered {
            name: Arc::from(name),
            kind,
            source,
            first_chain: self.total_chains,
            n_chains: new_chains.len(),
        });
        self.total_chains += new_chains.len();
        self.stats.record_grounding(new_chains.len() as u64);
        self.stats
            .register_query(query_index, name, new_chains.len() as u64);
        self.repartition(new_chains.into_iter().map(|c| (query_index, c)).collect());
        self.record_automata_stats();
        Ok(QueryId(query_index))
    }

    /// Recounts how many chains run on a shared compiled automaton and
    /// how many distinct automata back them, publishing both gauges.
    fn record_automata_stats(&self) {
        let mut ids: Vec<usize> = Vec::new();
        let mut attached = 0u64;
        for slot in &self.shards {
            let Some(shard) = slot.as_ref() else { continue };
            for (_, chain) in &shard.chains {
                if let Some(id) = chain.automaton_id() {
                    attached += 1;
                    if !ids.contains(&id) {
                        ids.push(id);
                    }
                }
            }
        }
        self.stats.record_automata(ids.len() as u64, attached);
    }

    /// Rebalances all chains (plus `appended`, which go at the end of the
    /// global order) into contiguous shards, one per slot.
    fn repartition(&mut self, appended: Vec<(usize, ChainEvaluator)>) {
        let n_shards = self.shards.len();
        let mut all: Vec<(usize, ChainEvaluator)> = Vec::with_capacity(self.total_chains);
        for slot in &mut self.shards {
            let shard = slot.take().expect("repartition requires all shards home");
            all.extend(shard.chains);
        }
        all.extend(appended);
        debug_assert_eq!(all.len(), self.total_chains);
        let base = all.len() / n_shards;
        let extra = all.len() % n_shards;
        let mut rest = all;
        let mut start = 0;
        for (i, slot) in self.shards.iter_mut().enumerate() {
            let take = base + usize::from(i < extra);
            let tail = rest.split_off(take);
            *slot = Some(Shard {
                start,
                chains: rest,
                scratch: crate::soa::SoaScratch::default(),
            });
            start += take;
            rest = tail;
        }
    }

    /// Re-homes every chain across exactly `n` shards. All chains are
    /// collected from the *old* layout before the shard list is
    /// resized — the historical bug here truncated first, silently
    /// dropping the trailing shards' chains whenever the count shrank
    /// (e.g. restoring a wide checkpoint onto a narrower worker
    /// config).
    fn ensure_shards(&mut self, n: usize) {
        let n = n.max(1);
        if self.shards.len() == n {
            return;
        }
        let mut all: Vec<(usize, ChainEvaluator)> = Vec::with_capacity(self.total_chains);
        for slot in &mut self.shards {
            let shard = slot.take().expect("all shards home between ticks");
            all.extend(shard.chains);
        }
        self.shards = (0..n)
            .map(|_| {
                Some(Shard {
                    start: 0,
                    chains: Vec::new(),
                    scratch: crate::soa::SoaScratch::default(),
                })
            })
            .collect();
        self.repartition(all);
    }

    fn ensure_live(&self) -> Result<(), EngineError> {
        if self.poisoned {
            return Err(EngineError::SessionPoisoned);
        }
        Ok(())
    }

    /// Resolves the opaque [`StreamId`] handle for a declared stream's
    /// identity key — shorthand for `database().stream_id(key)`.
    pub fn stream_id(&self, key: &StreamKey) -> Option<StreamId> {
        self.db.stream_id(key)
    }

    /// Stages the current tick's marginal for the identified stream.
    /// Unstaged streams default to all-⊥ ("no event") when the tick
    /// closes.
    ///
    /// The handle must come from this session's database (see
    /// [`RealTimeSession::stream_id`]) or a schema-identical clone of
    /// it, such as the manifest the session was loaded from.
    pub fn stage(&mut self, stream: StreamId, marginal: Marginal) -> Result<(), EngineError> {
        self.ensure_live()?;
        self.check_stageable(stream, &marginal)?;
        self.staged[stream.index()] = Some(marginal);
        self.stats.record_staged(1);
        Ok(())
    }

    /// The validation half of [`RealTimeSession::stage`], shared with
    /// the epoch path so a whole epoch can be vetted *before* any tick
    /// of it mutates the database.
    fn check_stageable(&self, stream: StreamId, marginal: &Marginal) -> Result<(), EngineError> {
        let stream_index = stream.index();
        if stream_index >= self.staged.len() {
            return Err(EngineError::NoRelevantStreams);
        }
        let domain = self.db.streams()[stream_index].domain();
        if marginal.probs().len() != domain.len() {
            return Err(EngineError::Model(
                lahar_model::ModelError::DimensionMismatch {
                    expected: domain.len(),
                    got: marginal.probs().len(),
                },
            ));
        }
        Ok(())
    }

    /// Stages one tick's marginals for several streams at once — the
    /// batched ingestion entry point the serving layer uses, so one
    /// network frame can carry a whole tick's worth of staging. Stops at
    /// the first error; earlier entries stay staged.
    pub fn stage_batch(
        &mut self,
        marginals: impl IntoIterator<Item = (StreamId, Marginal)>,
    ) -> Result<(), EngineError> {
        for (stream, marginal) in marginals {
            self.stage(stream, marginal)?;
        }
        Ok(())
    }

    /// [`RealTimeSession::stage`] addressed by raw stream index.
    #[deprecated(
        since = "0.1.0",
        note = "address streams with the opaque `StreamId` handle: \
                `session.stage(session.stream_id(key).unwrap(), marginal)`"
    )]
    pub fn stage_at_index(
        &mut self,
        stream_index: usize,
        marginal: Marginal,
    ) -> Result<(), EngineError> {
        let id = self
            .db
            .stream_id_at(stream_index)
            .ok_or(EngineError::NoRelevantStreams)?;
        self.stage(id, marginal)
    }

    /// Closes the tick: appends every staged marginal (⊥ for unstaged
    /// streams), advances all registered queries one step — in place or
    /// across the worker pool, per [`SessionConfig`] — and returns their
    /// alerts for the closed timestep.
    pub fn tick(&mut self) -> Result<Vec<Alert>, EngineError> {
        self.tick_epoch(vec![Vec::new()])
    }

    /// Closes `ticks.len()` ticks as one or more *epochs*: each element
    /// is one tick's stage batch (the first also folds in anything
    /// already staged via [`RealTimeSession::stage`]), and the parallel
    /// path ships up to [`SessionConfig::max_epoch_ticks`] of them to
    /// each shard per join. Alerts come back flattened tick-major — for
    /// each closed tick, one alert per registered query in index order —
    /// bit-identical to closing the same ticks one
    /// [`RealTimeSession::tick`] at a time.
    ///
    /// Auto-checkpoint cadence is preserved exactly: epochs are split at
    /// [`SessionConfig::checkpoint_interval`] boundaries so snapshots
    /// land on the same ticks they would have under per-tick stepping.
    pub fn tick_epoch(
        &mut self,
        ticks: Vec<Vec<(StreamId, Marginal)>>,
    ) -> Result<Vec<Alert>, EngineError> {
        self.ensure_live()?;
        let mut alerts = Vec::with_capacity(ticks.len() * self.queries.len());
        let mut queue = ticks.into_iter();
        let mut remaining = queue.len();
        while remaining > 0 {
            let chunk_len = self.epoch_chunk_len(remaining);
            let interval = self.config.checkpoint_interval;
            let chunk: Vec<_> = queue.by_ref().take(chunk_len).collect();
            remaining -= chunk_len;
            alerts.extend(self.close_epoch(chunk)?);
            if interval > 0 && (self.t as usize).is_multiple_of(interval) {
                // Auto-checkpointing needs every query's source text;
                // with AST-registered queries this surfaces as a tick
                // error rather than silently skipping the snapshot.
                self.checkpoint()?;
            }
        }
        Ok(alerts)
    }

    /// How many of `remaining` queued ticks the next epoch covers: at
    /// most [`SessionConfig::max_epoch_ticks`], never crossing a
    /// [`SessionConfig::checkpoint_interval`] boundary. Exposed so the
    /// serving layer can feed [`RealTimeSession::tick_epoch`] exactly
    /// one epoch at a time (its per-query alert series then stays exact
    /// even when an epoch faults and recovery re-completes it).
    pub(crate) fn epoch_chunk_len(&self, remaining: usize) -> usize {
        let mut chunk_len = remaining.min(self.config.max_epoch_ticks.max(1));
        let interval = self.config.checkpoint_interval;
        if interval > 0 {
            chunk_len = chunk_len.min(interval - (self.t as usize % interval));
        }
        chunk_len
    }

    /// Closes one epoch of `ticks.len()` ≥ 1 ticks under a single join.
    fn close_epoch(
        &mut self,
        ticks: Vec<Vec<(StreamId, Marginal)>>,
    ) -> Result<Vec<Alert>, EngineError> {
        let k = ticks.len();
        debug_assert!(k >= 1, "an epoch covers at least one tick");
        let started = Instant::now();
        let _tick_span = crate::trace::span("tick")
            .with("t", u64::from(self.t))
            .with("chains", self.total_chains as u64)
            .with("ticks", k as u64);
        // Vet the whole epoch before the first mutation: a bad marginal
        // in tick j must not leave ticks 0..j already pushed into the
        // history with their chains never stepped.
        for batch in &ticks {
            for (stream, marginal) in batch {
                self.check_stageable(*stream, marginal)?;
            }
        }
        let mut epoch: Vec<Arc<Vec<Marginal>>> = Vec::with_capacity(k);
        for batch in ticks {
            self.stats.record_staged(batch.len() as u64);
            for (stream, marginal) in batch {
                self.staged[stream.index()] = Some(marginal);
            }
            let mut tick_marginals = Vec::with_capacity(self.staged.len());
            for idx in 0..self.staged.len() {
                let marginal = self.staged[idx]
                    .take()
                    .unwrap_or_else(|| Marginal::all_bottom(self.db.streams()[idx].domain()));
                self.db.push_marginal_at(idx, marginal.clone())?;
                tick_marginals.push(marginal);
            }
            let marginals = Arc::new(tick_marginals);
            if self.last_checkpoint.is_some() {
                // Appended before stepping so the marginals of an epoch
                // that faults mid-step are already available to
                // recover().
                self.replay_log.push(marginals.clone());
            }
            epoch.push(marginals);
        }
        let wants_parallel = self.wants_parallel();
        // Degraded mode overrides every `TickMode`: after a watchdog
        // timeout the pool is not trusted until clear_degraded().
        let parallel = wants_parallel && !self.degraded;
        self.epoch_in_flight = k as u32;
        let (probs, query_ns, kernel) = if parallel {
            self.step_chains_parallel(&epoch)?
        } else {
            self.step_chains_sequential(&epoch)?
        };
        // A fault above returns early, leaving `epoch_in_flight` set for
        // recover(); reaching here means every tick of the epoch closed.
        self.epoch_in_flight = 0;
        self.stats.record_kernel(&kernel);
        self.stats.record_epoch(k as u64);
        let per_tick_elapsed = started.elapsed() / k as u32;
        let mut alerts = Vec::with_capacity(k * self.queries.len());
        for tick_probs in &probs {
            let tick_alerts = self.combine_alerts(tick_probs, self.t);
            self.t += 1;
            self.stats
                .record_tick(per_tick_elapsed, self.total_chains as u64, parallel);
            if wants_parallel && !parallel {
                self.stats.record_degraded_tick();
            }
            self.stats.record_alerts(tick_alerts.len() as u64);
            self.stats
                .record_query_ticks(tick_alerts.iter().map(|alert| {
                    (
                        alert.query.0,
                        query_ns.get(alert.query.0).map(|ns| ns / k as u64),
                        alert.probability,
                    )
                }));
            alerts.extend(tick_alerts);
        }
        Ok(alerts)
    }

    /// Recombines per-chain probabilities (global sequence order) into
    /// per-query alerts for the closing tick `t`.
    fn combine_alerts(&self, probs: &[f64], t: u32) -> Vec<Alert> {
        self.queries
            .iter()
            .enumerate()
            .map(|(i, reg)| {
                let chains = &probs[reg.first_chain..reg.first_chain + reg.n_chains];
                let probability = match reg.kind {
                    QueryKind::Regular => chains[0],
                    // Thm 3.7: per-key instances are independent, so
                    // their combination is 1 − Π(1 − pᵢ), multiplied in
                    // canonical binding order for reproducibility.
                    QueryKind::Extended => {
                        1.0 - chains.iter().fold(1.0, |none, p| none * (1.0 - p))
                    }
                };
                Alert {
                    query: QueryId(i),
                    name: reg.name.clone(),
                    t,
                    probability,
                }
            })
            .collect()
    }

    /// Steps every chain in place, returning per-chain probabilities in
    /// global sequence order. Uses the same staged-marginal arithmetic
    /// as the worker path ([`ChainEvaluator::step_with_marginals`]), so
    /// both paths produce bit-identical answers. A panic or injected
    /// error mid-loop leaves unknown chains half-stepped, so the whole
    /// chain set is dropped and the session poisoned — recover() then
    /// rebuilds everything.
    fn step_chains_sequential(
        &mut self,
        epoch: &[Arc<Vec<Marginal>>],
    ) -> Result<SteppedSession, EngineError> {
        let n_shards = self.shards.len();
        let mut shards = std::mem::take(&mut self.shards);
        let total = self.total_chains;
        let n_queries = self.queries.len();
        let cache = &mut self.sym_cache;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut epoch_probs = Vec::with_capacity(epoch.len());
            let mut query_ns = vec![0u64; n_queries];
            let mut kernel = KernelTickStats::default();
            for tick_marginals in epoch {
                // One cache generation per tick, shared by every shard:
                // within a tick all chains step against the same staged
                // marginals, so equal signatures mean equal
                // distributions across shards too.
                cache.begin_tick();
                let mut probs = vec![0.0; total];
                for slot in &mut shards {
                    let shard = slot.as_mut().expect("all shards home between ticks");
                    let (shard_probs, shard_ns, shard_kernel) =
                        step_shard(shard, tick_marginals, cache, "sequential_step")?;
                    probs[shard.start..shard.start + shard_probs.len()]
                        .copy_from_slice(&shard_probs);
                    for (qi, ns) in shard_ns {
                        query_ns[qi] = query_ns[qi].saturating_add(ns);
                    }
                    kernel.add(&shard_kernel);
                }
                epoch_probs.push(probs);
            }
            Ok::<_, EngineError>((epoch_probs, query_ns, kernel))
        }));
        match outcome {
            Ok(Ok(stepped)) => {
                self.shards = shards;
                Ok(stepped)
            }
            Ok(Err(e)) => {
                self.shards = (0..n_shards).map(|_| None).collect();
                self.poisoned = true;
                self.stats.set_poisoned(true);
                Err(e)
            }
            Err(payload) => {
                self.shards = (0..n_shards).map(|_| None).collect();
                self.poisoned = true;
                self.stats.set_poisoned(true);
                Err(EngineError::WorkerPanicked {
                    worker: None,
                    message: panic_message(payload),
                })
            }
        }
    }

    /// Ships each shard to the shared pool with the whole epoch's
    /// marginals and reassembles the per-tick, per-chain probabilities
    /// in global sequence order — one join for the entire epoch. With
    /// [`SessionConfig::tick_deadline`] set, a watchdog bounds how long
    /// the pool may hold the epoch (the per-tick deadline × epoch
    /// length): exceeding it poisons the session (recoverable) and
    /// flips it into degraded mode. The reply channel is fresh per
    /// epoch, so a late reply from an abandoned epoch lands on a dead
    /// receiver instead of a later epoch's join.
    fn step_chains_parallel(
        &mut self,
        epoch: &[Arc<Vec<Marginal>>],
    ) -> Result<SteppedSession, EngineError> {
        self.ensure_shards(self.effective_workers());
        let k = epoch.len();
        let deadline = self
            .config
            .tick_deadline
            .map(|d| d.saturating_mul(k as u32))
            .map(|d| (d, Instant::now() + d));
        let (reply_tx, replies) = channel::<Reply>();
        let mut in_flight = 0usize;
        for (w, slot) in self.shards.iter_mut().enumerate() {
            let shard = slot.take().expect("all shards home between ticks");
            if shard.chains.is_empty() {
                *slot = Some(shard);
                continue;
            }
            let job = EpochJob {
                shard,
                ticks: epoch.to_vec(),
            };
            let reply_tx = reply_tx.clone();
            crate::pool::spawn(move || run_epoch_job(w, job, &reply_tx));
            in_flight += 1;
        }
        drop(reply_tx);
        let mut probs = vec![vec![0.0; self.total_chains]; k];
        let mut query_ns = vec![0u64; self.queries.len()];
        let mut kernel = KernelTickStats::default();
        let mut first_error: Option<EngineError> = None;
        let mut timed_out = false;
        for _ in 0..in_flight {
            let reply = match deadline {
                None => replies.recv().map_err(|_| None),
                Some((budget, until)) => {
                    let remaining = until.saturating_duration_since(Instant::now());
                    replies.recv_timeout(remaining).map_err(|e| match e {
                        RecvTimeoutError::Timeout => Some(budget),
                        RecvTimeoutError::Disconnected => None,
                    })
                }
            };
            match reply {
                Ok((w, Ok((shard, (shard_probs, shard_ns, shard_kernel))))) => {
                    for (j, tick_probs) in shard_probs.iter().enumerate() {
                        probs[j][shard.start..shard.start + tick_probs.len()]
                            .copy_from_slice(tick_probs);
                    }
                    for (qi, ns) in shard_ns {
                        query_ns[qi] = query_ns[qi].saturating_add(ns);
                    }
                    kernel.add(&shard_kernel);
                    self.shards[w] = Some(shard);
                }
                Ok((_, Err(e))) => {
                    first_error.get_or_insert(e);
                }
                Err(Some(budget)) => {
                    // Watchdog tripped: shards still in flight are
                    // treated as lost (their late replies land on this
                    // epoch's dropped receiver), and the pool is no
                    // longer trusted until the caller clears degraded
                    // mode.
                    self.degraded = true;
                    self.stats.set_degraded(true);
                    timed_out = true;
                    first_error.get_or_insert(EngineError::TickTimeout { deadline: budget });
                    break;
                }
                Err(None) => {
                    first_error.get_or_insert(EngineError::WorkerPanicked {
                        worker: None,
                        message: "session worker pool disconnected".to_owned(),
                    });
                    break;
                }
            }
        }
        if let Some(e) = first_error {
            // A lost shard means lost chain state: refuse further ticks
            // instead of silently answering from half the chains.
            self.poisoned = true;
            self.stats.set_poisoned(true);
            if timed_out {
                // The abandoned jobs are still occupying shared-pool
                // threads; keep the receiver so recover() can wait for
                // them to drain before re-engaging the pool.
                self.stalled_epoch = Some(replies);
            }
            return Err(e);
        }
        Ok((probs, query_ns, kernel))
    }

    /// Snapshots the complete session — per-chain forward distributions
    /// and automaton cursors, registered queries, staged marginals, the
    /// recorded marginal history, the timestep, and stats — into a
    /// versioned [`Checkpoint`] (serializable via
    /// [`Checkpoint::to_json`]). Also resets the recovery replay log, so
    /// future [`RealTimeSession::recover`] calls restart from this
    /// snapshot. Requires every query to have been registered from
    /// source text.
    pub fn checkpoint(&mut self) -> Result<Checkpoint, EngineError> {
        self.ensure_live()?;
        let _span = crate::trace::span("checkpoint")
            .with("t", u64::from(self.t))
            .with("chains", self.total_chains as u64);
        let queries = self
            .queries
            .iter()
            .map(|reg| {
                let source = reg.source.clone().ok_or_else(|| {
                    EngineError::CheckpointUnsupported(format!(
                        "query '{}' was registered from an AST without source text",
                        reg.name
                    ))
                })?;
                Ok(QueryMeta {
                    name: reg.name.to_string(),
                    source,
                    extended: matches!(reg.kind, QueryKind::Extended),
                    n_chains: reg.n_chains,
                })
            })
            .collect::<Result<Vec<_>, EngineError>>()?;
        let mut chains = vec![None; self.total_chains];
        for slot in &self.shards {
            let shard = slot.as_ref().expect("all shards home between ticks");
            for (offset, (_, chain)) in shard.chains.iter().enumerate() {
                chains[shard.start + offset] = Some(chain.export_state()?);
            }
        }
        let chains = chains
            .into_iter()
            .map(|c| c.expect("shards cover every chain"))
            .collect();
        let staged = self
            .staged
            .iter()
            .map(|s| s.as_ref().map(|m| m.probs().to_vec()))
            .collect();
        let history = self
            .db
            .streams()
            .iter()
            .map(|s| {
                s.marginals()
                    .expect("session streams are independent")
                    .iter()
                    .map(|m| m.probs().to_vec())
                    .collect()
            })
            .collect();
        self.stats.record_checkpoint();
        let ckpt = Checkpoint {
            version: CHECKPOINT_VERSION,
            t: self.t,
            config: self.config,
            staged,
            queries,
            chains,
            history,
            stats: self.stats.export_state(),
        };
        self.last_checkpoint = Some(ckpt.clone());
        self.replay_log.clear();
        self.replay_base = self.t;
        Ok(ckpt)
    }

    /// Rebuilds a session from a [`Checkpoint`] over a fresh database
    /// with the same schema (declared streams, relations, catalog) as
    /// the checkpointed one, using the checkpointed [`SessionConfig`].
    /// The restored session is bit-identical to the original at the
    /// checkpoint: the same marginal history, chain states, staged
    /// marginals, clock, and stats, producing the same alerts for the
    /// same future ticks.
    pub fn restore(db: Database, ckpt: &Checkpoint) -> Result<Self, EngineError> {
        Self::restore_with_config(db, ckpt, ckpt.config)
    }

    /// [`RealTimeSession::restore`] with an overriding config (e.g. to
    /// restore onto a machine with a different worker count — the tick
    /// path never changes answers).
    pub fn restore_with_config(
        db: Database,
        ckpt: &Checkpoint,
        config: SessionConfig,
    ) -> Result<Self, EngineError> {
        if ckpt.version != CHECKPOINT_VERSION {
            return Err(EngineError::CheckpointCorrupt(format!(
                "unsupported checkpoint version {} (this build reads version {})",
                ckpt.version, CHECKPOINT_VERSION
            )));
        }
        let mut session = Self::with_config(db, config)?;
        let n_streams = session.db.streams().len();
        if ckpt.history.len() != n_streams || ckpt.staged.len() != n_streams {
            return Err(EngineError::CheckpointCorrupt(format!(
                "checkpoint covers {} streams but the database declares {}",
                ckpt.history.len(),
                n_streams
            )));
        }
        for (si, hist) in ckpt.history.iter().enumerate() {
            if hist.len() != ckpt.t as usize {
                return Err(EngineError::CheckpointCorrupt(format!(
                    "stream {si} records {} ticks but the checkpoint clock is {}",
                    hist.len(),
                    ckpt.t
                )));
            }
        }
        let rebuild_marginal = |session: &Self, si: usize, probs: &[f64]| {
            let domain = session.db.streams()[si].domain();
            Marginal::new(domain, probs.to_vec()).map_err(|e| {
                EngineError::CheckpointCorrupt(format!("stream {si} marginal invalid: {e}"))
            })
        };
        for t in 0..ckpt.t as usize {
            for si in 0..n_streams {
                let m = rebuild_marginal(&session, si, &ckpt.history[si][t])?;
                let id = session.db.streams()[si].id().clone();
                session.db.push_marginal(&id, m)?;
            }
        }
        for si in 0..n_streams {
            if let Some(probs) = &ckpt.staged[si] {
                session.staged[si] = Some(rebuild_marginal(&session, si, probs)?);
            }
        }
        session.t = ckpt.t;
        let mut chain_cursor = 0usize;
        for meta in &ckpt.queries {
            let q = parse_and_validate(session.db.catalog(), session.db.interner(), &meta.source)
                .map_err(|e| {
                EngineError::CheckpointCorrupt(format!(
                    "query '{}' failed to re-parse: {e}",
                    meta.name
                ))
            })?;
            let (kind, mut chains) = compile_chains(&session.db, &q)?;
            if matches!(kind, QueryKind::Extended) != meta.extended || chains.len() != meta.n_chains
            {
                return Err(EngineError::CheckpointCorrupt(format!(
                    "query '{}' recompiled to a different shape than checkpointed",
                    meta.name
                )));
            }
            for chain in &mut chains {
                let state = ckpt.chains.get(chain_cursor).ok_or_else(|| {
                    EngineError::CheckpointCorrupt("chain state list too short".to_owned())
                })?;
                chain.restore_state(state)?;
                if chain.next_t() != ckpt.t {
                    return Err(EngineError::CheckpointCorrupt(format!(
                        "chain {chain_cursor} is at t={} but the checkpoint clock is {}",
                        chain.next_t(),
                        ckpt.t
                    )));
                }
                chain_cursor += 1;
            }
            let query_index = session.queries.len();
            session.queries.push(Registered {
                name: Arc::from(meta.name.as_str()),
                kind,
                source: Some(meta.source.clone()),
                first_chain: session.total_chains,
                n_chains: chains.len(),
            });
            session.total_chains += chains.len();
            session.repartition(chains.into_iter().map(|c| (query_index, c)).collect());
        }
        if chain_cursor != ckpt.chains.len() {
            return Err(EngineError::CheckpointCorrupt(format!(
                "checkpoint carries {} chain states but queries compile to {chain_cursor}",
                ckpt.chains.len()
            )));
        }
        // Mirror the checkpointed session's shard layout (its configured
        // worker count): restoring a wide checkpoint onto a narrower
        // config then genuinely exercises the shard-shrink path on the
        // first parallel tick, instead of silently starting from one
        // shard.
        session.ensure_shards(effective_workers_of(&ckpt.config));
        // In place, not a handle swap: a metrics server started by
        // with_config above already holds a clone of session.stats.
        session.stats.load_state(&ckpt.stats);
        // Gauges describe the rebuilt chains, not the checkpointed ones.
        session.record_automata_stats();
        session.last_checkpoint = Some(ckpt.clone());
        session.replay_base = ckpt.t;
        Ok(session)
    }

    /// Replays a chain forward to `target`: through the in-memory replay
    /// log where it covers the gap (ticks since the last checkpoint) and
    /// through the database's recorded history otherwise. Both paths run
    /// the same arithmetic as live ticks, so the result is bit-identical
    /// to having never lost the chain. `on_step` observes every replayed
    /// step as `(closed tick, accept probability)` — how recovery
    /// collects the per-tick answers of an interrupted multi-tick epoch.
    fn replay_chain(
        &self,
        chain: &mut ChainEvaluator,
        target: u32,
        mut on_step: impl FnMut(u32, f64),
    ) -> Result<(), EngineError> {
        while chain.next_t() < target {
            let t = chain.next_t();
            let log_entry = t
                .checked_sub(self.replay_base)
                .and_then(|d| self.replay_log.get(d as usize));
            match log_entry {
                Some(ms) => {
                    chain.step_with_marginals(ms)?;
                }
                None => {
                    chain.step(&self.db);
                }
            }
            on_step(t, chain.accept_prob());
        }
        Ok(())
    }

    /// Repairs a poisoned session and completes the interrupted epoch,
    /// returning its ticks' alerts (flattened tick-major, like
    /// [`RealTimeSession::tick_epoch`]).
    ///
    /// Shards lost to the fault (a panicked worker's chains, or every
    /// chain after a sequential-path fault) are rebuilt structurally
    /// from their queries' source text, fast-forwarded from the last
    /// [`RealTimeSession::checkpoint`] plus the bounded replay log —
    /// or from the database's full recorded history when no checkpoint
    /// exists — and recombined with the surviving shards' answers. The
    /// completed ticks' alerts, and all subsequent ticks', are
    /// bit-identical to a run that never faulted. After a
    /// [`EngineError::TickTimeout`] the session stays in degraded
    /// (sequential) mode; see [`RealTimeSession::clear_degraded`].
    pub fn recover(&mut self) -> Result<Vec<Alert>, EngineError> {
        if !self.poisoned {
            return Err(EngineError::RecoveryFailed(
                "session is not poisoned".to_owned(),
            ));
        }
        let started = Instant::now();
        // Every poisoning fault happens inside an epoch after all of its
        // ticks' marginals were recorded, so chains must reach the end
        // of the interrupted epoch (`t + 1` for faults injected outside
        // any epoch, e.g. by tests poisoning the session by hand).
        let k = self.epoch_in_flight.max(1);
        let target = self.t + k;
        let _span = crate::trace::span("recover")
            .with("t", u64::from(self.t))
            .with("chains", self.total_chains as u64)
            .with("ticks", u64::from(k));
        // A watchdog-abandoned epoch may still have jobs running on
        // shared-pool threads. Wait for them to finish (their stale
        // replies are discarded) so future parallel epochs don't queue
        // behind this session's own stragglers. Other faults drop the
        // reply channel with step_chains_parallel, and late replies land
        // harmlessly on the dead receiver.
        if let Some(stalled) = self.stalled_epoch.take() {
            while stalled.recv().is_ok() {}
        }
        let n_shards = self.shards.len();
        let mut survivors: Vec<Option<(usize, ChainEvaluator)>> =
            (0..self.total_chains).map(|_| None).collect();
        for slot in &mut self.shards {
            if let Some(shard) = slot.take() {
                let start = shard.start;
                for (offset, entry) in shard.chains.into_iter().enumerate() {
                    survivors[start + offset] = Some(entry);
                }
            }
        }
        // A surviving shard finished the epoch, but only retains its
        // *final* accept probability. For a one-tick epoch that is
        // exactly the lost tick's answer; a longer epoch also needs the
        // intermediate ticks', so every chain is rebuilt and replayed
        // (the replay log already holds all k ticks' marginals).
        if k > 1 {
            survivors.iter_mut().for_each(|slot| *slot = None);
        }
        let base = self.t;
        let mut probs: Vec<Vec<f64>> = vec![vec![0.0; self.total_chains]; k as usize];
        let mut all: Vec<(usize, ChainEvaluator)> = Vec::with_capacity(self.total_chains);
        for (qi, reg) in self.queries.iter().enumerate() {
            let any_missing =
                (0..reg.n_chains).any(|offset| survivors[reg.first_chain + offset].is_none());
            let mut fresh: Vec<Option<ChainEvaluator>> = if any_missing {
                let source = reg.source.as_ref().ok_or_else(|| {
                    EngineError::RecoveryFailed(format!(
                        "query '{}' was registered from an AST without source text",
                        reg.name
                    ))
                })?;
                let q = parse_and_validate(self.db.catalog(), self.db.interner(), source).map_err(
                    |e| {
                        EngineError::RecoveryFailed(format!(
                            "query '{}' failed to re-parse: {e}",
                            reg.name
                        ))
                    },
                )?;
                let (kind, chains) = compile_chains(&self.db, &q)?;
                if kind != reg.kind || chains.len() != reg.n_chains {
                    return Err(EngineError::RecoveryFailed(format!(
                        "query '{}' recompiled to a different shape",
                        reg.name
                    )));
                }
                chains.into_iter().map(Some).collect()
            } else {
                Vec::new()
            };
            for offset in 0..reg.n_chains {
                let g = reg.first_chain + offset;
                let entry = match survivors[g].take() {
                    Some(entry) => {
                        // Only reachable for k == 1 (see above): the
                        // survivor's final probability answers the
                        // epoch's only tick.
                        probs[0][g] = entry.1.accept_prob();
                        entry
                    }
                    None => {
                        let mut chain = fresh[offset].take().expect("freshly compiled chain");
                        if let Some(ckpt) = &self.last_checkpoint {
                            if let Some(state) = ckpt.chains.get(g) {
                                chain.restore_state(state)?;
                            }
                        }
                        self.replay_chain(&mut chain, target, |t, p| {
                            if t >= base {
                                probs[(t - base) as usize][g] = p;
                            }
                        })?;
                        (qi, chain)
                    }
                };
                debug_assert_eq!(entry.0, qi);
                debug_assert_eq!(entry.1.next_t(), target);
                all.push(entry);
            }
        }
        self.shards = (0..n_shards)
            .map(|_| {
                Some(Shard {
                    start: 0,
                    chains: Vec::new(),
                    scratch: crate::soa::SoaScratch::default(),
                })
            })
            .collect();
        self.repartition(all);
        // Replays stepped chains outside step_shard; harvest the kernel
        // counters they accumulated so per-path totals stay complete.
        let mut kernel = KernelTickStats::default();
        for slot in &mut self.shards {
            if let Some(shard) = slot.as_mut() {
                for (_, chain) in &mut shard.chains {
                    kernel.steps.add(chain.take_kernel_counters());
                }
            }
        }
        self.stats.record_kernel(&kernel);
        self.record_automata_stats();
        self.poisoned = false;
        self.stats.set_poisoned(false);
        self.epoch_in_flight = 0;
        let per_tick_elapsed = started.elapsed() / k;
        let mut alerts = Vec::with_capacity(k as usize * self.queries.len());
        for tick_probs in &probs {
            let tick_alerts = self.combine_alerts(tick_probs, self.t);
            self.t += 1;
            self.stats
                .record_tick(per_tick_elapsed, self.total_chains as u64, false);
            self.stats.record_alerts(tick_alerts.len() as u64);
            for alert in &tick_alerts {
                // Per-chain timing was lost with the failed epoch; count
                // the tick without a latency sample.
                self.stats
                    .record_query_tick(alert.query.0, None, alert.probability);
            }
            alerts.extend(tick_alerts);
        }
        debug_assert_eq!(self.t, target);
        self.stats.record_recovery();
        Ok(alerts)
    }
}

/// Shard count a config's parallel path uses (`n_workers`, or one per
/// available core for the `0` sentinel).
fn effective_workers_of(config: &SessionConfig) -> usize {
    if config.n_workers > 0 {
        config.n_workers
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Compiles a streaming query into its recombination kind and per-key
/// chains in canonical binding order. The result is a pure function of
/// the query text and the database *schema* (declared streams, keys,
/// domains, relations) — never of recorded marginals — which is what
/// makes structural rebuilds during recovery deterministic.
fn compile_chains(
    db: &Database,
    q: &Query,
) -> Result<(QueryKind, Vec<ChainEvaluator>), EngineError> {
    let nq = NormalQuery::from_query(q);
    match classify(db.catalog(), &nq) {
        QueryClass::Regular => Ok((
            QueryKind::Regular,
            vec![RegularEvaluator::new(db, &nq)?.into_chain()],
        )),
        QueryClass::ExtendedRegular => Ok((
            QueryKind::Extended,
            ExtendedRegularEvaluator::new(db, &nq)?
                .into_chains()
                .into_iter()
                .map(|(_, chain)| chain)
                .collect(),
        )),
        other => Err(EngineError::Query(QueryError::NotInClass(format!(
            "streaming (regular or extended regular); query is {other}"
        )))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Lahar;
    use lahar_model::StreamBuilder;

    fn schema_db() -> (Database, StreamBuilder, StreamBuilder) {
        let mut db = Database::new();
        db.declare_stream("At", &["person"], &["loc"]).unwrap();
        db.declare_relation("Hallway", 1).unwrap();
        let i = db.interner().clone();
        db.insert_relation_tuple("Hallway", lahar_model::tuple([i.intern("h")]))
            .unwrap();
        let joe = StreamBuilder::new(&i, "At", &["joe"], &["a", "h", "c"]);
        let sue = StreamBuilder::new(&i, "At", &["sue"], &["a", "h", "c"]);
        db.add_stream(joe.clone().independent(vec![]).unwrap())
            .unwrap();
        db.add_stream(sue.clone().independent(vec![]).unwrap())
            .unwrap();
        (db, joe, sue)
    }

    /// Test shorthand: the opaque handle for the stream at `idx`.
    fn sid(s: &RealTimeSession, idx: usize) -> StreamId {
        s.database().stream_id_at(idx).unwrap()
    }

    /// The streaming session must produce exactly the batch answers.
    #[test]
    fn incremental_equals_batch() {
        let (db, joe, sue) = schema_db();
        let mut session = RealTimeSession::new(db).unwrap();
        session
            .register("regular", "At('joe','a') ; At('joe','c')")
            .unwrap();
        session
            .register("extended", "At(p,'a') ; At(p,'c')")
            .unwrap();

        let joe_ticks = [
            joe.marginal(&[("a", 0.6), ("h", 0.3)]).unwrap(),
            joe.marginal(&[("h", 0.5)]).unwrap(),
            joe.marginal(&[("c", 0.7)]).unwrap(),
        ];
        let sue_ticks = [
            sue.marginal(&[("a", 0.9)]).unwrap(),
            sue.marginal(&[("c", 0.4)]).unwrap(),
            sue.marginal(&[("c", 0.2), ("h", 0.3)]).unwrap(),
        ];
        let (joe_id, sue_id) = (sid(&session, 0), sid(&session, 1));
        let mut streamed: Vec<Vec<f64>> = vec![Vec::new(); 2];
        for t in 0..3 {
            session.stage(joe_id, joe_ticks[t].clone()).unwrap();
            session.stage(sue_id, sue_ticks[t].clone()).unwrap();
            for alert in session.tick().unwrap() {
                assert_eq!(alert.t, t as u32);
                streamed[alert.query.index()].push(alert.probability);
            }
        }

        // Batch reference over the session's accumulated database.
        let batch_db = session.database();
        for (qi, src) in [
            (0, "At('joe','a') ; At('joe','c')"),
            (1, "At(p,'a') ; At(p,'c')"),
        ] {
            let batch = Lahar::prob_series(batch_db, src).unwrap();
            for (t, (s, b)) in streamed[qi].iter().zip(&batch).enumerate() {
                assert!((s - b).abs() < 1e-12, "query {qi} t={t}: {s} vs {b}");
            }
        }
    }

    #[test]
    fn unstaged_streams_default_to_bottom() {
        let (db, joe, _) = schema_db();
        let mut session = RealTimeSession::new(db).unwrap();
        let q = session.register("q", "At('joe','a')").unwrap();
        session
            .stage(sid(&session, 0), joe.marginal(&[("a", 0.5)]).unwrap())
            .unwrap();
        let alerts = session.tick().unwrap();
        assert!((alerts[q.index()].probability - 0.5).abs() < 1e-12);
        // Nothing staged: the tick closes with no events anywhere.
        let alerts = session.tick().unwrap();
        assert_eq!(alerts[q.index()].probability, 0.0);
    }

    #[test]
    fn rejects_non_streaming_queries_and_bad_input() {
        let (db, joe, _) = schema_db();
        let mut session = RealTimeSession::new(db).unwrap();
        // Unsafe query: not streamable.
        assert!(session
            .register("bad", "sigma[x = y](At(x,'a') ; At(y,'c'))")
            .is_err());
        // Wrong-dimension marginal.
        let other = StreamBuilder::new(session.database().interner(), "At", &["zz"], &["only"]);
        assert!(session
            .stage(sid(&session, 0), other.marginal(&[("only", 1.0)]).unwrap())
            .is_err());
        // Unknown stream identity resolves to no handle.
        assert!(session.stream_id(other.key()).is_none());
        let _ = joe;
    }

    /// The config builder rejects values that would otherwise fail (or
    /// silently disable features) deep inside the session.
    #[test]
    fn config_builder_validates_at_build_time() {
        let ok = SessionConfig::builder()
            .tick_mode(TickMode::Parallel)
            .n_workers(4)
            .checkpoint_interval(64)
            .build()
            .unwrap();
        assert_eq!(ok.n_workers, 4);
        assert_eq!(ok.checkpoint_interval, 64);
        // Defaults flow through untouched fields.
        assert_eq!(
            ok.parallel_threshold,
            SessionConfig::default().parallel_threshold
        );
        assert!(matches!(
            SessionConfig::builder().checkpoint_interval(0).build(),
            Err(EngineError::InvalidConfig(_))
        ));
        assert!(matches!(
            SessionConfig::builder().n_workers(0).build(),
            Err(EngineError::InvalidConfig(_))
        ));
        assert!(matches!(
            SessionConfig::builder().max_epoch_ticks(0).build(),
            Err(EngineError::InvalidConfig(_))
        ));
        let addr: std::net::SocketAddr = "127.0.0.1:9633".parse().unwrap();
        assert!(matches!(
            SessionConfig::builder()
                .metrics_addr(addr)
                .serve_addr(addr)
                .build(),
            Err(EngineError::InvalidConfig(_))
        ));
        // Distinct ports are fine.
        SessionConfig::builder()
            .metrics_addr("127.0.0.1:9633".parse().unwrap())
            .serve_addr("127.0.0.1:9634".parse().unwrap())
            .build()
            .unwrap();
    }

    /// Batched staging is equivalent to staging one at a time.
    #[test]
    fn stage_batch_matches_individual_staging() {
        let (db, joe, sue) = schema_db();
        let mut session = RealTimeSession::new(db).unwrap();
        let q = session.register("x", "At(p,'a')").unwrap();
        session
            .stage_batch([
                (sid(&session, 0), joe.marginal(&[("a", 0.5)]).unwrap()),
                (sid(&session, 1), sue.marginal(&[("a", 0.25)]).unwrap()),
            ])
            .unwrap();
        let alerts = session.tick().unwrap();
        let expect = 1.0 - (1.0 - 0.5) * (1.0 - 0.25);
        assert!((alerts[q.index()].probability - expect).abs() < 1e-12);
    }

    /// The deprecated index-addressed shim forwards to the handle path
    /// and rejects out-of-range indices.
    #[test]
    #[allow(deprecated)]
    fn stage_at_index_shim_forwards_and_bounds_checks() {
        let (db, joe, _) = schema_db();
        let mut session = RealTimeSession::new(db).unwrap();
        let q = session.register("q", "At('joe','a')").unwrap();
        session
            .stage_at_index(0, joe.marginal(&[("a", 0.5)]).unwrap())
            .unwrap();
        let alerts = session.tick().unwrap();
        assert!((alerts[q.index()].probability - 0.5).abs() < 1e-12);
        assert_eq!(
            session.stage_at_index(9, joe.marginal(&[]).unwrap()),
            Err(EngineError::NoRelevantStreams)
        );
    }

    #[test]
    fn session_requires_empty_independent_streams() {
        let (_, joe, _) = schema_db();
        let mut db = Database::new();
        db.declare_stream("At", &["person"], &["loc"]).unwrap();
        let i = db.interner().clone();
        let b = StreamBuilder::new(&i, "At", &["joe"], &["a"]);
        db.add_stream(
            b.clone()
                .independent(vec![b.marginal(&[]).unwrap()])
                .unwrap(),
        )
        .unwrap();
        assert!(RealTimeSession::new(db).is_err());
        let _ = joe;
    }

    #[test]
    fn late_registration_fast_forwards_through_history() {
        let (db, joe, _) = schema_db();
        let mut session = RealTimeSession::new(db).unwrap();
        session
            .stage(sid(&session, 0), joe.marginal(&[("a", 1.0)]).unwrap())
            .unwrap();
        session.tick().unwrap();
        // Registered after one tick: replays the recorded history so its
        // first alert is the true μ(q@1) over the full stream.
        let q = session
            .register("late", "At('joe','a') ; At('joe','c')")
            .unwrap();
        session
            .stage(sid(&session, 0), joe.marginal(&[("c", 0.8)]).unwrap())
            .unwrap();
        let alerts = session.tick().unwrap();
        assert_eq!(alerts[q.index()].t, 1);
        assert!((alerts[q.index()].probability - 0.8).abs() < 1e-12);
    }

    /// Forced-parallel ticks answer exactly like a forced-sequential
    /// session fed the same marginals.
    #[test]
    fn parallel_ticks_match_sequential() {
        let mk = |mode| {
            let (db, joe, sue) = schema_db();
            let session = RealTimeSession::with_config(
                db,
                SessionConfig::builder()
                    .tick_mode(mode)
                    .n_workers(3)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            (session, joe, sue)
        };
        let (mut seq, joe, sue) = mk(TickMode::Sequential);
        let (mut par, _, _) = mk(TickMode::Parallel);
        for s in [&mut seq, &mut par] {
            s.register("r", "At('joe','a') ; At('joe','c')").unwrap();
            s.register("x", "At(p,'a') ; At(p,'c')").unwrap();
            s.register("h", "At(p, l)[Hallway(l)]").unwrap();
        }
        let ticks = [
            vec![(0, joe.marginal(&[("a", 0.6), ("h", 0.3)]).unwrap())],
            vec![
                (0, joe.marginal(&[("c", 0.5)]).unwrap()),
                (1, sue.marginal(&[("a", 0.8)]).unwrap()),
            ],
            vec![(1, sue.marginal(&[("c", 0.9), ("h", 0.05)]).unwrap())],
        ];
        for staged in &ticks {
            for (idx, m) in staged {
                seq.stage(sid(&seq, *idx), m.clone()).unwrap();
                par.stage(sid(&par, *idx), m.clone()).unwrap();
            }
            let a = seq.tick().unwrap();
            let b = par.tick().unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.t, y.t);
                assert!(
                    (x.probability - y.probability).abs() < 1e-12,
                    "{}: {} vs {}",
                    x.name,
                    x.probability,
                    y.probability
                );
            }
        }
        let snap = par.stats().snapshot();
        assert_eq!(snap.ticks, 3);
        assert_eq!(snap.parallel_ticks, 3);
        assert_eq!(seq.stats().snapshot().parallel_ticks, 0);
    }

    /// Chains partition into contiguous balanced shards covering every
    /// registered chain exactly once.
    #[test]
    fn shards_stay_contiguous_and_balanced() {
        let (db, _, _) = schema_db();
        let mut session = RealTimeSession::with_config(
            db,
            SessionConfig::builder()
                .tick_mode(TickMode::Parallel)
                .n_workers(3)
                .build()
                .unwrap(),
        )
        .unwrap();
        session.register("a", "At(p,'h') ; At(p,'a')").unwrap(); // 2 chains
        session.register("b", "At('joe','a')").unwrap(); // 1 chain
        session.register("c", "At(p,'a') ; At(p,'c')").unwrap(); // 2 chains
        session.tick().unwrap(); // forces the pool + repartition
        assert_eq!(session.n_chains(), 5);
        let shards = &session.shards;
        assert_eq!(shards.len(), 3);
        let mut covered = 0;
        for slot in shards {
            let shard = slot.as_ref().unwrap();
            assert_eq!(shard.start, covered);
            covered += shard.chains.len();
            assert!((1..=2).contains(&shard.chains.len()));
        }
        assert_eq!(covered, 5);
    }

    /// Regression: `stage()` and `register()` used to succeed on a
    /// poisoned session because liveness was only checked in `tick()`.
    #[test]
    fn poisoned_session_rejects_every_mutating_entry_point() {
        let (db, joe, _) = schema_db();
        let mut session = RealTimeSession::new(db).unwrap();
        session.register("q", "At('joe','a')").unwrap();
        session.poisoned = true;
        let staged = session.stage(sid(&session, 0), joe.marginal(&[("a", 0.5)]).unwrap());
        assert_eq!(staged, Err(EngineError::SessionPoisoned));
        assert_eq!(
            session.register("late", "At('joe','h')").unwrap_err(),
            EngineError::SessionPoisoned
        );
        let ast = parse_and_validate(
            session.database().catalog(),
            session.database().interner(),
            "At('joe','h')",
        )
        .unwrap();
        assert_eq!(
            session.register_query("late", &ast).unwrap_err(),
            EngineError::SessionPoisoned
        );
        assert_eq!(session.tick().unwrap_err(), EngineError::SessionPoisoned);
        assert!(matches!(
            session.checkpoint().unwrap_err(),
            EngineError::SessionPoisoned
        ));
        assert!(EngineError::SessionPoisoned.is_recoverable());
        assert!(session.is_poisoned());
    }

    /// Simulates the state a mid-tick fault leaves behind (marginals
    /// recorded, every shard lost, clock not advanced) and checks that
    /// recover() completes the tick bit-identically to a fault-free
    /// session.
    #[test]
    fn recover_rebuilds_lost_shards_bit_identically() {
        let (db, joe, sue) = schema_db();
        let mut faulty = RealTimeSession::new(db).unwrap();
        let (db2, _, _) = schema_db();
        let mut reference = RealTimeSession::new(db2).unwrap();
        for s in [&mut faulty, &mut reference] {
            s.register("x", "At(p,'a') ; At(p,'c')").unwrap();
            s.register("r", "At('joe','a')").unwrap();
        }
        let ticks = [
            vec![(0usize, joe.marginal(&[("a", 0.6)]).unwrap())],
            vec![
                (0, joe.marginal(&[("c", 0.4)]).unwrap()),
                (1, sue.marginal(&[("a", 0.7)]).unwrap()),
            ],
        ];
        for staged in &ticks {
            for (idx, m) in staged {
                faulty.stage(sid(&faulty, *idx), m.clone()).unwrap();
                reference.stage(sid(&reference, *idx), m.clone()).unwrap();
            }
            faulty.tick().unwrap();
            reference.tick().unwrap();
        }
        // Fault injection by hand: the failing tick records its
        // marginals, then loses every shard before the clock advances —
        // exactly what a sequential-path panic leaves behind.
        let fault_tick = vec![(1usize, sue.marginal(&[("c", 0.9)]).unwrap())];
        for (idx, m) in &fault_tick {
            faulty.stage(sid(&faulty, *idx), m.clone()).unwrap();
            reference.stage(sid(&reference, *idx), m.clone()).unwrap();
        }
        let reference_alerts = reference.tick().unwrap();
        for idx in 0..faulty.staged.len() {
            let marginal = faulty.staged[idx]
                .take()
                .unwrap_or_else(|| Marginal::all_bottom(faulty.db.streams()[idx].domain()));
            let id = faulty.db.streams()[idx].id().clone();
            faulty.db.push_marginal(&id, marginal).unwrap();
        }
        let n_shards = faulty.shards.len();
        faulty.shards = (0..n_shards).map(|_| None).collect();
        faulty.poisoned = true;

        let recovered_alerts = faulty.recover().unwrap();
        assert!(!faulty.is_poisoned());
        assert_eq!(recovered_alerts.len(), reference_alerts.len());
        for (a, b) in recovered_alerts.iter().zip(&reference_alerts) {
            assert_eq!(a.t, b.t);
            assert_eq!(
                a.probability.to_bits(),
                b.probability.to_bits(),
                "{}: {} vs {}",
                a.name,
                a.probability,
                b.probability
            );
        }
        assert_eq!(faulty.stats().snapshot().recoveries, 1);
        // Subsequent ticks stay bit-identical too.
        faulty
            .stage(sid(&faulty, 0), joe.marginal(&[("c", 0.3)]).unwrap())
            .unwrap();
        reference
            .stage(sid(&reference, 0), joe.marginal(&[("c", 0.3)]).unwrap())
            .unwrap();
        let a = faulty.tick().unwrap();
        let b = reference.tick().unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.probability.to_bits(), y.probability.to_bits());
        }
        // Recovering a healthy session is an error.
        assert!(matches!(
            faulty.recover().unwrap_err(),
            EngineError::RecoveryFailed(_)
        ));
    }

    #[test]
    fn checkpoint_restore_round_trips_to_identical_alerts() {
        let (db, joe, sue) = schema_db();
        let mut original = RealTimeSession::new(db).unwrap();
        original.register("x", "At(p,'a') ; At(p,'c')").unwrap();
        original.register("r", "At('joe','a')").unwrap();
        for m in [
            (0usize, joe.marginal(&[("a", 0.6), ("h", 0.2)]).unwrap()),
            (1, sue.marginal(&[("a", 0.5)]).unwrap()),
        ] {
            original.stage(sid(&original, m.0), m.1).unwrap();
            original.tick().unwrap();
        }
        // Stage something *before* checkpointing: staged state must
        // survive the round trip.
        original
            .stage(sid(&original, 1), sue.marginal(&[("c", 0.8)]).unwrap())
            .unwrap();
        let ckpt = original.checkpoint().unwrap();
        assert_eq!(ckpt.t(), 2);
        assert_eq!(ckpt.n_queries(), 2);
        assert_eq!(original.stats().snapshot().checkpoints_taken, 1);

        // Serialize → parse → restore over a fresh schema-only database.
        let ckpt = Checkpoint::from_json(&ckpt.to_json()).unwrap();
        let (fresh_db, _, _) = schema_db();
        let mut restored = RealTimeSession::restore(fresh_db, &ckpt).unwrap();
        assert_eq!(restored.now(), original.now());
        assert_eq!(restored.n_chains(), original.n_chains());
        assert_eq!(
            restored.stats().snapshot().checkpoints_taken,
            original.stats().snapshot().checkpoints_taken
        );

        // Identical futures: same staged carry-over, same next ticks.
        for s in [&mut original, &mut restored] {
            let id = sid(s, 0);
            s.stage(id, joe.marginal(&[("c", 0.7)]).unwrap()).unwrap();
        }
        let a = original.tick().unwrap();
        let b = restored.tick().unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.t, y.t);
            assert_eq!(x.probability.to_bits(), y.probability.to_bits());
        }
        // And the accumulated histories agree with the batch engine.
        for src in ["At(p,'a') ; At(p,'c')", "At('joe','a')"] {
            let sa = Lahar::prob_series(original.database(), src).unwrap();
            let sb = Lahar::prob_series(restored.database(), src).unwrap();
            assert_eq!(sa.len(), sb.len());
            for (x, y) in sa.iter().zip(&sb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn checkpoint_requires_source_registered_queries() {
        let (db, _, _) = schema_db();
        let mut session = RealTimeSession::new(db).unwrap();
        let ast = parse_and_validate(
            session.database().catalog(),
            session.database().interner(),
            "At('joe','a')",
        )
        .unwrap();
        session.register_query("ast", &ast).unwrap();
        assert!(matches!(
            session.checkpoint().unwrap_err(),
            EngineError::CheckpointUnsupported(_)
        ));
    }

    #[test]
    fn auto_checkpointing_follows_interval_and_bounds_replay_log() {
        let (db, joe, _) = schema_db();
        let mut session = RealTimeSession::with_config(
            db,
            SessionConfig::builder()
                .checkpoint_interval(2)
                .build()
                .unwrap(),
        )
        .unwrap();
        session.register("q", "At('joe','a')").unwrap();
        assert!(session.last_checkpoint().is_none());
        for i in 0..6 {
            session
                .stage(
                    sid(&session, 0),
                    joe.marginal(&[("a", 0.1 * (i + 1) as f64)]).unwrap(),
                )
                .unwrap();
            session.tick().unwrap();
            // The replay log only accumulates ticks since the newest
            // checkpoint: never more than the interval.
            assert!(session.replay_log.len() < 2);
        }
        let ckpt = session.last_checkpoint().expect("auto-checkpoint taken");
        assert_eq!(ckpt.t(), 6);
        assert_eq!(session.stats().snapshot().checkpoints_taken, 3);
    }

    #[test]
    fn degraded_mode_forces_sequential_ticks() {
        let (db, joe, _) = schema_db();
        let mut session = RealTimeSession::with_config(
            db,
            SessionConfig::builder()
                .tick_mode(TickMode::Parallel)
                .n_workers(2)
                .build()
                .unwrap(),
        )
        .unwrap();
        session.register("q", "At(p,'a')").unwrap();
        session
            .stage(sid(&session, 0), joe.marginal(&[("a", 0.4)]).unwrap())
            .unwrap();
        session.tick().unwrap();
        assert_eq!(session.stats().snapshot().parallel_ticks, 1);
        // A watchdog trip sets this; simulate it directly.
        session.degraded = true;
        assert!(session.is_degraded());
        session
            .stage(sid(&session, 0), joe.marginal(&[("a", 0.2)]).unwrap())
            .unwrap();
        session.tick().unwrap();
        let snap = session.stats().snapshot();
        assert_eq!(
            snap.parallel_ticks, 1,
            "degraded tick must not use the pool"
        );
        assert_eq!(snap.degraded_ticks, 1);
        session.clear_degraded();
        session.tick().unwrap();
        assert_eq!(session.stats().snapshot().parallel_ticks, 2);
    }

    /// A whole epoch handed to `tick_epoch` answers bit-identically to
    /// the same marginals fed through per-tick sequential `tick` calls,
    /// and closes under a single join (one epoch recorded).
    #[test]
    fn epoch_batched_ticks_match_per_tick_sequential() {
        let mk = |mode| {
            let (db, joe, sue) = schema_db();
            let session = RealTimeSession::with_config(
                db,
                SessionConfig::builder()
                    .tick_mode(mode)
                    .n_workers(3)
                    .max_epoch_ticks(8)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            (session, joe, sue)
        };
        let (mut seq, joe, sue) = mk(TickMode::Sequential);
        let (mut par, _, _) = mk(TickMode::Parallel);
        for s in [&mut seq, &mut par] {
            s.register("r", "At('joe','a') ; At('joe','c')").unwrap();
            s.register("x", "At(p,'a') ; At(p,'c')").unwrap();
        }
        let epoch: Vec<Vec<(StreamId, Marginal)>> = vec![
            vec![(
                sid(&par, 0),
                joe.marginal(&[("a", 0.6), ("h", 0.3)]).unwrap(),
            )],
            vec![
                (sid(&par, 0), joe.marginal(&[("c", 0.5)]).unwrap()),
                (sid(&par, 1), sue.marginal(&[("a", 0.8)]).unwrap()),
            ],
            Vec::new(),
            vec![(sid(&par, 1), sue.marginal(&[("c", 0.9)]).unwrap())],
            vec![(sid(&par, 0), joe.marginal(&[("a", 0.15)]).unwrap())],
        ];
        let mut reference = Vec::new();
        for batch in &epoch {
            for (id, m) in batch {
                seq.stage(*id, m.clone()).unwrap();
            }
            reference.extend(seq.tick().unwrap());
        }
        let batched = par.tick_epoch(epoch).unwrap();
        assert_eq!(batched.len(), reference.len());
        for (a, b) in batched.iter().zip(&reference) {
            assert_eq!(a.t, b.t);
            assert_eq!(
                a.probability.to_bits(),
                b.probability.to_bits(),
                "{} t={}: {} vs {}",
                a.name,
                a.t,
                a.probability,
                b.probability
            );
        }
        let snap = par.stats().snapshot();
        assert_eq!(snap.ticks, 5);
        assert_eq!(snap.parallel_ticks, 5);
        assert_eq!(snap.epochs, 1, "five ticks, one join");
        assert_eq!(snap.epoch_ticks, 5);
        // Per-tick mode records one single-tick epoch per tick.
        let snap = seq.stats().snapshot();
        assert_eq!((snap.epochs, snap.epoch_ticks), (5, 5));
    }

    /// Epochs split at `max_epoch_ticks` and at auto-checkpoint
    /// boundaries, so batching never changes checkpoint cadence.
    #[test]
    fn epochs_split_at_checkpoint_boundaries() {
        let (db, joe, _) = schema_db();
        let mut session = RealTimeSession::with_config(
            db,
            SessionConfig::builder()
                .checkpoint_interval(2)
                .max_epoch_ticks(8)
                .build()
                .unwrap(),
        )
        .unwrap();
        session.register("q", "At('joe','a')").unwrap();
        let id = sid(&session, 0);
        let epoch: Vec<Vec<(StreamId, Marginal)>> = (0..5)
            .map(|i| vec![(id, joe.marginal(&[("a", 0.1 * (i + 1) as f64)]).unwrap())])
            .collect();
        session.tick_epoch(epoch).unwrap();
        let snap = session.stats().snapshot();
        assert_eq!(snap.ticks, 5);
        // Interval-2 boundaries at t=2 and t=4 split the batch 2+2+1.
        assert_eq!(snap.epochs, 3);
        assert_eq!(snap.epoch_ticks, 5);
        assert_eq!(snap.checkpoints_taken, 2);
        let ckpt = session.last_checkpoint().expect("auto-checkpoint taken");
        assert_eq!(ckpt.t(), 4);
        // The replay log only spans ticks since that checkpoint.
        assert_eq!(session.replay_log.len(), 1);
    }

    /// Regression: shrinking the shard layout used to
    /// `truncate(n_workers)` first, dropping every chain in the trailing
    /// shards. Restoring a checkpoint taken under a wider worker count
    /// onto a narrower config exercises exactly that path; the restored
    /// session must keep all chains and answer bit-identically.
    #[test]
    fn shard_shrink_on_restore_keeps_every_chain() {
        let (db, joe, sue) = schema_db();
        let mut original = RealTimeSession::with_config(
            db,
            SessionConfig::builder()
                .tick_mode(TickMode::Parallel)
                .n_workers(4)
                .build()
                .unwrap(),
        )
        .unwrap();
        original.register("a", "At(p,'h') ; At(p,'a')").unwrap();
        original.register("b", "At('joe','a')").unwrap();
        original.register("c", "At(p,'a') ; At(p,'c')").unwrap();
        assert_eq!(original.n_chains(), 5);
        for m in [
            (0usize, joe.marginal(&[("a", 0.6), ("h", 0.2)]).unwrap()),
            (1, sue.marginal(&[("h", 0.5)]).unwrap()),
        ] {
            original.stage(sid(&original, m.0), m.1).unwrap();
            original.tick().unwrap();
        }
        let ckpt = Checkpoint::from_json(&original.checkpoint().unwrap().to_json()).unwrap();

        let (fresh_db, _, _) = schema_db();
        let narrow = SessionConfig::builder()
            .tick_mode(TickMode::Parallel)
            .n_workers(2)
            .build()
            .unwrap();
        let mut restored = RealTimeSession::restore_with_config(fresh_db, &ckpt, narrow).unwrap();
        // The restore mirrors the checkpoint's 4-shard layout, so the
        // first parallel tick below must shrink 4 → 2.
        assert_eq!(restored.shards.len(), 4);
        assert_eq!(restored.n_chains(), 5);

        for s in [&mut original, &mut restored] {
            let (j, u) = (sid(s, 0), sid(s, 1));
            s.stage(j, joe.marginal(&[("c", 0.7)]).unwrap()).unwrap();
            s.stage(u, sue.marginal(&[("a", 0.4), ("c", 0.3)]).unwrap())
                .unwrap();
        }
        let a = original.tick().unwrap();
        let b = restored.tick().unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.t, y.t);
            assert_eq!(
                x.probability.to_bits(),
                y.probability.to_bits(),
                "{}: {} vs {}",
                x.name,
                x.probability,
                y.probability
            );
        }
        // The shrink rebalanced instead of truncating: every chain is
        // still present, partitioned over the narrower layout.
        assert_eq!(restored.shards.len(), 2);
        let covered: usize = restored
            .shards
            .iter()
            .map(|s| s.as_ref().unwrap().chains.len())
            .sum();
        assert_eq!(covered, 5);
    }

    /// Regression: ticks that never asked for the parallel path (mode
    /// Sequential) used to count as "degraded" whenever the flag was
    /// set. Only genuine diversions off the pool count now.
    #[test]
    fn sequential_ticks_never_count_as_degraded() {
        let (db, joe, _) = schema_db();
        let mut session = RealTimeSession::with_config(
            db,
            SessionConfig::builder()
                .tick_mode(TickMode::Sequential)
                .build()
                .unwrap(),
        )
        .unwrap();
        session.register("q", "At(p,'a')").unwrap();
        session.degraded = true;
        session
            .stage(sid(&session, 0), joe.marginal(&[("a", 0.4)]).unwrap())
            .unwrap();
        session.tick().unwrap();
        let snap = session.stats().snapshot();
        assert_eq!(snap.ticks, 1);
        assert_eq!(snap.parallel_ticks, 0);
        assert_eq!(
            snap.degraded_ticks, 0,
            "a sequential-mode tick is not a diversion"
        );
    }

    #[test]
    fn stats_record_ticks_and_groundings() {
        let (db, joe, _) = schema_db();
        let mut session = RealTimeSession::new(db).unwrap();
        session.register("x", "At(p,'a') ; At(p,'c')").unwrap();
        session
            .stage(sid(&session, 0), joe.marginal(&[("a", 0.4)]).unwrap())
            .unwrap();
        session.tick().unwrap();
        session.tick().unwrap();
        let snap = session.stats().snapshot();
        assert_eq!(snap.ticks, 2);
        assert_eq!(snap.bindings_grounded, 2);
        assert_eq!(snap.chains_stepped, 4);
        assert_eq!(snap.alerts_emitted, 2);
        assert_eq!(snap.tick_latency.count, 2);
        let json = snap.to_json();
        assert!(json.contains("\"ticks\":2"));
    }
}
