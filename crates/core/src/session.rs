//! Push-based real-time processing sessions.
//!
//! The batch API ([`crate::Lahar`]) evaluates over a finished database;
//! a [`RealTimeSession`] is the *streaming* deployment mode of the paper's
//! real-time scenario (§2.4): the inference layer pushes one marginal per
//! declared stream per tick, and every registered (regular or extended
//! regular — the streaming classes of Theorems 3.3/3.7) query advances by
//! exactly one step, emitting `μ(q@t)` as the tick closes.
//!
//! ```
//! use lahar_core::RealTimeSession;
//! use lahar_model::{Database, StreamBuilder};
//!
//! let mut db = Database::new();
//! db.declare_stream("At", &["person"], &["loc"]).unwrap();
//! let b = StreamBuilder::new(db.interner(), "At", &["joe"], &["office", "coffee"]);
//! db.add_stream(b.clone().independent(vec![]).unwrap()).unwrap();
//!
//! let mut session = RealTimeSession::new(db).unwrap();
//! let q = session
//!     .register("coffee", "At('joe','office') ; At('joe','coffee')")
//!     .unwrap();
//! session.stage(0, b.marginal(&[("office", 0.9)]).unwrap()).unwrap();
//! let alerts = session.tick().unwrap();
//! assert_eq!(alerts[0].query, q);
//! session.stage(0, b.marginal(&[("coffee", 0.6)]).unwrap()).unwrap();
//! let alerts = session.tick().unwrap();
//! assert!((alerts[0].probability - 0.54).abs() < 1e-9);
//! ```

use crate::error::EngineError;
use crate::extended::ExtendedRegularEvaluator;
use crate::regular::RegularEvaluator;
use lahar_model::{Database, Marginal, StreamData};
use lahar_query::{
    classify, parse_and_validate, NormalQuery, Query, QueryClass, QueryError,
};

/// Identifier of a registered query within a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryId(pub usize);

/// One query's answer for the tick that just closed.
#[derive(Debug, Clone)]
pub struct Alert {
    /// Which query.
    pub query: QueryId,
    /// The registered name.
    pub name: String,
    /// The closed timestep.
    pub t: u32,
    /// `μ(q@t)`.
    pub probability: f64,
}

#[allow(clippy::large_enum_variant)] // one per registered query
enum SessionEval {
    Regular(RegularEvaluator),
    Extended(ExtendedRegularEvaluator),
}

struct Registered {
    name: String,
    eval: SessionEval,
}

/// A push-based session over independent (real-time) streams.
///
/// Streams (with their keys and domains) must be declared up front —
/// matching the paper's architecture where "each query is run in a
/// separate process which receives one stream from the particle filter
/// per ... key" — because the streaming evaluators size their per-key
/// state at registration (Thm 3.7's `O(m)`).
pub struct RealTimeSession {
    db: Database,
    staged: Vec<Option<Marginal>>,
    queries: Vec<Registered>,
    t: u32,
}

impl RealTimeSession {
    /// Creates a session over a database whose streams are all independent
    /// and empty (relations and catalog are used as-is).
    pub fn new(db: Database) -> Result<Self, EngineError> {
        for s in db.streams() {
            if !matches!(s.data(), StreamData::Independent(ms) if ms.is_empty()) {
                return Err(EngineError::Query(QueryError::NotInClass(
                    "real-time session requires empty independent streams".to_owned(),
                )));
            }
        }
        let staged = vec![None; db.streams().len()];
        Ok(Self {
            db,
            staged,
            queries: Vec::new(),
            t: 0,
        })
    }

    /// The number of ticks closed so far.
    pub fn now(&self) -> u32 {
        self.t
    }

    /// Read access to the underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Registers a textual query; it must be in one of the streaming
    /// classes (regular or extended regular). Queries registered after
    /// ticks have closed are fast-forwarded through the recorded history
    /// so their answers stay aligned with the session clock.
    pub fn register(&mut self, name: &str, src: &str) -> Result<QueryId, EngineError> {
        let q = parse_and_validate(self.db.catalog(), self.db.interner(), src)?;
        self.register_query(name, &q)
    }

    /// Registers an AST query.
    pub fn register_query(&mut self, name: &str, q: &Query) -> Result<QueryId, EngineError> {
        let nq = NormalQuery::from_query(q);
        let eval = match classify(self.db.catalog(), &nq) {
            QueryClass::Regular => SessionEval::Regular(RegularEvaluator::new(&self.db, &nq)?),
            QueryClass::ExtendedRegular => {
                SessionEval::Extended(ExtendedRegularEvaluator::new(&self.db, &nq)?)
            }
            other => {
                return Err(EngineError::Query(QueryError::NotInClass(format!(
                    "streaming (regular or extended regular); query is {other}"
                ))))
            }
        };
        let mut reg = Registered {
            name: name.to_owned(),
            eval,
        };
        // Fast-forward through already-closed ticks.
        for _ in 0..self.t {
            match &mut reg.eval {
                SessionEval::Regular(e) => {
                    e.step(&self.db);
                }
                SessionEval::Extended(e) => {
                    e.step(&self.db);
                }
            }
        }
        self.queries.push(reg);
        Ok(QueryId(self.queries.len() - 1))
    }

    /// Stages the current tick's marginal for stream `stream_index`
    /// (the index into `database().streams()`). Unstaged streams default
    /// to all-⊥ ("no event") when the tick closes.
    pub fn stage(&mut self, stream_index: usize, marginal: Marginal) -> Result<(), EngineError> {
        if stream_index >= self.staged.len() {
            return Err(EngineError::NoRelevantStreams);
        }
        let domain = self.db.streams()[stream_index].domain().clone();
        if marginal.probs().len() != domain.len() {
            return Err(EngineError::Model(lahar_model::ModelError::DimensionMismatch {
                expected: domain.len(),
                got: marginal.probs().len(),
            }));
        }
        self.staged[stream_index] = Some(marginal);
        Ok(())
    }

    /// Closes the tick: appends every staged marginal (⊥ for unstaged
    /// streams), advances all registered queries one step, and returns
    /// their alerts for the closed timestep.
    pub fn tick(&mut self) -> Result<Vec<Alert>, EngineError> {
        for idx in 0..self.staged.len() {
            let marginal = self.staged[idx]
                .take()
                .unwrap_or_else(|| Marginal::all_bottom(self.db.streams()[idx].domain()));
            let id = self.db.streams()[idx].id().clone();
            self.db.push_marginal(&id, marginal)?;
        }
        let t = self.t;
        let mut alerts = Vec::with_capacity(self.queries.len());
        for (i, reg) in self.queries.iter_mut().enumerate() {
            let probability = match &mut reg.eval {
                SessionEval::Regular(e) => e.step(&self.db),
                SessionEval::Extended(e) => e.step(&self.db),
            };
            alerts.push(Alert {
                query: QueryId(i),
                name: reg.name.clone(),
                t,
                probability,
            });
        }
        self.t += 1;
        Ok(alerts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Lahar;
    use lahar_model::StreamBuilder;

    fn schema_db() -> (Database, StreamBuilder, StreamBuilder) {
        let mut db = Database::new();
        db.declare_stream("At", &["person"], &["loc"]).unwrap();
        db.declare_relation("Hallway", 1).unwrap();
        let i = db.interner().clone();
        db.insert_relation_tuple("Hallway", lahar_model::tuple([i.intern("h")]))
            .unwrap();
        let joe = StreamBuilder::new(&i, "At", &["joe"], &["a", "h", "c"]);
        let sue = StreamBuilder::new(&i, "At", &["sue"], &["a", "h", "c"]);
        db.add_stream(joe.clone().independent(vec![]).unwrap()).unwrap();
        db.add_stream(sue.clone().independent(vec![]).unwrap()).unwrap();
        (db, joe, sue)
    }

    /// The streaming session must produce exactly the batch answers.
    #[test]
    fn incremental_equals_batch() {
        let (db, joe, sue) = schema_db();
        let mut session = RealTimeSession::new(db).unwrap();
        session.register("regular", "At('joe','a') ; At('joe','c')").unwrap();
        session.register("extended", "At(p,'a') ; At(p,'c')").unwrap();

        let joe_ticks = [
            joe.marginal(&[("a", 0.6), ("h", 0.3)]).unwrap(),
            joe.marginal(&[("h", 0.5)]).unwrap(),
            joe.marginal(&[("c", 0.7)]).unwrap(),
        ];
        let sue_ticks = [
            sue.marginal(&[("a", 0.9)]).unwrap(),
            sue.marginal(&[("c", 0.4)]).unwrap(),
            sue.marginal(&[("c", 0.2), ("h", 0.3)]).unwrap(),
        ];
        let mut streamed: Vec<Vec<f64>> = vec![Vec::new(); 2];
        for t in 0..3 {
            session.stage(0, joe_ticks[t].clone()).unwrap();
            session.stage(1, sue_ticks[t].clone()).unwrap();
            for alert in session.tick().unwrap() {
                assert_eq!(alert.t, t as u32);
                streamed[alert.query.0].push(alert.probability);
            }
        }

        // Batch reference over the session's accumulated database.
        let batch_db = session.database();
        for (qi, src) in [
            (0, "At('joe','a') ; At('joe','c')"),
            (1, "At(p,'a') ; At(p,'c')"),
        ] {
            let batch = Lahar::prob_series(batch_db, src).unwrap();
            for (t, (s, b)) in streamed[qi].iter().zip(&batch).enumerate() {
                assert!((s - b).abs() < 1e-12, "query {qi} t={t}: {s} vs {b}");
            }
        }
    }

    #[test]
    fn unstaged_streams_default_to_bottom() {
        let (db, joe, _) = schema_db();
        let mut session = RealTimeSession::new(db).unwrap();
        let q = session.register("q", "At('joe','a')").unwrap();
        session.stage(0, joe.marginal(&[("a", 0.5)]).unwrap()).unwrap();
        let alerts = session.tick().unwrap();
        assert!((alerts[q.0].probability - 0.5).abs() < 1e-12);
        // Nothing staged: the tick closes with no events anywhere.
        let alerts = session.tick().unwrap();
        assert_eq!(alerts[q.0].probability, 0.0);
    }

    #[test]
    fn rejects_non_streaming_queries_and_bad_input() {
        let (db, joe, _) = schema_db();
        let mut session = RealTimeSession::new(db).unwrap();
        // Unsafe query: not streamable.
        assert!(session
            .register("bad", "sigma[x = y](At(x,'a') ; At(y,'c'))")
            .is_err());
        // Wrong-dimension marginal.
        let other = StreamBuilder::new(
            session.database().interner(),
            "At",
            &["zz"],
            &["only"],
        );
        assert!(session.stage(0, other.marginal(&[("only", 1.0)]).unwrap()).is_err());
        // Out-of-range stream index.
        assert!(session.stage(9, joe.marginal(&[]).unwrap()).is_err());
    }

    #[test]
    fn session_requires_empty_independent_streams() {
        let (_, joe, _) = schema_db();
        let mut db = Database::new();
        db.declare_stream("At", &["person"], &["loc"]).unwrap();
        let i = db.interner().clone();
        let b = StreamBuilder::new(&i, "At", &["joe"], &["a"]);
        db.add_stream(b.clone().independent(vec![b.marginal(&[]).unwrap()]).unwrap())
            .unwrap();
        assert!(RealTimeSession::new(db).is_err());
        let _ = joe;
    }

    #[test]
    fn late_registration_fast_forwards_through_history() {
        let (db, joe, _) = schema_db();
        let mut session = RealTimeSession::new(db).unwrap();
        session.stage(0, joe.marginal(&[("a", 1.0)]).unwrap()).unwrap();
        session.tick().unwrap();
        // Registered after one tick: replays the recorded history so its
        // first alert is the true μ(q@1) over the full stream.
        let q = session
            .register("late", "At('joe','a') ; At('joe','c')")
            .unwrap();
        session.stage(0, joe.marginal(&[("c", 0.8)]).unwrap()).unwrap();
        let alerts = session.tick().unwrap();
        assert_eq!(alerts[q.0].t, 1);
        assert!((alerts[q.0].probability - 0.8).abs() < 1e-12);
    }
}
