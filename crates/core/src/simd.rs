//! The one `unsafe` module: explicit x86_64 SIMD for the SoA lane loops.
//!
//! # Unsafe-audit policy
//!
//! This crate (and the whole workspace) is built with
//! `#![deny(unsafe_code)]`; only this module carries an
//! `#[allow(unsafe_code)]` (on its `mod` item in `lib.rs`), and CI runs
//! `scripts/unsafe_audit.sh` + Miri over these unit tests to keep it
//! honest. Every `unsafe` block here is one of exactly two shapes:
//!
//! * a `#[target_feature(enable = ...)]` call, guarded by
//!   `is_x86_feature_detected!` at dispatch time, and
//! * unaligned vector loads/stores (`loadu`/`storeu`) over slices whose
//!   bounds are checked by the safe wrapper before the call.
//!
//! # Bit-identity contract
//!
//! Both vector kernels are *element-wise*: lane `i` computes exactly
//! `out[i] += a[i] * b[i]` (or `acc[i] += row[i]`) with one IEEE-754
//! multiply and one add per element — deliberately **no FMA**, because a
//! fused multiply-add rounds once where the scalar path rounds twice and
//! would break the engine's bit-identity guarantee. Element-wise
//! `mulpd`/`addpd` are IEEE-identical to scalar `*`/`+`, so the SIMD
//! path is differential-tested (not just approximately compared) against
//! the scalar path in `kernel_differential.rs`.
//!
//! Dispatch is detected once per process ([`dispatch`]); tests and the
//! `LAHAR_SIMD` environment variable (`scalar` | `sse2` | `avx2` |
//! `auto`) can force a path, and the scalar fallback is always compiled
//! on every architecture.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which lane-loop implementation the process dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Plain (auto-vectorizable) Rust loops; always available.
    Scalar,
    /// 2-wide `f64` vectors (baseline on every x86_64).
    Sse2,
    /// 4-wide `f64` vectors, runtime-detected.
    Avx2,
}

impl Dispatch {
    /// Stable label for telemetry (`lahar_kernel_steps_total{path=...}`).
    pub fn is_simd(self) -> bool {
        self != Dispatch::Scalar
    }
}

/// 0 = no override, 1 = scalar, 2 = sse2, 3 = avx2.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn detected() -> Dispatch {
    static DETECTED: OnceLock<Dispatch> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        let by_env = std::env::var("LAHAR_SIMD").ok();
        match by_env.as_deref() {
            Some("scalar") | Some("off") => return Dispatch::Scalar,
            Some("sse2") => return Dispatch::Sse2,
            Some("avx2") => return Dispatch::Avx2,
            _ => {}
        }
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                Dispatch::Avx2
            } else {
                // SSE2 is part of the x86_64 baseline.
                Dispatch::Sse2
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        Dispatch::Scalar
    })
}

/// The lane-loop path in effect: a test/ops override if set, else the
/// per-process runtime detection.
pub fn dispatch() -> Dispatch {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => Dispatch::Scalar,
        2 => Dispatch::Sse2,
        3 => Dispatch::Avx2,
        _ => detected(),
    }
}

/// Forces the dispatch path process-wide (`None` restores runtime
/// detection). Every path computes bit-identical results, so flipping
/// this mid-run is safe; it exists for the scalar-vs-SIMD differential
/// gate and for pinning benchmarks.
pub fn force_dispatch(mode: Option<Dispatch>) {
    let v = match mode {
        None => 0,
        Some(Dispatch::Scalar) => 1,
        Some(Dispatch::Sse2) => 2,
        Some(Dispatch::Avx2) => 3,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// `out[i] += a[i] * b[i]` over the common length of the three slices.
///
/// The workhorse of the SoA route loop: `a` is a mass row, `b` a
/// probability row, `out` the target-state accumulator row.
#[inline]
pub(crate) fn mul_add_lanes(out: &mut [f64], a: &[f64], b: &[f64]) {
    let n = out.len().min(a.len()).min(b.len());
    let (out, a, b) = (&mut out[..n], &a[..n], &b[..n]);
    match dispatch() {
        Dispatch::Scalar => mul_add_scalar(out, a, b),
        #[cfg(target_arch = "x86_64")]
        Dispatch::Sse2 => unsafe { mul_add_sse2(out, a, b) },
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx2 => unsafe { mul_add_avx2(out, a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => mul_add_scalar(out, a, b),
    }
}

/// `acc[i] += row[i]` over the common length (the accepting-mass sum).
#[inline]
pub(crate) fn add_lanes(acc: &mut [f64], row: &[f64]) {
    let n = acc.len().min(row.len());
    let (acc, row) = (&mut acc[..n], &row[..n]);
    match dispatch() {
        Dispatch::Scalar => add_scalar(acc, row),
        #[cfg(target_arch = "x86_64")]
        Dispatch::Sse2 => unsafe { add_sse2(acc, row) },
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx2 => unsafe { add_avx2(acc, row) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => add_scalar(acc, row),
    }
}

fn mul_add_scalar(out: &mut [f64], a: &[f64], b: &[f64]) {
    for i in 0..out.len() {
        out[i] += a[i] * b[i];
    }
}

fn add_scalar(acc: &mut [f64], row: &[f64]) {
    for i in 0..acc.len() {
        acc[i] += row[i];
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller guarantees the three slices have equal length (the safe
    /// wrappers truncate to the common length first). SSE2 is part of
    /// the x86_64 baseline, so no feature guard is needed.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn mul_add_sse2(out: &mut [f64], a: &[f64], b: &[f64]) {
        let n = out.len();
        let mut i = 0;
        while i + 2 <= n {
            let va = _mm_loadu_pd(a.as_ptr().add(i));
            let vb = _mm_loadu_pd(b.as_ptr().add(i));
            let vo = _mm_loadu_pd(out.as_ptr().add(i));
            // mul then add — no FMA, see the module's bit-identity note.
            let r = _mm_add_pd(vo, _mm_mul_pd(va, vb));
            _mm_storeu_pd(out.as_mut_ptr().add(i), r);
            i += 2;
        }
        while i < n {
            out[i] += a[i] * b[i];
            i += 1;
        }
    }

    /// # Safety
    /// Caller guarantees equal slice lengths **and** that AVX2 is
    /// available (checked by `is_x86_feature_detected!` at dispatch).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_add_avx2(out: &mut [f64], a: &[f64], b: &[f64]) {
        let n = out.len();
        let mut i = 0;
        while i + 4 <= n {
            let va = _mm256_loadu_pd(a.as_ptr().add(i));
            let vb = _mm256_loadu_pd(b.as_ptr().add(i));
            let vo = _mm256_loadu_pd(out.as_ptr().add(i));
            // mul then add — no FMA, see the module's bit-identity note.
            let r = _mm256_add_pd(vo, _mm256_mul_pd(va, vb));
            _mm256_storeu_pd(out.as_mut_ptr().add(i), r);
            i += 4;
        }
        while i < n {
            out[i] += a[i] * b[i];
            i += 1;
        }
    }

    /// # Safety
    /// Caller guarantees equal slice lengths.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn add_sse2(acc: &mut [f64], row: &[f64]) {
        let n = acc.len();
        let mut i = 0;
        while i + 2 <= n {
            let v = _mm_loadu_pd(row.as_ptr().add(i));
            let va = _mm_loadu_pd(acc.as_ptr().add(i));
            _mm_storeu_pd(acc.as_mut_ptr().add(i), _mm_add_pd(va, v));
            i += 2;
        }
        while i < n {
            acc[i] += row[i];
            i += 1;
        }
    }

    /// # Safety
    /// Caller guarantees equal slice lengths and AVX2 availability.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_avx2(acc: &mut [f64], row: &[f64]) {
        let n = acc.len();
        let mut i = 0;
        while i + 4 <= n {
            let v = _mm256_loadu_pd(row.as_ptr().add(i));
            let va = _mm256_loadu_pd(acc.as_ptr().add(i));
            _mm256_storeu_pd(acc.as_mut_ptr().add(i), _mm256_add_pd(va, v));
            i += 4;
        }
        while i < n {
            acc[i] += row[i];
            i += 1;
        }
    }
}

#[cfg(target_arch = "x86_64")]
use x86::{add_avx2, add_sse2, mul_add_avx2, mul_add_sse2};

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic "awkward" doubles: subnormal-ish, mixed magnitude,
    /// negative zero — anything whose rounding could expose a non-
    /// element-wise implementation.
    fn probe(n: usize, salt: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ salt;
                // Map to a wide range of magnitudes, keep some exact zeros.
                match x % 7 {
                    0 => 0.0,
                    1 => -0.0,
                    2 => f64::from_bits(0x000f_ffff_ffff_ffff & x), // subnormal
                    _ => ((x % 1000) as f64 - 500.0) * 1.000000119e-3_f64.powi((x % 31) as i32),
                }
            })
            .collect()
    }

    fn available() -> Vec<Dispatch> {
        let mut out = vec![Dispatch::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            out.push(Dispatch::Sse2);
            if std::arch::is_x86_feature_detected!("avx2") {
                out.push(Dispatch::Avx2);
            }
        }
        out
    }

    #[test]
    fn simd_paths_are_bit_identical_to_scalar() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 31, 64, 350, 1050] {
            let a = probe(n, 1);
            let b = probe(n, 2);
            let base = probe(n, 3);
            let mut want = base.clone();
            mul_add_scalar(&mut want, &a, &b);
            let mut want_add = base.clone();
            add_scalar(&mut want_add, &a);
            for mode in available() {
                force_dispatch(Some(mode));
                let mut got = base.clone();
                mul_add_lanes(&mut got, &a, &b);
                let mut got_add = base.clone();
                add_lanes(&mut got_add, &a);
                force_dispatch(None);
                for i in 0..n {
                    assert_eq!(
                        want[i].to_bits(),
                        got[i].to_bits(),
                        "mul_add {mode:?} lane {i} of {n}"
                    );
                    assert_eq!(
                        want_add[i].to_bits(),
                        got_add[i].to_bits(),
                        "add {mode:?} lane {i} of {n}"
                    );
                }
            }
        }
    }

    #[test]
    fn dispatch_override_round_trips() {
        force_dispatch(Some(Dispatch::Scalar));
        assert_eq!(dispatch(), Dispatch::Scalar);
        assert!(!dispatch().is_simd());
        force_dispatch(None);
        // Whatever detection picks must be one of the compiled paths.
        assert!(matches!(
            dispatch(),
            Dispatch::Scalar | Dispatch::Sse2 | Dispatch::Avx2
        ));
    }

    #[test]
    fn mismatched_lengths_truncate_safely() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0];
        let mut out = [0.5; 4];
        mul_add_lanes(&mut out, &a, &b);
        assert_eq!(out, [10.5, 40.5, 0.5, 0.5]);
    }
}
