//! The §3.1.1 translation: regular queries → symbolic regular expressions
//! plus a per-event symbol table.
//!
//! For a regular query with subgoals `g1 … gn`, the symbol universe is
//! `L_q = {m_1 … m_n, a_1 … a_n}`: at timestep `t`, the input symbol set
//! `S(t)` contains `m_i` when some event at `t` unifies with `g_i` (and
//! satisfies its inner predicate), and additionally `a_i` when the event
//! also satisfies the associated predicate `σ_i` (the per-repetition
//! predicate `θ2` for Kleene items). The translation of the query is
//!
//! ```text
//! first item, goal:    {a_1}
//! first item, kleene:  {a_1}, ((¬{m_1, a_1})*, {a_1})*
//! later item, goal:    (¬{m_i, a_i})*, {a_i}
//! later item, kleene:  ((¬{m_i, a_i})*, {a_i})+
//! ```
//!
//! concatenated and prefixed with `.*` (queries may begin at any time).
//!
//! Symbols are assigned bits `m_i ↦ 2i`, `a_i ↦ 2i + 1`.

use crate::error::EngineError;
use lahar_automata::{Regex, SymbolSet};
use lahar_model::{Database, GroundEvent, Stream};
use lahar_query::{match_event, BaseQuery, Binding, Cond, NormalItem, Subgoal, Term, Var};

/// Bit index of the *match* symbol of item `i`.
pub fn m_bit(i: usize) -> u32 {
    (2 * i) as u32
}

/// Bit index of the *accept* symbol of item `i`.
pub fn a_bit(i: usize) -> u32 {
    (2 * i + 1) as u32
}

/// Builds the paper's regular expression for a sequence of (grounded,
/// regular) items, including the leading `.*`.
pub fn build_regex(items: &[NormalItem]) -> Regex {
    let mut e = Regex::any_star();
    for (i, item) in items.iter().enumerate() {
        let ma = SymbolSet::singleton(m_bit(i)).union(SymbolSet::singleton(a_bit(i)));
        let a = SymbolSet::singleton(a_bit(i));
        let is_kleene = item.base.is_kleene();
        if i == 0 {
            // No predecessor: the first occurrence is unconstrained by
            // successor competition.
            e = e.then(Regex::superset(a));
            if is_kleene {
                e = e.then(Regex::disjoint(ma).star().then(Regex::superset(a)).star());
            }
        } else if is_kleene {
            e = e.then(Regex::disjoint(ma).star().then(Regex::superset(a)).plus());
        } else {
            e = e.then(Regex::disjoint(ma).star()).then(Regex::superset(a));
        }
    }
    e
}

/// Substitutes constants for variables throughout a sequence of items
/// (used to ground the `reg⟨V⟩` leaf of safe plans and the per-binding
/// chains of extended regular queries).
pub fn substitute_items(items: &[NormalItem], binding: &Binding) -> Vec<NormalItem> {
    items
        .iter()
        .map(|item| NormalItem {
            base: substitute_base(&item.base, binding),
            assoc: substitute_cond(&item.assoc, binding),
        })
        .collect()
}

fn substitute_base(base: &BaseQuery, binding: &Binding) -> BaseQuery {
    match base {
        BaseQuery::Goal { goal, cond } => BaseQuery::Goal {
            goal: substitute_goal(goal, binding),
            cond: substitute_cond(cond, binding),
        },
        BaseQuery::Kleene {
            goal,
            cond,
            shared,
            each,
        } => BaseQuery::Kleene {
            goal: substitute_goal(goal, binding),
            cond: substitute_cond(cond, binding),
            shared: shared
                .iter()
                .copied()
                .filter(|v| !binding.contains_key(v))
                .collect(),
            each: substitute_cond(each, binding),
        },
    }
}

fn substitute_goal(goal: &Subgoal, binding: &Binding) -> Subgoal {
    Subgoal {
        stream_type: goal.stream_type,
        args: goal
            .args
            .iter()
            .map(|t| substitute_term(t, binding))
            .collect(),
    }
}

fn substitute_term(t: &Term, binding: &Binding) -> Term {
    match t {
        Term::Var(v) => match binding.get(v) {
            Some(val) => Term::Const(*val),
            None => *t,
        },
        Term::Const(_) => *t,
    }
}

/// Substitutes constants for bound variables in a condition.
pub fn substitute_cond(c: &Cond, binding: &Binding) -> Cond {
    match c {
        Cond::True => Cond::True,
        Cond::Cmp { op, lhs, rhs } => Cond::Cmp {
            op: *op,
            lhs: substitute_term(lhs, binding),
            rhs: substitute_term(rhs, binding),
        },
        Cond::Rel { name, args } => Cond::Rel {
            name: *name,
            args: args.iter().map(|t| substitute_term(t, binding)).collect(),
        },
        Cond::And(a, b) => Cond::And(
            Box::new(substitute_cond(a, binding)),
            Box::new(substitute_cond(b, binding)),
        ),
        Cond::Or(a, b) => Cond::Or(
            Box::new(substitute_cond(a, binding)),
            Box::new(substitute_cond(b, binding)),
        ),
        Cond::Not(a) => Cond::Not(Box::new(substitute_cond(a, binding))),
    }
}

/// True when `stream` could produce an event unifying with some item's
/// subgoal: the stream type matches and every key-position constant in the
/// subgoal equals the stream's key component.
pub fn stream_relevant(db: &Database, stream: &Stream, items: &[NormalItem]) -> bool {
    items.iter().any(|item| {
        let goal = item.base.goal();
        if goal.stream_type != stream.id().stream_type {
            return false;
        }
        let schema = match db.catalog().stream(goal.stream_type) {
            Some(s) => s,
            None => return false,
        };
        (0..schema.key_arity).all(|i| match &goal.args[i] {
            Term::Const(c) => stream.id().key.get(i) == Some(c),
            Term::Var(_) => true,
        })
    })
}

/// The indices (into `db.streams()`) of the streams relevant to the items.
pub fn relevant_streams(db: &Database, items: &[NormalItem]) -> Vec<usize> {
    db.streams()
        .iter()
        .enumerate()
        .filter(|(_, s)| stream_relevant(db, s, items))
        .map(|(i, _)| i)
        .collect()
}

/// The per-outcome symbol table of one stream: `syms[d]` is the symbol set
/// contributed by the event "stream emits outcome `d`" (empty for ⊥ and
/// for outcomes matching no subgoal).
pub fn symbol_table(
    db: &Database,
    stream: &Stream,
    items: &[NormalItem],
) -> Result<Vec<SymbolSet>, EngineError> {
    let domain = stream.domain();
    let mut table = vec![SymbolSet::EMPTY; domain.len()];
    for (d, values) in domain.iter() {
        let event = GroundEvent {
            stream_type: stream.id().stream_type,
            key: stream.id().key.clone(),
            values: values.clone(),
            t: 0,
        };
        table[d] = symbols_for_event(db, &event, items)?;
    }
    Ok(table)
}

/// The symbol set contributed by a single deterministic event.
pub fn symbols_for_event(
    db: &Database,
    event: &GroundEvent,
    items: &[NormalItem],
) -> Result<SymbolSet, EngineError> {
    let mut set = SymbolSet::EMPTY;
    for (i, item) in items.iter().enumerate() {
        let goal = item.base.goal();
        let inner = item.base.inner_cond();
        if let Some(binding) = match_event(db, goal, inner, event, &Binding::new())? {
            set.insert(m_bit(i));
            let accept_cond: &Cond = match &item.base {
                BaseQuery::Kleene { each, .. } => each,
                BaseQuery::Goal { .. } => &item.assoc,
            };
            if lahar_query::eval_cond(db, accept_cond, &binding)? {
                set.insert(a_bit(i));
            }
        }
    }
    Ok(set)
}

/// Candidate constants for grounding a variable: the values observed at
/// `x`'s positions across the database's streams, intersected over the
/// subgoals in which `x` occurs.
pub fn candidate_values(db: &Database, items: &[NormalItem], x: Var) -> Vec<lahar_model::Value> {
    use std::collections::BTreeSet;
    let mut candidates: Option<BTreeSet<lahar_model::Value>> = None;
    for item in items {
        let goal = item.base.goal();
        let positions = goal.positions_of(x);
        if positions.is_empty() {
            continue;
        }
        let schema = match db.catalog().stream(goal.stream_type) {
            Some(s) => s,
            None => continue,
        };
        let mut here = BTreeSet::new();
        for stream in db.streams_of_type(goal.stream_type) {
            for &pos in &positions {
                if schema.is_key_position(pos) {
                    if let Some(v) = stream.id().key.get(pos) {
                        here.insert(*v);
                    }
                } else {
                    let vpos = pos - schema.key_arity;
                    for (_, values) in stream.domain().iter() {
                        if let Some(v) = values.get(vpos) {
                            here.insert(*v);
                        }
                    }
                }
            }
        }
        candidates = Some(match candidates {
            None => here,
            Some(prev) => prev.intersection(&here).copied().collect(),
        });
    }
    candidates
        .map(|s| s.into_iter().collect())
        .unwrap_or_default()
}

/// Grounds a tuple of variables over their candidate sets, returning every
/// joint binding.
pub fn enumerate_bindings(
    db: &Database,
    items: &[NormalItem],
    vars: &[Var],
    cap: usize,
) -> Result<Vec<Binding>, EngineError> {
    let per_var: Vec<Vec<lahar_model::Value>> = vars
        .iter()
        .map(|&x| candidate_values(db, items, x))
        .collect();
    let count: usize = per_var.iter().map(Vec::len).product();
    if count > cap {
        return Err(EngineError::TooManyGroundings { count, cap });
    }
    let mut out = vec![Binding::new()];
    for (x, values) in vars.iter().zip(&per_var) {
        let mut next = Vec::with_capacity(out.len() * values.len());
        for b in &out {
            for v in values {
                let mut b2 = b.clone();
                b2.insert(*x, *v);
                next.push(b2);
            }
        }
        out = next;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lahar_model::{StreamBuilder, Value};
    use lahar_query::{parse_query, NormalQuery};

    fn db_with_joe_sue() -> Database {
        let mut db = Database::new();
        db.declare_stream("At", &["person"], &["loc"]).unwrap();
        db.declare_relation("Hallway", 1).unwrap();
        let i = db.interner().clone();
        db.insert_relation_tuple("Hallway", lahar_model::tuple([i.intern("h1")]))
            .unwrap();
        for person in ["joe", "sue"] {
            let b = StreamBuilder::new(&i, "At", &[person], &["a", "h1", "c"]);
            let m = b.marginal(&[("a", 0.5), ("h1", 0.5)]).unwrap();
            let s = b.independent(vec![m]).unwrap();
            db.add_stream(s).unwrap();
        }
        db
    }

    fn items(db: &Database, src: &str) -> Vec<NormalItem> {
        let q = parse_query(db.interner(), src).unwrap();
        NormalQuery::from_query(&q).items
    }

    #[test]
    fn regex_shapes_match_the_paper() {
        let db = db_with_joe_sue();
        // Two plain goals: .* {a0} ¬{m1,a1}* {a1}.
        let it = items(&db, "At('joe','a') ; At('joe','c')");
        let e = build_regex(&it);
        assert_eq!(e.to_string(), "(.*, {1}, ¬{2,3}*, {3})");
        // Goal then kleene then goal.
        let it = items(&db, "At('joe','a') ; (At('joe', l))+{} ; At('joe','c')");
        let e = build_regex(&it);
        assert_eq!(e.to_string(), "(.*, {1}, (¬{2,3}*, {3})+, ¬{4,5}*, {5})");
        // Kleene first.
        let it = items(&db, "(At('joe', l))+{}");
        let e = build_regex(&it);
        assert_eq!(e.to_string(), "(.*, {1}, (¬{0,1}*, {1})*)");
    }

    #[test]
    fn ex_3_11_symbol_translation_differs_for_qf_and_qs() {
        // q_f = R('a'); R('b')  vs  q_s = sigma[y='b'](R('a'); R(y)).
        let mut db = Database::new();
        db.declare_stream("R", &[], &["y"]).unwrap();
        let i = db.interner().clone();
        let b = StreamBuilder::new(&i, "R", &[], &["a", "b", "c"]);
        let s = b.deterministic(&[Some("a"), Some("c"), Some("b")]).unwrap();
        db.add_stream(s).unwrap();
        let stream = &db.streams()[0];

        let qf = items(&db, "R('a') ; R('b')");
        let table = symbol_table(&db, stream, &qf).unwrap();
        let d = |name: &str| {
            stream
                .domain()
                .index_of(&lahar_model::tuple([i.intern(name)]))
                .unwrap()
        };
        // For q_f, R(c) produces no symbols at all (it does not unify with
        // the constant pattern R('b')).
        assert_eq!(table[d("c")], SymbolSet::EMPTY);
        assert!(table[d("a")].contains(m_bit(0)) && table[d("a")].contains(a_bit(0)));
        assert!(table[d("b")].contains(m_bit(1)) && table[d("b")].contains(a_bit(1)));

        let qs = items(&db, "sigma[y = 'b'](R('a') ; R(y))");
        let table = symbol_table(&db, stream, &qs).unwrap();
        // For q_s, R(c) unifies with R(y) (m_1) but fails y='b' (no a_1):
        // exactly the paper's table in §3.1.1.
        assert!(table[d("c")].contains(m_bit(1)));
        assert!(!table[d("c")].contains(a_bit(1)));
        assert!(table[d("b")].contains(a_bit(1)));
        // R(a) also unifies with R(y).
        assert!(table[d("a")].contains(m_bit(1)));
        assert!(!table[d("a")].contains(a_bit(1)));
    }

    #[test]
    fn relevance_filters_by_key_constants() {
        let db = db_with_joe_sue();
        let it = items(&db, "At('joe','a') ; At('joe','c')");
        let rel = relevant_streams(&db, &it);
        assert_eq!(rel.len(), 1);
        assert_eq!(
            db.streams()[rel[0]].id().key[0],
            Value::Str(db.interner().intern("joe"))
        );
        // A variable key makes every At stream relevant.
        let it = items(&db, "At(p,'a') ; At(p,'c')");
        assert_eq!(relevant_streams(&db, &it).len(), 2);
    }

    #[test]
    fn substitution_grounds_vars_and_prunes_kleene_shared() {
        let db = db_with_joe_sue();
        let i = db.interner().clone();
        let it = items(&db, "At(p,'a') ; (At(p, l))+{p}");
        let mut binding = Binding::new();
        binding.insert(Var(i.intern("p")), Value::Str(i.intern("joe")));
        let grounded = substitute_items(&it, &binding);
        assert_eq!(
            grounded[0].base.goal().args[0],
            Term::Const(Value::Str(i.intern("joe")))
        );
        match &grounded[1].base {
            BaseQuery::Kleene { shared, .. } => assert!(shared.is_empty()),
            other => panic!("expected kleene, got {other:?}"),
        }
    }

    #[test]
    fn candidate_values_intersect_across_subgoals() {
        let db = db_with_joe_sue();
        let i = db.interner().clone();
        let it = items(&db, "At(p,'a') ; At(p,'c')");
        let p = Var(i.intern("p"));
        let vals = candidate_values(&db, &it, p);
        assert_eq!(vals.len(), 2); // joe and sue.
        let bindings = enumerate_bindings(&db, &it, &[p], 100).unwrap();
        assert_eq!(bindings.len(), 2);
        assert!(matches!(
            enumerate_bindings(&db, &it, &[p], 1),
            Err(EngineError::TooManyGroundings { .. })
        ));
    }

    #[test]
    fn inner_cond_gates_match_symbol() {
        let db = db_with_joe_sue();
        let it = items(&db, "At('joe', l)[Hallway(l)]");
        let stream = &db.streams()[0];
        let table = symbol_table(&db, stream, &it).unwrap();
        let i = db.interner().clone();
        let d = |name: &str| {
            stream
                .domain()
                .index_of(&lahar_model::tuple([i.intern(name)]))
                .unwrap()
        };
        // 'a' is not a hallway: no m-symbol at all (inner condition is part
        // of matching).
        assert_eq!(table[d("a")], SymbolSet::EMPTY);
        assert!(table[d("h1")].contains(m_bit(0)));
        assert!(table[d("h1")].contains(a_bit(0)));
    }
}
