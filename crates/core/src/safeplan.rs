//! Execution of safe plans (§3.3, Theorem 3.10).
//!
//! A [`SafePlan`] is evaluated bottom-up on interval probabilities
//! `P[q[ts, tf]]`:
//!
//! * `reg⟨V⟩` — for each binding of `V`, a grounded [`IntervalChain`]
//!   (accepted-bit Markov chain, §3.3.1 "Regular Expression" operator);
//! * `π₋ₓ` — per-binding results are independent (bindings differ at a key
//!   position, hence live on disjoint streams) and combine as
//!   `1 − Π(1 − pᵢ)`;
//! * `seq` — the latest-precursor / latest-witness factorization (Eq. 3):
//!   `P[q[ts,tf]] = Σ_{a,b} P[Tp = a ∧ Tw = b] · P[q′[a, b−1]]`, with the
//!   boundary corrected to `b − 1` because a witness must be *strictly*
//!   later than the subquery's completion (Fig 2 semantics).
//!
//! The executor memoizes child interval probabilities per (binding,
//! interval) and evaluates the reg-leaf recurrence lazily; total work is
//! `O(|W| · T²)` as in Theorem 3.10.

use crate::error::EngineError;
use crate::interval::IntervalChain;
use crate::occurrence::OccurrenceModel;
use crate::translate::{candidate_values, substitute_items};
use lahar_model::{Database, Value};
use lahar_query::{Binding, NormalItem, SafePlan, Var};
use std::collections::HashMap;

/// Executable node tree mirroring [`SafePlan`], with per-node caches.
#[allow(clippy::large_enum_variant)] // a handful of nodes per plan
enum Node {
    Reg {
        env: Vec<Var>,
        items: Vec<NormalItem>,
        chains: HashMap<Vec<Value>, IntervalChain>,
    },
    Project {
        var: Var,
        candidates: Vec<Value>,
        input: Box<Node>,
    },
    Seq {
        input: Box<Node>,
        item: NormalItem,
        models: HashMap<Vec<Value>, OccurrenceModel>,
        /// Variables of the item that must be bound before grounding
        /// (inherited env variables).
        item_env: Vec<Var>,
        memo: HashMap<(Vec<Value>, u32, u32), f64>,
        memo_env: Vec<Var>,
    },
}

/// Executor for a compiled safe plan against one database snapshot.
pub struct SafePlanExecutor<'db> {
    db: &'db Database,
    root: Node,
    approx_seq: bool,
}

impl<'db> SafePlanExecutor<'db> {
    /// Builds an executor. Fails early when the plan uses a `seq` whose
    /// base query the occurrence model cannot represent exactly (the
    /// engine then falls back to sampling).
    pub fn new(db: &'db Database, plan: &SafePlan) -> Result<Self, EngineError> {
        let root = build(db, plan, &mut Vec::new())?;
        Ok(Self {
            db,
            root,
            approx_seq: false,
        })
    }

    /// Like [`SafePlanExecutor::new`] but treating every `seq` base
    /// query's occurrence process as per-timestep independent even on
    /// Markovian streams — the paper's simplified algebra, used by the
    /// ablation bench.
    pub fn new_with_independence_approx(
        db: &'db Database,
        plan: &SafePlan,
    ) -> Result<Self, EngineError> {
        let root = build(db, plan, &mut Vec::new())?;
        Ok(Self {
            db,
            root,
            approx_seq: true,
        })
    }

    /// `μ(q@t)` — the point probability at `t`.
    pub fn prob_at(&mut self, t: u32) -> Result<f64, EngineError> {
        eval(
            self.db,
            &mut self.root,
            &Binding::new(),
            t,
            t,
            self.approx_seq,
        )
    }

    /// `P[q[ts, tf]]` — the interval probability.
    pub fn prob_interval(&mut self, ts: u32, tf: u32) -> Result<f64, EngineError> {
        eval(
            self.db,
            &mut self.root,
            &Binding::new(),
            ts,
            tf,
            self.approx_seq,
        )
    }

    /// `μ(q@t)` for every `t` in `0..horizon`.
    pub fn prob_series(&mut self, horizon: u32) -> Result<Vec<f64>, EngineError> {
        (0..horizon).map(|t| self.prob_at(t)).collect()
    }
}

/// Collects the env variables bound above this node.
fn build(db: &Database, plan: &SafePlan, bound: &mut Vec<Var>) -> Result<Node, EngineError> {
    match plan {
        SafePlan::Reg { env, items } => Ok(Node::Reg {
            env: env.clone(),
            items: items.clone(),
            chains: HashMap::new(),
        }),
        SafePlan::Project { var, input } => {
            bound.push(*var);
            let (_, leaf_items) = plan.reg_leaf();
            let candidates = candidate_values(db, leaf_items, *var);
            let input = Box::new(build(db, input, bound)?);
            Ok(Node::Project {
                var: *var,
                candidates,
                input,
            })
        }
        SafePlan::Seq { input, item } => {
            // Validate the occurrence model once, unbound (grounding only
            // substitutes constants, which cannot make an unsupported item
            // supported or vice versa — assoc and stream kinds are
            // binding-independent for key-grounded vars).
            let item_env: Vec<Var> = item
                .base
                .goal()
                .vars()
                .into_iter()
                .filter(|v| bound.contains(v))
                .collect();
            if !item.assoc.is_true() {
                return Err(EngineError::Query(lahar_query::QueryError::NotInClass(
                    "seq with associated predicate (falls back to sampling)".to_owned(),
                )));
            }
            let memo_env = bound.clone();
            let input = Box::new(build(db, input, bound)?);
            Ok(Node::Seq {
                input,
                item: item.clone(),
                models: HashMap::new(),
                item_env,
                memo: HashMap::new(),
                memo_env,
            })
        }
    }
}

fn key_of(binding: &Binding, vars: &[Var]) -> Vec<Value> {
    vars.iter()
        .map(|v| {
            *binding
                .get(v)
                .expect("env variable bound by projection above")
        })
        .collect()
}

fn eval(
    db: &Database,
    node: &mut Node,
    binding: &Binding,
    ts: u32,
    tf: u32,
    approx_seq: bool,
) -> Result<f64, EngineError> {
    if tf < ts {
        return Ok(0.0);
    }
    // Span taxonomy note: σ has no runtime node — selection predicates
    // fold into the association conditions at plan compilation, so only
    // reg / π₋ₓ (project) / seq appear on the timeline.
    match node {
        Node::Reg { env, items, chains } => {
            let _span = crate::trace::span("safeplan.reg")
                .with("ts", u64::from(ts))
                .with("tf", u64::from(tf));
            let key = key_of(binding, env);
            if !chains.contains_key(&key) {
                let grounded = substitute_items(items, binding);
                chains.insert(key.clone(), IntervalChain::new(db, &grounded)?);
            }
            let chain = chains.get_mut(&key).expect("inserted above");
            Ok(chain.prob(db, ts, tf))
        }
        Node::Project {
            var,
            candidates,
            input,
        } => {
            let _span = crate::trace::span("safeplan.project")
                .with("candidates", candidates.len() as u64)
                .with("tf", u64::from(tf));
            let mut none = 1.0;
            for v in candidates.iter() {
                let mut b2 = binding.clone();
                b2.insert(*var, *v);
                let p = eval(db, input, &b2, ts, tf, approx_seq)?;
                none *= 1.0 - p;
            }
            Ok(1.0 - none)
        }
        Node::Seq {
            input,
            item,
            models,
            item_env,
            memo,
            memo_env,
        } => {
            let memo_key = (key_of(binding, memo_env), ts, tf);
            if let Some(&p) = memo.get(&memo_key) {
                return Ok(p);
            }
            let _span = crate::trace::span("safeplan.seq")
                .with("ts", u64::from(ts))
                .with("tf", u64::from(tf));
            let item_key = key_of(binding, item_env);
            if !models.contains_key(&item_key) {
                let grounded = substitute_items(std::slice::from_ref(item), binding);
                let model = if approx_seq {
                    OccurrenceModel::new_independence_approx(db, &grounded[0])?
                } else {
                    OccurrenceModel::new(db, &grounded[0])?
                };
                models.insert(item_key.clone(), model);
            }
            let model = models.get(&item_key).expect("inserted above");
            let joint = model.tp_tw(db, ts, tf);
            let mut total = 0.0;
            for (a, b, p) in joint.iter() {
                if p == 0.0 || b == 0 {
                    continue;
                }
                let lo = a.unwrap_or(0);
                let child = eval(db, input, binding, lo, b - 1, approx_seq)?;
                total += p * child;
            }
            memo.insert(memo_key, total);
            Ok(total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lahar_model::{Database, StreamBuilder};
    use lahar_query::{compile_safe_plan, parse_query, prob_series, NormalQuery};

    /// R, S, T streams over distinct types; x shared between R and S.
    fn fig6_db(markov_t: bool) -> Database {
        let mut db = Database::new();
        db.declare_stream("R", &["k"], &["v"]).unwrap();
        db.declare_stream("S", &["k"], &["v"]).unwrap();
        db.declare_stream("T", &["k"], &["v"]).unwrap();
        let i = db.interner().clone();
        for key in ["k1", "k2"] {
            let b = StreamBuilder::new(&i, "R", &[key], &["r"]);
            let ms = vec![
                b.marginal(&[("r", if key == "k1" { 0.6 } else { 0.3 })])
                    .unwrap(),
                b.marginal(&[("r", 0.2)]).unwrap(),
                b.marginal(&[]).unwrap(),
                b.marginal(&[]).unwrap(),
            ];
            db.add_stream(b.independent(ms).unwrap()).unwrap();
            let b = StreamBuilder::new(&i, "S", &[key], &["s"]);
            let ms = vec![
                b.marginal(&[]).unwrap(),
                b.marginal(&[("s", if key == "k1" { 0.7 } else { 0.4 })])
                    .unwrap(),
                b.marginal(&[("s", 0.5)]).unwrap(),
                b.marginal(&[]).unwrap(),
            ];
            db.add_stream(b.independent(ms).unwrap()).unwrap();
        }
        let b = StreamBuilder::new(&i, "T", &["a"], &["t1", "t2"]);
        if markov_t {
            let init = b.marginal(&[("t1", 0.3), ("t2", 0.2)]).unwrap();
            let cpt = b
                .cpt(&[("t1", "t1", 0.5), ("t1", "t2", 0.3), ("t2", "t2", 0.6)])
                .unwrap();
            db.add_stream(b.markov(init, vec![cpt.clone(), cpt.clone(), cpt]).unwrap())
                .unwrap();
        } else {
            let ms = vec![
                b.marginal(&[("t1", 0.3)]).unwrap(),
                b.marginal(&[("t2", 0.5)]).unwrap(),
                b.marginal(&[("t1", 0.2), ("t2", 0.2)]).unwrap(),
                b.marginal(&[("t1", 0.6)]).unwrap(),
            ];
            db.add_stream(b.independent(ms).unwrap()).unwrap();
        }
        db
    }

    fn assert_plan_matches_oracle(db: &Database, src: &str) {
        let q = parse_query(db.interner(), src).unwrap();
        let nq = NormalQuery::from_query(&q);
        let plan = compile_safe_plan(db.catalog(), &nq).unwrap();
        let mut exec = SafePlanExecutor::new(db, &plan).unwrap();
        let got = exec.prob_series(db.horizon()).unwrap();
        let want = prob_series(db, &q).unwrap();
        for (t, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() < 1e-9,
                "{src} at t={t}: plan {g} vs oracle {w}\nplan   {got:?}\noracle {want:?}"
            );
        }
    }

    /// Fig 6 / Ex 3.17: R(x); S(x); T('a', y) via seq(π(reg)).
    #[test]
    fn fig6_plan_matches_oracle_independent() {
        let db = fig6_db(false);
        assert_plan_matches_oracle(&db, "R(x, _) ; S(x, _) ; T('a', y)");
    }

    /// Same plan with a Markovian witness stream exercises the exact joint
    /// (Tp, Tw) extension.
    #[test]
    fn fig6_plan_matches_oracle_markov_witness() {
        let db = fig6_db(true);
        assert_plan_matches_oracle(&db, "R(x, _) ; S(x, _) ; T('a', y)");
    }

    /// A pure extended-regular query also runs through the safe-plan path
    /// (π over reg) and must agree with the oracle.
    #[test]
    fn projected_reg_without_seq_matches_oracle() {
        let db = fig6_db(false);
        assert_plan_matches_oracle(&db, "R(x, _) ; S(x, _)");
    }

    /// Regular leaf only.
    #[test]
    fn bare_reg_leaf_matches_oracle() {
        let db = fig6_db(false);
        assert_plan_matches_oracle(&db, "R('k1', _) ; S('k1', _)");
    }

    /// seq directly above the reg leaf (no projection).
    #[test]
    fn seq_above_constant_prefix_matches_oracle() {
        let db = fig6_db(false);
        assert_plan_matches_oracle(&db, "R('k1', _) ; T('a', y)");
        let db = fig6_db(true);
        assert_plan_matches_oracle(&db, "R('k1', _) ; T('a', y)");
    }

    /// Nested seq: ((R; S); T) where both S and T split off.
    #[test]
    fn nested_seq_matches_oracle() {
        let mut db = fig6_db(false);
        db.declare_stream("U", &["k"], &["v"]).unwrap();
        let i = db.interner().clone();
        let b = StreamBuilder::new(&i, "U", &["u1"], &["u"]);
        let ms = vec![
            b.marginal(&[]).unwrap(),
            b.marginal(&[("u", 0.4)]).unwrap(),
            b.marginal(&[("u", 0.5)]).unwrap(),
            b.marginal(&[("u", 0.3)]).unwrap(),
        ];
        db.add_stream(b.independent(ms).unwrap()).unwrap();
        assert_plan_matches_oracle(&db, "R(x, _) ; S(x, _) ; T('a', y) ; U(z, _)");
    }

    #[test]
    fn seq_with_assoc_predicate_is_rejected_at_build() {
        let mut db = fig6_db(false);
        db.declare_relation("Good", 1).unwrap();
        let i = db.interner().clone();
        db.insert_relation_tuple("Good", lahar_model::tuple([i.intern("t1")]))
            .unwrap();
        let q = parse_query(
            db.interner(),
            "sigma[Good(y)](R(x, _) ; S(x, _) ; T('a', y))",
        )
        .unwrap();
        let nq = NormalQuery::from_query(&q);
        let plan = compile_safe_plan(db.catalog(), &nq).unwrap();
        assert!(SafePlanExecutor::new(&db, &plan).is_err());
    }

    #[test]
    fn interval_query_on_plan_is_monotone() {
        let db = fig6_db(false);
        let q = parse_query(db.interner(), "R(x, _) ; S(x, _) ; T('a', y)").unwrap();
        let nq = NormalQuery::from_query(&q);
        let plan = compile_safe_plan(db.catalog(), &nq).unwrap();
        let mut exec = SafePlanExecutor::new(&db, &plan).unwrap();
        let mut prev = 0.0;
        for tf in 0..4 {
            let p = exec.prob_interval(0, tf).unwrap();
            assert!(p >= prev - 1e-12, "tf={tf}: {p} < {prev}");
            prev = p;
        }
    }
}
