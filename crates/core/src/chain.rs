//! The Markov chain over (hidden stream values × automaton states)
//! — the evaluation engine of §3.1.2.
//!
//! For a (grounded) regular query, the relevant streams form a joint hidden
//! Markov chain; the automaton reads, at each timestep, the symbol set
//! induced by the hidden value. [`ChainEvaluator`] maintains the exact
//! joint distribution `P[M(t) = (h, Q)]` where `h` is the joint stream
//! value and `Q` the (determinized-on-the-fly) NFA state set, advancing it
//! by one matrix-vector product per timestep:
//!
//! ```text
//! P[M(t) = (σ′, q′)] = Σ_{σ,q : δ(q,σ′)=q′} C(t)(σ′, σ) · P[M(t−1) = (σ, q)]
//! ```
//!
//! Two modes mirror the paper's two scenarios:
//!
//! * **Markov** (archived): the hidden value is carried in the state and
//!   evolved through the per-stream CPTs (a tensor contraction per axis, so
//!   a step costs `O(n_dfa · n_joint · Σ_s k_s)` rather than
//!   `O(n_dfa · n_joint²)`).
//! * **Independent** (real-time): "the next letter seen by the automaton is
//!   independent of the previously seen letters", so only the distribution
//!   over automaton states is kept — the paper's "smaller automaton".
//!
//! The evaluator also supports *draining*: removing the accepting mass
//! after each step turns the tracked mass into `P[h, Q ∧ not accepted
//! since the last drain start]`, which is how interval probabilities
//! `P[q[ts, tf]]` are computed for safe plans (§3.3.1).

use crate::error::EngineError;
use crate::translate::{build_regex, relevant_streams, symbol_table};
use lahar_automata::{BitSet, Nfa, SymbolSet};
use lahar_model::{Database, Marginal, Stream, StreamData};
use lahar_query::{NormalItem, QueryError};
use std::collections::HashMap;

/// Default cap on the joint hidden state space.
pub const DEFAULT_STATE_CAP: usize = 1 << 14;

/// On-the-fly determinization: NFA state sets interned to dense ids with
/// memoized transitions.
#[derive(Debug, Clone)]
pub struct DfaCache {
    nfa: Nfa,
    sets: Vec<BitSet>,
    ids: HashMap<BitSet, u32>,
    trans: HashMap<(u32, SymbolSet), u32>,
    accepting: Vec<bool>,
}

impl DfaCache {
    /// Creates a cache for an NFA; state 0 is the initial set.
    pub fn new(nfa: Nfa) -> Self {
        let initial = nfa.initial().clone();
        let accepting = vec![nfa.is_accepting(&initial)];
        Self {
            sets: vec![initial.clone()],
            ids: HashMap::from([(initial, 0)]),
            trans: HashMap::new(),
            accepting,
            nfa,
        }
    }

    /// The id of the initial state set.
    pub fn initial(&self) -> u32 {
        0
    }

    /// Number of discovered DFA states.
    pub fn n_states(&self) -> usize {
        self.sets.len()
    }

    /// True if DFA state `q` contains an accepting NFA state.
    pub fn is_accepting(&self, q: u32) -> bool {
        self.accepting[q as usize]
    }

    /// Exports the discovered DFA state sets in discovery order, each as
    /// the sorted NFA state indices it contains. Discovery order is what
    /// assigns dense state ids, so replaying this list through
    /// [`DfaCache::import_sets`] reproduces identical ids — the property
    /// session checkpoints rely on for bit-identical restores.
    pub(crate) fn export_sets(&self) -> Vec<Vec<u32>> {
        self.sets
            .iter()
            .map(|s| s.iter().map(|i| i as u32).collect())
            .collect()
    }

    /// Re-interns checkpointed state sets (in their original discovery
    /// order) into this freshly built cache. Transition memos are *not*
    /// restored; they re-memoize lazily with identical results since the
    /// underlying NFA is deterministic in its inputs.
    pub(crate) fn import_sets(&mut self, sets: &[Vec<u32>]) -> Result<(), String> {
        let n_nfa = self.nfa.n_states();
        let mut rebuilt: Vec<BitSet> = Vec::with_capacity(sets.len());
        for (idx, states) in sets.iter().enumerate() {
            let mut bs = BitSet::new(n_nfa);
            for &s in states {
                if s as usize >= n_nfa {
                    return Err(format!(
                        "DFA set {idx} references NFA state {s} but the automaton has {n_nfa}"
                    ));
                }
                bs.insert(s as usize);
            }
            rebuilt.push(bs);
        }
        match rebuilt.first() {
            Some(first) if *first == *self.nfa.initial() => {}
            _ => {
                return Err(
                    "checkpointed DFA sets do not start with this automaton's initial set"
                        .to_owned(),
                )
            }
        }
        self.ids = rebuilt
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect();
        if self.ids.len() != rebuilt.len() {
            return Err("checkpointed DFA sets contain duplicates".to_owned());
        }
        self.accepting = rebuilt.iter().map(|s| self.nfa.is_accepting(s)).collect();
        self.sets = rebuilt;
        self.trans.clear();
        Ok(())
    }

    /// The memoized transition `δ(q, sym)`.
    pub fn step(&mut self, q: u32, sym: SymbolSet) -> u32 {
        if let Some(&q2) = self.trans.get(&(q, sym)) {
            return q2;
        }
        let next = self.nfa.step(&self.sets[q as usize], sym);
        let id = match self.ids.get(&next) {
            Some(&id) => id,
            None => {
                let id = self.sets.len() as u32;
                self.accepting.push(self.nfa.is_accepting(&next));
                self.ids.insert(next.clone(), id);
                self.sets.push(next);
                id
            }
        };
        self.trans.insert((q, sym), id);
        id
    }
}

/// Which representation the evaluator uses for the hidden chain.
#[derive(Debug, Clone)]
enum Mode {
    /// Real-time scenario: hidden value forgotten between steps.
    Independent,
    /// Archived scenario: `dist[q]` carries a vector over joint hidden
    /// values.
    Markov,
}

/// Where an independent-mode step reads this tick's marginals from.
enum MarginalSource<'a> {
    /// `marginal_at(t)` of each relevant stream (batch evaluation).
    Db(&'a Database),
    /// Pre-staged marginals indexed like `db.streams()` (session tick
    /// on a worker thread, where the database is not shareable).
    Staged(&'a [Marginal]),
}

/// Serializable forward state of an independent-mode [`ChainEvaluator`]:
/// everything `O(1)`-space in the stream length (§3's real-time
/// scenario), which is exactly what makes session checkpoints cheap.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ChainState {
    /// Next timestep the chain will consume.
    pub(crate) t: u32,
    /// Tracked mass per discovered DFA state (independent mode keeps a
    /// single scalar per state).
    pub(crate) dist: Vec<f64>,
    /// Discovered DFA state sets in discovery order (NFA state indices).
    pub(crate) dfa_sets: Vec<Vec<u32>>,
}

/// Exact streaming evaluator for a grounded regular query.
#[derive(Debug, Clone)]
pub struct ChainEvaluator {
    dfa: DfaCache,
    /// Indices into `db.streams()` of the relevant streams.
    streams: Vec<usize>,
    /// Domain size (including ⊥) per relevant stream.
    sizes: Vec<usize>,
    /// Joint hidden state count (product of sizes; 1 when no stream is
    /// relevant).
    n_joint: usize,
    /// Per relevant stream: symbol set per outcome.
    syms: Vec<Vec<SymbolSet>>,
    /// Joint symbol per joint hidden outcome (Markov mode).
    joint_syms: Vec<SymbolSet>,
    mode: Mode,
    /// `dist[q]` — Markov: vector over joint hidden values; Independent:
    /// single-element vector (total mass in automaton state `q`).
    dist: Vec<Vec<f64>>,
    /// Next timestep to consume.
    t: u32,
    scratch: Vec<f64>,
    scratch2: Vec<f64>,
}

impl ChainEvaluator {
    /// Builds an evaluator for grounded items over the database, with the
    /// default hidden-state cap.
    pub fn new(db: &Database, items: &[NormalItem]) -> Result<Self, EngineError> {
        Self::with_cap(db, items, DEFAULT_STATE_CAP)
    }

    /// Builds an evaluator with an explicit joint-state cap.
    pub fn with_cap(db: &Database, items: &[NormalItem], cap: usize) -> Result<Self, EngineError> {
        let regex = build_regex(items);
        let nfa = Nfa::compile(&regex);
        let streams = relevant_streams(db, items);
        let mut sizes = Vec::with_capacity(streams.len());
        let mut syms = Vec::with_capacity(streams.len());
        let mut any_markov = false;
        for &si in &streams {
            let s = &db.streams()[si];
            sizes.push(s.domain().len());
            syms.push(symbol_table(db, s, items)?);
            any_markov |= s.is_markov();
        }
        // The joint hidden space only materializes in Markov mode;
        // independent mode tracks automaton states alone, so many relevant
        // streams are fine there. The product is overflow-checked: dozens
        // of Markov streams would overflow long before being representable.
        let (n_joint, mode) = if any_markov {
            let n = sizes
                .iter()
                .try_fold(1usize, |acc, &k| acc.checked_mul(k))
                .ok_or(EngineError::StateSpaceTooLarge {
                    size: usize::MAX,
                    cap,
                })?
                .max(1);
            if n > cap {
                return Err(EngineError::StateSpaceTooLarge { size: n, cap });
            }
            (n, Mode::Markov)
        } else {
            (1, Mode::Independent)
        };
        let joint_syms = match mode {
            Mode::Markov => {
                let mut js = vec![SymbolSet::EMPTY; n_joint];
                for (h, slot) in js.iter_mut().enumerate() {
                    let mut rem = h;
                    let mut set = SymbolSet::EMPTY;
                    for (s, &k) in sizes.iter().enumerate() {
                        let d = rem % k;
                        rem /= k;
                        set = set.union(syms[s][d]);
                    }
                    *slot = set;
                }
                js
            }
            Mode::Independent => Vec::new(),
        };
        let dfa = DfaCache::new(nfa);
        let hidden_dim = match mode {
            Mode::Markov => n_joint,
            Mode::Independent => 1,
        };
        let mut dist = vec![vec![0.0; hidden_dim]];
        // All mass starts in the initial automaton state; in Markov mode
        // the hidden part is filled lazily on the first step (the hidden
        // value at t = 0 is drawn fresh from the initial marginals).
        dist[0][0] = 1.0;
        Ok(Self {
            dfa,
            streams,
            sizes,
            n_joint,
            syms,
            joint_syms,
            mode,
            dist,
            t: 0,
            scratch: vec![0.0; hidden_dim],
            scratch2: vec![0.0; hidden_dim],
        })
    }

    /// The timestep the next [`ChainEvaluator::step`] will consume.
    pub fn next_t(&self) -> u32 {
        self.t
    }

    /// Number of DFA states discovered so far.
    pub fn n_dfa_states(&self) -> usize {
        self.dfa.n_states()
    }

    /// Total probability mass currently tracked (1.0 unless draining).
    pub fn tracked_mass(&self) -> f64 {
        self.dist.iter().map(|v| v.iter().sum::<f64>()).sum()
    }

    /// Probability mass currently in accepting automaton states — the
    /// query's probability at the last consumed timestep.
    pub fn accept_prob(&self) -> f64 {
        let p: f64 = self
            .dist
            .iter()
            .enumerate()
            .filter(|(q, _)| self.dfa.is_accepting(*q as u32))
            .map(|(_, v)| v.iter().sum::<f64>())
            .sum();
        // Guard against -1e-18-style float dust; the `+ 0.0` also
        // normalizes -0.0 (which clamp passes through) to +0.0 so
        // reported probabilities never render as "-0.000000".
        p.clamp(0.0, 1.0) + 0.0
    }

    /// Removes and returns the accepting mass (interval-probability mode).
    pub fn drain_accepting(&mut self) -> f64 {
        let mut drained = 0.0;
        for (q, v) in self.dist.iter_mut().enumerate() {
            if self.dfa.is_accepting(q as u32) {
                for slot in v.iter_mut() {
                    drained += *slot;
                    *slot = 0.0;
                }
            }
        }
        drained
    }

    /// True when the evaluator runs in the real-time (independent)
    /// representation — the only mode [`crate::RealTimeSession`] uses.
    pub fn is_independent(&self) -> bool {
        matches!(self.mode, Mode::Independent)
    }

    /// Exports the forward state (timestep, per-DFA-state mass, and the
    /// DFA discovery order) of an independent-mode evaluator.
    pub(crate) fn export_state(&self) -> Result<ChainState, EngineError> {
        if !self.is_independent() {
            return Err(EngineError::CheckpointUnsupported(
                "only independent-mode chains can be checkpointed".to_owned(),
            ));
        }
        Ok(ChainState {
            t: self.t,
            dist: self.dist.iter().map(|v| v[0]).collect(),
            dfa_sets: self.dfa.export_sets(),
        })
    }

    /// Restores checkpointed forward state into a structurally rebuilt
    /// evaluator (same query, same database schema). After this call the
    /// evaluator is bit-identical to the one that exported the state:
    /// the DFA discovery order is replayed so state ids line up, and
    /// future steps therefore accumulate in the same float order.
    pub(crate) fn restore_state(&mut self, state: &ChainState) -> Result<(), EngineError> {
        if !self.is_independent() {
            return Err(EngineError::CheckpointUnsupported(
                "only independent-mode chains can be restored".to_owned(),
            ));
        }
        self.dfa
            .import_sets(&state.dfa_sets)
            .map_err(EngineError::CheckpointCorrupt)?;
        if state.dist.len() > self.dfa.n_states() {
            return Err(EngineError::CheckpointCorrupt(format!(
                "chain mass vector covers {} DFA states but only {} were discovered",
                state.dist.len(),
                self.dfa.n_states()
            )));
        }
        self.dist = state.dist.iter().map(|&m| vec![m]).collect();
        self.t = state.t;
        Ok(())
    }

    /// Consumes timestep `t = next_t()`: evolves the hidden chain, feeds
    /// the induced symbol to the automaton, and returns the probability
    /// that the query is satisfied at `t`.
    pub fn step(&mut self, db: &Database) -> f64 {
        match self.mode {
            Mode::Independent => self.step_independent(MarginalSource::Db(db)),
            Mode::Markov => self.step_markov(db),
        }
        self.t += 1;
        self.accept_prob()
    }

    /// Consumes timestep `t = next_t()` of an independent-mode evaluator
    /// using this tick's marginals directly (indexed like
    /// `db.streams()`), without touching the database. This is how the
    /// session's parallel tick path steps shards on worker threads: the
    /// arithmetic is shared with [`ChainEvaluator::step`], so both paths
    /// produce the same result for the same inputs.
    pub fn step_with_marginals(&mut self, marginals: &[Marginal]) -> Result<f64, EngineError> {
        if !self.is_independent() {
            return Err(EngineError::Query(QueryError::NotInClass(
                "step_with_marginals requires an independent-mode chain".to_owned(),
            )));
        }
        self.step_independent(MarginalSource::Staged(marginals));
        self.t += 1;
        Ok(self.accept_prob())
    }

    fn step_independent(&mut self, source: MarginalSource<'_>) {
        // Distribution over symbol sets at time t, combining independent
        // streams by union-convolution.
        let mut sym_dist: HashMap<SymbolSet, f64> = HashMap::from([(SymbolSet::EMPTY, 1.0)]);
        for (s, &si) in self.streams.iter().enumerate() {
            let owned;
            let probs: &[f64] = match source {
                MarginalSource::Db(db) => {
                    owned = db.streams()[si].marginal_at(self.t);
                    owned.probs()
                }
                MarginalSource::Staged(ms) => ms[si].probs(),
            };
            let mut next: HashMap<SymbolSet, f64> = HashMap::new();
            for (sym_so_far, p) in &sym_dist {
                for (d, &pd) in probs.iter().enumerate() {
                    if pd == 0.0 {
                        continue;
                    }
                    *next.entry(sym_so_far.union(self.syms[s][d])).or_insert(0.0) += p * pd;
                }
            }
            sym_dist = next;
        }
        // Sorted application keeps floating-point accumulation order (and
        // therefore the engine's output) fully deterministic.
        let mut sym_dist: Vec<(SymbolSet, f64)> = sym_dist.into_iter().collect();
        sym_dist.sort_unstable_by_key(|(s, _)| s.0);
        let n_q = self.dist.len();
        let mut new_dist: Vec<Vec<f64>> = vec![vec![0.0; 1]; n_q];
        for q in 0..n_q {
            let mass = self.dist[q][0];
            if mass == 0.0 {
                continue;
            }
            for &(sym, p) in &sym_dist {
                let q2 = self.dfa.step(q as u32, sym) as usize;
                if q2 >= new_dist.len() {
                    new_dist.resize(q2 + 1, vec![0.0; 1]);
                }
                new_dist[q2][0] += mass * p;
            }
        }
        self.dist = new_dist;
    }

    fn step_markov(&mut self, db: &Database) {
        let n_q = self.dist.len();
        let mut new_dist: Vec<Vec<f64>> = vec![vec![0.0; self.n_joint]; n_q];
        for q in 0..n_q {
            let total: f64 = self.dist[q].iter().sum();
            if total == 0.0 {
                continue;
            }
            // Evolve the hidden part of this automaton state's mass. At
            // t = 0 the hidden values are drawn fresh from the initial
            // marginals (the pre-initial hidden component is a dummy
            // scalar in slot 0).
            if self.t == 0 {
                self.fill_initial_hidden(db, q);
            } else {
                self.evolve_hidden(db, q);
            }
            // Route each hidden value's mass through the automaton.
            let scratch = std::mem::take(&mut self.scratch);
            for (h, &mass) in scratch.iter().enumerate() {
                if mass == 0.0 {
                    continue;
                }
                let q2 = self.dfa.step(q as u32, self.joint_syms[h]) as usize;
                if q2 >= new_dist.len() {
                    new_dist.resize(q2 + 1, vec![0.0; self.n_joint]);
                }
                new_dist[q2][h] += mass;
            }
            self.scratch = scratch;
        }
        self.dist = new_dist;
    }

    /// Fills `self.scratch` with the product of the relevant streams'
    /// initial marginals, scaled by the mass in `dist[q]` (a scalar at
    /// t = 0).
    fn fill_initial_hidden(&mut self, db: &Database, q: usize) {
        let mass = self.dist[q][0];
        self.scratch.fill(0.0);
        for h in 0..self.n_joint {
            let mut rem = h;
            let mut p = mass;
            for (s, &k) in self.sizes.iter().enumerate() {
                let d = rem % k;
                rem /= k;
                let stream = &db.streams()[self.streams[s]];
                p *= stream.marginal_at(0).prob(d);
                if p == 0.0 {
                    break;
                }
            }
            self.scratch[h] = p;
        }
    }

    /// Evolves `dist[q]` one step through the joint CPT into
    /// `self.scratch` (tensor contraction, one axis per stream).
    fn evolve_hidden(&mut self, db: &Database, q: usize) {
        self.scratch.copy_from_slice(&self.dist[q]);
        let t = self.t;
        for (s, &si) in self.streams.iter().enumerate() {
            let stream = &db.streams()[si];
            let k = self.sizes[s];
            let stride: usize = self.sizes[..s].iter().product();
            let outer: usize = self.n_joint / (k * stride);
            self.scratch2.fill(0.0);
            match stream.data() {
                StreamData::Independent(_) => {
                    // Rank-1 transition: marginalize the axis out, then
                    // redistribute by the next marginal.
                    let next = stream.marginal_at(t);
                    for o in 0..outer {
                        for inner in 0..stride {
                            let base = o * k * stride + inner;
                            let mut sum = 0.0;
                            for d in 0..k {
                                sum += self.scratch[base + d * stride];
                            }
                            if sum == 0.0 {
                                continue;
                            }
                            for d2 in 0..k {
                                self.scratch2[base + d2 * stride] += sum * next.prob(d2);
                            }
                        }
                    }
                }
                StreamData::Markov { .. } => {
                    let cpt = markov_cpt(stream, t);
                    for o in 0..outer {
                        for inner in 0..stride {
                            let base = o * k * stride + inner;
                            for d in 0..k {
                                let p = self.scratch[base + d * stride];
                                if p == 0.0 {
                                    continue;
                                }
                                for d2 in 0..k {
                                    let w = cpt(d2, d);
                                    if w != 0.0 {
                                        self.scratch2[base + d2 * stride] += p * w;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            std::mem::swap(&mut self.scratch, &mut self.scratch2);
        }
    }
}

/// A closure view over the stream's CPT for step `t-1 → t`, falling back to
/// all-⊥ beyond the recorded end.
fn markov_cpt(stream: &Stream, t: u32) -> impl Fn(usize, usize) -> f64 + '_ {
    let bottom = stream.domain().bottom();
    let cpt = match stream.data() {
        StreamData::Markov { cpts, .. } => cpts.get((t as usize).wrapping_sub(1)),
        StreamData::Independent(_) => None,
    };
    move |d_next, d_prev| match cpt {
        Some(c) => c.get(d_next, d_prev),
        None => {
            if d_next == bottom {
                1.0
            } else {
                0.0
            }
        }
    }
}
