//! The Markov chain over (hidden stream values × automaton states)
//! — the evaluation engine of §3.1.2.
//!
//! For a (grounded) regular query, the relevant streams form a joint hidden
//! Markov chain; the automaton reads, at each timestep, the symbol set
//! induced by the hidden value. [`ChainEvaluator`] maintains the exact
//! joint distribution `P[M(t) = (h, Q)]` where `h` is the joint stream
//! value and `Q` the (determinized-on-the-fly) NFA state set, advancing it
//! by one matrix-vector product per timestep:
//!
//! ```text
//! P[M(t) = (σ′, q′)] = Σ_{σ,q : δ(q,σ′)=q′} C(t)(σ′, σ) · P[M(t−1) = (σ, q)]
//! ```
//!
//! Two modes mirror the paper's two scenarios:
//!
//! * **Markov** (archived): the hidden value is carried in the state and
//!   evolved through the per-stream CPTs (a tensor contraction per axis, so
//!   a step costs `O(n_dfa · n_joint · Σ_s k_s)` rather than
//!   `O(n_dfa · n_joint²)`). Runs on a private [`DfaCache`].
//! * **Independent** (real-time): "the next letter seen by the automaton is
//!   independent of the previously seen letters", so only the distribution
//!   over automaton states is kept — the paper's "smaller automaton". This
//!   is the hot path, and it runs on the compiled kernels of
//!   [`crate::kernel`]: an `Arc`-shared automaton with per-chain dense
//!   transition tables, flat double-buffered mass vectors, and a cached
//!   accepting-mass scalar, so a steady-state step allocates nothing and
//!   touches no hash map.
//!
//! The evaluator also supports *draining*: removing the accepting mass
//! after each step turns the tracked mass into `P[h, Q ∧ not accepted
//! since the last drain start]`, which is how interval probabilities
//! `P[q[ts, tf]]` are computed for safe plans (§3.3.1).

use crate::error::EngineError;
use crate::kernel::{self, KernelCounters, LocalDfa, SigKey, SymCache};
use crate::translate::{build_regex, relevant_streams, symbol_table};
use lahar_automata::{BitSet, Nfa, SymbolSet};
use lahar_model::{Database, Marginal, Stream, StreamData};
use lahar_query::{NormalItem, QueryError};
use std::collections::HashMap;
use std::sync::Arc;

/// Default cap on the joint hidden state space.
pub const DEFAULT_STATE_CAP: usize = 1 << 14;

/// On-the-fly determinization: NFA state sets interned to dense ids with
/// memoized transitions. Used by Markov-mode chains (each owns a private
/// cache); independent-mode chains share a [`crate::kernel::SharedAutomaton`]
/// instead.
#[derive(Debug, Clone)]
pub struct DfaCache {
    nfa: Nfa,
    sets: Vec<BitSet>,
    ids: HashMap<BitSet, u32>,
    trans: HashMap<(u32, SymbolSet), u32>,
    accepting: Vec<bool>,
}

impl DfaCache {
    /// Creates a cache for an NFA; state 0 is the initial set.
    pub fn new(nfa: Nfa) -> Self {
        let initial = nfa.initial().clone();
        let accepting = vec![nfa.is_accepting(&initial)];
        Self {
            sets: vec![initial.clone()],
            ids: HashMap::from([(initial, 0)]),
            trans: HashMap::new(),
            accepting,
            nfa,
        }
    }

    /// The id of the initial state set.
    pub fn initial(&self) -> u32 {
        0
    }

    /// Number of discovered DFA states.
    pub fn n_states(&self) -> usize {
        self.sets.len()
    }

    /// True if DFA state `q` contains an accepting NFA state.
    pub fn is_accepting(&self, q: u32) -> bool {
        self.accepting[q as usize]
    }

    /// The memoized transition `δ(q, sym)`.
    pub fn step(&mut self, q: u32, sym: SymbolSet) -> u32 {
        if let Some(&q2) = self.trans.get(&(q, sym)) {
            return q2;
        }
        let next = self.nfa.step(&self.sets[q as usize], sym);
        let id = match self.ids.get(&next) {
            Some(&id) => id,
            None => {
                let id = self.sets.len() as u32;
                self.accepting.push(self.nfa.is_accepting(&next));
                self.ids.insert(next.clone(), id);
                self.sets.push(next);
                id
            }
        };
        self.trans.insert((q, sym), id);
        id
    }
}

/// Lane identity handed to the SoA batcher: chains batch together only
/// when the automaton pointer and the full `l2s` layout match, which
/// (by construction of local discovery order) also makes their
/// accepting words and float accumulation order identical.
pub(crate) struct SoaDesc<'a> {
    pub(crate) automaton_ptr: usize,
    pub(crate) l2s: &'a [u32],
    pub(crate) acc_words: &'a [u64],
}

/// Where an independent-mode step reads this tick's marginals from.
pub(crate) enum MarginalSource<'a> {
    /// `marginal_at(t)` of each relevant stream (batch evaluation).
    Db(&'a Database),
    /// Pre-staged marginals indexed like `db.streams()` (session tick
    /// on a worker thread, where the database is not shareable).
    Staged(&'a [Marginal]),
}

/// Serializable forward state of an independent-mode [`ChainEvaluator`]:
/// everything `O(1)`-space in the stream length (§3's real-time
/// scenario), which is exactly what makes session checkpoints cheap.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ChainState {
    /// Next timestep the chain will consume.
    pub(crate) t: u32,
    /// Tracked mass per discovered DFA state (independent mode keeps a
    /// single scalar per state).
    pub(crate) dist: Vec<f64>,
    /// Discovered DFA state sets in discovery order (NFA state indices).
    pub(crate) dfa_sets: Vec<Vec<u32>>,
}

/// Markov-mode (archived scenario) representation: `dist[q]` carries a
/// vector over joint hidden values, stepped through a private DFA cache.
#[derive(Debug, Clone)]
struct MarkovChain {
    dfa: DfaCache,
    dist: Vec<Vec<f64>>,
    scratch: Vec<f64>,
    scratch2: Vec<f64>,
}

/// Independent-mode (real-time scenario) representation: the compiled
/// kernel. `mass[q]` is the probability mass in local automaton state
/// `q`; `next_mass` is the reused double buffer; `accept` caches the
/// accepting mass so [`ChainEvaluator::accept_prob`] is `O(1)`.
#[derive(Debug, Clone)]
struct IndepChain {
    local: LocalDfa,
    mass: Vec<f64>,
    next_mass: Vec<f64>,
    accept: f64,
    sig: SigKey,
    /// Per-tick `(local slot, probability)` scratch.
    slots: Vec<(u32, f64)>,
    /// Symbol-distribution buffers for cache-less stepping.
    dist_buf: Vec<(SymbolSet, f64)>,
    tmp_buf: Vec<(SymbolSet, f64)>,
}

/// Which representation the evaluator uses for the hidden chain.
#[derive(Debug, Clone)]
enum Repr {
    /// Real-time scenario: hidden value forgotten between steps.
    Indep(IndepChain),
    /// Archived scenario: joint hidden value carried in the state.
    Markov(MarkovChain),
}

/// Exact streaming evaluator for a grounded regular query.
#[derive(Debug, Clone)]
pub struct ChainEvaluator {
    /// Indices into `db.streams()` of the relevant streams.
    streams: Vec<usize>,
    /// Domain size (including ⊥) per relevant stream.
    sizes: Vec<usize>,
    /// Joint hidden state count (product of sizes; 1 when no stream is
    /// relevant).
    n_joint: usize,
    /// Per relevant stream: symbol set per outcome.
    syms: Vec<Vec<SymbolSet>>,
    /// FNV-1a over `syms`, fixed at construction (the tables never
    /// change); see [`ChainEvaluator::syms_fingerprint`].
    syms_fp: u64,
    /// Joint symbol per joint hidden outcome (Markov mode).
    joint_syms: Vec<SymbolSet>,
    repr: Repr,
    /// Next timestep to consume.
    t: u32,
}

/// FNV-1a over per-stream symbol-translation tables (see
/// [`ChainEvaluator::syms_fingerprint`]).
fn fingerprint_syms(syms: &[Vec<SymbolSet>]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for table in syms {
        h ^= table.len() as u64 + 1;
        h = h.wrapping_mul(0x100000001b3);
        for &sym in table {
            h ^= sym.0;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

impl ChainEvaluator {
    /// Builds an evaluator for grounded items over the database, with the
    /// default hidden-state cap.
    pub fn new(db: &Database, items: &[NormalItem]) -> Result<Self, EngineError> {
        Self::with_cap(db, items, DEFAULT_STATE_CAP)
    }

    /// Builds an evaluator with an explicit joint-state cap.
    pub fn with_cap(db: &Database, items: &[NormalItem], cap: usize) -> Result<Self, EngineError> {
        let regex = build_regex(items);
        let streams = relevant_streams(db, items);
        let mut sizes = Vec::with_capacity(streams.len());
        let mut syms = Vec::with_capacity(streams.len());
        let mut any_markov = false;
        for &si in &streams {
            let s = &db.streams()[si];
            sizes.push(s.domain().len());
            syms.push(symbol_table(db, s, items)?);
            any_markov |= s.is_markov();
        }
        // The joint hidden space only materializes in Markov mode;
        // independent mode tracks automaton states alone, so many relevant
        // streams are fine there. The product is overflow-checked: dozens
        // of Markov streams would overflow long before being representable.
        let (n_joint, joint_syms, repr) = if any_markov {
            let n_joint = sizes
                .iter()
                .try_fold(1usize, |acc, &k| acc.checked_mul(k))
                .ok_or(EngineError::StateSpaceTooLarge {
                    size: usize::MAX,
                    cap,
                })?
                .max(1);
            if n_joint > cap {
                return Err(EngineError::StateSpaceTooLarge { size: n_joint, cap });
            }
            let mut js = vec![SymbolSet::EMPTY; n_joint];
            for (h, slot) in js.iter_mut().enumerate() {
                let mut rem = h;
                let mut set = SymbolSet::EMPTY;
                for (s, &k) in sizes.iter().enumerate() {
                    let d = rem % k;
                    rem /= k;
                    set = set.union(syms[s][d]);
                }
                *slot = set;
            }
            let dfa = DfaCache::new(Nfa::compile(&regex));
            // All mass starts in the initial automaton state; the hidden
            // part is filled lazily on the first step (the hidden value at
            // t = 0 is drawn fresh from the initial marginals).
            let mut dist = vec![vec![0.0; n_joint]];
            dist[0][0] = 1.0;
            let markov = MarkovChain {
                dfa,
                dist,
                scratch: vec![0.0; n_joint],
                scratch2: vec![0.0; n_joint],
            };
            (n_joint, js, Repr::Markov(markov))
        } else {
            // All grounded bindings of one query structure compile the
            // same regex (constants only shift symbol *tables*, not the
            // automaton), so the shared-automaton registry collapses them
            // to one compiled DFA. The NFA is only compiled on a registry
            // miss.
            let key = format!("{regex:?}");
            let (automaton, _reused) = kernel::shared_automaton(&key, || Nfa::compile(&regex));
            let local = LocalDfa::new(automaton);
            let mass = vec![1.0];
            let accept = accept_scan(&mass, local.accepting_mask());
            let indep = IndepChain {
                sig: SigKey::new(&streams, &syms),
                local,
                mass,
                next_mass: Vec::new(),
                accept,
                slots: Vec::new(),
                dist_buf: Vec::new(),
                tmp_buf: Vec::new(),
            };
            (1, Vec::new(), Repr::Indep(indep))
        };
        let syms_fp = fingerprint_syms(&syms);
        Ok(Self {
            streams,
            sizes,
            n_joint,
            syms,
            syms_fp,
            joint_syms,
            repr,
            t: 0,
        })
    }

    /// The timestep the next [`ChainEvaluator::step`] will consume.
    pub fn next_t(&self) -> u32 {
        self.t
    }

    /// Number of DFA states discovered so far (by this chain).
    pub fn n_dfa_states(&self) -> usize {
        match &self.repr {
            Repr::Markov(m) => m.dfa.n_states(),
            Repr::Indep(k) => k.local.n_states(),
        }
    }

    /// Total probability mass currently tracked (1.0 unless draining).
    pub fn tracked_mass(&self) -> f64 {
        match &self.repr {
            Repr::Markov(m) => m.dist.iter().map(|v| v.iter().sum::<f64>()).sum(),
            Repr::Indep(k) => k.mass.iter().sum(),
        }
    }

    /// Probability mass currently in accepting automaton states — the
    /// query's probability at the last consumed timestep. `O(1)` for
    /// independent-mode chains (the kernel tracks it incrementally).
    pub fn accept_prob(&self) -> f64 {
        match &self.repr {
            Repr::Markov(m) => {
                let p: f64 = m
                    .dist
                    .iter()
                    .enumerate()
                    .filter(|(q, _)| m.dfa.is_accepting(*q as u32))
                    .map(|(_, v)| v.iter().sum::<f64>())
                    .sum();
                // Guard against -1e-18-style float dust; the `+ 0.0` also
                // normalizes -0.0 (which clamp passes through) to +0.0 so
                // reported probabilities never render as "-0.000000".
                p.clamp(0.0, 1.0) + 0.0
            }
            Repr::Indep(k) => k.accept,
        }
    }

    /// Removes and returns the accepting mass (interval-probability mode).
    pub fn drain_accepting(&mut self) -> f64 {
        match &mut self.repr {
            Repr::Markov(m) => {
                let mut drained = 0.0;
                for (q, v) in m.dist.iter_mut().enumerate() {
                    if m.dfa.is_accepting(q as u32) {
                        for slot in v.iter_mut() {
                            drained += *slot;
                            *slot = 0.0;
                        }
                    }
                }
                drained
            }
            Repr::Indep(k) => {
                let mut drained = 0.0;
                for (q, slot) in k.mass.iter_mut().enumerate() {
                    if k.local.is_accepting(q as u32) {
                        drained += *slot;
                        *slot = 0.0;
                    }
                }
                k.accept = 0.0;
                drained
            }
        }
    }

    /// True when the evaluator runs in the real-time (independent)
    /// representation — the only mode [`crate::RealTimeSession`] uses.
    pub fn is_independent(&self) -> bool {
        matches!(self.repr, Repr::Indep(_))
    }

    /// Test/bench hook: route every transition of an independent-mode
    /// chain through the shared automaton's interpreter, bypassing the
    /// per-chain dense table and the frozen table. Results are identical
    /// (the interpreter and the compiled tables answer from the same
    /// determinization); only the speed differs. No-op for Markov chains.
    pub fn force_interpreter(&mut self, on: bool) {
        if let Repr::Indep(k) = &mut self.repr {
            k.local.set_force_interpreter(on);
        }
    }

    /// Drains the kernel-path counters accumulated since the last call
    /// (all zeros for Markov chains).
    pub(crate) fn take_kernel_counters(&mut self) -> KernelCounters {
        match &mut self.repr {
            Repr::Indep(k) => k.local.take_counters(),
            Repr::Markov(_) => KernelCounters::default(),
        }
    }

    /// Identity of the shared automaton this chain is attached to
    /// (pointer-stable for the automaton's lifetime), for telemetry.
    pub(crate) fn automaton_id(&self) -> Option<usize> {
        match &self.repr {
            Repr::Indep(k) => Some(Arc::as_ptr(k.local.automaton()) as usize),
            Repr::Markov(_) => None,
        }
    }

    /// The chain's lane identity for the SoA batcher: automaton pointer
    /// plus local state numbering and accepting words. `None` when the
    /// chain can't join a batch (Markov mode, or the interpreter is
    /// forced — the forced path must exercise the interpreter per chain).
    pub(crate) fn soa_descriptor(&self) -> Option<SoaDesc<'_>> {
        match &self.repr {
            Repr::Indep(k) if !k.local.forces_interpreter() => Some(SoaDesc {
                automaton_ptr: Arc::as_ptr(k.local.automaton()) as usize,
                l2s: k.local.local_to_shared(),
                acc_words: k.local.accepting_mask(),
            }),
            _ => None,
        }
    }

    /// The shared automaton handle, for batch-level transition resolution.
    pub(crate) fn soa_automaton(&self) -> Option<Arc<kernel::SharedAutomaton>> {
        match &self.repr {
            Repr::Indep(k) => Some(Arc::clone(k.local.automaton())),
            Repr::Markov(_) => None,
        }
    }

    /// Maps a shared state id into this chain's local numbering without
    /// assigning one (the batcher never mutates chain layouts).
    pub(crate) fn soa_peek_local(&self, shared_id: u32) -> Option<u32> {
        match &self.repr {
            Repr::Indep(k) => k.local.peek_local(shared_id),
            Repr::Markov(_) => None,
        }
    }

    /// The current mass vector (read side of the SoA gather).
    pub(crate) fn soa_mass(&self) -> Option<&[f64]> {
        match &self.repr {
            Repr::Indep(k) => Some(&k.mass),
            Repr::Markov(_) => None,
        }
    }

    /// The `(stream index, outcome → symbol set)` signature when this
    /// chain reads exactly one independent stream — the shape whose
    /// symbol distribution the batcher can fill straight from the staged
    /// marginal, bypassing the per-chain convolution cache (the
    /// single-stream union-convolution is just that mapping).
    pub(crate) fn soa_single_stream(&self) -> Option<(usize, &[SymbolSet])> {
        match &self.repr {
            Repr::Indep(_) if self.streams.len() == 1 => {
                Some((self.streams[0], self.syms[0].as_slice()))
            }
            _ => None,
        }
    }

    /// FNV-1a over the symbol-translation tables, for batch grouping:
    /// chains of *different* queries can share a compiled automaton
    /// (same regex over match bits) while translating stream outcomes
    /// differently, and such lanes must not share a probability matrix.
    /// Collisions are safe — they only merge groups, and the batcher
    /// re-checks the tables exactly before using the shared-table fill.
    /// Computed once at construction — the tables are immutable.
    pub(crate) fn syms_fingerprint(&self) -> u64 {
        self.syms_fp
    }

    /// Memoized FNV-1a fingerprint of the local state numbering (see
    /// [`LocalDfa::layout_fp`]); `None` for Markov chains.
    pub(crate) fn layout_fp(&self) -> Option<u64> {
        match &self.repr {
            Repr::Indep(k) => Some(k.local.layout_fp()),
            Repr::Markov(_) => None,
        }
    }

    /// Assigns local ids to every state this chain's next step would
    /// discover, in the exact order the scalar routing loop would:
    /// occupied states ascending, then this tick's distribution entries
    /// ascending by symbol set (`active_syms` must be that sorted
    /// nonzero-probability support). After the call the local numbering
    /// is identical to what a scalar step would have produced, so the
    /// batcher can refresh its layout snapshot and keep the lanes
    /// batched through a discovery tick instead of falling back.
    pub(crate) fn soa_discover(&mut self, active_syms: &[SymbolSet]) {
        let k = match &mut self.repr {
            Repr::Indep(k) => k,
            Repr::Markov(_) => unreachable!("soa_discover on a Markov chain"),
        };
        k.slots.clear();
        for &sym in active_syms {
            k.slots.push((k.local.slot_of(sym), 0.0));
        }
        let n_q = k.mass.len();
        for q in 0..n_q {
            if k.mass[q] == 0.0 {
                continue;
            }
            for i in 0..k.slots.len() {
                let (slot, _) = k.slots[i];
                k.local.step(q as u32, slot);
            }
        }
    }

    /// This tick's symbol-distribution index in `cache` for this chain's
    /// signature, computing it on a miss — the exact cache protocol of
    /// the scalar step, shared so both paths resolve identically.
    pub(crate) fn sym_dist_index(&mut self, marginals: &[Marginal], cache: &mut SymCache) -> u32 {
        let streams = &self.streams;
        let syms = &self.syms;
        let t = self.t;
        let k = match &mut self.repr {
            Repr::Indep(k) => k,
            Repr::Markov(_) => unreachable!("sym_dist_index on a Markov chain"),
        };
        match cache.lookup(&k.sig) {
            Some(idx) => idx,
            None => cache.insert_with(k.sig.clone(), |out, tmp| {
                union_convolution(
                    streams,
                    syms,
                    &MarginalSource::Staged(marginals),
                    t,
                    out,
                    tmp,
                )
            }),
        }
    }

    /// Commits one batched step for this chain: lane `lane` of the
    /// `lanes`-wide `next` matrix becomes the mass vector, the accepting
    /// sum is clamped exactly like [`accept_scan`], and the clock
    /// advances. The mass the batcher routed was gathered from this
    /// chain at the start of the tick, so between ticks the chain
    /// remains the single source of truth (checkpoints are unaffected).
    pub(crate) fn soa_commit_strided(
        &mut self,
        next: &[f64],
        lane: usize,
        lanes: usize,
        accept_sum: f64,
    ) {
        let k = match &mut self.repr {
            Repr::Indep(k) => k,
            Repr::Markov(_) => unreachable!("soa_commit_strided on a Markov chain"),
        };
        let n_states = next.len() / lanes.max(1);
        k.next_mass.clear();
        k.next_mass
            .extend((0..n_states).map(|q| next[q * lanes + lane]));
        std::mem::swap(&mut k.mass, &mut k.next_mass);
        k.accept = accept_sum.clamp(0.0, 1.0) + 0.0;
        self.t += 1;
    }

    /// Exports the forward state (timestep, per-DFA-state mass, and the
    /// DFA discovery order) of an independent-mode evaluator.
    pub(crate) fn export_state(&self) -> Result<ChainState, EngineError> {
        match &self.repr {
            Repr::Markov(_) => Err(EngineError::CheckpointUnsupported(
                "only independent-mode chains can be checkpointed".to_owned(),
            )),
            Repr::Indep(k) => Ok(ChainState {
                t: self.t,
                dist: k.mass.clone(),
                dfa_sets: k.local.export_sets(),
            }),
        }
    }

    /// Restores checkpointed forward state into a structurally rebuilt
    /// evaluator (same query, same database schema). After this call the
    /// evaluator is bit-identical to the one that exported the state:
    /// the DFA discovery order is replayed so local state ids line up,
    /// and future steps therefore accumulate in the same float order.
    pub(crate) fn restore_state(&mut self, state: &ChainState) -> Result<(), EngineError> {
        let k = match &mut self.repr {
            Repr::Markov(_) => {
                return Err(EngineError::CheckpointUnsupported(
                    "only independent-mode chains can be restored".to_owned(),
                ))
            }
            Repr::Indep(k) => k,
        };
        k.local
            .import_sets(&state.dfa_sets)
            .map_err(EngineError::CheckpointCorrupt)?;
        if state.dist.len() > k.local.n_states() {
            return Err(EngineError::CheckpointCorrupt(format!(
                "chain mass vector covers {} DFA states but only {} were discovered",
                state.dist.len(),
                k.local.n_states()
            )));
        }
        k.mass.clear();
        k.mass.extend_from_slice(&state.dist);
        k.accept = accept_scan(&k.mass, k.local.accepting_mask());
        self.t = state.t;
        Ok(())
    }

    /// Consumes timestep `t = next_t()`: evolves the hidden chain, feeds
    /// the induced symbol to the automaton, and returns the probability
    /// that the query is satisfied at `t`.
    pub fn step(&mut self, db: &Database) -> f64 {
        match self.repr {
            Repr::Indep(_) => self.step_independent(&MarginalSource::Db(db), None),
            Repr::Markov(_) => self.step_markov(db),
        }
        self.t += 1;
        self.accept_prob()
    }

    /// Consumes timestep `t = next_t()` of an independent-mode evaluator
    /// using this tick's marginals directly (indexed like
    /// `db.streams()`), without touching the database. This is how the
    /// session's parallel tick path steps shards on worker threads: the
    /// arithmetic is shared with [`ChainEvaluator::step`], so both paths
    /// produce the same result for the same inputs.
    pub fn step_with_marginals(&mut self, marginals: &[Marginal]) -> Result<f64, EngineError> {
        self.step_with_cache(marginals, None)
    }

    /// [`ChainEvaluator::step_with_marginals`] with a per-tick symbol
    /// distribution cache: chains sharing a `(streams, syms)` signature
    /// reuse one union-convolution per tick. The caller must clear the
    /// cache between ticks ([`SymCache::begin_tick`]); all chains served
    /// by one cache generation must be at the same timestep.
    pub(crate) fn step_with_cache(
        &mut self,
        marginals: &[Marginal],
        cache: Option<&mut SymCache>,
    ) -> Result<f64, EngineError> {
        if !self.is_independent() {
            return Err(EngineError::Query(QueryError::NotInClass(
                "step_with_marginals requires an independent-mode chain".to_owned(),
            )));
        }
        self.step_independent(&MarginalSource::Staged(marginals), cache);
        self.t += 1;
        Ok(self.accept_prob())
    }

    fn step_independent(&mut self, source: &MarginalSource<'_>, cache: Option<&mut SymCache>) {
        let streams = &self.streams;
        let syms = &self.syms;
        let t = self.t;
        let k = match &mut self.repr {
            Repr::Indep(k) => k,
            Repr::Markov(_) => unreachable!("step_independent on a Markov chain"),
        };
        // This tick's distribution over symbol sets: cached per signature
        // when a per-tick cache is supplied, recomputed into the chain's
        // reusable buffers otherwise. Either way a flat sorted vector —
        // sorted application keeps floating-point accumulation order (and
        // therefore the engine's output) fully deterministic.
        let dist: &[(SymbolSet, f64)] = match cache {
            Some(c) => {
                let idx = match c.lookup(&k.sig) {
                    Some(idx) => idx,
                    None => c.insert_with(k.sig.clone(), |out, tmp| {
                        union_convolution(streams, syms, source, t, out, tmp)
                    }),
                };
                c.dist(idx)
            }
            None => {
                union_convolution(streams, syms, source, t, &mut k.dist_buf, &mut k.tmp_buf);
                &k.dist_buf
            }
        };
        // Resolve each symbol set to its local slot once per tick…
        k.slots.clear();
        for &(sym, p) in dist {
            k.slots.push((k.local.slot_of(sym), p));
        }
        // …then route mass through the dense table into the double buffer.
        let n_q = k.mass.len();
        k.next_mass.clear();
        k.next_mass.resize(k.local.n_states(), 0.0);
        for q in 0..n_q {
            let mass = k.mass[q];
            if mass == 0.0 {
                continue;
            }
            for i in 0..k.slots.len() {
                let (slot, p) = k.slots[i];
                let q2 = k.local.step(q as u32, slot) as usize;
                if q2 >= k.next_mass.len() {
                    k.next_mass.resize(q2 + 1, 0.0);
                }
                k.next_mass[q2] += mass * p;
            }
        }
        std::mem::swap(&mut k.mass, &mut k.next_mass);
        k.accept = accept_scan(&k.mass, k.local.accepting_mask());
    }

    fn step_markov(&mut self, db: &Database) {
        let streams = &self.streams;
        let sizes = &self.sizes;
        let n_joint = self.n_joint;
        let joint_syms = &self.joint_syms;
        let t = self.t;
        let m = match &mut self.repr {
            Repr::Markov(m) => m,
            Repr::Indep(_) => unreachable!("step_markov on an independent chain"),
        };
        let n_q = m.dist.len();
        let mut new_dist: Vec<Vec<f64>> = vec![vec![0.0; n_joint]; n_q];
        for q in 0..n_q {
            let total: f64 = m.dist[q].iter().sum();
            if total == 0.0 {
                continue;
            }
            // Evolve the hidden part of this automaton state's mass. At
            // t = 0 the hidden values are drawn fresh from the initial
            // marginals (the pre-initial hidden component is a dummy
            // scalar in slot 0).
            if t == 0 {
                m.fill_initial_hidden(db, q, streams, sizes, n_joint);
            } else {
                m.evolve_hidden(db, q, t, streams, sizes, n_joint);
            }
            // Route each hidden value's mass through the automaton.
            let scratch = std::mem::take(&mut m.scratch);
            for (h, &mass) in scratch.iter().enumerate() {
                if mass == 0.0 {
                    continue;
                }
                let q2 = m.dfa.step(q as u32, joint_syms[h]) as usize;
                if q2 >= new_dist.len() {
                    new_dist.resize(q2 + 1, vec![0.0; n_joint]);
                }
                new_dist[q2][h] += mass;
            }
            m.scratch = scratch;
        }
        m.dist = new_dist;
    }
}

#[cfg(test)]
thread_local! {
    /// Counts states visited by [`accept_scan`], so tests can assert
    /// that [`ChainEvaluator::accept_prob`] stays O(1) per step: the
    /// scan runs once inside each step (bounded by the state count),
    /// and reads never rescan. Thread-local, so concurrently running
    /// tests never bump each other's counts.
    pub(crate) static ACCEPT_SCAN_STATES: std::cell::Cell<u64> =
        const { std::cell::Cell::new(0) };
}

/// Accepting mass of a flat state-mass vector, in ascending state order
/// (the accumulation order the interpreted path used, so cached values
/// are bit-identical to a fresh scan). `accepting` is the packed u64
/// mask (bit `q % 64` of word `q / 64`); iterating set bits ascending
/// visits exactly the accepting states in ascending order.
fn accept_scan(mass: &[f64], accepting: &[u64]) -> f64 {
    let mut p = 0.0;
    for (w, &word) in accepting.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let q = w * 64 + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if let Some(&m) = mass.get(q) {
                p += m;
            }
            #[cfg(test)]
            ACCEPT_SCAN_STATES.with(|c| c.set(c.get() + 1));
        }
    }
    // Guard against -1e-18-style float dust; the `+ 0.0` also normalizes
    // -0.0 (which clamp passes through) to +0.0 so reported probabilities
    // never render as "-0.000000".
    p.clamp(0.0, 1.0) + 0.0
}

/// Distribution over symbol sets at one timestep, combining independent
/// streams by union-convolution into a flat vector sorted by symbol set.
/// Duplicate keys are merged in generation order (stable sort), which for
/// single-stream chains reproduces the accumulation order of the original
/// hash-map implementation exactly.
pub(crate) fn union_convolution(
    streams: &[usize],
    syms: &[Vec<SymbolSet>],
    source: &MarginalSource<'_>,
    t: u32,
    out: &mut Vec<(SymbolSet, f64)>,
    tmp: &mut Vec<(SymbolSet, f64)>,
) {
    out.clear();
    out.push((SymbolSet::EMPTY, 1.0));
    for (s, &si) in streams.iter().enumerate() {
        let owned;
        let probs: &[f64] = match *source {
            MarginalSource::Db(db) => {
                owned = db.streams()[si].marginal_at(t);
                owned.probs()
            }
            MarginalSource::Staged(ms) => ms[si].probs(),
        };
        tmp.clear();
        for &(sym, p) in out.iter() {
            for (d, &pd) in probs.iter().enumerate() {
                if pd == 0.0 {
                    continue;
                }
                tmp.push((sym.union(syms[s][d]), p * pd));
            }
        }
        tmp.sort_by_key(|&(sym, _)| sym.0);
        out.clear();
        for &(sym, p) in tmp.iter() {
            match out.last_mut() {
                Some(last) if last.0 == sym => last.1 += p,
                _ => out.push((sym, p)),
            }
        }
    }
}

impl MarkovChain {
    /// Fills `self.scratch` with the product of the relevant streams'
    /// initial marginals, scaled by the mass in `dist[q]` (a scalar at
    /// t = 0).
    fn fill_initial_hidden(
        &mut self,
        db: &Database,
        q: usize,
        streams: &[usize],
        sizes: &[usize],
        n_joint: usize,
    ) {
        let mass = self.dist[q][0];
        self.scratch.fill(0.0);
        for h in 0..n_joint {
            let mut rem = h;
            let mut p = mass;
            for (s, &k) in sizes.iter().enumerate() {
                let d = rem % k;
                rem /= k;
                let stream = &db.streams()[streams[s]];
                p *= stream.marginal_at(0).prob(d);
                if p == 0.0 {
                    break;
                }
            }
            self.scratch[h] = p;
        }
    }

    /// Evolves `dist[q]` one step through the joint CPT into
    /// `self.scratch` (tensor contraction, one axis per stream).
    fn evolve_hidden(
        &mut self,
        db: &Database,
        q: usize,
        t: u32,
        streams: &[usize],
        sizes: &[usize],
        n_joint: usize,
    ) {
        self.scratch.copy_from_slice(&self.dist[q]);
        for (s, &si) in streams.iter().enumerate() {
            let stream = &db.streams()[si];
            let k = sizes[s];
            let stride: usize = sizes[..s].iter().product();
            let outer: usize = n_joint / (k * stride);
            self.scratch2.fill(0.0);
            match stream.data() {
                StreamData::Independent(_) => {
                    // Rank-1 transition: marginalize the axis out, then
                    // redistribute by the next marginal.
                    let next = stream.marginal_at(t);
                    for o in 0..outer {
                        for inner in 0..stride {
                            let base = o * k * stride + inner;
                            let mut sum = 0.0;
                            for d in 0..k {
                                sum += self.scratch[base + d * stride];
                            }
                            if sum == 0.0 {
                                continue;
                            }
                            for d2 in 0..k {
                                self.scratch2[base + d2 * stride] += sum * next.prob(d2);
                            }
                        }
                    }
                }
                StreamData::Markov { .. } => {
                    let cpt = markov_cpt(stream, t);
                    for o in 0..outer {
                        for inner in 0..stride {
                            let base = o * k * stride + inner;
                            for d in 0..k {
                                let p = self.scratch[base + d * stride];
                                if p == 0.0 {
                                    continue;
                                }
                                for d2 in 0..k {
                                    let w = cpt(d2, d);
                                    if w != 0.0 {
                                        self.scratch2[base + d2 * stride] += p * w;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            std::mem::swap(&mut self.scratch, &mut self.scratch2);
        }
    }
}

/// A closure view over the stream's CPT for step `t-1 → t`, falling back to
/// all-⊥ beyond the recorded end.
fn markov_cpt(stream: &Stream, t: u32) -> impl Fn(usize, usize) -> f64 + '_ {
    let bottom = stream.domain().bottom();
    let cpt = match stream.data() {
        StreamData::Markov { cpts, .. } => cpts.get((t as usize).wrapping_sub(1)),
        StreamData::Independent(_) => None,
    };
    move |d_next, d_prev| match cpt {
        Some(c) => c.get(d_next, d_prev),
        None => {
            if d_next == bottom {
                1.0
            } else {
                0.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lahar_model::StreamBuilder;
    use lahar_query::{parse_query, NormalQuery};

    fn scans() -> u64 {
        ACCEPT_SCAN_STATES.with(|c| c.get())
    }

    fn indep_db() -> Database {
        let mut db = Database::new();
        db.declare_stream("At", &["person"], &["loc"]).unwrap();
        let i = db.interner().clone();
        let b = StreamBuilder::new(&i, "At", &["joe"], &["a", "h", "c"]);
        let ms = vec![
            b.marginal(&[("a", 0.6), ("h", 0.3)]).unwrap(),
            b.marginal(&[("h", 0.5), ("c", 0.2)]).unwrap(),
            b.marginal(&[("c", 0.7), ("a", 0.1)]).unwrap(),
            b.marginal(&[("c", 0.4), ("h", 0.4)]).unwrap(),
        ];
        db.add_stream(b.independent(ms).unwrap()).unwrap();
        db
    }

    /// `accept_prob` must be a cached read: the accepting scan runs once
    /// per consumed tick (bounded by the accepting-state count), and
    /// repeated reads between ticks never rescan the mass vector. The
    /// scan counter makes that observable without timing anything.
    #[test]
    fn accept_prob_reads_never_rescan() {
        let db = indep_db();
        let q = parse_query(db.interner(), "At('joe', 'a') ; At('joe', 'h')").unwrap();
        let nq = NormalQuery::from_query(&q);
        let mut chain = ChainEvaluator::new(&db, &nq.items).unwrap();

        let mut per_step = Vec::new();
        for _ in 0..db.horizon() {
            let before = scans();
            let p = chain.step(&db);
            let after_step = scans();
            per_step.push(after_step - before);

            // Reads are O(1): hammering accept_prob touches zero states.
            for _ in 0..1000 {
                assert_eq!(chain.accept_prob(), p);
            }
            assert_eq!(
                scans(),
                after_step,
                "accept_prob() rescanned the mass vector"
            );
        }

        // Per-tick scan work is bounded by the DFA's accepting-state
        // count, not the stream length: the per-step cost never grows.
        let bound = per_step[0].max(1);
        for (t, &d) in per_step.iter().enumerate() {
            assert!(
                d <= bound,
                "tick {t} scanned {d} states, more than the first tick's {bound}"
            );
        }
    }

    /// The batched SoA commit hands the chain a precomputed accepting
    /// sum; committing must not trigger a fresh scan either.
    #[test]
    fn soa_commit_does_not_rescan() {
        let db = indep_db();
        let q = parse_query(db.interner(), "At('joe', 'a') ; At('joe', 'h')").unwrap();
        let nq = NormalQuery::from_query(&q);
        let mut chain = ChainEvaluator::new(&db, &nq.items).unwrap();
        chain.step(&db); // discover states so the mass vector is real

        let n = match &chain.repr {
            Repr::Indep(k) => k.mass.len(),
            Repr::Markov(_) => unreachable!(),
        };
        let next = vec![0.5; n];
        let before = scans();
        chain.soa_commit_strided(&next, 0, 1, 0.25);
        assert_eq!(scans(), before);
        assert_eq!(chain.accept_prob(), 0.25);
    }
}
