//! Minimal dependency-free JSON support for the engine's hand-rolled
//! encodings ([`crate::StatsSnapshot::to_json`], the versioned
//! [`crate::Checkpoint`] format).
//!
//! The workspace deliberately has no serde (see the workspace manifest):
//! snapshots and checkpoints are written by hand. This module supplies
//! the two halves those writers need and the tests verify against:
//!
//! * a writer side ([`push_string`], [`push_f64`]) whose `f64` encoding
//!   uses Rust's shortest round-trip formatting, so every finite float
//!   parses back to the **bit-identical** value — the property the
//!   checkpoint/restore guarantees are built on; and
//! * a small recursive-descent parser ([`parse`]) returning a
//!   [`JsonValue`] tree, used by `Checkpoint::from_json` and by tests
//!   asserting that emitted documents are actually JSON.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; integers up to 2^53 are exact).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Key order is not preserved (sorted).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|o| o.get(key))
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn push_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` in shortest round-trip form (bit-exact through
/// [`parse`]). Non-finite values — which have no JSON representation —
/// are written as `0` so the output is always a valid document.
pub fn push_f64(out: &mut String, v: f64) {
    use fmt::Write;
    if v.is_finite() {
        // `{:?}` is Rust's shortest representation that parses back to
        // the identical bit pattern; it is also valid JSON (`1.0`,
        // `6.1e-15`, ...).
        write!(out, "{v:?}").unwrap();
    } else {
        out.push('0');
    }
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our own
                            // writers; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one UTF-8 character. The input is a &str
                    // and `pos` only ever advances by whole characters,
                    // so decoding the lead byte's span always succeeds;
                    // the error arm keeps the parser total without any
                    // `unsafe` (the workspace denies `unsafe_code`
                    // outside the simd kernel module).
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let c = std::str::from_utf8(&self.bytes[self.pos..end])
                        .ok()
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x\n\"y\""}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\n\"y\""));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\"}", "nul", "1 2", "\"abc", "NaN"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        let cases = [
            0.0,
            1.0,
            -0.0,
            0.1 + 0.2,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            5e-324,
            0.5400000000000001,
        ];
        for v in cases {
            let mut s = String::new();
            push_f64(&mut s, v);
            let parsed = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "{v} via {s}");
        }
        // Non-finite values degrade to a valid document.
        let mut s = String::new();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "0");
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nquote\"back\\slash\ttab\u{1}unicode ⊥";
        let mut s = String::new();
        push_string(&mut s, original);
        assert_eq!(parse(&s).unwrap().as_str(), Some(original));
    }
}
