//! Lock-cheap structured tracing with Chrome Trace Event export.
//!
//! The engine's hot paths — the session tick loop, per-shard worker
//! steps, per-chain steps, the safe-plan operators, sampler runs, and
//! checkpoint/recover — are bracketed by [`span`] guards. Each completed
//! span is one fixed-size record appended to a **per-thread ring
//! buffer**: recording takes two monotonic-clock reads plus one push
//! into a thread-local ring whose mutex is uncontended except during
//! export, and when tracing is disabled a span is a single relaxed
//! atomic load with no clock reads at all — the instrumentation is free
//! on production ticks.
//!
//! The collected spans export as [Chrome Trace Event Format] JSON
//! ([`chrome_trace_json`] / [`write_chrome_trace`], written with the
//! crate's hand-rolled [`crate::json`] encoder — no serde), so a run
//! opens directly in `chrome://tracing` or [Perfetto]. Rings have fixed
//! capacity: once full, the oldest events are overwritten and counted in
//! [`dropped`], so tracing never grows memory without bound.
//!
//! The tracer is **process-global** (like [`crate::failpoint`]): enabling
//! it via [`enable`] or [`crate::SessionConfig::trace`] affects every
//! session in the process, and rings persist for a thread's lifetime.
//!
//! [Chrome Trace Event Format]:
//!     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [Perfetto]: https://ui.perfetto.dev
//!
//! ```
//! use lahar_core::trace;
//!
//! trace::enable();
//! {
//!     let _span = trace::span("tick").with("t", 7);
//!     // ... work ...
//! }
//! let json = trace::chrome_trace_json();
//! assert!(json.contains("\"traceEvents\""));
//! trace::disable();
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex};
use std::time::Instant;

/// Per-thread ring capacity in events. At ~80 bytes per event this
/// bounds each thread's trace memory to ~1.3 MB.
const RING_CAPACITY: usize = 16_384;

/// Maximum key/value arguments a span carries.
const MAX_ARGS: usize = 3;

/// One completed span, fixed-size so ring slots never allocate.
#[derive(Debug, Clone, Copy)]
struct Event {
    name: &'static str,
    tid: u64,
    start_ns: u64,
    dur_ns: u64,
    args: [(&'static str, u64); MAX_ARGS],
    n_args: u8,
}

/// Fixed-capacity overwrite-oldest event buffer for one thread.
struct Ring {
    tid: u64,
    thread_name: String,
    events: Vec<Event>,
    /// Slot the next event goes into once `events` is at capacity.
    head: usize,
    /// Events overwritten because the ring was full.
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: Event) {
        if self.events.len() < RING_CAPACITY {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % RING_CAPACITY;
            self.dropped += 1;
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Single monotonic origin for every span timestamp in the process, so
/// events from different threads share one timeline.
static EPOCH: LazyLock<Instant> = LazyLock::new(Instant::now);

fn registry() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static REGISTRY: LazyLock<Mutex<Vec<Arc<Mutex<Ring>>>>> =
        LazyLock::new(|| Mutex::new(Vec::new()));
    &REGISTRY
}

thread_local! {
    static LOCAL_RING: Arc<Mutex<Ring>> = {
        let ring = Arc::new(Mutex::new(Ring {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            thread_name: std::thread::current()
                .name()
                .unwrap_or("unnamed")
                .to_owned(),
            events: Vec::new(),
            head: 0,
            dropped: 0,
        }));
        registry().lock().unwrap().push(ring.clone());
        ring
    };
}

/// Turns span recording on for the whole process.
pub fn enable() {
    // Pin the epoch before the first span so timestamps are small.
    LazyLock::force(&EPOCH);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns span recording off. Already-recorded events are kept until
/// [`clear`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether spans are currently being recorded.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Discards every recorded event and resets the drop counters. Rings
/// stay registered (they belong to live threads).
pub fn clear() {
    for ring in registry().lock().unwrap().iter() {
        let mut ring = ring.lock().unwrap();
        ring.events.clear();
        ring.head = 0;
        ring.dropped = 0;
    }
}

/// Total events overwritten across all rings since the last [`clear`].
pub fn dropped() -> u64 {
    registry()
        .lock()
        .unwrap()
        .iter()
        .map(|r| r.lock().unwrap().dropped)
        .sum()
}

/// An in-flight span; records itself into the current thread's ring when
/// dropped. Created by [`span`].
#[must_use = "a span records on drop; binding it to _ discards it immediately"]
pub struct Span {
    /// `None` when tracing was disabled at creation: the drop is free.
    live: Option<SpanData>,
}

struct SpanData {
    name: &'static str,
    start: Instant,
    args: [(&'static str, u64); MAX_ARGS],
    n_args: u8,
}

/// Opens a span named `name` covering the enclosing scope. When tracing
/// is disabled this is one relaxed atomic load and the returned guard
/// does nothing.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !ENABLED.load(Ordering::Relaxed) {
        return Span { live: None };
    }
    Span {
        live: Some(SpanData {
            name,
            start: Instant::now(),
            args: [("", 0); MAX_ARGS],
            n_args: 0,
        }),
    }
}

impl Span {
    /// Attaches a numeric argument (query id, shard, timestep, ...).
    /// At most [`MAX_ARGS`](self) arguments are kept; extras are ignored.
    #[inline]
    pub fn with(mut self, key: &'static str, value: u64) -> Self {
        if let Some(data) = &mut self.live {
            let i = data.n_args as usize;
            if i < MAX_ARGS {
                data.args[i] = (key, value);
                data.n_args += 1;
            }
        }
        self
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        let Some(data) = self.live.take() else {
            return;
        };
        let end = Instant::now();
        let epoch = *EPOCH;
        let start_ns = u64::try_from((data.start - epoch).as_nanos()).unwrap_or(u64::MAX);
        let dur_ns = u64::try_from((end - data.start).as_nanos()).unwrap_or(u64::MAX);
        LOCAL_RING.with(|ring| {
            let mut ring = ring.lock().unwrap();
            let tid = ring.tid;
            ring.push(Event {
                name: data.name,
                tid,
                start_ns,
                dur_ns,
                args: data.args,
                n_args: data.n_args,
            });
        });
    }
}

/// Renders everything recorded so far as a Chrome Trace Event Format
/// document (`{"traceEvents":[...]}`, complete events `ph:"X"` with
/// microsecond timestamps, plus one `thread_name` metadata event per
/// ring). The output parses with [`crate::json::parse`] and loads in
/// `chrome://tracing`/Perfetto.
pub fn chrome_trace_json() -> String {
    use std::fmt::Write;
    let rings: Vec<Arc<Mutex<Ring>>> = registry().lock().unwrap().clone();
    let mut events: Vec<Event> = Vec::new();
    let mut threads: Vec<(u64, String)> = Vec::new();
    let mut total_dropped = 0u64;
    for ring in &rings {
        let ring = ring.lock().unwrap();
        if ring.events.is_empty() {
            continue;
        }
        threads.push((ring.tid, ring.thread_name.clone()));
        // Oldest-first: the slice after `head` predates the slice before
        // it once the ring has wrapped.
        events.extend_from_slice(&ring.events[ring.head..]);
        events.extend_from_slice(&ring.events[..ring.head]);
        total_dropped += ring.dropped;
    }
    events.sort_by_key(|e| e.start_ns);
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (tid, name) in &threads {
        if !first {
            out.push(',');
        }
        first = false;
        write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":"
        )
        .unwrap();
        crate::json::push_string(&mut out, name);
        out.push_str("}}");
    }
    for e in &events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":");
        crate::json::push_string(&mut out, e.name);
        write!(out, ",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":", e.tid).unwrap();
        crate::json::push_f64(&mut out, e.start_ns as f64 / 1e3);
        out.push_str(",\"dur\":");
        crate::json::push_f64(&mut out, e.dur_ns as f64 / 1e3);
        out.push_str(",\"args\":{");
        for (i, (k, v)) in e.args[..e.n_args as usize].iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::push_string(&mut out, k);
            write!(out, ":{v}").unwrap();
        }
        out.push_str("}}");
    }
    write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped_events\":{total_dropped}}}}}"
    )
    .unwrap();
    out
}

/// Writes [`chrome_trace_json`] to `path`.
pub fn write_chrome_trace(path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tracer is process-global and unit tests in this binary run
    /// concurrently: serialize the tests that toggle it.
    fn lock_tracer() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _gate = lock_tracer();
        disable();
        clear();
        {
            let _s = span("trace_test_disabled").with("k", 1);
        }
        assert!(!chrome_trace_json().contains("trace_test_disabled"));
    }

    #[test]
    fn enabled_spans_export_as_valid_chrome_trace() {
        let _gate = lock_tracer();
        clear();
        enable();
        {
            let _outer = span("trace_test_outer").with("t", 3).with("chains", 7);
            let _inner = span("trace_test_inner");
        }
        disable();
        let json = chrome_trace_json();
        let doc = crate::json::parse(&json).expect("chrome trace must be valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        let outer = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("trace_test_outer"))
            .expect("outer span recorded");
        assert_eq!(outer.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(
            outer.get("args").unwrap().get("t").unwrap().as_u64(),
            Some(3)
        );
        assert_eq!(
            outer.get("args").unwrap().get("chains").unwrap().as_u64(),
            Some(7)
        );
        assert!(outer.get("ts").unwrap().as_f64().is_some());
        assert!(outer.get("dur").unwrap().as_f64().is_some());
        // The inner span nests within the outer one on the timeline.
        let inner = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("trace_test_inner"))
            .expect("inner span recorded");
        assert!(
            inner.get("ts").unwrap().as_f64().unwrap()
                >= outer.get("ts").unwrap().as_f64().unwrap()
        );
        // A thread_name metadata event accompanies the ring.
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M")));
    }

    #[test]
    fn extra_args_are_ignored_not_panicking() {
        let _gate = lock_tracer();
        clear();
        enable();
        {
            let _s = span("trace_test_many_args")
                .with("a", 1)
                .with("b", 2)
                .with("c", 3)
                .with("d", 4);
        }
        disable();
        let json = chrome_trace_json();
        assert!(json.contains("\"c\":3"));
        assert!(!json.contains("\"d\":4"));
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let _gate = lock_tracer();
        // A dedicated thread gets its own fresh ring, so the capacity
        // arithmetic is exact regardless of what other tests recorded.
        clear();
        enable();
        let handle = std::thread::spawn(|| {
            for _ in 0..RING_CAPACITY + 10 {
                let _s = span("trace_test_overflow");
            }
            LOCAL_RING.with(|ring| {
                let ring = ring.lock().unwrap();
                (ring.events.len(), ring.dropped)
            })
        });
        let (len, dropped) = handle.join().unwrap();
        disable();
        assert_eq!(len, RING_CAPACITY);
        assert_eq!(dropped, 10);
        clear();
    }
}
