//! Engine observability: tick-latency histograms, throughput counters,
//! sampler world counts, safe-plan→sampler fallback accounting, and a
//! per-query metrics registry.
//!
//! [`EngineStats`] is a cheaply cloneable handle (an `Arc` over atomics)
//! shared between the engine, the [`crate::RealTimeSession`] tick loop,
//! its parallel workers, and — when [`crate::SessionConfig::metrics_addr`]
//! is set — the [`crate::MetricsServer`] scrape thread.
//! [`EngineStats::snapshot`] freezes a consistent-enough view for
//! dashboards; [`StatsSnapshot::to_json`] renders it as a JSON document
//! and [`crate::expose::to_prometheus`] as Prometheus text, both without
//! any serialization dependency.
//!
//! Global counters aggregate across the whole session; the per-query
//! registry (one labeled slot per [`crate::QueryId`], carrying a step
//! latency histogram, tick count, chain count, and the latest alert
//! probability) is what gives the `/metrics` endpoint its
//! `{query="...",id="..."}`-labeled series.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of power-of-two latency buckets (bucket `i` covers
/// `[2^i, 2^{i+1})` nanoseconds; the last bucket is open-ended).
const N_BUCKETS: usize = 64;

/// Upper bound on distinct fallback-reason labels. Once hit, new reasons
/// are folded into [`FALLBACK_OVERFLOW_LABEL`], so a pathological query
/// mix cannot grow the reason map (or the exposition's label
/// cardinality) without limit. The overflow label itself may become the
/// `MAX_FALLBACK_REASONS + 1`-th entry.
const MAX_FALLBACK_REASONS: usize = 24;

/// Bucket that absorbs fallback reasons past the cardinality cap.
const FALLBACK_OVERFLOW_LABEL: &str = "other";

/// Power-of-two-bucket latency histogram. Private to the stats layer
/// except for the serve path's per-request phase histograms
/// ([`crate::server`]), which reuse it behind their own mutex.
#[derive(Debug)]
pub(crate) struct Histogram {
    counts: [u64; N_BUCKETS],
    n: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: [0; N_BUCKETS],
            n: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl Histogram {
    fn export(&self) -> HistogramState {
        HistogramState {
            counts: self.counts.to_vec(),
            n: self.n,
            sum_ns: self.sum_ns,
            min_ns: self.min_ns,
            max_ns: self.max_ns,
        }
    }

    fn import(state: &HistogramState) -> Self {
        let mut counts = [0u64; N_BUCKETS];
        for (dst, src) in counts.iter_mut().zip(state.counts.iter()) {
            *dst = *src;
        }
        Self {
            counts,
            n: state.n,
            sum_ns: state.sum_ns,
            min_ns: state.min_ns,
            max_ns: state.max_ns,
        }
    }

    /// Samples recorded so far.
    pub(crate) fn count(&self) -> u64 {
        self.n
    }

    pub(crate) fn record(&mut self, ns: u64) {
        let bucket = (63 - ns.max(1).leading_zeros()) as usize;
        self.counts[bucket.min(N_BUCKETS - 1)] += 1;
        self.n += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Estimates quantile `q` by locating the rank's bucket and linearly
    /// interpolating within it (samples are assumed uniform inside a
    /// bucket). The bucket's range is clamped to the observed
    /// `[min_ns, max_ns]`, which tightens the first and last non-empty
    /// buckets to real data instead of power-of-two boundaries.
    fn quantile_ns(&self, q: f64) -> u64 {
        if self.n == 0 {
            return 0;
        }
        let rank = ((self.n as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = seen;
            seen += c;
            if seen >= rank {
                let lower = (1u64 << i).max(self.min_ns);
                let upper = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    1u64 << (i + 1)
                }
                .min(self.max_ns)
                .max(lower);
                let fraction = (rank - before) as f64 / c as f64;
                return lower + (fraction * (upper - lower) as f64).round() as u64;
            }
        }
        self.max_ns
    }

    pub(crate) fn summarize(&self) -> LatencySnapshot {
        let buckets = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (1u64 << b, c))
            .collect();
        LatencySnapshot {
            count: self.n,
            sum_ns: self.sum_ns,
            min_ns: if self.n == 0 { 0 } else { self.min_ns },
            max_ns: self.max_ns,
            mean_ns: if self.n == 0 {
                0.0
            } else {
                self.sum_ns as f64 / self.n as f64
            },
            p50_ns: self.quantile_ns(0.50),
            p95_ns: self.quantile_ns(0.95),
            p99_ns: self.quantile_ns(0.99),
            buckets,
        }
    }
}

/// Per-query slot in the metrics registry.
#[derive(Debug, Default)]
struct QueryMetrics {
    name: String,
    chains: u64,
    ticks: u64,
    last_probability: f64,
    step_latency: Histogram,
}

#[derive(Debug, Default)]
struct Inner {
    ticks: AtomicU64,
    epochs: AtomicU64,
    epoch_ticks: AtomicU64,
    parallel_ticks: AtomicU64,
    degraded_ticks: AtomicU64,
    recoveries: AtomicU64,
    checkpoints_taken: AtomicU64,
    chains_stepped: AtomicU64,
    bindings_grounded: AtomicU64,
    alerts_emitted: AtomicU64,
    marginals_staged: AtomicU64,
    sampler_compilations: AtomicU64,
    sampler_worlds: AtomicU64,
    fallbacks: AtomicU64,
    kernel_fast_steps: AtomicU64,
    kernel_frozen_steps: AtomicU64,
    kernel_slow_steps: AtomicU64,
    kernel_soa_steps: AtomicU64,
    kernel_simd_steps: AtomicU64,
    sym_cache_hits: AtomicU64,
    sym_cache_misses: AtomicU64,
    automata_shared: AtomicU64,
    automata_attached: AtomicU64,
    wal_appends: AtomicU64,
    wal_bytes: AtomicU64,
    wal_segments: AtomicU64,
    wal_replayed_ticks: AtomicU64,
    checkpoints_quarantined: AtomicU64,
    // Live health flags (runtime-only, never checkpointed): mirrors of
    // the session's poisoned/degraded state and the server's WAL-broken
    // state, published here so the `/healthz` readiness probe can read
    // them without a handle on the session itself.
    health_poisoned: AtomicU64,
    health_degraded: AtomicU64,
    health_wal_broken: AtomicU64,
    tick_latency: Mutex<Histogram>,
    fsync_latency: Mutex<Histogram>,
    fallback_reasons: Mutex<BTreeMap<String, u64>>,
    per_query: Mutex<BTreeMap<usize, QueryMetrics>>,
}

/// Raw latency-histogram state inside a [`StatsState`].
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct HistogramState {
    pub(crate) counts: Vec<u64>,
    pub(crate) n: u64,
    pub(crate) sum_ns: u64,
    pub(crate) min_ns: u64,
    pub(crate) max_ns: u64,
}

/// Raw per-query registry slot inside a [`StatsState`].
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct QueryState {
    pub(crate) id: u64,
    pub(crate) name: String,
    pub(crate) chains: u64,
    pub(crate) ticks: u64,
    pub(crate) last_probability: f64,
    pub(crate) step_latency: HistogramState,
}

/// Raw counter values extracted from [`EngineStats`] for inclusion in a
/// session checkpoint. Unlike [`StatsSnapshot`] this is lossless: the
/// full histograms are preserved, not just their summaries.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct StatsState {
    pub(crate) ticks: u64,
    pub(crate) epochs: u64,
    pub(crate) epoch_ticks: u64,
    pub(crate) parallel_ticks: u64,
    pub(crate) degraded_ticks: u64,
    pub(crate) recoveries: u64,
    pub(crate) checkpoints_taken: u64,
    pub(crate) chains_stepped: u64,
    pub(crate) bindings_grounded: u64,
    pub(crate) alerts_emitted: u64,
    pub(crate) marginals_staged: u64,
    pub(crate) sampler_compilations: u64,
    pub(crate) sampler_worlds: u64,
    pub(crate) fallbacks: u64,
    pub(crate) kernel_fast_steps: u64,
    pub(crate) kernel_frozen_steps: u64,
    pub(crate) kernel_slow_steps: u64,
    pub(crate) kernel_soa_steps: u64,
    pub(crate) kernel_simd_steps: u64,
    pub(crate) sym_cache_hits: u64,
    pub(crate) sym_cache_misses: u64,
    pub(crate) automata_shared: u64,
    pub(crate) automata_attached: u64,
    pub(crate) fallback_reasons: BTreeMap<String, u64>,
    pub(crate) tick_latency: HistogramState,
    /// Per-query registry slots in ascending id order.
    pub(crate) per_query: Vec<QueryState>,
}

/// Shared, thread-safe engine metrics. Cloning yields another handle to
/// the same counters.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    inner: Arc<Inner>,
}

impl EngineStats {
    /// A fresh, zeroed set of counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed session tick: its wall-clock latency, how
    /// many per-binding chains were stepped, and whether the sharded
    /// parallel path ran it.
    pub fn record_tick(&self, latency: Duration, chains_stepped: u64, parallel: bool) {
        self.inner.ticks.fetch_add(1, Ordering::Relaxed);
        if parallel {
            self.inner.parallel_ticks.fetch_add(1, Ordering::Relaxed);
        }
        self.inner
            .chains_stepped
            .fetch_add(chains_stepped, Ordering::Relaxed);
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.inner.tick_latency.lock().unwrap().record(ns);
    }

    /// Records chains grounded for a newly registered query.
    pub fn record_grounding(&self, bindings: u64) {
        self.inner
            .bindings_grounded
            .fetch_add(bindings, Ordering::Relaxed);
    }

    /// Records alerts emitted by a tick.
    pub fn record_alerts(&self, n: u64) {
        self.inner.alerts_emitted.fetch_add(n, Ordering::Relaxed);
    }

    /// Records marginals staged into a session (one per
    /// [`crate::RealTimeSession::stage`] call).
    pub fn record_staged(&self, n: u64) {
        self.inner.marginals_staged.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a Monte Carlo compilation simulating `worlds` sampled
    /// worlds.
    pub fn record_sampler(&self, worlds: u64) {
        self.inner
            .sampler_compilations
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .sampler_worlds
            .fetch_add(worlds, Ordering::Relaxed);
    }

    /// Records one closed epoch covering `ticks` session ticks under a
    /// single shard join (see
    /// [`crate::RealTimeSession::tick_epoch`]). `epoch_ticks / epochs`
    /// is the realized average epoch length.
    pub fn record_epoch(&self, ticks: u64) {
        self.inner.epochs.fetch_add(1, Ordering::Relaxed);
        self.inner.epoch_ticks.fetch_add(ticks, Ordering::Relaxed);
    }

    /// Records a tick that *wanted* the parallel path but was diverted
    /// onto the sequential one by degraded mode (after a watchdog
    /// timeout). Ticks that were configured sequential to begin with
    /// are not degraded and are not counted here.
    pub fn record_degraded_tick(&self) {
        self.inner.degraded_ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a successful [`crate::RealTimeSession::recover`] call.
    pub fn record_recovery(&self) {
        self.inner.recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a checkpoint being taken (manual or automatic).
    pub fn record_checkpoint(&self) {
        self.inner.checkpoints_taken.fetch_add(1, Ordering::Relaxed);
    }

    /// Records kernel-path telemetry for one tick: how many chain
    /// transitions were served by each path (local dense table / shared
    /// frozen table / mutex interpreter / batched struct-of-arrays
    /// lanes, scalar or SIMD) and the per-tick symbol-distribution
    /// cache's hit/miss counts.
    pub(crate) fn record_kernel(&self, k: &crate::kernel::KernelTickStats) {
        let i = &self.inner;
        i.kernel_fast_steps
            .fetch_add(k.steps.fast, Ordering::Relaxed);
        i.kernel_frozen_steps
            .fetch_add(k.steps.frozen, Ordering::Relaxed);
        i.kernel_slow_steps
            .fetch_add(k.steps.slow, Ordering::Relaxed);
        i.kernel_soa_steps.fetch_add(k.steps.soa, Ordering::Relaxed);
        i.kernel_simd_steps
            .fetch_add(k.steps.simd, Ordering::Relaxed);
        i.sym_cache_hits.fetch_add(k.sym_hits, Ordering::Relaxed);
        i.sym_cache_misses
            .fetch_add(k.sym_misses, Ordering::Relaxed);
    }

    /// Publishes the shared-automaton gauges: how many distinct compiled
    /// automata back the session's chains and how many chains are
    /// attached to one.
    pub(crate) fn record_automata(&self, shared: u64, attached: u64) {
        self.inner.automata_shared.store(shared, Ordering::Relaxed);
        self.inner
            .automata_attached
            .store(attached, Ordering::Relaxed);
    }

    /// Records one write-ahead-log record appended (and acknowledged as
    /// durable) of `bytes` framed bytes.
    pub fn record_wal_append(&self, bytes: u64) {
        self.inner.wal_appends.fetch_add(1, Ordering::Relaxed);
        self.inner.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one `fsync`/`fdatasync` of the log or a checkpoint and
    /// its wall-clock latency — the direct price of the durability
    /// level.
    pub fn record_fsync(&self, latency: Duration) {
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.inner.fsync_latency.lock().unwrap().record(ns);
    }

    /// Publishes the live WAL segment count for the session (gauge).
    pub fn set_wal_segments(&self, n: u64) {
        self.inner.wal_segments.store(n, Ordering::Relaxed);
    }

    /// Publishes whether the session is poisoned (a tick panicked or
    /// timed out mid-flight and the session refuses further work until
    /// [`crate::RealTimeSession::recover`]).
    pub fn set_poisoned(&self, poisoned: bool) {
        self.inner
            .health_poisoned
            .store(u64::from(poisoned), Ordering::Relaxed);
    }

    /// Whether the session is currently poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.inner.health_poisoned.load(Ordering::Relaxed) != 0
    }

    /// Publishes whether the session is running degraded (sequential
    /// fallback after a parallel-path watchdog timeout).
    pub fn set_degraded(&self, degraded: bool) {
        self.inner
            .health_degraded
            .store(u64::from(degraded), Ordering::Relaxed);
    }

    /// Whether the session is currently degraded.
    pub fn is_degraded(&self) -> bool {
        self.inner.health_degraded.load(Ordering::Relaxed) != 0
    }

    /// Publishes whether the session's write-ahead log is broken (an
    /// append or fsync failed; mutations are refused with the
    /// `durability` error code until recovery).
    pub fn set_wal_broken(&self, broken: bool) {
        self.inner
            .health_wal_broken
            .store(u64::from(broken), Ordering::Relaxed);
    }

    /// Whether the session's write-ahead log is broken.
    pub fn is_wal_broken(&self) -> bool {
        self.inner.health_wal_broken.load(Ordering::Relaxed) != 0
    }

    /// Records ticks re-applied from the write-ahead log during a
    /// restart recovery.
    pub fn record_wal_replayed(&self, ticks: u64) {
        self.inner
            .wal_replayed_ticks
            .fetch_add(ticks, Ordering::Relaxed);
    }

    /// Records a corrupt checkpoint generation quarantined (renamed
    /// `.corrupt`) during a restore scan.
    pub fn record_checkpoint_quarantined(&self, n: u64) {
        self.inner
            .checkpoints_quarantined
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Records an exact-path→sampler fallback and why it happened. At
    /// most [`MAX_FALLBACK_REASONS`](self) distinct reason strings are
    /// kept; later novel reasons count against the `"other"` bucket.
    pub fn record_fallback(&self, reason: &str) {
        self.inner.fallbacks.fetch_add(1, Ordering::Relaxed);
        let mut reasons = self.inner.fallback_reasons.lock().unwrap();
        let label = if reasons.contains_key(reason) || reasons.len() < MAX_FALLBACK_REASONS {
            reason
        } else {
            FALLBACK_OVERFLOW_LABEL
        };
        *reasons.entry(label.to_owned()).or_insert(0) += 1;
    }

    /// Creates (or re-labels) the per-query registry slot for query
    /// `id`. Counters already accumulated under the id survive, which
    /// makes re-registration during checkpoint restore and recovery a
    /// no-op.
    pub fn register_query(&self, id: usize, name: &str, chains: u64) {
        let mut reg = self.inner.per_query.lock().unwrap();
        let slot = reg.entry(id).or_default();
        slot.name = name.to_owned();
        slot.chains = chains;
    }

    /// Records one closed tick for query `id`: the wall-clock
    /// nanoseconds its chains took this tick (`None` when unknown, e.g.
    /// a tick completed by [`crate::RealTimeSession::recover`]) and the
    /// alert probability it produced.
    pub fn record_query_tick(&self, id: usize, step_ns: Option<u64>, probability: f64) {
        self.record_query_ticks([(id, step_ns, probability)]);
    }

    /// Records one closed tick for many queries under a single registry
    /// lock — the session's per-tick path, where locking per query would
    /// dominate at thousands of registered queries.
    pub fn record_query_ticks(&self, entries: impl IntoIterator<Item = (usize, Option<u64>, f64)>) {
        let mut reg = self.inner.per_query.lock().unwrap();
        for (id, step_ns, probability) in entries {
            let slot = reg.entry(id).or_default();
            slot.ticks += 1;
            slot.last_probability = probability;
            if let Some(ns) = step_ns {
                slot.step_latency.record(ns);
            }
        }
    }

    /// Freezes the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        let i = &self.inner;
        let latency = i.tick_latency.lock().unwrap().summarize();
        let fsync_latency = i.fsync_latency.lock().unwrap().summarize();
        let per_query = i
            .per_query
            .lock()
            .unwrap()
            .iter()
            .map(|(&id, q)| QuerySnapshot {
                id,
                name: q.name.clone(),
                chains: q.chains,
                ticks: q.ticks,
                last_probability: q.last_probability,
                step_latency: q.step_latency.summarize(),
            })
            .collect();
        StatsSnapshot {
            ticks: i.ticks.load(Ordering::Relaxed),
            epochs: i.epochs.load(Ordering::Relaxed),
            epoch_ticks: i.epoch_ticks.load(Ordering::Relaxed),
            parallel_ticks: i.parallel_ticks.load(Ordering::Relaxed),
            degraded_ticks: i.degraded_ticks.load(Ordering::Relaxed),
            recoveries: i.recoveries.load(Ordering::Relaxed),
            checkpoints_taken: i.checkpoints_taken.load(Ordering::Relaxed),
            chains_stepped: i.chains_stepped.load(Ordering::Relaxed),
            bindings_grounded: i.bindings_grounded.load(Ordering::Relaxed),
            alerts_emitted: i.alerts_emitted.load(Ordering::Relaxed),
            marginals_staged: i.marginals_staged.load(Ordering::Relaxed),
            sampler_compilations: i.sampler_compilations.load(Ordering::Relaxed),
            sampler_worlds: i.sampler_worlds.load(Ordering::Relaxed),
            fallbacks: i.fallbacks.load(Ordering::Relaxed),
            kernel_fast_steps: i.kernel_fast_steps.load(Ordering::Relaxed),
            kernel_frozen_steps: i.kernel_frozen_steps.load(Ordering::Relaxed),
            kernel_slow_steps: i.kernel_slow_steps.load(Ordering::Relaxed),
            kernel_soa_steps: i.kernel_soa_steps.load(Ordering::Relaxed),
            kernel_simd_steps: i.kernel_simd_steps.load(Ordering::Relaxed),
            sym_cache_hits: i.sym_cache_hits.load(Ordering::Relaxed),
            sym_cache_misses: i.sym_cache_misses.load(Ordering::Relaxed),
            automata_shared: i.automata_shared.load(Ordering::Relaxed),
            automata_attached: i.automata_attached.load(Ordering::Relaxed),
            wal_appends: i.wal_appends.load(Ordering::Relaxed),
            wal_bytes: i.wal_bytes.load(Ordering::Relaxed),
            wal_segments: i.wal_segments.load(Ordering::Relaxed),
            wal_replayed_ticks: i.wal_replayed_ticks.load(Ordering::Relaxed),
            checkpoints_quarantined: i.checkpoints_quarantined.load(Ordering::Relaxed),
            fallback_reasons: i.fallback_reasons.lock().unwrap().clone(),
            tick_latency: latency,
            fsync_latency,
            per_query,
        }
    }

    /// Extracts the complete raw counter state (lossless, unlike
    /// [`EngineStats::snapshot`]) for inclusion in a session checkpoint.
    pub(crate) fn export_state(&self) -> StatsState {
        let i = &self.inner;
        let per_query = i
            .per_query
            .lock()
            .unwrap()
            .iter()
            .map(|(&id, q)| QueryState {
                id: id as u64,
                name: q.name.clone(),
                chains: q.chains,
                ticks: q.ticks,
                last_probability: q.last_probability,
                step_latency: q.step_latency.export(),
            })
            .collect();
        StatsState {
            ticks: i.ticks.load(Ordering::Relaxed),
            epochs: i.epochs.load(Ordering::Relaxed),
            epoch_ticks: i.epoch_ticks.load(Ordering::Relaxed),
            parallel_ticks: i.parallel_ticks.load(Ordering::Relaxed),
            degraded_ticks: i.degraded_ticks.load(Ordering::Relaxed),
            recoveries: i.recoveries.load(Ordering::Relaxed),
            checkpoints_taken: i.checkpoints_taken.load(Ordering::Relaxed),
            chains_stepped: i.chains_stepped.load(Ordering::Relaxed),
            bindings_grounded: i.bindings_grounded.load(Ordering::Relaxed),
            alerts_emitted: i.alerts_emitted.load(Ordering::Relaxed),
            marginals_staged: i.marginals_staged.load(Ordering::Relaxed),
            sampler_compilations: i.sampler_compilations.load(Ordering::Relaxed),
            sampler_worlds: i.sampler_worlds.load(Ordering::Relaxed),
            fallbacks: i.fallbacks.load(Ordering::Relaxed),
            kernel_fast_steps: i.kernel_fast_steps.load(Ordering::Relaxed),
            kernel_frozen_steps: i.kernel_frozen_steps.load(Ordering::Relaxed),
            kernel_slow_steps: i.kernel_slow_steps.load(Ordering::Relaxed),
            kernel_soa_steps: i.kernel_soa_steps.load(Ordering::Relaxed),
            kernel_simd_steps: i.kernel_simd_steps.load(Ordering::Relaxed),
            sym_cache_hits: i.sym_cache_hits.load(Ordering::Relaxed),
            sym_cache_misses: i.sym_cache_misses.load(Ordering::Relaxed),
            automata_shared: i.automata_shared.load(Ordering::Relaxed),
            automata_attached: i.automata_attached.load(Ordering::Relaxed),
            fallback_reasons: i.fallback_reasons.lock().unwrap().clone(),
            tick_latency: i.tick_latency.lock().unwrap().export(),
            per_query,
        }
    }

    /// Overwrites this handle's counters in place with checkpointed
    /// state. In-place (rather than swapping in a fresh handle) so every
    /// clone of the handle — worker threads, a running
    /// [`crate::MetricsServer`] — observes the restored values.
    pub(crate) fn load_state(&self, state: &StatsState) {
        let i = &self.inner;
        i.ticks.store(state.ticks, Ordering::Relaxed);
        i.epochs.store(state.epochs, Ordering::Relaxed);
        i.epoch_ticks.store(state.epoch_ticks, Ordering::Relaxed);
        i.parallel_ticks
            .store(state.parallel_ticks, Ordering::Relaxed);
        i.degraded_ticks
            .store(state.degraded_ticks, Ordering::Relaxed);
        i.recoveries.store(state.recoveries, Ordering::Relaxed);
        i.checkpoints_taken
            .store(state.checkpoints_taken, Ordering::Relaxed);
        i.chains_stepped
            .store(state.chains_stepped, Ordering::Relaxed);
        i.bindings_grounded
            .store(state.bindings_grounded, Ordering::Relaxed);
        i.alerts_emitted
            .store(state.alerts_emitted, Ordering::Relaxed);
        i.marginals_staged
            .store(state.marginals_staged, Ordering::Relaxed);
        i.sampler_compilations
            .store(state.sampler_compilations, Ordering::Relaxed);
        i.sampler_worlds
            .store(state.sampler_worlds, Ordering::Relaxed);
        i.fallbacks.store(state.fallbacks, Ordering::Relaxed);
        i.kernel_fast_steps
            .store(state.kernel_fast_steps, Ordering::Relaxed);
        i.kernel_frozen_steps
            .store(state.kernel_frozen_steps, Ordering::Relaxed);
        i.kernel_slow_steps
            .store(state.kernel_slow_steps, Ordering::Relaxed);
        i.kernel_soa_steps
            .store(state.kernel_soa_steps, Ordering::Relaxed);
        i.kernel_simd_steps
            .store(state.kernel_simd_steps, Ordering::Relaxed);
        i.sym_cache_hits
            .store(state.sym_cache_hits, Ordering::Relaxed);
        i.sym_cache_misses
            .store(state.sym_cache_misses, Ordering::Relaxed);
        i.automata_shared
            .store(state.automata_shared, Ordering::Relaxed);
        i.automata_attached
            .store(state.automata_attached, Ordering::Relaxed);
        *i.fallback_reasons.lock().unwrap() = state.fallback_reasons.clone();
        *i.tick_latency.lock().unwrap() = Histogram::import(&state.tick_latency);
        *i.per_query.lock().unwrap() = state
            .per_query
            .iter()
            .map(|q| {
                (
                    q.id as usize,
                    QueryMetrics {
                        name: q.name.clone(),
                        chains: q.chains,
                        ticks: q.ticks,
                        last_probability: q.last_probability,
                        step_latency: Histogram::import(&q.step_latency),
                    },
                )
            })
            .collect();
    }

    /// Builds a fresh handle pre-loaded with checkpointed counter state.
    #[cfg(test)]
    pub(crate) fn from_state(state: &StatsState) -> Self {
        let stats = Self::new();
        stats.load_state(state);
        stats
    }
}

/// Latency-histogram summary inside a [`StatsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Total recorded time, nanoseconds (saturating).
    pub sum_ns: u64,
    /// Fastest sample, nanoseconds.
    pub min_ns: u64,
    /// Slowest sample, nanoseconds.
    pub max_ns: u64,
    /// Mean latency, nanoseconds.
    pub mean_ns: f64,
    /// Median estimate (within-bucket linear interpolation),
    /// nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile estimate, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile estimate, nanoseconds.
    pub p99_ns: u64,
    /// Non-empty `(bucket_lower_bound_ns, count)` pairs; bucket `b`
    /// covers `[b, 2b)` nanoseconds.
    pub buckets: Vec<(u64, u64)>,
}

/// One query's slot in a [`StatsSnapshot`]'s per-query registry.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySnapshot {
    /// The registered [`crate::QueryId`]'s index.
    pub id: usize,
    /// The registered name.
    pub name: String,
    /// Per-key chains the query grounds to.
    pub chains: u64,
    /// Ticks this query has closed.
    pub ticks: u64,
    /// The probability of the query's most recent alert.
    pub last_probability: f64,
    /// Wall-clock time this query's chains take per tick.
    pub step_latency: LatencySnapshot,
}

/// A frozen view of [`EngineStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Session ticks processed.
    pub ticks: u64,
    /// Epochs closed (each a single shard join covering ≥ 1 ticks).
    pub epochs: u64,
    /// Session ticks covered by those epochs; `epoch_ticks / epochs` is
    /// the realized average epoch length.
    pub epoch_ticks: u64,
    /// Ticks that ran on the sharded parallel path.
    pub parallel_ticks: u64,
    /// Ticks forced onto the sequential path by degraded mode (after a
    /// watchdog timeout).
    pub degraded_ticks: u64,
    /// Successful session recoveries.
    pub recoveries: u64,
    /// Checkpoints taken (manual or automatic).
    pub checkpoints_taken: u64,
    /// Per-binding chains stepped across all ticks.
    pub chains_stepped: u64,
    /// Per-key chains grounded at query registration.
    pub bindings_grounded: u64,
    /// Alerts emitted by ticks.
    pub alerts_emitted: u64,
    /// Marginals staged by the inference layer.
    pub marginals_staged: u64,
    /// Monte Carlo compilations.
    pub sampler_compilations: u64,
    /// Total sampled worlds across those compilations.
    pub sampler_worlds: u64,
    /// Exact-path→sampler fallbacks.
    pub fallbacks: u64,
    /// Chain transitions served by a chain's local dense table (the
    /// lock-free compiled-kernel fast path).
    pub kernel_fast_steps: u64,
    /// Chain transitions served by a shared frozen transition table.
    pub kernel_frozen_steps: u64,
    /// Chain transitions resolved by the on-the-fly (mutex) interpreter.
    pub kernel_slow_steps: u64,
    /// Routed state×symbol×lane products executed by the batched
    /// struct-of-arrays kernel on the scalar lane loop.
    pub kernel_soa_steps: u64,
    /// Routed state×symbol×lane products executed by the batched
    /// struct-of-arrays kernel through an explicit SIMD path
    /// (SSE2/AVX2).
    pub kernel_simd_steps: u64,
    /// Per-tick symbol-distribution cache hits (distribution reused).
    pub sym_cache_hits: u64,
    /// Per-tick symbol-distribution cache misses (distribution built).
    pub sym_cache_misses: u64,
    /// Distinct shared compiled automata backing the session's chains
    /// (gauge).
    pub automata_shared: u64,
    /// Chains attached to a shared compiled automaton (gauge).
    pub automata_attached: u64,
    /// Write-ahead-log records appended (each covering one acked
    /// mutation).
    pub wal_appends: u64,
    /// Framed bytes appended to the write-ahead log.
    pub wal_bytes: u64,
    /// Live write-ahead-log segment files (gauge).
    pub wal_segments: u64,
    /// Ticks re-applied from the write-ahead log during restart
    /// recovery.
    pub wal_replayed_ticks: u64,
    /// Corrupt checkpoint generations quarantined during restore scans.
    pub checkpoints_quarantined: u64,
    /// Fallback reason → occurrence count (bounded cardinality; overflow
    /// lands in `"other"`).
    pub fallback_reasons: BTreeMap<String, u64>,
    /// Tick-latency histogram summary.
    pub tick_latency: LatencySnapshot,
    /// Log/checkpoint fsync latency histogram summary (`count` is the
    /// number of fsyncs issued).
    pub fsync_latency: LatencySnapshot,
    /// Per-query registry slots in ascending id order.
    pub per_query: Vec<QuerySnapshot>,
}

impl StatsSnapshot {
    /// Renders the snapshot as a self-contained JSON object.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(1024);
        write!(
            out,
            "{{\"ticks\":{},\"epochs\":{},\"epoch_ticks\":{},\
             \"parallel_ticks\":{},\"degraded_ticks\":{},\
             \"recoveries\":{},\"checkpoints_taken\":{},\"chains_stepped\":{},\
             \"bindings_grounded\":{},\"alerts_emitted\":{},\"marginals_staged\":{},\
             \"sampler\":{{\"compilations\":{},\"worlds\":{}}},",
            self.ticks,
            self.epochs,
            self.epoch_ticks,
            self.parallel_ticks,
            self.degraded_ticks,
            self.recoveries,
            self.checkpoints_taken,
            self.chains_stepped,
            self.bindings_grounded,
            self.alerts_emitted,
            self.marginals_staged,
            self.sampler_compilations,
            self.sampler_worlds,
        )
        .unwrap();
        write!(
            out,
            "\"kernel\":{{\"fast_steps\":{},\"frozen_steps\":{},\"slow_steps\":{},\
             \"soa_steps\":{},\"simd_steps\":{},\
             \"sym_cache_hits\":{},\"sym_cache_misses\":{},\
             \"automata_shared\":{},\"automata_attached\":{}}},",
            self.kernel_fast_steps,
            self.kernel_frozen_steps,
            self.kernel_slow_steps,
            self.kernel_soa_steps,
            self.kernel_simd_steps,
            self.sym_cache_hits,
            self.sym_cache_misses,
            self.automata_shared,
            self.automata_attached,
        )
        .unwrap();
        write!(
            out,
            "\"wal\":{{\"appends\":{},\"bytes\":{},\"segments\":{},\
             \"replayed_ticks\":{},\"checkpoints_quarantined\":{}}},",
            self.wal_appends,
            self.wal_bytes,
            self.wal_segments,
            self.wal_replayed_ticks,
            self.checkpoints_quarantined,
        )
        .unwrap();
        write!(
            out,
            "\"fallbacks\":{{\"count\":{},\"reasons\":{{",
            self.fallbacks
        )
        .unwrap();
        for (i, (reason, count)) in self.fallback_reasons.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::push_string(&mut out, reason);
            write!(out, ":{count}").unwrap();
        }
        out.push_str("}},\"tick_latency_ns\":");
        push_latency(&mut out, &self.tick_latency);
        out.push_str(",\"fsync_latency_ns\":");
        push_latency(&mut out, &self.fsync_latency);
        out.push_str(",\"queries\":[");
        for (i, q) in self.per_query.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "{{\"id\":{},\"name\":", q.id).unwrap();
            crate::json::push_string(&mut out, &q.name);
            write!(
                out,
                ",\"chains\":{},\"ticks\":{},\"last_probability\":",
                q.chains, q.ticks
            )
            .unwrap();
            crate::json::push_f64(&mut out, q.last_probability);
            out.push_str(",\"step_latency_ns\":");
            push_latency(&mut out, &q.step_latency);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn push_latency(out: &mut String, l: &LatencySnapshot) {
    use std::fmt::Write;
    // A non-finite mean (possible in a hand-built snapshot) would emit a
    // bare NaN/inf token, which is not JSON; push_f64 guards it to 0.
    write!(
        out,
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":",
        l.count, l.sum_ns, l.min_ns, l.max_ns
    )
    .unwrap();
    crate::json::push_f64(out, l.mean_ns);
    write!(
        out,
        ",\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
        l.p50_ns, l.p95_ns, l.p99_ns
    )
    .unwrap();
    for (i, (lower, count)) in l.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "[{lower},{count}]").unwrap();
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_handles() {
        let stats = EngineStats::new();
        let clone = stats.clone();
        stats.record_tick(Duration::from_micros(10), 5, false);
        clone.record_tick(Duration::from_micros(20), 7, true);
        stats.record_grounding(3);
        stats.record_alerts(2);
        stats.record_staged(4);
        stats.record_sampler(1024);
        stats.record_fallback("safe: no safe plan exists");
        stats.record_fallback("safe: no safe plan exists");
        let snap = stats.snapshot();
        assert_eq!(snap.ticks, 2);
        assert_eq!(snap.parallel_ticks, 1);
        assert_eq!(snap.chains_stepped, 12);
        assert_eq!(snap.bindings_grounded, 3);
        assert_eq!(snap.alerts_emitted, 2);
        assert_eq!(snap.marginals_staged, 4);
        assert_eq!(snap.sampler_compilations, 1);
        assert_eq!(snap.sampler_worlds, 1024);
        assert_eq!(snap.fallbacks, 2);
        assert_eq!(
            snap.fallback_reasons.get("safe: no safe plan exists"),
            Some(&2)
        );
        assert_eq!(snap.tick_latency.count, 2);
        assert!(snap.tick_latency.min_ns <= snap.tick_latency.max_ns);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let stats = EngineStats::new();
        for us in [1u64, 2, 4, 8, 100, 200, 400, 800, 1600, 10_000] {
            stats.record_tick(Duration::from_micros(us), 1, false);
        }
        let l = stats.snapshot().tick_latency;
        assert_eq!(l.count, 10);
        assert!(l.p50_ns >= l.min_ns);
        assert!(l.p95_ns >= l.p50_ns);
        assert!(l.p99_ns >= l.p95_ns);
        assert!(l.p99_ns <= l.max_ns);
        assert_eq!(l.buckets.iter().map(|(_, c)| c).sum::<u64>(), 10);
    }

    /// Pins the within-bucket linear interpolation: four samples landing
    /// in the `[1024, 2048)` bucket with observed min 1100 and max 1900
    /// put the median halfway through the clamped bucket range.
    #[test]
    fn quantiles_interpolate_within_buckets() {
        let stats = EngineStats::new();
        for ns in [1100u64, 1300, 1700, 1900] {
            stats.record_tick(Duration::from_nanos(ns), 1, false);
        }
        let l = stats.snapshot().tick_latency;
        // rank(p50) = 2 of 4 → fraction 0.5 of [1100, 1900].
        assert_eq!(l.p50_ns, 1500);
        // rank(p95) = rank(p99) = 4 → the top of the clamped range,
        // which is the true max, not the 2048 bucket boundary.
        assert_eq!(l.p95_ns, 1900);
        assert_eq!(l.p99_ns, 1900);

        // Across buckets: 2 samples in [1024, 2048), 2 in [4096, 8192).
        let stats = EngineStats::new();
        for ns in [1024u64, 2000, 5000, 6000] {
            stats.record_tick(Duration::from_nanos(ns), 1, false);
        }
        let l = stats.snapshot().tick_latency;
        // rank(p50) = 2 → top of the first bucket, clamped nowhere
        // below 2048 but capped by nothing: lower = 1024, upper = 2048.
        assert_eq!(l.p50_ns, 2048);
        // rank(p95) = 4 → top of [4096, 8192) clamped to max = 6000.
        assert_eq!(l.p95_ns, 6000);
    }

    #[test]
    fn fallback_reason_cardinality_is_bounded() {
        let stats = EngineStats::new();
        for i in 0..MAX_FALLBACK_REASONS + 5 {
            stats.record_fallback(&format!("reason {i}"));
        }
        // A repeat of an already-tracked reason still lands on its own
        // label.
        stats.record_fallback("reason 0");
        let snap = stats.snapshot();
        assert_eq!(snap.fallbacks, (MAX_FALLBACK_REASONS + 6) as u64);
        assert_eq!(snap.fallback_reasons.len(), MAX_FALLBACK_REASONS + 1);
        assert_eq!(snap.fallback_reasons.get(FALLBACK_OVERFLOW_LABEL), Some(&5));
        assert_eq!(snap.fallback_reasons.get("reason 0"), Some(&2));
        assert!(!snap
            .fallback_reasons
            .contains_key(&format!("reason {MAX_FALLBACK_REASONS}")));
    }

    #[test]
    fn per_query_registry_tracks_latency_and_probability() {
        let stats = EngineStats::new();
        stats.register_query(0, "coffee", 24);
        stats.register_query(1, "wandering", 24);
        stats.record_query_tick(0, Some(1000), 0.25);
        stats.record_query_tick(0, Some(3000), 0.75);
        stats.record_query_tick(1, None, 0.5);
        let snap = stats.snapshot();
        assert_eq!(snap.per_query.len(), 2);
        let q0 = &snap.per_query[0];
        assert_eq!((q0.id, q0.name.as_str(), q0.chains), (0, "coffee", 24));
        assert_eq!(q0.ticks, 2);
        assert_eq!(q0.last_probability, 0.75);
        assert_eq!(q0.step_latency.count, 2);
        assert_eq!(q0.step_latency.sum_ns, 4000);
        // A None latency (recovery-completed tick) counts the tick but
        // not a histogram sample.
        let q1 = &snap.per_query[1];
        assert_eq!(q1.ticks, 1);
        assert_eq!(q1.step_latency.count, 0);
        // Re-registration preserves accumulated counters.
        stats.register_query(0, "coffee", 24);
        let again = stats.snapshot();
        assert_eq!(again.per_query[0].ticks, 2);
    }

    #[test]
    fn json_snapshot_is_well_formed() {
        let stats = EngineStats::new();
        stats.record_tick(Duration::from_micros(42), 9, true);
        stats.record_fallback("needs \"quoting\"\n");
        stats.register_query(0, "q \"uoted\"", 1);
        stats.record_query_tick(0, Some(500), 0.5);
        let json = stats.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ticks\":1"));
        assert!(json.contains("\"chains_stepped\":9"));
        assert!(json.contains("\\\"quoting\\\"\\n"));
        // Balanced braces/brackets outside of strings.
        let (mut depth, mut in_str, mut esc) = (0i32, false, false);
        for c in json.chars() {
            match (in_str, esc, c) {
                (true, true, _) => esc = false,
                (true, false, '\\') => esc = true,
                (true, false, '"') => in_str = false,
                (true, _, _) => {}
                (false, _, '"') => in_str = true,
                (false, _, '{') | (false, _, '[') => depth += 1,
                (false, _, '}') | (false, _, ']') => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn empty_snapshot_renders() {
        let snap = EngineStats::new().snapshot();
        assert_eq!(snap.ticks, 0);
        let json = snap.to_json();
        assert!(json.contains("\"count\":0"));
        assert!(json.contains("\"buckets\":[]"));
        assert!(json.contains("\"queries\":[]"));
    }

    #[test]
    fn empty_and_populated_snapshots_parse_as_json() {
        let stats = EngineStats::new();
        // Empty histogram first — this is the case that used to risk a
        // bare NaN token for the mean.
        let doc = crate::json::parse(&stats.snapshot().to_json()).unwrap();
        let lat = doc.get("tick_latency_ns").unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(0));
        assert_eq!(lat.get("mean").unwrap().as_f64(), Some(0.0));

        stats.record_tick(Duration::from_micros(7), 3, true);
        stats.record_epoch(2);
        stats.record_degraded_tick();
        stats.record_recovery();
        stats.record_checkpoint();
        stats.record_staged(2);
        stats.record_fallback("needs \"quoting\"\n");
        stats.register_query(3, "q", 2);
        stats.record_query_tick(3, Some(1234), 0.1 + 0.2);
        let doc = crate::json::parse(&stats.snapshot().to_json()).unwrap();
        assert_eq!(doc.get("epochs").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("epoch_ticks").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("degraded_ticks").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("recoveries").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("checkpoints_taken").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("marginals_staged").unwrap().as_u64(), Some(2));
        let queries = doc.get("queries").unwrap().as_array().unwrap();
        assert_eq!(queries.len(), 1);
        assert_eq!(queries[0].get("id").unwrap().as_u64(), Some(3));
        // Bit-exact float through the hand-rolled writer and parser.
        assert_eq!(
            queries[0]
                .get("last_probability")
                .unwrap()
                .as_f64()
                .unwrap()
                .to_bits(),
            (0.1f64 + 0.2).to_bits()
        );
    }

    #[test]
    fn kernel_counters_accumulate_and_render() {
        let stats = EngineStats::new();
        let tick = crate::kernel::KernelTickStats {
            steps: crate::kernel::KernelCounters {
                fast: 100,
                frozen: 20,
                slow: 5,
                soa: 64,
                simd: 16,
            },
            sym_hits: 40,
            sym_misses: 10,
        };
        stats.record_kernel(&tick);
        stats.record_kernel(&tick);
        stats.record_automata(3, 12);
        // Gauges overwrite, counters accumulate.
        stats.record_automata(4, 16);
        let snap = stats.snapshot();
        assert_eq!(snap.kernel_fast_steps, 200);
        assert_eq!(snap.kernel_frozen_steps, 40);
        assert_eq!(snap.kernel_slow_steps, 10);
        assert_eq!(snap.kernel_soa_steps, 128);
        assert_eq!(snap.kernel_simd_steps, 32);
        assert_eq!(snap.sym_cache_hits, 80);
        assert_eq!(snap.sym_cache_misses, 20);
        assert_eq!(snap.automata_shared, 4);
        assert_eq!(snap.automata_attached, 16);
        let doc = crate::json::parse(&snap.to_json()).unwrap();
        let kernel = doc.get("kernel").unwrap();
        assert_eq!(kernel.get("fast_steps").unwrap().as_u64(), Some(200));
        assert_eq!(kernel.get("soa_steps").unwrap().as_u64(), Some(128));
        assert_eq!(kernel.get("simd_steps").unwrap().as_u64(), Some(32));
        assert_eq!(kernel.get("sym_cache_hits").unwrap().as_u64(), Some(80));
        assert_eq!(kernel.get("automata_shared").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn wal_counters_accumulate_and_render() {
        let stats = EngineStats::new();
        stats.record_wal_append(120);
        stats.record_wal_append(80);
        stats.record_fsync(Duration::from_micros(350));
        stats.set_wal_segments(3);
        stats.set_wal_segments(2);
        stats.record_wal_replayed(17);
        stats.record_checkpoint_quarantined(1);
        let snap = stats.snapshot();
        assert_eq!(snap.wal_appends, 2);
        assert_eq!(snap.wal_bytes, 200);
        assert_eq!(snap.wal_segments, 2);
        assert_eq!(snap.wal_replayed_ticks, 17);
        assert_eq!(snap.checkpoints_quarantined, 1);
        assert_eq!(snap.fsync_latency.count, 1);
        let doc = crate::json::parse(&snap.to_json()).unwrap();
        let wal = doc.get("wal").unwrap();
        assert_eq!(wal.get("appends").unwrap().as_u64(), Some(2));
        assert_eq!(wal.get("bytes").unwrap().as_u64(), Some(200));
        assert_eq!(wal.get("segments").unwrap().as_u64(), Some(2));
        assert_eq!(wal.get("replayed_ticks").unwrap().as_u64(), Some(17));
        let fsync = doc.get("fsync_latency_ns").unwrap();
        assert_eq!(fsync.get("count").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn non_finite_mean_is_guarded_in_json() {
        let mut snap = EngineStats::new().snapshot();
        snap.tick_latency.mean_ns = f64::NAN;
        let doc = crate::json::parse(&snap.to_json()).expect("NaN mean must not break JSON");
        let lat = doc.get("tick_latency_ns").unwrap();
        assert_eq!(lat.get("mean").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn stats_state_round_trips_losslessly() {
        let stats = EngineStats::new();
        for us in [3u64, 17, 290, 5_000] {
            stats.record_tick(Duration::from_micros(us), 4, us % 2 == 0);
        }
        stats.record_epoch(3);
        stats.record_epoch(1);
        stats.record_degraded_tick();
        stats.record_recovery();
        stats.record_checkpoint();
        stats.record_grounding(6);
        stats.record_alerts(2);
        stats.record_staged(8);
        stats.record_sampler(512);
        stats.record_fallback("why");
        stats.record_kernel(&crate::kernel::KernelTickStats {
            steps: crate::kernel::KernelCounters {
                fast: 10,
                frozen: 4,
                slow: 2,
                soa: 8,
                simd: 1,
            },
            sym_hits: 7,
            sym_misses: 3,
        });
        stats.record_automata(2, 6);
        stats.register_query(0, "q0", 3);
        stats.record_query_tick(0, Some(777), 0.5400000000000001);
        let state = stats.export_state();
        let restored = EngineStats::from_state(&state);
        assert_eq!(restored.export_state(), state);
        assert_eq!(restored.snapshot(), stats.snapshot());
    }

    /// `load_state` must restore counters through existing clones of the
    /// handle — the property a live scrape endpoint depends on across a
    /// checkpoint restore.
    #[test]
    fn load_state_is_visible_through_existing_handles() {
        let stats = EngineStats::new();
        let observer = stats.clone();
        let donor = EngineStats::new();
        donor.record_tick(Duration::from_micros(10), 2, false);
        donor.register_query(1, "restored", 2);
        stats.load_state(&donor.export_state());
        assert_eq!(observer.snapshot(), donor.snapshot());
        assert_eq!(observer.snapshot().per_query[0].name, "restored");
    }
}
